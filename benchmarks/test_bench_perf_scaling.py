"""PERF — scaling of the interactive operations.

The paper's demo stands or falls on interactivity; this bench measures how
the expensive operations scale with customer count (reducers, KDE, the
spatial indexes) and the latency of the hot REST endpoints.
"""

import numpy as np
import pytest

from repro.core.reduction.mds import mds
from repro.core.reduction.tsne import tsne
from repro.core.shift.grids import GridSpec
from repro.core.shift.kde import kde_density
from repro.data.generator.simulate import CityConfig, generate_city
from repro.db.index.grid import GridIndex
from repro.db.index.quadtree import QuadTree
from repro.db.index.rtree import RTree
from repro.db.spatial import BBox
from repro.server import TestClient, VapApp


@pytest.fixture(scope="module")
def features_by_n(bench_session):
    feats = bench_session.features()
    return {n: feats[:n] for n in (75, 150, 300)}


@pytest.mark.parametrize("n", [75, 150, 300])
def test_perf_tsne_scaling(benchmark, features_by_n, n):
    benchmark(tsne, features_by_n[n], perplexity=20, n_iter=250, seed=0)


@pytest.mark.parametrize("n", [75, 150, 300])
def test_perf_mds_scaling(benchmark, features_by_n, n):
    benchmark(mds, features_by_n[n], method="smacof")


@pytest.mark.parametrize("n", [300, 1200, 4800])
def test_perf_kde_scaling(benchmark, n):
    rng = np.random.default_rng(1)
    pts = rng.normal([12.57, 55.68], 0.02, size=(n, 2))
    demand = rng.uniform(0.2, 3.0, n)
    spec = GridSpec.covering(pts, nx=96, ny=96)
    benchmark(kde_density, pts, demand, spec, 400.0)


@pytest.mark.parametrize(
    "cls", [GridIndex, QuadTree, RTree], ids=["grid", "quadtree", "rtree"]
)
def test_perf_index_query(benchmark, cls):
    rng = np.random.default_rng(4)
    n = 20_000
    lons = rng.uniform(12.4, 12.8, n)
    lats = rng.uniform(55.5, 55.9, n)
    index = cls(np.arange(n), lons, lats)
    box = BBox(12.55, 55.65, 12.6, 55.7)

    def run():
        return index.query_bbox(box)

    out = benchmark(run)
    assert out.size > 0


@pytest.fixture(scope="module")
def api_client():
    city = generate_city(CityConfig(n_customers=150, n_days=90, seed=31))
    from repro.core.pipeline import VapSession

    session = VapSession.from_city(city)
    session.embed(n_iter=300)  # warm the cache like a running deployment
    return TestClient(VapApp(session, layout=city.layout))


@pytest.mark.parametrize(
    "path",
    [
        "/api/customers?zone=residential",
        "/api/embedding",
        "/api/shift?t1_start=61&t1_end=63&t2_start=67&t2_end=69",
    ],
    ids=["customers", "embedding", "shift"],
)
def test_perf_rest_latency(benchmark, api_client, path):
    response = benchmark(api_client.get, path)
    assert response.ok
