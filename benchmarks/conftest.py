"""Shared benchmark fixtures and the result-table writer.

Benchmarks both *time* the core computations (pytest-benchmark) and
*regenerate* the paper's figures/scenario outputs.  Regenerated tables are
written to ``benchmarks/out/<experiment>.txt`` so they survive pytest's
stdout capture; EXPERIMENTS.md records the values measured in the final
run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core.pipeline import VapSession
from repro.data.generator.simulate import CityConfig, generate_city

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def bench_city():
    """The standard benchmark data set: 300 customers x 1 year."""
    return generate_city(CityConfig(n_customers=300, n_days=365, seed=17))


@pytest.fixture(scope="session")
def bench_session(bench_city):
    return VapSession.from_city(bench_city)


@pytest.fixture(scope="session")
def report():
    """Writer appending experiment tables to benchmarks/out/."""
    OUT_DIR.mkdir(exist_ok=True)

    def write(name: str, lines: list[str]) -> None:
        path = OUT_DIR / f"{name}.txt"
        text = "\n".join(lines) + "\n"
        path.write_text(text)
        print(f"\n--- {name} ---")
        print(text)

    return write
