"""Shared benchmark fixtures and the result-table writer.

Benchmarks both *time* the core computations (pytest-benchmark) and
*regenerate* the paper's figures/scenario outputs.  Regenerated tables are
written to ``benchmarks/out/<experiment>.txt`` so they survive pytest's
stdout capture; EXPERIMENTS.md records the values measured in the final
run.

Set ``REPRO_BENCH_SPANS=1`` to also capture observability span trees
during every bench and dump them to ``benchmarks/out/spans/<test>.txt`` —
off by default so the timed numbers keep the zero-cost NullSink path.
"""

from __future__ import annotations

import os
import re
from pathlib import Path

import pytest

from repro import obs
from repro.core.pipeline import VapSession
from repro.data.generator.simulate import CityConfig, generate_city

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def bench_city():
    """The standard benchmark data set: 300 customers x 1 year."""
    return generate_city(CityConfig(n_customers=300, n_days=365, seed=17))


@pytest.fixture(scope="session")
def bench_session(bench_city):
    return VapSession.from_city(bench_city)


@pytest.fixture(scope="session")
def report():
    """Writer appending experiment tables to benchmarks/out/."""
    OUT_DIR.mkdir(exist_ok=True)

    def write(name: str, lines: list[str]) -> None:
        path = OUT_DIR / f"{name}.txt"
        text = "\n".join(lines) + "\n"
        path.write_text(text)
        print(f"\n--- {name} ---")
        print(text)

    return write


@pytest.fixture(autouse=True)
def span_dump(request):
    """Dump each bench's span trees when ``REPRO_BENCH_SPANS=1``.

    Keeps the default NullSink (tracing disabled, zero overhead) unless
    the flag is set, so benchmark numbers are unaffected out of the box.
    """
    if os.environ.get("REPRO_BENCH_SPANS") != "1":
        yield
        return
    sink = obs.RingBufferSink(capacity=1024)
    previous = obs.get_tracer()
    obs.configure(sink=sink)
    try:
        yield
    finally:
        obs.configure(tracer=previous)
    roots = sink.records()
    if not roots:
        return
    span_dir = OUT_DIR / "spans"
    span_dir.mkdir(parents=True, exist_ok=True)
    safe = re.sub(r"[^\w.-]+", "_", request.node.name)
    lines: list[str] = [f"span trees for {request.node.name}", ""]
    for root in roots:
        lines.extend(root.format_tree())
        lines.append("")
    if sink.n_dropped:
        lines.append(f"({sink.n_dropped} older root spans dropped)")
    (span_dir / f"{safe}.txt").write_text("\n".join(lines) + "\n")
