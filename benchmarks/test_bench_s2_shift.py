"""S2 — spatio-temporal shift scenario (all three demo steps).

S2a  shift sensitivity vs temporal granularity (hourly ... yearly);
S2b  shift sensitivity vs consumption-intensity quantile (30%..90%);
S2c  near-real-time replay throughput (the "10 second" feed).
"""

import numpy as np
import pytest

from repro.core.shift.sensitivity import granularity_sweep, quantile_sweep
from repro.data.timeseries import ALL_RESOLUTIONS, HourWindow, Resolution
from repro.stream.clock import SimulatedClock
from repro.stream.feed import ReplayFeed
from repro.stream.online import run_replay

DAY = 24 * 2
T1 = HourWindow(DAY + 13, DAY + 15)
T2 = HourWindow(DAY + 19, DAY + 21)


def test_s2a_granularity_sensitivity(benchmark, bench_session, report):
    results = benchmark.pedantic(
        granularity_sweep,
        args=(bench_session.db, ALL_RESOLUTIONS),
        kwargs={"spec": bench_session.grid(), "max_pairs_per_resolution": 6},
        rounds=1,
        iterations=1,
    )
    rows = [
        "S2a  shift sensitivity vs temporal granularity",
        "",
        f"{'granularity':<14}{'pairs':>6}{'mean |shift|':>14}{'flows':>7}"
        f"{'peak gain':>12}",
    ]
    by_res = {}
    for r in results:
        by_res[r.resolution] = r
        energy = f"{r.mean_energy:.3e}" if np.isfinite(r.mean_energy) else "n/a"
        flows = f"{r.mean_flows:.1f}" if np.isfinite(r.mean_flows) else "n/a"
        peak = f"{r.peak_gain:.3e}" if np.isfinite(r.peak_gain) else "n/a"
        rows.append(
            f"{r.resolution.value:<14}{r.n_window_pairs:>6}{energy:>14}"
            f"{flows:>7}{peak:>12}"
        )
    report("s2a_granularity", rows)
    # Shape: sub-daily windows catch the diurnal commute churn that weekly
    # aggregation smooths away.
    assert (
        by_res[Resolution.FOUR_HOURLY].mean_energy
        > by_res[Resolution.WEEKLY].mean_energy
    )
    # One year gives exactly zero yearly pairs.
    assert by_res[Resolution.YEARLY].n_window_pairs == 0


def test_s2b_quantile_sensitivity(benchmark, bench_session, report):
    results = benchmark.pedantic(
        quantile_sweep,
        args=(bench_session.db, T1, T2),
        kwargs={"spec": bench_session.grid()},
        rounds=1,
        iterations=1,
    )
    rows = [
        "S2b  shift sensitivity vs consumption-intensity quantile",
        "",
        f"{'quantile':<10}{'customers':>10}{'|shift|':>12}{'flows':>7}",
    ]
    for r in results:
        rows.append(
            f"{r.quantile:<10.0%}{r.n_customers:>10}{r.energy:>12.3e}"
            f"{r.n_flows:>7}"
        )
    report("s2b_quantile", rows)
    # Shape: higher quantile -> fewer customers, weaker total shift signal
    # (less mass on the map), monotone in customer count.
    counts = [r.n_customers for r in results]
    assert counts == sorted(counts, reverse=True)
    assert results[0].energy > results[-1].energy


def test_s2c_replay_throughput(bench_session, bench_city, report, benchmark):
    positions = bench_city.positions()
    spec = bench_session.grid(nx=64, ny=64)
    horizon = bench_session.series.slice_hours(0, 24 * 4)

    def replay():
        feed = ReplayFeed(horizon, hours_per_tick=1)
        clock = SimulatedClock(tick_seconds=10.0)
        return run_replay(
            feed, positions, spec, window_hours=4, clock=clock,
            bandwidth_m=400.0,
        )

    updates = benchmark(replay)
    n_ticks = ReplayFeed(horizon, hours_per_tick=1).n_ticks
    stats = benchmark.stats.stats
    per_tick_ms = stats.mean / n_ticks * 1000.0
    report(
        "s2c_replay",
        [
            "S2c  near-real-time replay (simulated 10 s feed)",
            "",
            f"ticks replayed          : {n_ticks}",
            f"shift updates emitted   : {len(updates)}",
            f"mean wall time per tick : {per_tick_ms:.1f} ms",
            f"paper tick budget       : 10000 ms",
            f"headroom                : {10_000 / per_tick_ms:.0f}x",
        ],
    )
    # The 10-second budget of the demo is met with huge headroom.
    assert per_tick_ms < 10_000
