"""CONC — concurrent serving: single-flight dedup and backpressure.

The tentpole claim of the concurrent-serving work: N identical requests
racing into the API cost *one* kernel run (the rest wait on the leader),
and requests beyond the in-flight cap are shed with 503 + ``Retry-After``
instead of queueing without bound.  The dedup benchmark measures the
wall-clock of the whole concurrent batch against one cold compute to show
the dedup'd batch does not scale with thread count.
"""

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import obs
from repro.core.pipeline import VapSession
from repro.data.generator.simulate import CityConfig, generate_city
from repro.obs import MetricsRegistry
from repro.server import TestClient, VapApp

N_THREADS = 8
EMBED_URL = "/api/embedding?n_iter=250&perplexity=12"


@pytest.fixture(scope="module")
def conc_city():
    return generate_city(CityConfig(n_customers=120, n_days=28, seed=41))


@pytest.fixture()
def swapped_registry():
    """Route kernel counters into a private registry, restore after."""
    registry = MetricsRegistry()
    previous_registry, previous_tracer = obs.get_registry(), obs.get_tracer()
    obs.configure(registry=registry)
    try:
        yield registry
    finally:
        obs.configure(registry=previous_registry, tracer=previous_tracer)


def _fresh_client(conc_city, registry, **app_kwargs):
    session = VapSession.from_city(conc_city, metrics=registry)
    return TestClient(VapApp(session, **app_kwargs)), session


def _concurrent_get(client, url, n):
    barrier = threading.Barrier(n)

    def worker(_):
        barrier.wait(timeout=30)
        return client.get(url)

    with ThreadPoolExecutor(max_workers=n) as pool:
        return list(pool.map(worker, range(n)))


def test_conc_singleflight_dedup(conc_city, swapped_registry, report):
    """8 identical embedding requests -> exactly one t-SNE run."""
    client, _ = _fresh_client(conc_city, swapped_registry)

    t_cold_start = time.perf_counter()
    cold = client.get(EMBED_URL)
    t_cold = time.perf_counter() - t_cold_start
    assert cold.status == 200
    assert swapped_registry.counter("kernel_runs_total", kernel="tsne").value == 1

    # A fresh session: the concurrent batch races on an empty cache.
    client, _ = _fresh_client(conc_city, swapped_registry)
    t_batch_start = time.perf_counter()
    responses = _concurrent_get(client, EMBED_URL, N_THREADS)
    t_batch = time.perf_counter() - t_batch_start

    assert all(r.status == 200 for r in responses)
    assert len({r.body for r in responses}) == 1
    runs = swapped_registry.counter("kernel_runs_total", kernel="tsne").value
    assert runs == 2, f"batch must add exactly one run, saw {runs - 1}"

    # Dedup means the batch costs ~one compute, not N: generous 3x bound
    # absorbs scheduler noise while catching any O(N) regression (8
    # serial runs would be ~8x).
    assert t_batch < 3.0 * max(t_cold, 0.05), (
        f"concurrent batch took {t_batch:.2f}s vs cold compute "
        f"{t_cold:.2f}s - single-flight is not deduplicating"
    )
    report(
        "conc_singleflight",
        [
            "single-flight dedup: 8 identical /api/embedding requests",
            f"{'cold single compute':<28}{t_cold * 1000:>10.1f} ms",
            f"{'concurrent batch of 8':<28}{t_batch * 1000:>10.1f} ms",
            f"{'t-SNE kernel runs (batch)':<28}{1:>10d}",
            f"{'batch / cold ratio':<28}{t_batch / max(t_cold, 1e-9):>10.2f}",
        ],
    )


def test_conc_backpressure_sheds(conc_city, swapped_registry, report):
    """Requests beyond the in-flight cap get 503 + Retry-After."""
    client, _ = _fresh_client(
        conc_city, swapped_registry, max_inflight=1, retry_after_seconds=1.0
    )
    started = threading.Event()
    release = threading.Event()

    def slow_handler(request):
        started.set()
        assert release.wait(timeout=30)
        return {"ok": True}

    client.app.router.add("GET", "/api/slow", slow_handler)
    pool = ThreadPoolExecutor(max_workers=1)
    held = pool.submit(client.get, "/api/slow")
    assert started.wait(timeout=30)
    shed = [client.get("/api/health") for _ in range(4)]
    release.set()
    assert held.result(timeout=30).status == 200
    pool.shutdown()

    assert all(r.status == 503 for r in shed)
    assert all(r.headers.get("Retry-After") == "1" for r in shed)
    throttled = swapped_registry.counter("http_throttled_total").value
    assert throttled == 4
    report(
        "conc_backpressure",
        [
            "backpressure: cap 1 in-flight, 4 requests while slot held",
            f"{'shed with 503':<28}{len(shed):>10d}",
            f"{'http_throttled_total':<28}{int(throttled):>10d}",
            f"{'Retry-After header':<28}{'1 s':>10}",
        ],
    )


def test_conc_embedding_batch_bench(
    benchmark, conc_city, swapped_registry
):
    """Timed: a warm concurrent batch (cache hits from 8 threads)."""
    client, _ = _fresh_client(conc_city, swapped_registry)
    assert client.get(EMBED_URL).status == 200  # warm the cache

    def batch():
        responses = _concurrent_get(client, EMBED_URL, N_THREADS)
        assert all(r.status == 200 for r in responses)
        return responses

    benchmark(batch)
    # Warm batches never re-run the kernel.
    assert (
        swapped_registry.counter("kernel_runs_total", kernel="tsne").value == 1
    )
