"""OUTLOOK — the paper's closing outlook, made quantitative.

The conclusion promises "an outlook on the use potentials ... on other
urban energy uses".  We operationalise it with the EV-adoption scenario:
as a growing share of residential customers charge vehicles in the
evening, the commercial→residential evening shift the tool visualises
should strengthen monotonically — the planning signal VAP exists to show.
"""

import numpy as np
import pytest

from repro.core.pipeline import VapSession
from repro.data.generator.scenario import apply_ev_adoption
from repro.data.timeseries import HourWindow

DAY = 24 * 2
T1 = HourWindow(DAY + 13, DAY + 15)
T2 = HourWindow(DAY + 19, DAY + 21)

RATES = (0.0, 0.2, 0.5, 0.8)


def test_outlook_ev_adoption_sweep(benchmark, bench_city, report):
    def sweep():
        rows = []
        for rate in RATES:
            scenario, adopters = apply_ev_adoption(bench_city, rate, seed=11)
            session = VapSession.from_city(
                scenario, use_raw=False, preprocess=False
            )
            field = session.shift(T1, T2)
            rows.append((rate, len(adopters), field.energy()))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    baseline = rows[0][2]
    lines = [
        "OUTLOOK  evening shift vs EV adoption among residential customers",
        "",
        f"{'adoption':<10}{'adopters':>9}{'|shift| energy':>16}{'vs baseline':>13}",
    ]
    for rate, n_adopters, energy in rows:
        lines.append(
            f"{rate:<10.0%}{n_adopters:>9}{energy:>16.3e}"
            f"{energy / baseline:>12.2f}x"
        )
    report("outlook_ev", lines)
    energies = [energy for _, _, energy in rows]
    # The planning signal: monotone amplification with adoption.
    assert all(a < b for a, b in zip(energies, energies[1:]))
    assert energies[-1] > 1.5 * energies[0]
