"""FIG2 — the flow-map method schematic (paper Figure 2).

Figure 2 illustrates the method on two density-strength maps: discrete
demand at t1 and t2 → KDE (Eq. 3) → density difference (Eq. 4) → flow
arrows from the losing region to the gaining region.  This bench
regenerates exactly that construction on the canonical two-blob workload
and asserts its defining properties, then times the KDE evaluation across
grid resolutions (the interactive knob of view A).
"""

import numpy as np
import pytest

from repro.core.shift.flow import ShiftField, flow_vectors, major_flows
from repro.core.shift.grids import GridSpec
from repro.core.shift.kde import kde_density
from repro.db.spatial import BBox


def _two_blob_field(nx: int = 96) -> ShiftField:
    rng = np.random.default_rng(2)
    spec = GridSpec(BBox(0.0, 0.0, 1.0, 1.0), nx=nx, ny=nx)
    west = rng.normal([0.25, 0.5], 0.03, size=(150, 2))
    east = rng.normal([0.75, 0.5], 0.03, size=(150, 2))
    demand = rng.uniform(0.5, 2.0, 150)
    # Bandwidth wide enough that the two kernels overlap, giving the
    # monotone west->east slope between the blobs that Figure 2 sketches.
    before = kde_density(west, demand, spec, bandwidth_m=12_000.0)
    after = kde_density(east, demand, spec, bandwidth_m=12_000.0)
    return ShiftField.between(before, after)


def test_fig2_flow_map_construction(benchmark, report):
    field = benchmark.pedantic(_two_blob_field, rounds=1, iterations=1)
    lon_gain, lat_gain, gain = field.peak_gain()
    lon_loss, lat_loss, loss = field.peak_loss()
    flows = major_flows(field)
    vectors = flow_vectors(field)

    lines = [
        "FIG2  flow-map method on the two-blob schematic",
        "",
        f"peak loss  at ({lon_loss:.3f}, {lat_loss:.3f})  value {loss:+.3e}",
        f"peak gain  at ({lon_gain:.3f}, {lat_gain:.3f})  value {gain:+.3e}",
        f"field zero-sum residual: {field.values.sum():+.3e}",
        f"major transport arrows: {len(flows)}",
    ]
    main = flows[0]
    lines.append(
        f"main arrow: ({main.lon:.3f}, {main.lat:.3f}) -> "
        f"({main.tip[0]:.3f}, {main.tip[1]:.3f})  mass {main.magnitude:.3e}"
    )
    lines.append(f"gradient arrows (view A texture): {len(vectors)}")
    report("fig2_flowmap", lines)

    # Paper-shape assertions: loss west, gain east, arrow west->east.
    assert lon_loss < 0.5 < lon_gain
    assert main.lon < 0.5 < main.tip[0]
    assert abs(field.values.sum()) < 1e-6
    total = sum(v.magnitude for v in vectors)
    mean_dlon = sum(v.dlon * v.magnitude for v in vectors) / total
    assert mean_dlon > 0


@pytest.mark.parametrize("nx", [48, 96, 192])
def test_fig2_kde_grid_scaling(benchmark, nx):
    rng = np.random.default_rng(2)
    spec = GridSpec(BBox(0.0, 0.0, 1.0, 1.0), nx=nx, ny=nx)
    pts = rng.normal([0.5, 0.5], 0.1, size=(300, 2))
    demand = rng.uniform(0.5, 2.0, 300)
    benchmark(kde_density, pts, demand, spec, 5_000.0)
