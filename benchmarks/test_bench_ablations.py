"""ABLATIONS — the design choices behind the headline results.

Three knobs DESIGN.md calls out are swept here:

- **KDE bandwidth** (Eq. 3): too narrow fragments the shift field into
  per-customer speckle, too wide washes the commercial→residential flow
  out; Silverman's rule must land in the working range.
- **Feature folding** for the embedding: which view of the series (mean
  day / mean week / monthly totals / summary stats) recovers the
  archetypes best under the paper's Pearson metric.
- **t-SNE perplexity**: neighbourhood size vs cluster purity.
"""

import numpy as np
import pytest

from repro.cluster.metrics import adjusted_rand_index
from repro.core.reduction.quality import neighborhood_hit
from repro.core.reduction.tsne import tsne
from repro.core.shift.flow import major_flows
from repro.core.shift.kde import bandwidth_silverman, kde_density
from repro.core.shift.flow import ShiftField
from repro.data.meter import ZoneKind
from repro.data.timeseries import HourWindow
from repro.db.geo import meters_per_degree
from repro.preprocess.features import FeatureKind

DAY = 24 * 2
T1 = HourWindow(DAY + 13, DAY + 15)
T2 = HourWindow(DAY + 19, DAY + 21)


def test_ablation_kde_bandwidth(benchmark, bench_session, bench_city, report):
    """Sweep the bandwidth; record flow count and whether the headline
    commercial→residential arrow survives."""
    db = bench_session.db
    spec = bench_session.grid()
    pos1, val1 = db.demand(T1)
    pos2, val2 = db.demand(T2)
    m_lon, m_lat = meters_per_degree(spec.bbox.center.lat)
    px = (pos1[:, 0] - spec.bbox.center.lon) * m_lon
    py = (pos1[:, 1] - spec.bbox.center.lat) * m_lat
    silverman = bandwidth_silverman(np.column_stack([px, py]))

    def sweep():
        rows = []
        for bandwidth in (50.0, 150.0, 400.0, silverman, 1200.0, 3000.0):
            before = kde_density(pos1, val1, spec, bandwidth_m=bandwidth)
            after = kde_density(pos2, val2, spec, bandwidth_m=bandwidth)
            field = ShiftField.between(before, after)
            flows = major_flows(field)
            main_ok = False
            if flows:
                src = bench_city.layout.nearest_zone(flows[0].lon, flows[0].lat)
                dst = bench_city.layout.nearest_zone(*flows[0].tip)
                main_ok = (
                    src.kind is ZoneKind.COMMERCIAL
                    and dst.kind is ZoneKind.RESIDENTIAL
                )
            rows.append((bandwidth, len(flows), main_ok))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        "ABLATION  KDE bandwidth vs flow recovery",
        "",
        f"(Silverman's rule for this data: {silverman:.0f} m)",
        f"{'bandwidth m':<14}{'flows':>6}{'  commercial->residential?':<28}",
    ]
    for bandwidth, n_flows, ok in rows:
        tag = " *silverman*" if abs(bandwidth - silverman) < 1e-9 else ""
        lines.append(f"{bandwidth:<14.0f}{n_flows:>6}  {str(ok):<14}{tag}")
    report("ablation_bandwidth", lines)
    by_bw = {round(b): ok for b, _, ok in rows}
    # The working range includes Silverman's choice; the extremes fail or
    # fragment.
    assert by_bw[round(silverman)]
    fragmented = rows[0][1]  # 50 m
    assert fragmented != 1 or not rows[0][2] or rows[0][1] > 1


def test_ablation_feature_kind(benchmark, bench_session, bench_city, report):
    """Which folding of the series separates the archetypes best?"""
    truth = bench_city.archetype_labels()

    def sweep():
        rows = []
        for kind in (
            FeatureKind.MEAN_DAY,
            FeatureKind.MEAN_WEEK,
            FeatureKind.MONTHLY_TOTAL,
            FeatureKind.SUMMARY,
        ):
            info = bench_session.embed(feature_kind=kind, n_iter=400)
            rows.append((kind.value, neighborhood_hit(info.coords, truth)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        "ABLATION  feature folding vs archetype separation (t-SNE)",
        "",
        f"{'features':<16}{'neighbourhood hit':>18}",
    ]
    for name, hit in rows:
        lines.append(f"{name:<16}{hit:>18.3f}")
    report("ablation_features", lines)
    by_kind = dict(rows)
    # Findings: the compact summary (level + peak statistics) separates
    # *these* archetypes best because they differ strongly in level; the
    # shape foldings follow closely and every folding beats chance
    # (6 classes -> ~0.17) by a wide margin.
    assert max(by_kind.values()) > 0.9
    assert by_kind["mean_week"] > by_kind["monthly_total"] - 0.02
    assert min(by_kind.values()) > 0.5


def test_ablation_perplexity(benchmark, bench_session, bench_city, report):
    """Perplexity sweep: neighbourhood purity and ground-truth agreement
    of the embedding's own kNN structure."""
    truth = bench_city.archetype_labels()
    feats = bench_session.features()

    def sweep():
        rows = []
        for perplexity in (5.0, 15.0, 30.0, 60.0):
            result = tsne(
                feats, perplexity=perplexity, n_iter=400, seed=0
            )
            rows.append(
                (
                    perplexity,
                    result.kl_divergence,
                    neighborhood_hit(result.embedding, truth),
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        "ABLATION  t-SNE perplexity",
        "",
        f"{'perplexity':<12}{'KL':>8}{'nhit':>8}",
    ]
    for perplexity, kl, hit in rows:
        lines.append(f"{perplexity:<12.0f}{kl:>8.3f}{hit:>8.3f}")
    report("ablation_perplexity", lines)
    hits = [hit for _, _, hit in rows]
    assert max(hits) > 0.85
    # KL grows with perplexity (a harder target distribution), but every
    # setting keeps clusters usable for selection.
    assert min(hits) > 0.6
