"""OUTLOOK-SCALE — "use potentials on a higher spatial scale".

The paper's outlook points beyond customer-level maps.  Here the same
evening shift analysis runs at three spatial scales — individual
customers, city districts (each district's demand placed at its centroid)
and a 2x2 super-grid — measuring what aggregation preserves and what it
destroys.  The expected shape: the headline commercial→residential flow
direction survives district-level aggregation (planning at feeder scale
works), while the fine-grained flow texture disappears.
"""

import numpy as np
import pytest

from repro.core.shift.flow import ShiftField, major_flows
from repro.core.shift.kde import kde_density
from repro.data.timeseries import HourWindow

DAY = 24 * 2
T1 = HourWindow(DAY + 13, DAY + 15)
T2 = HourWindow(DAY + 19, DAY + 21)


def _aggregate_positions(
    positions: np.ndarray, values: np.ndarray, keys: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Sum demand per key; place it at the members' mean position."""
    out_pos = []
    out_val = []
    for key in np.unique(keys):
        members = keys == key
        out_pos.append(positions[members].mean(axis=0))
        out_val.append(values[members].sum())
    return np.asarray(out_pos), np.asarray(out_val)


def test_outlook_spatial_scale(benchmark, bench_session, bench_city, report):
    db = bench_session.db
    spec = bench_session.grid()
    layout = bench_city.layout

    def analyse():
        rows = []
        pos1, val1 = db.demand(T1)
        pos2, val2 = db.demand(T2)
        zone_names = np.array(
            [layout.nearest_zone(lon, lat).name for lon, lat in pos1]
        )
        supergrid = np.array(
            [
                f"{int(lon > spec.bbox.center.lon)}{int(lat > spec.bbox.center.lat)}"
                for lon, lat in pos1
            ]
        )
        scales = {
            "customer": (pos1, val1, pos2, val2),
            "district": (
                *_aggregate_positions(pos1, val1, zone_names),
                *_aggregate_positions(pos2, val2, zone_names),
            ),
            "supergrid 2x2": (
                *_aggregate_positions(pos1, val1, supergrid),
                *_aggregate_positions(pos2, val2, supergrid),
            ),
        }
        for name, (p1, v1, p2, v2) in scales.items():
            bandwidth = 600.0 if name == "customer" else 1500.0
            field = ShiftField.between(
                kde_density(p1, v1, spec, bandwidth_m=bandwidth),
                kde_density(p2, v2, spec, bandwidth_m=bandwidth),
            )
            flows = major_flows(field)
            # Texture: total variation of the field per unit energy —
            # fine customer-level structure has more gradient per |shift|.
            grad_lat, grad_lon = np.gradient(field.values)
            tv = float(np.abs(grad_lat).sum() + np.abs(grad_lon).sum())
            texture = tv / max(float(np.abs(field.values).sum()), 1e-30)
            direction_ok = False
            if flows:
                src = layout.nearest_zone(flows[0].lon, flows[0].lat)
                dst = layout.nearest_zone(*flows[0].tip)
                direction_ok = (
                    src.kind.value == "commercial"
                    and dst.kind.value == "residential"
                )
            rows.append((name, p1.shape[0], len(flows), texture, direction_ok))
        return rows

    rows = benchmark.pedantic(analyse, rounds=1, iterations=1)
    lines = [
        "OUTLOOK-SCALE  evening shift at three spatial aggregation levels",
        "",
        f"{'scale':<16}{'points':>7}{'flows':>7}{'texture':>9}"
        f"{'  commercial->residential?':<28}",
    ]
    for name, n_points, n_flows, texture, ok in rows:
        lines.append(
            f"{name:<16}{n_points:>7}{n_flows:>7}{texture:>9.3f}  {ok}"
        )
    report("outlook_scale", lines)

    by_name = {r[0]: r for r in rows}
    # Shape claims: the headline direction survives district aggregation...
    assert by_name["customer"][4]
    assert by_name["district"][4]
    # ...while the fine flow texture collapses with aggregation.
    assert by_name["district"][3] < by_name["customer"][3]
