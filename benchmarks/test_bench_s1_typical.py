"""S1 — typical-pattern discovery scenario (all four demo steps).

S1a  early-birds query: selection precision/recall against ground truth.
S1b  pattern transition: neighbour-walk smoothness vs a random order.
S1c  t-SNE vs MDS: KL (Eq. 1), trustworthiness, continuity, neighbourhood
     hit and wall time.
S1d  k-means vs visual analysis: purity / ARI / NMI (+ silhouette).
"""

import time

import numpy as np
import pytest

from repro.cluster.metrics import (
    adjusted_rand_index,
    normalized_mutual_information,
    purity,
    silhouette,
)
from repro.core.patterns.selection import KnnSelection
from repro.core.patterns.transition import random_walk_baseline, transition_walk
from repro.core.reduction.distances import pairwise_distances
from repro.core.reduction.quality import (
    continuity,
    kl_divergence_embedding,
    neighborhood_hit,
    trustworthiness,
)
from repro.core.reduction.tsne import tsne


def test_s1a_early_birds(benchmark, bench_session, bench_city, report):
    truth = bench_city.archetype_labels()
    info = benchmark.pedantic(bench_session.embed, rounds=1, iterations=1)
    exemplar = int(np.flatnonzero(truth == "early_bird")[0])
    n_true = int((truth == "early_bird").sum())
    idx = KnnSelection(
        info.coords[exemplar, 0], info.coords[exemplar, 1], n_true
    ).apply(info.coords)
    hits = truth[idx] == "early_bird"
    precision = float(hits.mean())
    recall = float(hits.sum() / n_true)
    report(
        "s1a_early_birds",
        [
            "S1a  early-birds query (morning peak 05:00-07:00)",
            "",
            f"true early birds : {n_true}",
            f"selected         : {idx.size}",
            f"precision        : {precision:.0%}",
            f"recall           : {recall:.0%}",
        ],
    )
    assert precision > 0.8
    assert recall > 0.8


def test_s1b_pattern_transition(benchmark, bench_session, report):
    info = bench_session.embed()
    walk = benchmark.pedantic(
        transition_walk,
        args=(info.coords, bench_session.series),
        kwargs={"start": 0, "n_steps": 100},
        rounds=1,
        iterations=1,
    )
    baseline = random_walk_baseline(bench_session.series, n_steps=100, seed=1)
    lags = walk.similarity_by_lag(8)
    report(
        "s1b_transition",
        [
            "S1b  pattern transition along closely placed points",
            "",
            f"neighbour walk mean similarity : {walk.mean_step_similarity:.3f}",
            f"random order mean similarity   : {baseline.mean_step_similarity:.3f}",
            "similarity by walk distance    : "
            + " ".join(f"{v:.3f}" for v in lags),
        ],
    )
    assert walk.mean_step_similarity > baseline.mean_step_similarity + 0.1
    assert lags[0] > lags[-1]


def test_s1c_reducer_comparison(benchmark, bench_session, bench_city, report):
    truth = bench_city.archetype_labels()
    dist = benchmark.pedantic(
        pairwise_distances, args=(bench_session.features(), "pearson"),
        rounds=1, iterations=1,
    )
    rows = [
        "S1c  t-SNE vs MDS (Pearson distance, mean-week features)",
        "",
        f"{'method':<14}{'KL':>8}{'trust':>8}{'cont':>8}{'nhit':>8}{'sec':>8}",
    ]
    results = {}
    for method in ("tsne", "mds", "mds_classical"):
        t0 = time.perf_counter()
        info = bench_session.embed(method=method)
        seconds = time.perf_counter() - t0
        kl = (
            info.objective
            if method == "tsne"
            else kl_divergence_embedding(dist, info.coords)
        )
        results[method] = {
            "kl": kl,
            "trust": trustworthiness(dist, info.coords),
            "cont": continuity(dist, info.coords),
            "nhit": neighborhood_hit(info.coords, truth),
        }
        rows.append(
            f"{method:<14}{kl:>8.3f}{results[method]['trust']:>8.3f}"
            f"{results[method]['cont']:>8.3f}{results[method]['nhit']:>8.3f}"
            f"{seconds:>8.2f}"
        )
    report("s1c_reducers", rows)
    # Shape: t-SNE wins the KL objective it optimises and local structure.
    assert results["tsne"]["kl"] < results["mds"]["kl"]
    assert results["tsne"]["nhit"] >= results["mds"]["nhit"] - 0.02


def test_s1d_kmeans_vs_visual(benchmark, bench_session, bench_city, report):
    truth = bench_city.archetype_labels()
    dist = pairwise_distances(bench_session.features(), "pearson")
    km = benchmark.pedantic(
        bench_session.kmeans_baseline, kwargs={"k": 6}, rounds=1, iterations=1
    )
    visual = np.array([p.archetype.value for p in bench_session.member_labels()])
    rows = [
        "S1d  k-means baseline vs visual analysis (6 archetypes)",
        "",
        f"{'method':<18}{'purity':>8}{'ARI':>8}{'NMI':>8}{'silh':>8}",
    ]
    scores = {}
    for name, labels in (("k-means (k=6)", km.labels), ("visual analysis", visual)):
        scores[name] = {
            "purity": purity(truth, labels),
            "ari": adjusted_rand_index(truth, labels),
            "nmi": normalized_mutual_information(truth, labels),
            "silh": silhouette(dist, labels),
        }
        s = scores[name]
        rows.append(
            f"{name:<18}{s['purity']:>8.3f}{s['ari']:>8.3f}"
            f"{s['nmi']:>8.3f}{s['silh']:>8.3f}"
        )
    report("s1d_kmeans_vs_visual", rows)
    # The paper's S1 step 4 claim.
    assert scores["visual analysis"]["ari"] > scores["k-means (k=6)"]["ari"]
    assert scores["visual analysis"]["purity"] > scores["k-means (k=6)"]["purity"]


def test_s1_tsne_runtime(benchmark, bench_session):
    feats = bench_session.features()[:150]
    benchmark(tsne, feats, perplexity=25, n_iter=300, seed=0)
