"""FIG1 — the framework loop of the paper's Figure 1.

Times the full Data → Models → Visualization pass (generate, preprocess,
embed, select, label, shift, render) and records stage timings, verifying
the loop stays interactive at the case-study scale.
"""

import time

import numpy as np
import pytest

from repro.core.patterns.selection import KnnSelection
from repro.core.pipeline import VapSession
from repro.data.generator.simulate import CityConfig, generate_city
from repro.data.timeseries import HourWindow
from repro.viz.dashboard import render_dashboard


def _full_loop(n_customers: int = 120, n_days: int = 90) -> dict[str, float]:
    stages: dict[str, float] = {}
    t0 = time.perf_counter()
    city = generate_city(CityConfig(n_customers=n_customers, n_days=n_days, seed=3))
    stages["generate"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    session = VapSession.from_city(city)
    stages["preprocess"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    info = session.embed(n_iter=300)
    stages["embed"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    idx = KnnSelection(info.coords[0, 0], info.coords[0, 1], 12).apply(info.coords)
    session.pattern_of(idx)
    stages["select+label"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    day = 48
    session.flows(HourWindow(day + 13, day + 15), HourWindow(day + 19, day + 21))
    stages["shift"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    render_dashboard(
        session,
        HourWindow(day + 13, day + 15),
        HourWindow(day + 19, day + 21),
        selection=idx,
        layout=city.layout,
    )
    stages["render"] = time.perf_counter() - t0
    return stages


def test_fig1_full_loop(benchmark, report):
    stages = _full_loop()  # one instrumented pass for the stage table
    report(
        "fig1_pipeline",
        ["FIG1  framework loop stage timings (120 customers x 90 days)", ""]
        + [f"{name:<14}{seconds * 1000:>10.1f} ms" for name, seconds in stages.items()]
        + ["", f"{'total':<14}{sum(stages.values()) * 1000:>10.1f} ms"],
    )
    # The interactive-loop claim: a full pass stays in interactive range.
    assert sum(stages.values()) < 30.0

    def loop():
        return _full_loop(n_customers=60, n_days=30)

    benchmark(loop)
