"""FORECAST — ablation for the paper's downstream-use claim.

"The identified patterns ... can be used to ... forecast energy
consumption."  This bench backtests the pattern-based profile forecaster
against the classic baselines on the benchmark fleet and asserts the
claimed ordering: knowing the typical pattern improves day-ahead load
forecasts over naive and seasonal-naive methods.
"""

import numpy as np
import pytest

from repro.forecast.backtest import backtest
from repro.forecast.baselines import DriftForecaster, NaiveForecaster, SeasonalNaive
from repro.forecast.holtwinters import HoltWinters
from repro.forecast.profile import ProfileForecaster


def test_forecast_ablation(benchmark, bench_session, report):
    fleet = bench_session.series.slice_hours(0, 70 * 24)
    factories = {
        "naive": NaiveForecaster,
        "drift": DriftForecaster,
        "seasonal naive (168h)": lambda: SeasonalNaive(168),
        "holt-winters (24h)": lambda: HoltWinters(season=24),
        "profile (patterns)": lambda: ProfileForecaster(),
    }
    results = benchmark.pedantic(
        backtest,
        args=(fleet, factories),
        kwargs={"horizon": 24, "n_folds": 2, "min_history": 28 * 24},
        rounds=1,
        iterations=1,
    )
    rows = [
        "FORECAST  day-ahead backtest, 2 folds x fleet",
        "",
        f"{'model':<22}{'MAE':>9}{'sMAPE':>9}{'MASE':>9}",
    ]
    rows.extend(r.row() for r in results)
    report("forecast_ablation", rows)

    by_name = {r.model: r for r in results}
    profile = by_name["profile (patterns)"]
    # The claim: pattern knowledge beats every baseline on sMAPE and is
    # better than "repeat last week" in scaled terms (MASE < 1).
    for name, result in by_name.items():
        if name != "profile (patterns)":
            assert profile.smape < result.smape, (name, result.smape)
    assert profile.mase < 1.0
