"""FIG3 — the main VAP user interface (paper Figure 3).

Regenerates the composed dashboard on the case-study city and verifies the
two findings the figure narrates:

- the embedding exposes the five typical patterns (each canonical pattern
  occupies a coherent neighbourhood that selection + labelling recovers);
- the flow map points from the commercial core toward a residential area
  in the office-hours → evening transition.

Also times the dashboard render (the paper's interactivity claim).
"""

import re
import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.core.patterns.selection import KnnSelection
from repro.data.meter import ZoneKind
from repro.data.timeseries import HourWindow
from repro.viz.dashboard import render_dashboard

DAY = 24 * 2  # a Wednesday
T1 = HourWindow(DAY + 13, DAY + 15)
T2 = HourWindow(DAY + 19, DAY + 21)

CANONICAL = ("bimodal", "energy_saving", "idle", "constant_high", "suspicious")


def test_fig3_five_patterns_in_view_c(benchmark, bench_session, bench_city, report):
    info = benchmark.pedantic(bench_session.embed, rounds=1, iterations=1)
    truth = bench_city.archetype_labels()
    lines = [
        "FIG3  typical patterns recovered by selection in view C",
        "",
        f"{'pattern':<16}{'selected':>9}{'label':>16}{'share':>7}",
    ]
    consistent = 0
    for pattern in CANONICAL:
        exemplars = np.flatnonzero(truth == pattern)
        seed = int(exemplars[0])
        idx = KnnSelection(
            info.coords[seed, 0], info.coords[seed, 1], 10
        ).apply(info.coords)
        label = bench_session.pattern_of(idx)
        values, counts = np.unique(truth[idx], return_counts=True)
        acceptable = set(values[counts >= counts.max() - 1])
        ok = label.archetype.value in acceptable
        consistent += ok
        lines.append(
            f"{pattern:<16}{idx.size:>9}{label.archetype.value:>16}"
            f"{label.score:>7.0%}" + ("" if ok else "  (inconsistent)")
        )
    report("fig3_patterns", lines)
    assert consistent >= 4


def test_fig3_commercial_to_residential_flow(benchmark, bench_session, bench_city, report):
    flows = benchmark.pedantic(bench_session.flows, args=(T1, T2), rounds=1, iterations=1)
    lines = [
        "FIG3  demand flows, office hours (13-15) -> evening (19-21)",
        "",
    ]
    kinds = []
    for flow in flows:
        src = bench_city.layout.nearest_zone(flow.lon, flow.lat)
        dst = bench_city.layout.nearest_zone(*flow.tip)
        kinds.append((src.kind, dst.kind))
        lines.append(
            f"{src.name:<16}({src.kind.value:<11}) -> "
            f"{dst.name:<16}({dst.kind.value:<11})  mass {flow.magnitude:.3e}"
        )
    report("fig3_flows", lines)
    # The headline arrow: commercial origin, residential destination.
    assert (ZoneKind.COMMERCIAL, ZoneKind.RESIDENTIAL) in kinds
    assert kinds[0][1] is ZoneKind.RESIDENTIAL


def test_fig3_dashboard_render(benchmark, bench_session, bench_city):
    bench_session.embed()  # exclude the (cached) embedding from the timing

    def render() -> str:
        return render_dashboard(
            bench_session,
            T1,
            T2,
            labels=bench_city.archetype_labels(),
            layout=bench_city.layout,
        )

    html_text = benchmark(render)
    svgs = re.findall(r"<svg.*?</svg>", html_text, re.S)
    assert len(svgs) == 3
    for svg in svgs:
        ET.fromstring(svg)
