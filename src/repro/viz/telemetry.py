"""The self-monitoring telemetry panel.

Renders the ``/api/telemetry`` document — rolling request-rate windows,
latency bands, cache hit ratios, per-op runtimes, a route×window traffic
heat map and the slowest operations — as one standalone SVG, using the
same primitives (:mod:`repro.viz.svg`, :mod:`repro.viz.color`,
:mod:`repro.viz.scales`) the paper's three views are built from.  The
system watches itself with its own visualisation layer.

Reachable as ``GET /api/telemetry?format=svg`` on the REST API and as
``repro stats --dashboard out.svg`` on the CLI.  The renderer is pure
(dict in, SVG out) and tolerant of empty series, so it can run against a
freshly started server.
"""

from __future__ import annotations

from repro.viz.color import CATEGORICAL, colormap
from repro.viz.scales import LinearScale, nice_ticks
from repro.viz.svg import Element, SvgDocument, path_data

_BG = "#ffffff"
_PANEL_BG = "#fafafa"
_FRAME = "#cccccc"
_GRIDLINE = "#e5e5e5"
_TEXT = "#222222"
_MUTED = "#555555"
_ACCENT = CATEGORICAL[0]


def render_sparkline(
    values: list[float | None],
    x: float,
    y: float,
    width: float,
    height: float,
    color: str = _ACCENT,
    fill: bool = True,
) -> Element:
    """A compact line-over-time mark; ``None`` entries break the line.

    Raises
    ------
    ValueError
        For a non-positive size.
    """
    if width <= 0 or height <= 0:
        raise ValueError(f"size must be positive, got {width}x{height}")
    group = Element("g", class_="sparkline")
    finite = [v for v in values if v is not None]
    if not finite:
        return group
    vmax = max(max(finite), 1e-12)
    vmin = min(min(finite), 0.0)
    sx = LinearScale(0.0, max(len(values) - 1, 1), x, x + width)
    sy = LinearScale(vmin, vmax, y + height, y)
    runs: list[list[tuple[float, float]]] = [[]]
    for i, v in enumerate(values):
        if v is None:
            if runs[-1]:
                runs.append([])
            continue
        runs[-1].append((float(sx(i)), float(sy(v))))
    for run in runs:
        if len(run) < 2:
            continue
        if fill:
            base = float(sy(max(vmin, 0.0)))
            area = run + [(run[-1][0], base), (run[0][0], base)]
            group.add_new(
                "path", d=path_data(area, close=True), fill=color,
                fill_opacity=0.15, stroke="none",
            )
        group.add_new(
            "path", d=path_data(run), fill="none", stroke=color,
            stroke_width=1.6,
        )
    return group


class _Panel:
    """One titled sub-panel with a framed plot area."""

    def __init__(
        self, doc: Element, x: float, y: float, width: float, height: float,
        title: str,
    ) -> None:
        self.group = doc.add_new("g", class_="panel")
        self.x = x
        self.y = y + 18  # room for the title
        self.width = width
        self.height = height - 18
        self.group.add_new(
            "text", x=x, y=y + 12, font_size=12, fill=_TEXT,
            font_family="sans-serif", font_weight="bold",
        ).set_text(title)
        self.group.add_new(
            "rect", x=self.x, y=self.y, width=self.width, height=self.height,
            fill=_PANEL_BG, stroke=_FRAME,
        )

    def empty_note(self, message: str = "no data yet") -> None:
        self.group.add_new(
            "text", x=self.x + self.width / 2, y=self.y + self.height / 2,
            font_size=11, fill=_MUTED, text_anchor="middle",
            font_family="sans-serif",
        ).set_text(message)

    def caption(self, text: str) -> None:
        self.group.add_new(
            "text", x=self.x + 6, y=self.y + self.height - 6, font_size=9,
            fill=_MUTED, font_family="sans-serif",
        ).set_text(text)


def _request_rate_panel(panel: _Panel, overall: dict) -> None:
    windows = overall.get("windows", [])
    rates = [w["count"] / overall.get("window_seconds", 1.0) for w in windows]
    if not windows or not any(rates):
        panel.empty_note()
        return
    panel.group.add(
        render_sparkline(
            rates, panel.x + 4, panel.y + 6, panel.width - 8,
            panel.height - 26,
        )
    )
    peak = max(rates)
    total = sum(w["count"] for w in windows)
    panel.caption(
        f"{total} requests over {len(windows)} windows, peak "
        f"{peak:.2f}/s"
    )


def _latency_band_panel(panel: _Panel, overall: dict) -> None:
    windows = overall.get("windows", [])
    p50 = [w.get("p50") for w in windows]
    p99 = [w.get("p99") for w in windows]
    if not any(v is not None for v in p99):
        panel.empty_note()
        return
    ms50 = [None if v is None else v * 1000.0 for v in p50]
    ms99 = [None if v is None else v * 1000.0 for v in p99]
    panel.group.add(
        render_sparkline(
            ms99, panel.x + 4, panel.y + 6, panel.width - 8,
            panel.height - 26, color=CATEGORICAL[3], fill=True,
        )
    )
    panel.group.add(
        render_sparkline(
            ms50, panel.x + 4, panel.y + 6, panel.width - 8,
            panel.height - 26, color=_ACCENT, fill=False,
        )
    )
    worst = max(v for v in ms99 if v is not None)
    panel.caption(f"p50 (blue) / p99 (red), worst window p99 {worst:.1f} ms")


def _cache_panel(panel: _Panel, cache: dict) -> None:
    if not cache:
        panel.empty_note("no cached ops yet")
        return
    row_h = min(24.0, (panel.height - 16) / max(len(cache), 1))
    bar_w = panel.width - 150
    for i, (op, entry) in enumerate(sorted(cache.items())):
        y = panel.y + 10 + i * row_h
        ratio = float(entry.get("ratio", 0.0))
        panel.group.add_new(
            "text", x=panel.x + 6, y=y + row_h / 2 + 3, font_size=10,
            fill=_TEXT, font_family="sans-serif",
        ).set_text(op)
        panel.group.add_new(
            "rect", x=panel.x + 80, y=y, width=bar_w, height=row_h - 6,
            fill="#e8e8e8",
        )
        panel.group.add_new(
            "rect", x=panel.x + 80, y=y, width=bar_w * ratio,
            height=row_h - 6, fill=CATEGORICAL[2],
        )
        hits = int(entry.get("hit", 0))
        misses = int(entry.get("miss", 0))
        panel.group.add_new(
            "text", x=panel.x + 84 + bar_w, y=y + row_h / 2 + 2, font_size=9,
            fill=_MUTED, font_family="sans-serif",
        ).set_text(f"{ratio * 100.0:.0f}% ({hits}/{hits + misses})")


def _ops_panel(panel: _Panel, ops: list[dict]) -> None:
    ops = [op for op in ops if op.get("count")]
    if not ops:
        panel.empty_note("no pipeline ops yet")
        return
    ops = sorted(ops, key=lambda op: -op["mean_seconds"])[:8]
    vmax = max(op["mean_seconds"] for op in ops) or 1.0
    row_h = min(24.0, (panel.height - 16) / len(ops))
    bar_w = panel.width - 200
    ticks = nice_ticks(0.0, vmax, 3)
    for i, op in enumerate(ops):
        y = panel.y + 10 + i * row_h
        panel.group.add_new(
            "text", x=panel.x + 6, y=y + row_h / 2 + 3, font_size=10,
            fill=_TEXT, font_family="sans-serif",
        ).set_text(str(op["op"]))
        panel.group.add_new(
            "rect", x=panel.x + 120, y=y,
            width=bar_w * op["mean_seconds"] / max(vmax, ticks[-1] or vmax),
            height=row_h - 6, fill=CATEGORICAL[1],
        )
        panel.group.add_new(
            "text", x=panel.x + 124 + bar_w, y=y + row_h / 2 + 2, font_size=9,
            fill=_MUTED, font_family="sans-serif",
        ).set_text(
            f"{op['mean_seconds'] * 1000.0:.1f} ms x{int(op['count'])}"
        )


def _route_heatmap_panel(panel: _Panel, by_route: list[dict]) -> None:
    """Route × window traffic heat map (count per cell, heat colormap)."""
    series = [s for s in by_route if any(w["count"] for w in s["windows"])]
    if not series:
        panel.empty_note("no per-route traffic yet")
        return
    series = sorted(
        series, key=lambda s: -sum(w["count"] for w in s["windows"])
    )[:10]
    n_windows = max(len(s["windows"]) for s in series)
    vmax = max(w["count"] for s in series for w in s["windows"]) or 1
    label_w = 150.0
    cell_w = (panel.width - label_w - 10) / n_windows
    cell_h = min(18.0, (panel.height - 14) / len(series))
    for row, s in enumerate(series):
        y = panel.y + 8 + row * cell_h
        route = s["labels"].get("route", "?")
        if len(route) > 24:
            route = route[:21] + "..."
        panel.group.add_new(
            "text", x=panel.x + 6, y=y + cell_h / 2 + 3, font_size=9,
            fill=_TEXT, font_family="sans-serif",
        ).set_text(route)
        for col, w in enumerate(s["windows"]):
            if not w["count"]:
                continue
            panel.group.add_new(
                "rect",
                x=panel.x + label_w + col * cell_w,
                y=y,
                width=max(cell_w - 1, 0.5),
                height=max(cell_h - 2, 0.5),
                fill=colormap("heat", w["count"] / vmax),
            )


def _slow_ops_panel(panel: _Panel, slow_ops: list[dict]) -> None:
    if not slow_ops:
        panel.empty_note("no slow ops recorded")
        return
    row_h = min(16.0, (panel.height - 12) / max(len(slow_ops[:8]), 1))
    for i, record in enumerate(slow_ops[:8]):
        y = panel.y + 12 + i * row_h
        rid = record.get("request_id") or "-"
        panel.group.add_new(
            "text", x=panel.x + 6, y=y, font_size=9, fill=_TEXT,
            font_family="monospace",
        ).set_text(
            f"{record['duration_ms']:>8.1f} ms  {record['name']:<18} "
            f"req={rid}"
        )


def render_telemetry_panel(
    telemetry: dict, width: int = 880, height: int = 620
) -> SvgDocument:
    """Compose the telemetry document into the self-monitoring SVG panel.

    ``telemetry`` is the dict served by ``GET /api/telemetry`` (see
    :meth:`repro.server.app.VapApp.telemetry_payload`); missing keys
    render as empty panels rather than failing, so partially populated
    documents (fresh server, no traffic yet) still produce a valid SVG.

    Raises
    ------
    ValueError
        For a non-positive size.
    """
    doc = SvgDocument(width, height)
    doc.add_new("rect", x=0, y=0, width=width, height=height, fill=_BG)
    uptime = telemetry.get("uptime_seconds", 0.0)
    version = telemetry.get("version", "?")
    ready = telemetry.get("ready", False)
    doc.add_new(
        "text", x=16, y=24, font_size=15, fill=_TEXT,
        font_family="sans-serif", font_weight="bold",
    ).set_text("VAP telemetry — the tool watching itself")
    doc.add_new(
        "text", x=16, y=40, font_size=10, fill=_MUTED,
        font_family="sans-serif",
    ).set_text(
        f"v{version} | uptime {uptime:.1f} s | "
        f"{'ready' if ready else 'not ready'} | window "
        f"{telemetry.get('window_seconds', 0)} s"
    )
    margin, gutter, top = 16, 14, 52
    col_w = (width - 2 * margin - gutter) / 2
    row_h = (height - top - margin - 2 * gutter) / 3

    requests = telemetry.get("requests", {})
    overall = requests.get("overall", {})
    _request_rate_panel(
        _Panel(doc, margin, top, col_w, row_h, "Request rate (per window)"),
        overall,
    )
    _latency_band_panel(
        _Panel(
            doc, margin + col_w + gutter, top, col_w, row_h,
            "Request latency p50/p99 (ms)",
        ),
        overall,
    )
    y2 = top + row_h + gutter
    _cache_panel(
        _Panel(doc, margin, y2, col_w, row_h, "Pipeline cache hit ratio"),
        telemetry.get("cache", {}),
    )
    _ops_panel(
        _Panel(
            doc, margin + col_w + gutter, y2, col_w, row_h,
            "Pipeline op runtimes (mean)",
        ),
        telemetry.get("ops", []),
    )
    y3 = y2 + row_h + gutter
    _route_heatmap_panel(
        _Panel(doc, margin, y3, col_w, row_h, "Traffic by route x window"),
        requests.get("by_route", []),
    )
    _slow_ops_panel(
        _Panel(
            doc, margin + col_w + gutter, y3, col_w, row_h,
            "Slowest operations (request IDs)",
        ),
        telemetry.get("slow_ops", []),
    )
    return doc
