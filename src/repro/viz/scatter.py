"""View C: the 2-D embedding scatter.

"An interactive navigator that allows users to explore different energy
consumption patterns by selecting the points ... the closer the points are
to each other, the more similar the patterns will be."  Rendered headless:
points coloured by group (archetype, cluster or selection), optional
highlighted selection outline, axes-free (embedding coordinates carry no
units) with a frame and legend.
"""

from __future__ import annotations

import numpy as np

from repro.viz.color import categorical
from repro.viz.legend import categorical_legend
from repro.viz.scales import LinearScale
from repro.viz.svg import SvgDocument


def render_scatter(
    embedding: np.ndarray,
    labels: np.ndarray | None = None,
    highlight: np.ndarray | None = None,
    width: int = 420,
    height: int = 420,
    title: str = "View C — pattern navigator",
    point_radius: float = 3.0,
) -> SvgDocument:
    """Render the embedding as an SVG scatter.

    Parameters
    ----------
    embedding:
        ``(n, 2)`` coordinates.
    labels:
        Optional per-point group names; points are coloured per group and a
        legend is drawn.
    highlight:
        Optional row indices to emphasise (the active selection).

    Raises
    ------
    ValueError
        On malformed inputs.
    """
    embedding = np.asarray(embedding, dtype=np.float64)
    if embedding.ndim != 2 or embedding.shape[1] != 2:
        raise ValueError(f"embedding must be (n, 2), got {embedding.shape}")
    n = embedding.shape[0]
    if labels is not None:
        labels = np.asarray(labels)
        if labels.shape[0] != n:
            raise ValueError(f"{labels.shape[0]} labels for {n} points")
    doc = SvgDocument(width, height)
    doc.add_new("rect", x=0, y=0, width=width, height=height, fill="#ffffff")
    margin = 34
    plot_w = width - 2 * margin
    plot_h = height - 2 * margin
    doc.add_new(
        "rect",
        x=margin,
        y=margin,
        width=plot_w,
        height=plot_h,
        fill="#fafafa",
        stroke="#cccccc",
    )
    doc.add_new(
        "text", x=margin, y=margin - 10, font_size=13, fill="#222",
        font_family="sans-serif", font_weight="bold",
    ).set_text(title)

    if n > 0:
        pad_x = (float(np.ptp(embedding[:, 0])) or 1.0) * 0.05
        pad_y = (float(np.ptp(embedding[:, 1])) or 1.0) * 0.05
        sx = LinearScale(
            float(embedding[:, 0].min() - pad_x),
            float(embedding[:, 0].max() + pad_x),
            margin,
            margin + plot_w,
        )
        # SVG y grows downward; flip the range.
        sy = LinearScale(
            float(embedding[:, 1].min() - pad_y),
            float(embedding[:, 1].max() + pad_y),
            margin + plot_h,
            margin,
        )
        if labels is not None:
            names = sorted({str(v) for v in labels.tolist()})
            color_of = {name: categorical(i) for i, name in enumerate(names)}
        points = doc.add_new("g", class_="points")
        highlight_set = (
            set(np.asarray(highlight, dtype=np.int64).tolist())
            if highlight is not None
            else set()
        )
        for i in range(n):
            fill = (
                color_of[str(labels[i])] if labels is not None else "#4477aa"
            )
            attrs = dict(
                cx=float(sx(embedding[i, 0])),
                cy=float(sy(embedding[i, 1])),
                r=point_radius,
                fill=fill,
                fill_opacity=0.8,
            )
            if i in highlight_set:
                attrs.update(stroke="#000000", stroke_width=1.4, r=point_radius + 1.2)
            points.add_new("circle", **attrs)
        if labels is not None:
            doc.add(categorical_legend(names, x=margin + 6, y=margin + 8))
    return doc
