"""View B: aggregated consumption time series.

"View B shows the time series for the customers selected in view C ... and
visualizes the typical consumption pattern for all selected customers."
Renders one or more series (individual members faint, the aggregate bold)
with value ticks and time labels derived from the shared epoch.
"""

from __future__ import annotations

import numpy as np

from repro.viz.scales import LinearScale, format_hour, format_tick, nice_ticks
from repro.viz.svg import SvgDocument, path_data


def render_timeseries(
    hours: np.ndarray,
    aggregate: np.ndarray,
    members: np.ndarray | None = None,
    width: int = 560,
    height: int = 260,
    title: str = "View B — selected consumption pattern",
    max_members: int = 30,
    aggregate_color: str = "#c23726",
) -> SvgDocument:
    """Render a selection's consumption curve.

    Parameters
    ----------
    hours:
        Hour offsets (x axis), length T.
    aggregate:
        The selection's mean profile, length T (NaN gaps are skipped).
    members:
        Optional ``(m, T)`` member series drawn as faint context lines;
        at most ``max_members`` evenly chosen rows are drawn.

    Raises
    ------
    ValueError
        On shape mismatches.
    """
    hours = np.asarray(hours, dtype=np.float64)
    aggregate = np.asarray(aggregate, dtype=np.float64)
    if hours.ndim != 1 or aggregate.shape != hours.shape:
        raise ValueError(
            f"hours {hours.shape} and aggregate {aggregate.shape} must be "
            f"equal-length 1-D arrays"
        )
    if members is not None:
        members = np.asarray(members, dtype=np.float64)
        if members.ndim != 2 or members.shape[1] != hours.shape[0]:
            raise ValueError(
                f"members must be (m, {hours.shape[0]}), got {members.shape}"
            )
    doc = SvgDocument(width, height)
    doc.add_new("rect", x=0, y=0, width=width, height=height, fill="#ffffff")
    left, right, top, bottom = 52, 14, 30, 34
    plot_w = width - left - right
    plot_h = height - top - bottom
    doc.add_new(
        "text", x=left, y=top - 12, font_size=13, fill="#222",
        font_family="sans-serif", font_weight="bold",
    ).set_text(title)
    doc.add_new(
        "rect", x=left, y=top, width=plot_w, height=plot_h,
        fill="#fafafa", stroke="#cccccc",
    )
    if hours.size == 0:
        return doc

    candidates = [aggregate[np.isfinite(aggregate)]]
    if members is not None and members.size:
        candidates.append(members[np.isfinite(members)])
    values = np.concatenate([c for c in candidates if c.size]) if any(
        c.size for c in candidates
    ) else np.zeros(1)
    vmin = float(min(values.min(), 0.0))
    vmax = float(values.max()) or 1.0
    sx = LinearScale(float(hours[0]), float(hours[-1]) or 1.0, left, left + plot_w)
    sy = LinearScale(vmin, vmax, top + plot_h, top)

    axes = doc.add_new("g", class_="axes")
    for tick in nice_ticks(vmin, vmax, 5):
        y = float(sy(tick))
        axes.add_new(
            "line", x1=left, y1=y, x2=left + plot_w, y2=y,
            stroke="#e5e5e5", stroke_width=1,
        )
        axes.add_new(
            "text", x=left - 6, y=y + 3, font_size=10, fill="#555",
            text_anchor="end", font_family="sans-serif",
        ).set_text(format_tick(tick))
    n_time_ticks = min(6, hours.size)
    for pos in np.linspace(0, hours.size - 1, n_time_ticks).astype(int):
        x = float(sx(hours[pos]))
        axes.add_new(
            "line", x1=x, y1=top + plot_h, x2=x, y2=top + plot_h + 4,
            stroke="#999999",
        )
        axes.add_new(
            "text", x=x, y=top + plot_h + 16, font_size=9, fill="#555",
            text_anchor="middle", font_family="sans-serif",
        ).set_text(format_hour(int(hours[pos])))

    def polyline(series: np.ndarray) -> list[str]:
        """Split a NaN-gapped series into path strings."""
        paths: list[str] = []
        run: list[tuple[float, float]] = []
        for h, v in zip(hours, series):
            if np.isfinite(v):
                run.append((float(sx(h)), float(sy(v))))
            elif run:
                if len(run) > 1:
                    paths.append(path_data(run))
                run = []
        if len(run) > 1:
            paths.append(path_data(run))
        return paths

    lines = doc.add_new("g", class_="series")
    if members is not None and members.shape[0] > 0:
        picks = np.linspace(
            0, members.shape[0] - 1, min(max_members, members.shape[0])
        ).astype(int)
        for row in np.unique(picks):
            for d in polyline(members[row]):
                lines.add_new(
                    "path", d=d, fill="none", stroke="#99aabb",
                    stroke_width=0.7, stroke_opacity=0.45,
                )
    for d in polyline(aggregate):
        lines.add_new(
            "path", d=d, fill="none", stroke=aggregate_color, stroke_width=1.8
        )
    return doc
