"""Zone choropleth: district-level aggregate demand on the basemap.

A coarser companion to the KDE heat map — "disaggregation analysis on
several spatial levels" in the related work the paper cites.  Each city
district is filled from a sequential colormap according to its aggregate
value (e.g. mean demand per customer over a window).
"""

from __future__ import annotations

import numpy as np

from repro.data.generator.city import CityLayout
from repro.viz.basemap import MapProjection
from repro.viz.color import colormap
from repro.viz.svg import Element, path_data


def render_choropleth(
    layout: CityLayout,
    zone_values: dict[str, float],
    projection: MapProjection,
    name: str = "blues",
    opacity: float = 0.8,
) -> Element:
    """Fill districts by value; returns an SVG group.

    Parameters
    ----------
    zone_values:
        ``{zone name: value}``; zones missing from the dict render grey.

    Raises
    ------
    ValueError
        For an opacity outside [0, 1] or non-finite values.
    """
    if not 0.0 <= opacity <= 1.0:
        raise ValueError(f"opacity must be in [0, 1], got {opacity}")
    values = [v for v in zone_values.values()]
    if values and not np.isfinite(values).all():
        raise ValueError("zone values contain NaN/inf")
    vmax = max(values) if values else 1.0
    vmin = min(values) if values else 0.0
    span = (vmax - vmin) or 1.0
    group = Element("g", class_="choropleth", opacity=opacity)
    for zone in layout.zones:
        ring = zone.boundary_polygon(n_vertices=48)
        pixels = [projection.to_pixel(lon, lat) for lon, lat in ring]
        if zone.name in zone_values:
            t = (zone_values[zone.name] - vmin) / span
            fill = colormap(name, float(t))
        else:
            fill = "#e0e0e0"
        group.add_new(
            "path",
            d=path_data(pixels, close=True),
            fill=fill,
            stroke="#888888",
            stroke_width=0.8,
        )
        cx, cy = projection.to_pixel(zone.center_lon, zone.center_lat)
        label = group.add_new(
            "text", x=cx, y=cy, font_size=9, fill="#333",
            text_anchor="middle", font_family="sans-serif",
        )
        if zone.name in zone_values:
            label.set_text(f"{zone.name}: {zone_values[zone.name]:.2f}")
        else:
            label.set_text(zone.name)
    return group


def zone_demand(
    layout: CityLayout,
    positions: np.ndarray,
    values: np.ndarray,
) -> dict[str, float]:
    """Aggregate per-customer values to mean-per-zone (nearest-zone rule).

    Raises
    ------
    ValueError
        On mismatched shapes.
    """
    positions = np.asarray(positions, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    if positions.ndim != 2 or positions.shape[1] != 2:
        raise ValueError(f"positions must be (n, 2), got {positions.shape}")
    if values.shape != (positions.shape[0],):
        raise ValueError(
            f"values shape {values.shape} does not match "
            f"{positions.shape[0]} positions"
        )
    sums: dict[str, float] = {}
    counts: dict[str, int] = {}
    for (lon, lat), value in zip(positions, values):
        zone = layout.nearest_zone(float(lon), float(lat))
        sums[zone.name] = sums.get(zone.name, 0.0) + float(value)
        counts[zone.name] = counts.get(zone.name, 0) + 1
    return {name: sums[name] / counts[name] for name in sums}
