"""Colour maps for the map and chart layers.

Three families, mirroring what the paper's views need:

- *sequential* (``"heat"``, ``"blues"``) for the demand heat map;
- *diverging* (``"shift"``) for the Eq. 4 difference surface — blue for
  demand loss, white for no change, red for gain;
- *categorical* (:data:`CATEGORICAL`) for archetypes/selections in the
  scatter view.

Maps are piecewise-linear interpolations between control points in RGB;
all functions take values in [0, 1] (clipped) and return ``#rrggbb``.
"""

from __future__ import annotations

import numpy as np

#: Colour-blind-friendly categorical palette (Okabe-Ito).
CATEGORICAL: tuple[str, ...] = (
    "#0072B2",  # blue
    "#E69F00",  # orange
    "#009E73",  # green
    "#D55E00",  # vermillion
    "#CC79A7",  # purple-pink
    "#56B4E9",  # sky
    "#F0E442",  # yellow
    "#000000",  # black
)

_STOPS: dict[str, list[tuple[float, tuple[int, int, int]]]] = {
    # Dark blue -> yellow -> deep red, for demand heat.
    "heat": [
        (0.00, (13, 8, 135)),
        (0.35, (156, 23, 158)),
        (0.65, (237, 121, 83)),
        (1.00, (240, 249, 33)),
    ],
    # White -> saturated blue, for simple densities.
    "blues": [
        (0.00, (247, 251, 255)),
        (0.50, (107, 174, 214)),
        (1.00, (8, 48, 107)),
    ],
    # Diverging blue-white-red for shift fields; 0.5 = no change.
    "shift": [
        (0.00, (5, 48, 97)),
        (0.25, (67, 147, 195)),
        (0.50, (247, 247, 247)),
        (0.75, (214, 96, 77)),
        (1.00, (103, 0, 31)),
    ],
    # Grey -> dark red for flow-arrow colour depth ("the darker the colour,
    # the higher the rate").
    "flow": [
        (0.00, (189, 189, 189)),
        (0.50, (203, 24, 29)),
        (1.00, (103, 0, 13)),
    ],
}

COLORMAPS = tuple(sorted(_STOPS))


def rgb_to_hex(rgb: tuple[int, int, int]) -> str:
    """``(r, g, b)`` integers to ``#rrggbb``."""
    r, g, b = (int(np.clip(c, 0, 255)) for c in rgb)
    return f"#{r:02x}{g:02x}{b:02x}"


def hex_to_rgb(color: str) -> tuple[int, int, int]:
    """``#rrggbb`` (or ``#rgb``) to integer components.

    Raises
    ------
    ValueError
        For malformed colour strings.
    """
    text = color.lstrip("#")
    if len(text) == 3:
        text = "".join(ch * 2 for ch in text)
    if len(text) != 6:
        raise ValueError(f"malformed hex colour {color!r}")
    try:
        return tuple(int(text[i : i + 2], 16) for i in (0, 2, 4))  # type: ignore[return-value]
    except ValueError as exc:
        raise ValueError(f"malformed hex colour {color!r}") from exc


def colormap(name: str, value: float) -> str:
    """Evaluate a named map at ``value`` in [0, 1] (clipped).

    Raises
    ------
    ValueError
        For an unknown map name.
    """
    if name not in _STOPS:
        raise ValueError(f"unknown colormap {name!r}; pick one of {COLORMAPS}")
    stops = _STOPS[name]
    v = float(np.clip(value, 0.0, 1.0))
    for (p0, c0), (p1, c1) in zip(stops, stops[1:]):
        if v <= p1:
            t = 0.0 if p1 == p0 else (v - p0) / (p1 - p0)
            rgb = tuple(
                round(a + t * (b - a)) for a, b in zip(c0, c1)
            )
            return rgb_to_hex(rgb)  # type: ignore[arg-type]
    return rgb_to_hex(stops[-1][1])


def categorical(index: int) -> str:
    """Stable colour for a category index (wraps around the palette)."""
    if index < 0:
        raise ValueError(f"index must be non-negative, got {index}")
    return CATEGORICAL[index % len(CATEGORICAL)]


def with_alpha(color: str, alpha: float) -> str:
    """``#rrggbb`` + alpha in [0, 1] → ``rgba(...)`` CSS string."""
    r, g, b = hex_to_rgb(color)
    a = float(np.clip(alpha, 0.0, 1.0))
    return f"rgba({r},{g},{b},{a:.3f})"
