"""Linear scales and tick generation for the chart axes.

The d3-style pieces the views need: a linear domain→range mapping (with
optional inversion for SVG's downward y axis) and "nice" tick positions at
1/2/5 multiples.  Time axes label hour offsets via the shared epoch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.timeseries import hour_to_datetime


@dataclass(frozen=True, slots=True)
class LinearScale:
    """Affine map from a data domain onto a pixel range.

    A degenerate domain (min == max) maps everything to the range midpoint,
    so callers never divide by zero on constant data.
    """

    domain_min: float
    domain_max: float
    range_min: float
    range_max: float

    def __post_init__(self) -> None:
        if not np.isfinite([self.domain_min, self.domain_max]).all():
            raise ValueError("scale domain must be finite")

    def __call__(self, value: float | np.ndarray) -> float | np.ndarray:
        span = self.domain_max - self.domain_min
        if span == 0:
            mid = (self.range_min + self.range_max) / 2.0
            if np.isscalar(value):
                return mid
            return np.full(np.shape(value), mid)
        t = (np.asarray(value, dtype=np.float64) - self.domain_min) / span
        out = self.range_min + t * (self.range_max - self.range_min)
        if np.isscalar(value):
            return float(out)
        return out

    def invert(self, pixel: float) -> float:
        """Pixel back to data coordinates (for hit-testing)."""
        span = self.range_max - self.range_min
        if span == 0:
            return self.domain_min
        t = (pixel - self.range_min) / span
        return self.domain_min + t * (self.domain_max - self.domain_min)


def nice_ticks(lo: float, hi: float, n: int = 5) -> list[float]:
    """~n tick positions at 1/2/5 x 10^k steps covering [lo, hi].

    Raises
    ------
    ValueError
        For non-finite bounds or n < 2.
    """
    if not np.isfinite([lo, hi]).all():
        raise ValueError("tick bounds must be finite")
    if n < 2:
        raise ValueError(f"need at least 2 ticks, got {n}")
    if hi < lo:
        lo, hi = hi, lo
    if hi == lo:
        return [lo]
    raw_step = (hi - lo) / (n - 1)
    magnitude = 10.0 ** np.floor(np.log10(raw_step))
    for mult in (1.0, 2.0, 5.0, 10.0):
        step = mult * magnitude
        if (hi - lo) / step <= n - 1 + 1e-9:
            break
    start = np.ceil(lo / step) * step
    ticks = []
    value = start
    while value <= hi + 1e-9 * step:
        # Snap tiny float noise to zero.
        ticks.append(0.0 if abs(value) < step * 1e-6 else float(value))
        value += step
    return ticks


def format_tick(value: float) -> str:
    """Compact tick label: integers plain, small magnitudes in scientific."""
    if value == 0:
        return "0"
    if abs(value) >= 1e5 or abs(value) < 1e-3:
        return f"{value:.1e}"
    if float(value).is_integer():
        return str(int(value))
    return f"{value:.3g}"


def format_hour(hour_offset: int) -> str:
    """Human label for an hour offset, e.g. ``Jan 03 18:00``."""
    when = hour_to_datetime(hour_offset)
    return when.strftime("%b %d %H:%M")
