"""The composed VAP dashboard (paper Figure 3).

``render_dashboard`` lays the three views out on one static HTML page:

- **View A** (left): zone basemap, demand heat map for the ``t2`` window,
  shift flow arrows from ``t1`` to ``t2`` and customer markers;
- **View B** (top right): the aggregated consumption pattern of the active
  selection, with member series as context;
- **View C** (bottom right): the embedding scatter with the selection
  highlighted.

The output is self-contained (inline SVG, no scripts) so it can be opened
from disk — the headless stand-in for the paper's web front end.
"""

from __future__ import annotations

import html

import numpy as np

from repro.core.pipeline import VapSession
from repro.core.shift.flow import major_flows
from repro.data.generator.city import CityLayout
from repro.data.timeseries import HourWindow
from repro.viz.basemap import (
    MapProjection,
    base_document,
    render_marker_layer,
    render_zone_layer,
)
from repro.viz.flowmap import render_flow_layer
from repro.viz.heatmap import render_heat_layer, render_shift_layer
from repro.viz.legend import colorbar
from repro.viz.scatter import render_scatter
from repro.viz.svg import SvgDocument
from repro.viz.timeseries_chart import render_timeseries

_PAGE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8"/>
<title>{title}</title>
<style>
 body {{ font-family: sans-serif; margin: 16px; background: #f4f5f7; }}
 h1 {{ font-size: 18px; }} p.caption {{ color: #555; max-width: 70em; }}
 .grid {{ display: flex; gap: 12px; align-items: flex-start; }}
 .col {{ display: flex; flex-direction: column; gap: 12px; }}
 .panel {{ background: #fff; border: 1px solid #ddd; border-radius: 4px;
          padding: 6px; }}
</style>
</head>
<body>
<h1>{title}</h1>
<p class="caption">{caption}</p>
<div class="grid">
  <div class="col"><div class="panel">{view_a}</div></div>
  <div class="col">
    <div class="panel">{view_b}</div>
    <div class="panel">{view_c}</div>
  </div>
</div>
</body>
</html>
"""


def render_map_view(
    session: VapSession,
    t1: HourWindow,
    t2: HourWindow,
    layout: CityLayout | None = None,
    width: int = 560,
    height: int = 560,
    show_markers: bool = True,
    show_heat: bool = True,
) -> SvgDocument:
    """View A as a standalone SVG document."""
    bbox = session.grid().bbox
    projection = MapProjection(bbox, width, height)
    doc = base_document(
        projection,
        title="View A — demand heat map and shift flows",
    )
    if layout is not None:
        doc.add(render_zone_layer(layout, projection))
    field = session.shift(t1, t2)
    if show_heat:
        density = session.density(t2)
        doc.add(render_heat_layer(density, projection, opacity=0.45))
        doc.add(
            colorbar(
                "heat",
                0.0,
                float(density.values.max()),
                x=12,
                y=height - 40,
                title="demand density (t2)",
            )
        )
    else:
        doc.add(render_shift_layer(field, projection))
        vmax = float(np.abs(field.values).max())
        doc.add(
            colorbar(
                "shift", -vmax, vmax, x=12, y=height - 40, title="density shift"
            )
        )
    if show_markers:
        doc.add(
            render_marker_layer(
                session.db.positions_of(session.db.customer_ids), projection
            )
        )
    doc.add(render_flow_layer(major_flows(field), projection))
    return doc


def render_dashboard(
    session: VapSession,
    t1: HourWindow,
    t2: HourWindow,
    selection: np.ndarray | None = None,
    labels: np.ndarray | None = None,
    layout: CityLayout | None = None,
    title: str = "VAP — energy consumption spatio-temporal patterns",
    profile_window: HourWindow | None = None,
) -> str:
    """Render the full Figure 3 page; returns HTML text.

    Parameters
    ----------
    session:
        The analysis session (embedding is computed on demand).
    t1, t2:
        Windows of the shift map in view A.
    selection:
        Optional embedding row indices whose aggregate view B shows; when
        omitted, view B shows the all-customer aggregate.
    labels:
        Optional per-customer group names colouring view C.
    layout:
        Optional city layout for the zone basemap.
    profile_window:
        Hour window view B covers; defaults to the first fortnight of data
        (a readable slice of a year-long series).
    """
    info = session.embed()
    view_a = render_map_view(session, t1, t2, layout=layout)

    if selection is None:
        selection = np.arange(session.series.n_customers)
    selection = np.asarray(selection, dtype=np.int64)
    window = profile_window or HourWindow(
        session.series.start_hour,
        min(session.series.start_hour + 14 * 24, session.series.end_hour),
    )
    ids = [int(session.series.customer_ids[i]) for i in selection]
    subset = session.series.select_customers(ids).slice_hours(
        window.start_hour, window.end_hour
    )
    pattern = session.pattern_of(selection)
    view_b = render_timeseries(
        hours=subset.hours,
        aggregate=subset.mean_profile(),
        members=subset.matrix,
        title=(
            f"View B — {pattern.archetype.value} pattern "
            f"({selection.size} customers)"
        ),
    )
    view_c = render_scatter(
        info.coords,
        labels=labels,
        highlight=selection if selection.size < info.coords.shape[0] else None,
        title=f"View C — {info.method} navigator",
    )
    caption = (
        f"Shift map between hours [{t1.start_hour}, {t1.end_hour}) and "
        f"[{t2.start_hour}, {t2.end_hour}); embedding: {info.method} on "
        f"{info.feature_kind.value} features with {info.metric} distance "
        f"(objective {info.objective:.3f})."
    )
    return _PAGE.format(
        title=html.escape(title),
        caption=html.escape(caption),
        view_a=view_a.render(),
        view_b=view_b.render(),
        view_c=view_c.render(),
    )
