"""Consumption fingerprint: the hour-of-day x day calendar heat map.

A standard smart-meter inspection view (and a natural extension of the
tool's view B): each column is a day, each row an hour of day, colour is
consumption.  Diurnal habits appear as horizontal bands, weekends as
vertical stripes, outages as dark columns and tampering as scattered
saturated cells — which is how an analyst audits a *suspicious*-pattern
customer after selecting it in view C.
"""

from __future__ import annotations

import numpy as np

from repro.data.timeseries import HOURS_PER_DAY, TimeSeries, hour_to_datetime
from repro.viz.color import colormap
from repro.viz.legend import colorbar
from repro.viz.svg import SvgDocument


def render_fingerprint(
    series: TimeSeries,
    width: int = 720,
    height: int = 300,
    title: str = "Consumption fingerprint",
    name: str = "heat",
    quantile_cap: float = 0.99,
) -> SvgDocument:
    """Render a series as a calendar heat map.

    Parameters
    ----------
    series:
        Hourly readings; NaN cells render as hatched grey (missing data).
    quantile_cap:
        Colour scale saturates at this quantile so single spikes don't
        wash out the rest of the map.

    Raises
    ------
    ValueError
        On an empty series or a quantile outside (0, 1].
    """
    if len(series) == 0:
        raise ValueError("cannot render an empty series")
    if not 0.0 < quantile_cap <= 1.0:
        raise ValueError(f"quantile_cap must be in (0, 1], got {quantile_cap}")

    values = series.values
    start_offset = series.start_hour % HOURS_PER_DAY
    # Pad to whole days aligned on midnight.
    padded = np.concatenate(
        [
            np.full(start_offset, np.nan),
            values,
            np.full(
                (-(start_offset + len(series))) % HOURS_PER_DAY, np.nan
            ),
        ]
    )
    grid = padded.reshape(-1, HOURS_PER_DAY).T  # (24, n_days)
    n_days = grid.shape[1]

    doc = SvgDocument(width, height)
    doc.add_new("rect", x=0, y=0, width=width, height=height, fill="#ffffff")
    left, right, top, bottom = 46, 14, 30, 44
    plot_w = width - left - right
    plot_h = height - top - bottom
    doc.add_new(
        "text", x=left, y=top - 12, font_size=13, fill="#222",
        font_family="sans-serif", font_weight="bold",
    ).set_text(title)

    observed = grid[np.isfinite(grid)]
    vmax = float(np.quantile(observed, quantile_cap)) if observed.size else 1.0
    vmax = vmax or 1.0
    cell_w = plot_w / n_days
    cell_h = plot_h / HOURS_PER_DAY
    cells = doc.add_new("g", class_="cells")
    for hour in range(HOURS_PER_DAY):
        for day in range(n_days):
            value = grid[hour, day]
            x = left + day * cell_w
            y = top + hour * cell_h
            if np.isfinite(value):
                fill = colormap(name, float(value) / vmax)
            else:
                fill = "#dddddd"
            cells.add_new(
                "rect",
                x=x,
                y=y,
                width=cell_w + 0.3,
                height=cell_h + 0.3,
                fill=fill,
            )
    # Hour labels every 6 h.
    for hour in range(0, HOURS_PER_DAY, 6):
        doc.add_new(
            "text", x=left - 6, y=top + (hour + 0.5) * cell_h + 3,
            font_size=9, fill="#555", text_anchor="end",
            font_family="sans-serif",
        ).set_text(f"{hour:02d}h")
    # Day labels, at most 8 of them.
    first_day_hour = series.start_hour - start_offset
    for day in np.linspace(0, n_days - 1, min(8, n_days)).astype(int):
        when = hour_to_datetime(first_day_hour + int(day) * HOURS_PER_DAY)
        doc.add_new(
            "text", x=left + (day + 0.5) * cell_w, y=top + plot_h + 14,
            font_size=9, fill="#555", text_anchor="middle",
            font_family="sans-serif",
        ).set_text(when.strftime("%b %d"))
    doc.add(
        colorbar(name, 0.0, vmax, x=left, y=height - 22, title="kWh / h")
    )
    return doc
