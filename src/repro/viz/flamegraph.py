"""Self-contained flamegraph SVG from folded stack counts.

Turns the profiler's folded stacks (``root;child;leaf -> count``, see
:mod:`repro.obs.profiler`) into the classic flamegraph layout: one row
per stack depth, rect width proportional to inclusive sample count,
children packed left-to-right under their parent in deterministic
(alphabetical) order.  Colors derive from a stable hash of the frame
name, so the same function keeps its hue across captures and the output
is byte-reproducible for identical input.

Pure :mod:`repro.viz.svg` output — a single standalone ``.svg`` file
with title tooltips on every frame, no JavaScript, no external assets —
so it can be attached to a CI run or opened from ``/api/profile``
directly.
"""

from __future__ import annotations

from repro.viz.svg import SvgDocument

FRAME_HEIGHT = 18
MIN_FRAME_PX = 0.5  # frames narrower than this are dropped, not drawn
MARGIN = 8
TITLE_HEIGHT = 24


class _Node:
    """One frame in the merged stack trie."""

    __slots__ = ("name", "self_count", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.self_count = 0
        self.children: dict[str, _Node] = {}

    @property
    def total(self) -> int:
        return self.self_count + sum(c.total for c in self.children.values())

    def depth(self) -> int:
        if not self.children:
            return 1
        return 1 + max(c.depth() for c in self.children.values())


def _build_trie(counts: dict[str, int]) -> _Node:
    root = _Node("all")
    for stack, count in counts.items():
        if count <= 0:
            continue
        node = root
        for frame in stack.split(";"):
            child = node.children.get(frame)
            if child is None:
                child = node.children[frame] = _Node(frame)
            node = child
        node.self_count += count
    return root


def _frame_color(name: str) -> str:
    """Stable warm color from a frame-name hash (flamegraph convention)."""
    h = 2166136261
    for ch in name:
        h = ((h ^ ord(ch)) * 16777619) & 0xFFFFFFFF
    red = 205 + (h % 50)
    green = 60 + ((h >> 8) % 130)
    blue = (h >> 16) % 60
    return f"rgb({red},{green},{blue})"


def render_flamegraph(
    counts: dict[str, int],
    width: int = 1100,
    title: str = "repro profile",
) -> str:
    """Render folded stack counts as a standalone flamegraph SVG.

    An empty profile still renders (a note instead of frames), so the
    ``/api/profile`` endpoint never 500s on a quiet process.
    """
    root = _build_trie(counts)
    total = root.total
    inner_width = width - 2 * MARGIN
    if total == 0:
        doc = SvgDocument(width, TITLE_HEIGHT + FRAME_HEIGHT + 2 * MARGIN)
        doc.add_new("rect", x=0, y=0, width=width, height=doc.height,
                    fill="#ffffff")
        doc.add_new(
            "text", x=MARGIN, y=TITLE_HEIGHT, font_size=13,
            font_family="monospace", fill="#444444",
        ).set_text(f"{title}: no samples")
        return doc.render_document()

    depth = root.depth()  # includes the synthetic "all" row
    height = TITLE_HEIGHT + depth * FRAME_HEIGHT + 2 * MARGIN
    doc = SvgDocument(width, height)
    doc.add_new("rect", x=0, y=0, width=width, height=height, fill="#ffffff")
    doc.add_new(
        "text", x=MARGIN, y=TITLE_HEIGHT - 8, font_size=13,
        font_family="monospace", fill="#222222",
    ).set_text(f"{title} — {total} samples")
    frames = doc.add_new("g", font_family="monospace", font_size=11)

    def draw(node: _Node, x: float, level: int) -> None:
        node_total = node.total
        w = inner_width * node_total / total
        if w < MIN_FRAME_PX:
            return
        # Flames grow upward: deepest frames at the top of the image.
        y = height - MARGIN - (level + 1) * FRAME_HEIGHT
        g = frames.add_new("g")
        fill = "#c8c8c8" if node.name == "all" else _frame_color(node.name)
        rect = g.add_new(
            "rect", x=round(x, 2), y=y, width=round(w, 2),
            height=FRAME_HEIGHT - 1, fill=fill, rx=1,
        )
        rect.add_new("title").set_text(
            f"{node.name} ({node_total} samples, "
            f"{100.0 * node_total / total:.1f}%)"
        )
        # ~6.6px per character of 11px monospace; keep labels inside.
        max_chars = int(w / 6.6)
        if max_chars >= 3:
            label = node.name
            if len(label) > max_chars:
                label = label[: max_chars - 1] + "…"
            g.add_new(
                "text", x=round(x + 3, 2), y=y + FRAME_HEIGHT - 6,
                fill="#111111",
            ).set_text(label)
        child_x = x
        for name in sorted(node.children):
            child = node.children[name]
            draw(child, child_x, level + 1)
            child_x += inner_width * child.total / total

    draw(root, float(MARGIN), 0)
    return doc.render_document()
