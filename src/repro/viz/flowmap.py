"""Flow-arrow layer for view A.

"The flow patterns are displayed as colored arrows on the map, and the
color depth represents the rate of change of the flow patterns; the darker
the color, the higher the rate."  Arrows are polygons (shaft + head) whose
fill comes from the ``flow`` colormap indexed by relative magnitude.
"""

from __future__ import annotations

import numpy as np

from repro.core.shift.flow import FlowArrow
from repro.viz.basemap import MapProjection
from repro.viz.color import colormap
from repro.viz.svg import Element, path_data


def _arrow_polygon(
    x0: float, y0: float, x1: float, y1: float, width: float
) -> list[tuple[float, float]]:
    """Seven-point arrow polygon from tail (x0, y0) to tip (x1, y1)."""
    dx, dy = x1 - x0, y1 - y0
    length = float(np.hypot(dx, dy))
    if length == 0:
        return [(x0, y0)] * 3
    ux, uy = dx / length, dy / length  # unit along
    px, py = -uy, ux  # unit perpendicular
    head_len = min(0.35 * length, 4.0 * width)
    head_w = 1.9 * width
    bx, by = x1 - head_len * ux, y1 - head_len * uy  # head base
    half = width / 2.0
    return [
        (x0 + px * half, y0 + py * half),
        (bx + px * half, by + py * half),
        (bx + px * head_w, by + py * head_w),
        (x1, y1),
        (bx - px * head_w, by - py * head_w),
        (bx - px * half, by - py * half),
        (x0 - px * half, y0 - py * half),
    ]


def render_flow_layer(
    arrows: list[FlowArrow],
    projection: MapProjection,
    base_width: float = 2.2,
    opacity: float = 0.9,
) -> Element:
    """Arrow layer as an SVG group; colour depth encodes magnitude.

    The strongest arrow gets the darkest colour and the widest shaft; the
    rest scale relative to it.

    Raises
    ------
    ValueError
        For non-positive width or an opacity outside [0, 1].
    """
    if base_width <= 0:
        raise ValueError(f"base_width must be positive, got {base_width}")
    if not 0.0 <= opacity <= 1.0:
        raise ValueError(f"opacity must be in [0, 1], got {opacity}")
    group = Element("g", class_="flows", opacity=opacity)
    if not arrows:
        return group
    max_mag = max(a.magnitude for a in arrows)
    if max_mag <= 0:
        return group
    for arrow in arrows:
        t = arrow.magnitude / max_mag
        x0, y0 = projection.to_pixel(arrow.lon, arrow.lat)
        x1, y1 = projection.to_pixel(*arrow.tip)
        width = base_width * (0.5 + 1.5 * t)
        polygon = _arrow_polygon(x0, y0, x1, y1, width)
        group.add_new(
            "path",
            d=path_data(polygon, close=True),
            fill=colormap("flow", float(t)),
            stroke="#ffffff",
            stroke_width=0.4,
        )
    return group
