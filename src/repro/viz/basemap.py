"""Zone basemap and customer markers for view A.

The Leaflet tiles of the paper's tool are replaced by a schematic basemap:
each city district renders as a tinted disc with its name, and customers as
small markers — the "different map types" and "geographical positions of
customers with markers" options of view A.
"""

from __future__ import annotations

import numpy as np

from repro.data.generator.city import CityLayout
from repro.data.meter import ZoneKind
from repro.db.spatial import BBox
from repro.viz.scales import LinearScale
from repro.viz.svg import Element, SvgDocument, path_data

ZONE_FILL: dict[ZoneKind, str] = {
    ZoneKind.COMMERCIAL: "#d9d0e8",
    ZoneKind.RESIDENTIAL: "#f6d4cd",
    ZoneKind.INDUSTRIAL: "#d5dfd2",
    ZoneKind.PARK: "#cfe8cf",
}


class MapProjection:
    """Shared lon/lat → pixel transform for all view-A layers.

    Every layer (basemap, heat, flows, markers) must use one projection so
    they overlay correctly; construct it once per figure.
    """

    def __init__(self, bbox: BBox, width: int, height: int, margin: int = 10) -> None:
        if width <= 2 * margin or height <= 2 * margin:
            raise ValueError("map size too small for the margin")
        self.bbox = bbox
        self.width = width
        self.height = height
        self.sx = LinearScale(bbox.min_lon, bbox.max_lon, margin, width - margin)
        # Latitude grows north; SVG y grows down.
        self.sy = LinearScale(bbox.min_lat, bbox.max_lat, height - margin, margin)

    def to_pixel(self, lon: float, lat: float) -> tuple[float, float]:
        return float(self.sx(lon)), float(self.sy(lat))


def base_document(projection: MapProjection, title: str) -> SvgDocument:
    """A view-A canvas with background and title."""
    doc = SvgDocument(projection.width, projection.height)
    doc.add_new(
        "rect", x=0, y=0, width=projection.width, height=projection.height,
        fill="#eef2f5",
    )
    doc.add_new(
        "text", x=12, y=18, font_size=13, fill="#222",
        font_family="sans-serif", font_weight="bold",
    ).set_text(title)
    return doc


def render_zone_layer(layout: CityLayout, projection: MapProjection) -> Element:
    """District discs with labels, as an SVG group."""
    group = Element("g", class_="zones")
    for zone in layout.zones:
        cx, cy = projection.to_pixel(zone.center_lon, zone.center_lat)
        ring = zone.boundary_polygon(n_vertices=48)
        pixels = [projection.to_pixel(lon, lat) for lon, lat in ring]
        group.add_new(
            "path",
            d=path_data(pixels, close=True),
            fill=ZONE_FILL[zone.kind],
            fill_opacity=0.65,
            stroke="#a5a5a5",
            stroke_width=0.8,
        )
        group.add_new(
            "text", x=cx, y=cy, font_size=9, fill="#666",
            text_anchor="middle", font_family="sans-serif",
        ).set_text(zone.name)
    return group


def render_marker_layer(
    positions: np.ndarray,
    projection: MapProjection,
    radius: float = 1.6,
    fill: str = "#35506b",
) -> Element:
    """Customer position markers, as an SVG group.

    Raises
    ------
    ValueError
        If positions is not an (n, 2) array.
    """
    positions = np.asarray(positions, dtype=np.float64)
    if positions.ndim != 2 or positions.shape[1] != 2:
        raise ValueError(f"positions must be (n, 2), got {positions.shape}")
    group = Element("g", class_="markers")
    for lon, lat in positions:
        x, y = projection.to_pixel(float(lon), float(lat))
        group.add_new(
            "circle", cx=x, cy=y, r=radius, fill=fill, fill_opacity=0.75
        )
    return group
