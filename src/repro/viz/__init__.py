"""Presentation layer: SVG views and the HTML dashboard.

The paper's front end draws SVG with Leaflet.js (map view A) and d3.js
(time-series view B).  Headless reproduction renders the same three views
as standalone SVG documents and composes them into a static HTML dashboard:

- view A — zone basemap + demand heat map + flow arrows
  (:mod:`repro.viz.heatmap`, :mod:`repro.viz.flowmap`,
  :mod:`repro.viz.basemap`);
- view B — aggregated consumption time series
  (:mod:`repro.viz.timeseries_chart`);
- view C — the 2-D embedding scatter with selections
  (:mod:`repro.viz.scatter`);
- :mod:`repro.viz.dashboard` — the composed page (paper Figure 3).

Everything rests on a tiny SVG element tree (:mod:`repro.viz.svg`),
colour maps (:mod:`repro.viz.color`) and tick-aware scales
(:mod:`repro.viz.scales`).
"""

from repro.viz.choropleth import render_choropleth, zone_demand
from repro.viz.dashboard import render_dashboard
from repro.viz.fingerprint import render_fingerprint
from repro.viz.flamegraph import render_flamegraph
from repro.viz.flowmap import render_flow_layer
from repro.viz.heatmap import render_heat_layer
from repro.viz.scatter import render_scatter
from repro.viz.svg import SvgDocument
from repro.viz.telemetry import render_sparkline, render_telemetry_panel
from repro.viz.timeseries_chart import render_timeseries

__all__ = [
    "SvgDocument",
    "render_choropleth",
    "render_dashboard",
    "render_fingerprint",
    "render_flamegraph",
    "render_flow_layer",
    "render_heat_layer",
    "render_scatter",
    "render_sparkline",
    "render_telemetry_panel",
    "render_timeseries",
    "zone_demand",
]
