"""Heat-map layers for view A.

Two layer kinds over the shared map projection:

- a *density* layer (sequential colormap) visualising Eq. 3 — "the spatial
  distribution density with a heat map";
- a *shift* layer (diverging colormap, symmetric around zero) visualising
  Eq. 4 before arrows are drawn on top.

Cells render as rects with per-cell colour; near-zero cells are left
transparent so the basemap shows through.
"""

from __future__ import annotations

import numpy as np

from repro.core.shift.flow import ShiftField
from repro.core.shift.grids import DensityGrid
from repro.viz.basemap import MapProjection
from repro.viz.color import colormap
from repro.viz.svg import Element


def render_heat_layer(
    grid: DensityGrid,
    projection: MapProjection,
    name: str = "heat",
    opacity: float = 0.55,
    threshold: float = 0.02,
) -> Element:
    """Sequential heat layer for a density grid, as an SVG group.

    ``threshold`` is the fraction of the max density below which cells stay
    transparent (keeps the map readable away from the city).

    Raises
    ------
    ValueError
        For an opacity or threshold outside [0, 1].
    """
    if not 0.0 <= opacity <= 1.0:
        raise ValueError(f"opacity must be in [0, 1], got {opacity}")
    if not 0.0 <= threshold <= 1.0:
        raise ValueError(f"threshold must be in [0, 1], got {threshold}")
    group = Element("g", class_="heat", opacity=opacity)
    values = grid.values
    vmax = float(values.max())
    if vmax <= 0:
        return group
    spec = grid.spec
    lons = spec.lon_centers()
    lats = spec.lat_centers()
    half_w = spec.cell_width / 2.0
    half_h = spec.cell_height / 2.0
    for row in range(spec.ny):
        for col in range(spec.nx):
            t = values[row, col] / vmax
            if t < threshold:
                continue
            x0, y0 = projection.to_pixel(lons[col] - half_w, lats[row] + half_h)
            x1, y1 = projection.to_pixel(lons[col] + half_w, lats[row] - half_h)
            group.add_new(
                "rect",
                x=x0,
                y=y0,
                width=max(x1 - x0, 0.1) + 0.25,
                height=max(y1 - y0, 0.1) + 0.25,
                fill=colormap(name, float(t)),
            )
    return group


def render_shift_layer(
    field: ShiftField,
    projection: MapProjection,
    opacity: float = 0.6,
    threshold: float = 0.04,
) -> Element:
    """Diverging layer for a shift field, symmetric around zero.

    Raises
    ------
    ValueError
        For an opacity or threshold outside [0, 1].
    """
    if not 0.0 <= opacity <= 1.0:
        raise ValueError(f"opacity must be in [0, 1], got {opacity}")
    if not 0.0 <= threshold <= 1.0:
        raise ValueError(f"threshold must be in [0, 1], got {threshold}")
    group = Element("g", class_="shift", opacity=opacity)
    values = field.values
    vmax = float(np.abs(values).max())
    if vmax <= 0:
        return group
    spec = field.spec
    lons = spec.lon_centers()
    lats = spec.lat_centers()
    half_w = spec.cell_width / 2.0
    half_h = spec.cell_height / 2.0
    for row in range(spec.ny):
        for col in range(spec.nx):
            t = values[row, col] / vmax  # in [-1, 1]
            if abs(t) < threshold:
                continue
            x0, y0 = projection.to_pixel(lons[col] - half_w, lats[row] + half_h)
            x1, y1 = projection.to_pixel(lons[col] + half_w, lats[row] - half_h)
            group.add_new(
                "rect",
                x=x0,
                y=y0,
                width=max(x1 - x0, 0.1) + 0.25,
                height=max(y1 - y0, 0.1) + 0.25,
                fill=colormap("shift", 0.5 + 0.5 * float(t)),
            )
    return group
