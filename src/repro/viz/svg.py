"""A minimal SVG element tree.

Just enough structure to build the three VAP views as well-formed SVG:
elements with escaped attributes, nesting, text nodes and document
serialisation.  No dependency on any XML library — the output is verified
well-formed by the test suite using :mod:`xml.etree.ElementTree`.
"""

from __future__ import annotations

from typing import Iterable

_ESCAPES = {"&": "&amp;", "<": "&lt;", ">": "&gt;", '"': "&quot;"}


def escape(value: object) -> str:
    """Escape a value for use in attribute or text position."""
    out = str(value)
    for char, repl in _ESCAPES.items():
        out = out.replace(char, repl)
    return out


def fmt(value: float) -> str:
    """Compact numeric formatting for coordinates (3 decimals, no trail)."""
    if isinstance(value, float):
        text = f"{value:.3f}".rstrip("0").rstrip(".")
        return text if text not in ("", "-") else "0"
    return str(value)


class Element:
    """One SVG element with attributes, children and optional text."""

    def __init__(self, tag: str, **attrs: object) -> None:
        if not tag or not tag.replace("-", "").isalnum():
            raise ValueError(f"invalid SVG tag {tag!r}")
        self.tag = tag
        self.attrs: dict[str, object] = {}
        self.children: list[Element] = []
        self.text: str | None = None
        self.set(**attrs)

    def set(self, **attrs: object) -> "Element":
        """Set attributes; trailing underscores strip (``class_`` →
        ``class``) and underscores map to dashes (``stroke_width`` →
        ``stroke-width``)."""
        for key, value in attrs.items():
            name = key.rstrip("_").replace("_", "-")
            self.attrs[name] = value
        return self

    def add(self, child: "Element") -> "Element":
        """Append a child; returns the child for chaining."""
        self.children.append(child)
        return child

    def add_new(self, tag: str, **attrs: object) -> "Element":
        """Create, append and return a new child element."""
        return self.add(Element(tag, **attrs))

    def set_text(self, text: str) -> "Element":
        self.text = text
        return self

    def render(self) -> str:
        attrs = "".join(
            f' {name}="{escape(fmt(value) if isinstance(value, float) else value)}"'
            for name, value in self.attrs.items()
        )
        if not self.children and self.text is None:
            return f"<{self.tag}{attrs}/>"
        inner = "".join(child.render() for child in self.children)
        if self.text is not None:
            inner = escape(self.text) + inner
        return f"<{self.tag}{attrs}>{inner}</{self.tag}>"


class SvgDocument(Element):
    """An ``<svg>`` root with fixed pixel size and viewBox."""

    def __init__(self, width: int, height: int) -> None:
        if width <= 0 or height <= 0:
            raise ValueError(f"size must be positive, got {width}x{height}")
        super().__init__(
            "svg",
            xmlns="http://www.w3.org/2000/svg",
            width=width,
            height=height,
            viewBox=f"0 0 {width} {height}",
        )
        self.width = width
        self.height = height

    def render_document(self) -> str:
        """Full standalone SVG file content."""
        return '<?xml version="1.0" encoding="UTF-8"?>\n' + self.render()


def path_data(points: Iterable[tuple[float, float]], close: bool = False) -> str:
    """Build an SVG path ``d`` string through the given points.

    Raises
    ------
    ValueError
        If no points are given.
    """
    points = list(points)
    if not points:
        raise ValueError("a path needs at least one point")
    parts = [f"M{fmt(float(points[0][0]))},{fmt(float(points[0][1]))}"]
    parts.extend(f"L{fmt(float(x))},{fmt(float(y))}" for x, y in points[1:])
    if close:
        parts.append("Z")
    return " ".join(parts)
