"""Legend widgets shared by the views."""

from __future__ import annotations

from repro.viz.color import categorical, colormap
from repro.viz.scales import format_tick
from repro.viz.svg import Element


def categorical_legend(
    labels: list[str], x: float, y: float, row_height: float = 16.0
) -> Element:
    """Swatch + label rows for category colours, as an SVG group.

    Raises
    ------
    ValueError
        If no labels are given.
    """
    if not labels:
        raise ValueError("a legend needs at least one label")
    group = Element("g", class_="legend")
    for i, label in enumerate(labels):
        yy = y + i * row_height
        group.add_new(
            "rect", x=x, y=yy, width=10, height=10, fill=categorical(i), rx=2
        )
        group.add_new(
            "text",
            x=x + 15,
            y=yy + 9,
            font_size=11,
            fill="#333",
            font_family="sans-serif",
        ).set_text(label)
    return group


def colorbar(
    name: str,
    vmin: float,
    vmax: float,
    x: float,
    y: float,
    width: float = 120.0,
    height: float = 10.0,
    n_segments: int = 24,
    title: str = "",
) -> Element:
    """Horizontal colour bar for a named colormap, as an SVG group.

    Raises
    ------
    ValueError
        For non-positive size or segments.
    """
    if width <= 0 or height <= 0 or n_segments < 2:
        raise ValueError("colorbar needs positive size and >= 2 segments")
    group = Element("g", class_="colorbar")
    if title:
        group.add_new(
            "text", x=x, y=y - 4, font_size=11, fill="#333",
            font_family="sans-serif",
        ).set_text(title)
    seg_w = width / n_segments
    for i in range(n_segments):
        t = (i + 0.5) / n_segments
        group.add_new(
            "rect",
            x=x + i * seg_w,
            y=y,
            width=seg_w + 0.5,  # slight overlap hides hairline seams
            height=height,
            fill=colormap(name, t),
        )
    for t, value in ((0.0, vmin), (1.0, vmax)):
        group.add_new(
            "text",
            x=x + t * width,
            y=y + height + 12,
            font_size=10,
            fill="#333",
            text_anchor="middle" if 0 < t < 1 else ("start" if t == 0 else "end"),
            font_family="sans-serif",
        ).set_text(format_tick(value))
    return group
