"""Synthetic outdoor temperature model.

The paper's bimodal pattern — "a peak in winter and summer ... caused by the
use of electrical heating and cooling appliances" — needs a temperature
driver.  We use a standard two-harmonic model: a seasonal sinusoid (cold in
January, warm in July for a northern-hemisphere city), a diurnal sinusoid
(coolest near 05:00, warmest near 14:00) and an AR(1) weather-noise process
so consecutive days are correlated the way real weather is.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.generator.calendar import CalendarFrame


@dataclass(frozen=True, slots=True)
class WeatherConfig:
    """Parameters of the temperature model (degrees Celsius).

    Defaults describe a temperate coastal city: yearly mean 9 °C with a
    +/-10 °C seasonal swing and a +/-4 °C diurnal swing.
    """

    mean_temp: float = 9.0
    seasonal_amplitude: float = 10.0
    diurnal_amplitude: float = 4.0
    noise_std: float = 2.5
    noise_persistence: float = 0.85

    def __post_init__(self) -> None:
        if not 0.0 <= self.noise_persistence < 1.0:
            raise ValueError(
                "noise_persistence must be in [0, 1), got "
                f"{self.noise_persistence}"
            )
        if self.noise_std < 0:
            raise ValueError(f"noise_std must be non-negative, got {self.noise_std}")


def synthesize_temperature(
    calendar: CalendarFrame,
    config: WeatherConfig | None = None,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Hourly outdoor temperature for every hour in ``calendar``.

    The seasonal term peaks in mid-July (phase shift of ~196 days); the
    diurnal term peaks at 14:00.  Noise is an hourly AR(1) process.
    """
    config = config or WeatherConfig()
    rng = rng or np.random.default_rng(0)
    n = len(calendar)
    if n == 0:
        return np.empty(0)
    # Seasonal: coldest mid-January, warmest mid-July.
    seasonal = -config.seasonal_amplitude * np.cos(
        calendar.year_phase - 2.0 * np.pi * (15.0 / 365.0)
    )
    # Diurnal: warmest at 14:00, coldest at 02:00.
    diurnal = config.diurnal_amplitude * np.cos(
        2.0 * np.pi * (calendar.hour_of_day - 14) / 24.0
    )
    noise = np.empty(n)
    innovations = rng.normal(
        0.0, config.noise_std * np.sqrt(1.0 - config.noise_persistence**2), size=n
    )
    state = rng.normal(0.0, config.noise_std)
    for i in range(n):
        state = config.noise_persistence * state + innovations[i]
        noise[i] = state
    return config.mean_temp + seasonal + diurnal + noise


def heating_demand_factor(temperature: np.ndarray, base_temp: float = 15.0) -> np.ndarray:
    """Heating degree signal: grows linearly as temperature drops below base.

    Normalised so that a temperature ``base_temp - 20`` gives factor 1.0.
    """
    return np.clip(base_temp - temperature, 0.0, None) / 20.0


def cooling_demand_factor(temperature: np.ndarray, base_temp: float = 17.0) -> np.ndarray:
    """Cooling degree signal: grows linearly as temperature rises above base.

    Normalised so that ``base_temp + 15`` gives factor 1.0.  The base is set
    low enough that summer cooling is visible even in a temperate climate —
    the paper's bimodal pattern needs both a winter and a summer peak.
    """
    return np.clip(temperature - base_temp, 0.0, None) / 15.0
