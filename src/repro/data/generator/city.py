"""Spatial layout of the synthetic city.

The paper's Figure 3 shows a commercial core whose evening demand flows out
to surrounding residential areas.  We reproduce that geography: a commercial
centre, a ring of residential neighbourhoods, an industrial district on the
fringe and a park.  Coordinates are WGS-84 degrees, offset from a real city
the same way the paper "offsets the coordinates for anonymisation".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.meter import CustomerType, ZoneKind

#: Anonymised city centre (roughly Copenhagen, offset).
DEFAULT_CENTER_LON = 12.57
DEFAULT_CENTER_LAT = 55.68


@dataclass(frozen=True, slots=True)
class Zone:
    """A circular city district used both for sampling and for the basemap.

    Attributes
    ----------
    name:
        Human-readable district name shown on the dashboard basemap.
    kind:
        Land use, which decides the archetype mixture and occupancy envelope.
    center_lon / center_lat:
        District centre in degrees.
    radius_deg:
        Characteristic radius in degrees; customers are drawn from a
        truncated Gaussian of this scale.
    weight:
        Relative share of the city's customers living in this zone.
    """

    name: str
    kind: ZoneKind
    center_lon: float
    center_lat: float
    radius_deg: float
    weight: float

    def __post_init__(self) -> None:
        if self.radius_deg <= 0:
            raise ValueError(f"radius_deg must be positive, got {self.radius_deg}")
        if self.weight < 0:
            raise ValueError(f"weight must be non-negative, got {self.weight}")

    def contains(self, lon: float, lat: float, slack: float = 1.0) -> bool:
        """Whether a point lies within ``slack`` radii of the centre."""
        d2 = (lon - self.center_lon) ** 2 + (lat - self.center_lat) ** 2
        return d2 <= (slack * self.radius_deg) ** 2

    def boundary_polygon(self, n_vertices: int = 32) -> list[tuple[float, float]]:
        """Closed ``(lon, lat)`` ring approximating the district boundary."""
        if n_vertices < 3:
            raise ValueError(f"need at least 3 vertices, got {n_vertices}")
        angles = np.linspace(0.0, 2.0 * np.pi, n_vertices, endpoint=False)
        ring = [
            (
                self.center_lon + self.radius_deg * float(np.cos(a)),
                self.center_lat + self.radius_deg * float(np.sin(a)),
            )
            for a in angles
        ]
        ring.append(ring[0])
        return ring


#: Archetype mixture per land use.  Residential zones carry the behavioural
#: diversity (bimodal heaters, energy savers, early birds); commercial and
#: industrial zones are dominated by constant-high premises.
ZONE_ARCHETYPE_MIX: dict[ZoneKind, dict[CustomerType, float]] = {
    ZoneKind.COMMERCIAL: {
        CustomerType.CONSTANT_HIGH: 0.50,
        CustomerType.IDLE: 0.18,
        CustomerType.SUSPICIOUS: 0.10,
        CustomerType.ENERGY_SAVING: 0.22,
    },
    ZoneKind.RESIDENTIAL: {
        CustomerType.BIMODAL: 0.30,
        CustomerType.ENERGY_SAVING: 0.24,
        CustomerType.EARLY_BIRD: 0.16,
        CustomerType.IDLE: 0.10,
        CustomerType.SUSPICIOUS: 0.06,
        CustomerType.CONSTANT_HIGH: 0.14,
    },
    ZoneKind.INDUSTRIAL: {
        CustomerType.CONSTANT_HIGH: 0.58,
        CustomerType.IDLE: 0.15,
        CustomerType.SUSPICIOUS: 0.14,
        CustomerType.ENERGY_SAVING: 0.13,
    },
    ZoneKind.PARK: {
        CustomerType.IDLE: 0.70,
        CustomerType.ENERGY_SAVING: 0.30,
    },
}


def default_zones(
    center_lon: float = DEFAULT_CENTER_LON,
    center_lat: float = DEFAULT_CENTER_LAT,
) -> list[Zone]:
    """The standard city layout used across examples and benchmarks.

    One commercial core, four residential neighbourhoods at the cardinal
    offsets, one industrial district to the south-east and one park to the
    north — enough spatial structure for KDE flow maps to have direction.
    """
    r = 0.012  # characteristic district radius in degrees (~1 km)
    return [
        Zone("City Core", ZoneKind.COMMERCIAL, center_lon, center_lat, r, 0.22),
        Zone(
            "North Harbour",
            ZoneKind.RESIDENTIAL,
            center_lon + 0.004,
            center_lat + 0.030,
            r * 1.2,
            0.16,
        ),
        Zone(
            "West Gardens",
            ZoneKind.RESIDENTIAL,
            center_lon - 0.034,
            center_lat + 0.004,
            r * 1.3,
            0.18,
        ),
        Zone(
            "East Bay",
            ZoneKind.RESIDENTIAL,
            center_lon + 0.033,
            center_lat - 0.003,
            r * 1.2,
            0.16,
        ),
        Zone(
            "South Fields",
            ZoneKind.RESIDENTIAL,
            center_lon - 0.006,
            center_lat - 0.029,
            r * 1.3,
            0.14,
        ),
        Zone(
            "Works District",
            ZoneKind.INDUSTRIAL,
            center_lon + 0.028,
            center_lat - 0.026,
            r * 1.1,
            0.10,
        ),
        Zone(
            "Common Park",
            ZoneKind.PARK,
            center_lon - 0.024,
            center_lat + 0.026,
            r,
            0.04,
        ),
    ]


@dataclass(slots=True)
class CityLayout:
    """A set of zones with sampling helpers."""

    zones: list[Zone] = field(default_factory=default_zones)

    def __post_init__(self) -> None:
        if not self.zones:
            raise ValueError("a city needs at least one zone")
        total = sum(z.weight for z in self.zones)
        if total <= 0:
            raise ValueError("zone weights must sum to a positive value")

    def zone_probabilities(self) -> np.ndarray:
        weights = np.array([z.weight for z in self.zones], dtype=np.float64)
        return weights / weights.sum()

    def sample_zone(self, rng: np.random.Generator) -> Zone:
        """Draw a zone proportionally to its weight."""
        idx = int(rng.choice(len(self.zones), p=self.zone_probabilities()))
        return self.zones[idx]

    def sample_position(
        self, zone: Zone, rng: np.random.Generator
    ) -> tuple[float, float]:
        """Draw a customer position from the zone's truncated Gaussian.

        Rejection-sample to within two radii so districts stay visually
        distinct on the map.
        """
        for _ in range(64):
            lon = float(rng.normal(zone.center_lon, zone.radius_deg * 0.55))
            lat = float(rng.normal(zone.center_lat, zone.radius_deg * 0.55))
            if zone.contains(lon, lat, slack=2.0):
                return lon, lat
        return zone.center_lon, zone.center_lat

    def sample_archetype(
        self, zone: Zone, rng: np.random.Generator
    ) -> CustomerType:
        """Draw an archetype from the zone's land-use mixture."""
        mix = ZONE_ARCHETYPE_MIX[zone.kind]
        kinds = list(mix.keys())
        probs = np.array([mix[k] for k in kinds], dtype=np.float64)
        probs = probs / probs.sum()
        return kinds[int(rng.choice(len(kinds), p=probs))]

    def nearest_zone(self, lon: float, lat: float) -> Zone:
        """Zone whose centre is closest to a point (used to label queries)."""
        best = min(
            self.zones,
            key=lambda z: (lon - z.center_lon) ** 2 + (lat - z.center_lat) ** 2,
        )
        return best

    def bounding_box(self, margin: float = 0.01) -> tuple[float, float, float, float]:
        """``(min_lon, min_lat, max_lon, max_lat)`` covering all districts."""
        min_lon = min(z.center_lon - z.radius_deg for z in self.zones) - margin
        max_lon = max(z.center_lon + z.radius_deg for z in self.zones) + margin
        min_lat = min(z.center_lat - z.radius_deg for z in self.zones) - margin
        max_lat = max(z.center_lat + z.radius_deg for z in self.zones) + margin
        return (min_lon, min_lat, max_lon, max_lat)
