"""Top-level synthetic-city simulation.

``generate_city`` produces everything the paper's case study starts from:
customers with coordinates and zone context, hourly smart-meter readings over
a configurable horizon, and the realistic data-quality problems (missing
blocks, spikes, stuck meters) that the preprocessing stage — "removal of
anomalies and correction of missing values" in the paper's Section 2 — must
repair.  Ground truth (clean readings + archetype labels) is retained so the
evaluation can score what the demo could only eyeball.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.generator.calendar import CalendarFrame, build_calendar
from repro.data.generator.city import CityLayout, Zone
from repro.data.generator.profiles import draw_profile_params, synthesize_profile
from repro.data.generator.weather import WeatherConfig, synthesize_temperature
from repro.data.meter import Customer, CustomerType, Meter, ZoneKind
from repro.data.timeseries import HOURS_PER_DAY, SeriesSet


@dataclass(frozen=True, slots=True)
class CorruptionConfig:
    """How raw meter data is degraded relative to the clean ground truth.

    Rates are per-cell (missing) or per-customer expectations (events).
    """

    missing_rate: float = 0.01
    gap_rate_per_customer: float = 1.5
    gap_max_hours: int = 48
    spike_rate_per_customer: float = 0.8
    spike_factor_range: tuple[float, float] = (8.0, 40.0)
    stuck_rate_per_customer: float = 0.3
    stuck_max_hours: int = 36

    def __post_init__(self) -> None:
        if not 0.0 <= self.missing_rate < 1.0:
            raise ValueError(f"missing_rate must be in [0, 1), got {self.missing_rate}")
        for name in ("gap_rate_per_customer", "spike_rate_per_customer",
                     "stuck_rate_per_customer"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


@dataclass(frozen=True, slots=True)
class CityConfig:
    """Knobs of the synthetic case study.

    Defaults give a laptop-friendly data set (400 customers x 1 year of
    hourly readings) with the full archetype and zone structure.
    """

    n_customers: int = 400
    n_days: int = 365
    start_hour: int = 0
    seed: int = 7
    weather: WeatherConfig = field(default_factory=WeatherConfig)
    corruption: CorruptionConfig = field(default_factory=CorruptionConfig)

    def __post_init__(self) -> None:
        if self.n_customers <= 0:
            raise ValueError(f"n_customers must be positive, got {self.n_customers}")
        if self.n_days <= 0:
            raise ValueError(f"n_days must be positive, got {self.n_days}")

    @property
    def n_hours(self) -> int:
        return self.n_days * HOURS_PER_DAY


@dataclass(slots=True)
class CityDataset:
    """Everything ``generate_city`` produces.

    Attributes
    ----------
    config:
        The configuration that produced the data set.
    layout:
        Zone geometry (for basemaps and zone queries).
    customers:
        One :class:`~repro.data.meter.Customer` per meter, with ground-truth
        archetype labels.
    clean:
        Uncorrupted readings — the evaluation reference.
    raw:
        Readings with missing values and metering anomalies — what the
        preprocessing stage sees.
    temperature:
        Hourly outdoor temperature used to drive the profiles.
    calendar:
        Calendar features aligned with the reading columns.
    """

    config: CityConfig
    layout: CityLayout
    customers: list[Customer]
    clean: SeriesSet
    raw: SeriesSet
    temperature: np.ndarray
    calendar: CalendarFrame

    def customer(self, customer_id: int) -> Customer:
        """Look up a customer by id; raises ``KeyError`` if unknown."""
        for cust in self.customers:
            if cust.customer_id == customer_id:
                return cust
        raise KeyError(f"unknown customer_id {customer_id}")

    def archetype_labels(self) -> np.ndarray:
        """Ground-truth archetype per row of ``clean``/``raw`` (string array)."""
        by_id = {c.customer_id: c.archetype.value for c in self.customers}
        return np.array([by_id[int(cid)] for cid in self.clean.customer_ids])

    def zone_labels(self) -> np.ndarray:
        """Zone kind per row of ``clean``/``raw`` (string array)."""
        by_id = {c.customer_id: c.zone.value for c in self.customers}
        return np.array([by_id[int(cid)] for cid in self.clean.customer_ids])

    def positions(self) -> np.ndarray:
        """``(n_customers, 2)`` array of (lon, lat) aligned with matrix rows."""
        by_id = {c.customer_id: (c.lon, c.lat) for c in self.customers}
        return np.array(
            [by_id[int(cid)] for cid in self.clean.customer_ids], dtype=np.float64
        )


def _sample_customers(
    config: CityConfig, layout: CityLayout, rng: np.random.Generator
) -> list[Customer]:
    customers: list[Customer] = []
    for cid in range(config.n_customers):
        zone = layout.sample_zone(rng)
        lon, lat = layout.sample_position(zone, rng)
        archetype = layout.sample_archetype(zone, rng)
        customers.append(
            Customer(
                customer_id=cid,
                lon=lon,
                lat=lat,
                zone=zone.kind,
                archetype=archetype,
                meter=Meter(meter_id=cid),
            )
        )
    return customers


def _corrupt(
    clean: np.ndarray, config: CorruptionConfig, rng: np.random.Generator
) -> np.ndarray:
    """Apply missing values, communication gaps, spikes and stuck meters."""
    raw = clean.copy()
    n_customers, n_hours = raw.shape
    if n_hours == 0:
        return raw
    # Point missingness (communication drop of single readings).
    if config.missing_rate > 0:
        mask = rng.random(raw.shape) < config.missing_rate
        raw[mask] = np.nan
    for row in range(n_customers):
        # Multi-hour communication gaps.
        for _ in range(int(rng.poisson(config.gap_rate_per_customer))):
            start = int(rng.integers(0, n_hours))
            length = int(rng.integers(2, config.gap_max_hours + 1))
            raw[row, start : start + length] = np.nan
        # Metering spikes (register glitches) — gross outliers the anomaly
        # filter must remove.
        for _ in range(int(rng.poisson(config.spike_rate_per_customer))):
            at = int(rng.integers(0, n_hours))
            lo, hi = config.spike_factor_range
            raw[row, at] = max(raw[row, at], 0.1) * rng.uniform(lo, hi)
        # Stuck meters repeat the last value exactly.
        for _ in range(int(rng.poisson(config.stuck_rate_per_customer))):
            start = int(rng.integers(1, n_hours))
            length = int(rng.integers(4, config.stuck_max_hours + 1))
            raw[row, start : start + length] = raw[row, start - 1]
    return raw


def generate_city(
    config: CityConfig | None = None, layout: CityLayout | None = None
) -> CityDataset:
    """Generate the full synthetic case study.

    Deterministic for a given ``config.seed``: customers, weather, profiles
    and corruption all derive from one seeded generator.

    Examples
    --------
    >>> city = generate_city(CityConfig(n_customers=20, n_days=14, seed=1))
    >>> city.raw.n_customers, city.raw.n_steps
    (20, 336)
    """
    config = config or CityConfig()
    layout = layout or CityLayout()
    rng = np.random.default_rng(config.seed)

    customers = _sample_customers(config, layout, rng)
    calendar = build_calendar(config.start_hour, config.n_hours)
    temperature = synthesize_temperature(calendar, config.weather, rng)

    matrix = np.empty((config.n_customers, config.n_hours), dtype=np.float64)
    for row, cust in enumerate(customers):
        params = draw_profile_params(cust.archetype, rng)
        matrix[row] = synthesize_profile(
            cust.archetype, cust.zone, calendar, temperature, rng, params
        )

    clean = SeriesSet(
        customer_ids=[c.customer_id for c in customers],
        start_hour=config.start_hour,
        matrix=matrix,
    )
    raw = SeriesSet(
        customer_ids=[c.customer_id for c in customers],
        start_hour=config.start_hour,
        matrix=_corrupt(matrix, config.corruption, rng),
    )
    return CityDataset(
        config=config,
        layout=layout,
        customers=customers,
        clean=clean,
        raw=raw,
        temperature=temperature,
        calendar=calendar,
    )
