"""What-if scenarios on top of a generated city.

The paper closes with "an outlook on the use potentials on a higher
spatial scale as well as on other urban energy uses".  The canonical
what-if for distribution planners is electric-vehicle adoption: a share of
residential customers gains an evening charging load, which *amplifies*
the commercial→residential evening shift the tool visualises.  The
scenario machinery lets the S2 analyses quantify that amplification.

``apply_ev_adoption`` is pure: it returns a new
:class:`~repro.data.generator.simulate.CityDataset` with the charging load
added to both the clean and raw readings of the adopters, leaving the
input untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.data.generator.simulate import CityDataset
from repro.data.meter import ZoneKind
from repro.data.timeseries import HOURS_PER_DAY, SeriesSet


@dataclass(frozen=True, slots=True)
class EvConfig:
    """Electric-vehicle charging behaviour.

    Defaults model a 7 kW home charger used most workday evenings:
    plug-in between 17:00 and 21:00, 2-4 hours to full.
    """

    charger_kw: float = 7.0
    plugin_hour_range: tuple[int, int] = (17, 21)
    duration_range: tuple[int, int] = (2, 5)
    charge_probability_workday: float = 0.8
    charge_probability_weekend: float = 0.4

    def __post_init__(self) -> None:
        if self.charger_kw <= 0:
            raise ValueError(f"charger_kw must be positive, got {self.charger_kw}")
        lo, hi = self.plugin_hour_range
        if not 0 <= lo <= hi <= 23:
            raise ValueError(f"bad plugin_hour_range {self.plugin_hour_range}")
        lo, hi = self.duration_range
        if not 1 <= lo <= hi:
            raise ValueError(f"bad duration_range {self.duration_range}")
        for p in (self.charge_probability_workday, self.charge_probability_weekend):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"charge probability {p} outside [0, 1]")


def _charging_profile(
    n_hours: int, config: EvConfig, rng: np.random.Generator
) -> np.ndarray:
    """One adopter's hourly EV load over the horizon."""
    load = np.zeros(n_hours)
    n_days = n_hours // HOURS_PER_DAY
    for day in range(n_days):
        weekday = day % 7 < 5  # epoch is a Monday
        probability = (
            config.charge_probability_workday
            if weekday
            else config.charge_probability_weekend
        )
        if rng.random() >= probability:
            continue
        start_hour = int(rng.integers(*config.plugin_hour_range)) if (
            config.plugin_hour_range[0] < config.plugin_hour_range[1]
        ) else config.plugin_hour_range[0]
        duration = int(rng.integers(config.duration_range[0],
                                    config.duration_range[1] + 1))
        start = day * HOURS_PER_DAY + start_hour
        load[start : min(start + duration, n_hours)] += config.charger_kw
    return load


def apply_ev_adoption(
    dataset: CityDataset,
    adoption_rate: float,
    config: EvConfig | None = None,
    seed: int = 0,
) -> tuple[CityDataset, list[int]]:
    """Give a share of residential customers an EV charging load.

    Parameters
    ----------
    dataset:
        The baseline city (not modified).
    adoption_rate:
        Share of *residential* customers that adopt, in [0, 1].
    seed:
        Adopter choice and charging behaviour are deterministic per seed.

    Returns the scenario data set and the adopter customer ids.

    Raises
    ------
    ValueError
        For an adoption rate outside [0, 1].
    """
    if not 0.0 <= adoption_rate <= 1.0:
        raise ValueError(f"adoption_rate must be in [0, 1], got {adoption_rate}")
    config = config or EvConfig()
    rng = np.random.default_rng(seed)
    residential = [
        c.customer_id
        for c in dataset.customers
        if c.zone is ZoneKind.RESIDENTIAL
    ]
    n_adopters = int(round(adoption_rate * len(residential)))
    adopters = sorted(
        rng.choice(residential, size=n_adopters, replace=False).tolist()
    ) if n_adopters else []

    clean = dataset.clean.matrix.copy()
    raw = dataset.raw.matrix.copy()
    for cid in adopters:
        row = dataset.clean.row_index(cid)
        ev = _charging_profile(dataset.clean.n_steps, config, rng)
        clean[row] += ev
        # Raw readings keep their missing cells; observed cells gain load.
        observed = np.isfinite(raw[row])
        raw[row, observed] += ev[observed]

    def rebuild(template: SeriesSet, matrix: np.ndarray) -> SeriesSet:
        return SeriesSet(
            customer_ids=template.customer_ids.tolist(),
            start_hour=template.start_hour,
            matrix=matrix,
        )

    scenario = replace(
        dataset,
        clean=rebuild(dataset.clean, clean),
        raw=rebuild(dataset.raw, raw),
    )
    return scenario, [int(c) for c in adopters]
