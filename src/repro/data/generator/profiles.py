"""Load-profile synthesis for the consumption archetypes.

Every customer's hourly kWh series is composed from four ingredients:

1. a *zone occupancy envelope* (commercial demand sits in work hours,
   residential demand in mornings/evenings, industrial runs two shifts) —
   this is what makes the commercial→residential evening **shift pattern**
   of the paper's Figure 3 emerge from the KDE difference;
2. an *archetype shape* (the paper's five typical patterns plus the S1
   "early bird" sub-population) — this is what the t-SNE/MDS embedding and
   the interactive selection recover;
3. a *weather response* (heating + cooling degree signals) producing the
   bimodal winter/summer seasonality the paper attributes to electric
   heating and cooling appliances;
4. multiplicative log-normal noise, so profiles of the same archetype are
   similar but never identical.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.generator.calendar import CalendarFrame
from repro.data.generator.weather import cooling_demand_factor, heating_demand_factor
from repro.data.meter import CustomerType, ZoneKind


def _hour_bump(hour_of_day: np.ndarray, center: float, width: float) -> np.ndarray:
    """Smooth circular bump on the 24 h clock, peak 1.0 at ``center``."""
    delta = np.minimum(
        np.abs(hour_of_day - center), 24.0 - np.abs(hour_of_day - center)
    )
    return np.exp(-0.5 * (delta / width) ** 2)


def zone_envelope(zone: ZoneKind, calendar: CalendarFrame) -> np.ndarray:
    """Occupancy envelope in [0, 1]-ish scale for every hour.

    The envelope encodes *when people are there*: offices empty out in the
    evening exactly when homes fill up, which is the mass-mobility behaviour
    the shift model is designed to detect.
    """
    hod = calendar.hour_of_day.astype(np.float64)
    workday = calendar.is_workday.astype(np.float64)
    if zone is ZoneKind.COMMERCIAL:
        office = _hour_bump(hod, 13.0, 3.5)
        return 0.15 + 0.85 * office * (0.25 + 0.75 * workday)
    if zone is ZoneKind.RESIDENTIAL:
        morning = 0.55 * _hour_bump(hod, 7.5, 1.5)
        evening = 1.0 * _hour_bump(hod, 19.5, 2.5)
        weekend_day = 0.35 * _hour_bump(hod, 13.0, 4.0) * (1.0 - workday)
        return 0.2 + morning + evening + weekend_day
    if zone is ZoneKind.INDUSTRIAL:
        shifts = _hour_bump(hod, 10.0, 4.0) + 0.7 * _hour_bump(hod, 18.0, 3.0)
        return 0.3 + 0.7 * shifts * (0.4 + 0.6 * workday)
    if zone is ZoneKind.PARK:
        return 0.05 + 0.25 * _hour_bump(hod, 14.0, 3.0)
    raise ValueError(f"unknown zone kind: {zone!r}")


@dataclass(frozen=True, slots=True)
class ProfileParams:
    """Per-customer randomised parameters, drawn once per customer."""

    scale: float
    heating_coef: float
    cooling_coef: float
    noise_std: float


def draw_profile_params(
    archetype: CustomerType, rng: np.random.Generator
) -> ProfileParams:
    """Sample a customer's parameters from the archetype's distribution.

    Levels are calibrated so archetypes are separable but overlapping in raw
    magnitude — separation must come from *shape*, as in the paper's
    Pearson-correlation distance choice.
    """
    jitter = float(rng.lognormal(mean=0.0, sigma=0.18))
    if archetype is CustomerType.BIMODAL:
        return ProfileParams(
            scale=0.9 * jitter,
            heating_coef=float(rng.uniform(1.6, 2.6)),
            cooling_coef=float(rng.uniform(2.8, 4.2)),
            noise_std=0.16,
        )
    if archetype is CustomerType.ENERGY_SAVING:
        return ProfileParams(
            scale=0.35 * jitter,
            heating_coef=float(rng.uniform(0.0, 0.15)),
            cooling_coef=float(rng.uniform(0.0, 0.10)),
            noise_std=0.12,
        )
    if archetype is CustomerType.IDLE:
        return ProfileParams(
            scale=0.05 * jitter,
            heating_coef=0.0,
            cooling_coef=0.0,
            noise_std=0.35,
        )
    if archetype is CustomerType.CONSTANT_HIGH:
        return ProfileParams(
            scale=2.6 * jitter,
            heating_coef=float(rng.uniform(0.0, 0.2)),
            cooling_coef=float(rng.uniform(0.1, 0.35)),
            noise_std=0.07,
        )
    if archetype is CustomerType.SUSPICIOUS:
        return ProfileParams(
            scale=0.8 * jitter,
            heating_coef=float(rng.uniform(0.0, 0.6)),
            cooling_coef=float(rng.uniform(0.0, 0.5)),
            noise_std=0.3,
        )
    if archetype is CustomerType.EARLY_BIRD:
        return ProfileParams(
            scale=0.85 * jitter,
            heating_coef=float(rng.uniform(0.4, 1.0)),
            cooling_coef=float(rng.uniform(0.2, 0.7)),
            noise_std=0.15,
        )
    raise ValueError(f"unknown archetype: {archetype!r}")


def _archetype_diurnal(
    archetype: CustomerType, calendar: CalendarFrame
) -> np.ndarray:
    """Behavioural diurnal component layered on top of the zone envelope."""
    hod = calendar.hour_of_day.astype(np.float64)
    if archetype is CustomerType.EARLY_BIRD:
        # The S1 question: a pronounced morning peak between 05:00 and 07:00,
        # with a correspondingly muted evening.
        return 1.6 * _hour_bump(hod, 6.0, 1.0) + 0.3 * _hour_bump(hod, 19.0, 2.0)
    if archetype is CustomerType.BIMODAL:
        return 0.4 * _hour_bump(hod, 7.5, 1.5) + 0.7 * _hour_bump(hod, 19.0, 2.0)
    if archetype is CustomerType.ENERGY_SAVING:
        return 0.35 * _hour_bump(hod, 19.5, 1.5)
    if archetype is CustomerType.CONSTANT_HIGH:
        # Refrigeration-style load: nearly flat around the clock.
        return np.full(len(calendar), 0.9)
    if archetype is CustomerType.IDLE:
        return np.zeros(len(calendar))
    if archetype is CustomerType.SUSPICIOUS:
        return 0.4 * _hour_bump(hod, 12.0, 5.0)
    raise ValueError(f"unknown archetype: {archetype!r}")


def _suspicious_disturbances(
    values: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Overlay the erratic behaviour of the *suspicious* archetype.

    Random short spikes (5-15x), random multi-day outages (possible meter
    bypass) and one level shift — the signatures utilities screen for in
    non-technical-loss detection.
    """
    out = values.copy()
    n = out.shape[0]
    if n == 0:
        return out
    n_spikes = max(1, int(rng.poisson(n / 200.0)))
    spike_at = rng.integers(0, n, size=n_spikes)
    out[spike_at] *= rng.uniform(5.0, 15.0, size=n_spikes)
    n_outages = max(1, int(rng.poisson(n / 2000.0)))
    for _ in range(n_outages):
        start = int(rng.integers(0, n))
        length = int(rng.integers(12, 96))
        out[start : start + length] *= rng.uniform(0.0, 0.05)
    shift_at = int(rng.integers(n // 4, max(n // 4 + 1, 3 * n // 4)))
    out[shift_at:] *= rng.uniform(0.3, 2.2)
    return out


def _idle_blips(
    values: np.ndarray, calendar: CalendarFrame, rng: np.random.Generator
) -> np.ndarray:
    """Occasional occupancy days for the *idle* archetype (vacant premises
    visited a handful of days per year)."""
    out = values.copy()
    n = out.shape[0]
    if n == 0:
        return out
    n_days = n // 24
    n_visits = max(1, int(rng.poisson(max(1.0, n_days / 60.0))))
    for _ in range(n_visits):
        day = int(rng.integers(0, max(1, n_days)))
        start = day * 24 + int(rng.integers(8, 18))
        length = int(rng.integers(2, 8))
        out[start : min(start + length, n)] += rng.uniform(0.5, 1.2)
    return out


def synthesize_profile(
    archetype: CustomerType,
    zone: ZoneKind,
    calendar: CalendarFrame,
    temperature: np.ndarray,
    rng: np.random.Generator,
    params: ProfileParams | None = None,
) -> np.ndarray:
    """Produce one customer's hourly kWh series (no missing values yet).

    Missing values and gross metering anomalies are injected later by
    :mod:`repro.data.generator.simulate` so the clean ground truth stays
    available to the evaluation.
    """
    if len(calendar) != temperature.shape[0]:
        raise ValueError(
            f"calendar ({len(calendar)} h) and temperature "
            f"({temperature.shape[0]} h) are not aligned"
        )
    params = params or draw_profile_params(archetype, rng)
    envelope = zone_envelope(zone, calendar)
    diurnal = _archetype_diurnal(archetype, calendar)
    base = 0.18 + 0.55 * envelope + diurnal
    weather = params.heating_coef * heating_demand_factor(
        temperature
    ) + params.cooling_coef * cooling_demand_factor(temperature)
    load = params.scale * (base + weather)
    noise = rng.lognormal(mean=0.0, sigma=params.noise_std, size=len(calendar))
    load = load * noise
    if archetype is CustomerType.SUSPICIOUS:
        load = _suspicious_disturbances(load, rng)
    elif archetype is CustomerType.IDLE:
        load = _idle_blips(load, calendar, rng)
    return np.clip(load, 0.0, None)
