"""Synthetic smart-meter data generator.

Stands in for the paper's proprietary electricity data set.  The generator
builds a small city (commercial core, residential belt, industrial fringe,
park) and populates it with customers drawn from the paper's five typical
archetypes plus the "early bird" sub-population of demo scenario S1.  Every
archetype has a distinct diurnal/seasonal load shape so that (a) t-SNE/MDS
embeddings separate them, and (b) the commercial→residential evening demand
shift of Figure 3 emerges in the KDE flow maps.
"""

from repro.data.generator.scenario import EvConfig, apply_ev_adoption
from repro.data.generator.simulate import CityConfig, CityDataset, generate_city

__all__ = [
    "CityConfig",
    "CityDataset",
    "EvConfig",
    "apply_ev_adoption",
    "generate_city",
]
