"""Calendar features driving the load profiles.

Consumption depends on the position of an hour within day, week and year.
This module converts hour offsets (since :data:`repro.data.timeseries.EPOCH`)
into those features once, vectorised, so profile synthesis stays cheap.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.timeseries import EPOCH, HOURS_PER_DAY

HOURS_PER_WEEK = HOURS_PER_DAY * 7
DAYS_PER_YEAR = 365.0

#: Day-of-year numbers treated as public holidays (no-work days).  A small
#: fixed set keeps the generator deterministic without a holiday database.
HOLIDAY_DAYS_OF_YEAR: frozenset[int] = frozenset({1, 90, 121, 359, 360, 365})


@dataclass(slots=True)
class CalendarFrame:
    """Vectorised calendar features for a run of consecutive hours.

    Attributes
    ----------
    hour_of_day:
        0..23 for every hour.
    day_of_week:
        0=Monday .. 6=Sunday (the epoch is a Monday).
    day_of_year:
        1..365/366 approximation based on 365-day years.
    is_workday:
        True when the hour falls on Mon-Fri and not on a holiday.
    year_phase:
        Position within the year in radians, 0 at Jan 1, 2*pi at Dec 31 —
        input of the seasonal temperature model.
    """

    hour_of_day: np.ndarray
    day_of_week: np.ndarray
    day_of_year: np.ndarray
    is_workday: np.ndarray
    year_phase: np.ndarray

    def __len__(self) -> int:
        return int(self.hour_of_day.shape[0])


def build_calendar(start_hour: int, n_hours: int) -> CalendarFrame:
    """Compute calendar features for ``n_hours`` hours from ``start_hour``.

    Note the epoch (2018-01-01) is a Monday, so ``day_of_week`` follows from
    simple integer arithmetic; years are treated as exactly 365 days, which
    is adequate for synthetic seasonality.
    """
    if n_hours < 0:
        raise ValueError(f"n_hours must be non-negative, got {n_hours}")
    assert EPOCH.weekday() == 0, "epoch must be a Monday for the day-of-week math"
    hours = np.arange(start_hour, start_hour + n_hours, dtype=np.int64)
    days = hours // HOURS_PER_DAY
    hour_of_day = hours % HOURS_PER_DAY
    day_of_week = days % 7
    day_of_year = (days % 365) + 1
    holiday = np.isin(day_of_year, list(HOLIDAY_DAYS_OF_YEAR))
    is_workday = (day_of_week < 5) & ~holiday
    year_phase = 2.0 * np.pi * ((days % 365) / DAYS_PER_YEAR)
    return CalendarFrame(
        hour_of_day=hour_of_day.astype(np.int64),
        day_of_week=day_of_week.astype(np.int64),
        day_of_year=day_of_year.astype(np.int64),
        is_workday=is_workday,
        year_phase=year_phase.astype(np.float64),
    )
