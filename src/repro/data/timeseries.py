"""Time-series containers shared by every layer of the tool.

Two containers cover all needs of the paper's models:

- :class:`TimeSeries` — one meter's readings on a regular grid, with NaN
  marking missing values (the raw data the preprocessing step repairs).
- :class:`SeriesSet` — a dense ``(n_customers, n_steps)`` matrix plus the
  shared time axis; this is what the dimension-reduction and KDE models
  consume.

Timestamps are modelled as *hours since an epoch* (``numpy.datetime64`` is
used only at the I/O boundary) so all arithmetic stays in integer space and
the resampling of demo scenario S2 — hourly, 4-hourly, daily, weekly,
monthly, quarterly, yearly — is a bucketing exercise.
"""

from __future__ import annotations

import datetime as _dt
import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

#: Epoch all hour-offsets are relative to (arbitrary but fixed Monday).
EPOCH = _dt.datetime(2018, 1, 1, 0, 0, 0)

HOURS_PER_DAY = 24
DAYS_PER_WEEK = 7


class Resolution(enum.Enum):
    """Temporal granularities from demo scenario S2.

    The attendee "examines the shift patterns by varying the temporal
    granular intervals, including hourly, every four hours, daily, weekly,
    monthly, quarterly, and yearly".  Month-like resolutions use calendar
    boundaries; the fixed-width ones use exact hour counts.
    """

    HOURLY = "hourly"
    FOUR_HOURLY = "four_hourly"
    DAILY = "daily"
    WEEKLY = "weekly"
    MONTHLY = "monthly"
    QUARTERLY = "quarterly"
    YEARLY = "yearly"

    @property
    def fixed_hours(self) -> int | None:
        """Bucket width in hours, or ``None`` for calendar-based resolutions."""
        return _FIXED_HOURS.get(self)

    def bucket_of(self, hour_offset: int) -> int:
        """Map an hour offset from :data:`EPOCH` to a bucket ordinal.

        Fixed-width resolutions divide; calendar resolutions count months /
        quarters / years since the epoch.
        """
        fixed = self.fixed_hours
        if fixed is not None:
            return int(hour_offset) // fixed
        when = EPOCH + _dt.timedelta(hours=int(hour_offset))
        months = (when.year - EPOCH.year) * 12 + (when.month - EPOCH.month)
        if self is Resolution.MONTHLY:
            return months
        if self is Resolution.QUARTERLY:
            return months // 3
        if self is Resolution.YEARLY:
            return when.year - EPOCH.year
        raise AssertionError(f"unhandled resolution {self}")  # pragma: no cover

    def bucket_bounds(self, bucket: int) -> tuple[int, int]:
        """Nominal hour span ``[start, end)`` of a bucket ordinal.

        The inverse of :meth:`bucket_of` up to bucket membership: every
        hour offset ``h`` with ``start <= h < end`` satisfies
        ``bucket_of(h) == bucket``.  Fixed-width resolutions multiply;
        calendar resolutions walk the calendar from :data:`EPOCH`.
        """
        fixed = self.fixed_hours
        if fixed is not None:
            return int(bucket) * fixed, (int(bucket) + 1) * fixed
        bucket = int(bucket)
        if self is Resolution.MONTHLY:
            months = bucket
            span = 1
        elif self is Resolution.QUARTERLY:
            months = bucket * 3
            span = 3
        else:  # YEARLY
            months = bucket * 12
            span = 12

        def month_start(total_months: int) -> _dt.datetime:
            year, month0 = divmod(EPOCH.month - 1 + total_months, 12)
            return _dt.datetime(EPOCH.year + year, month0 + 1, 1)

        start = datetime_to_hour(month_start(months))
        end = datetime_to_hour(month_start(months + span))
        return start, end

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


_FIXED_HOURS: dict[Resolution, int] = {
    Resolution.HOURLY: 1,
    Resolution.FOUR_HOURLY: 4,
    Resolution.DAILY: HOURS_PER_DAY,
    Resolution.WEEKLY: HOURS_PER_DAY * DAYS_PER_WEEK,
}

#: The S2 sweep order, coarsening left to right.
ALL_RESOLUTIONS: tuple[Resolution, ...] = (
    Resolution.HOURLY,
    Resolution.FOUR_HOURLY,
    Resolution.DAILY,
    Resolution.WEEKLY,
    Resolution.MONTHLY,
    Resolution.QUARTERLY,
    Resolution.YEARLY,
)


def hour_to_datetime(hour_offset: int) -> _dt.datetime:
    """Convert an hour offset from :data:`EPOCH` to a naive datetime."""
    return EPOCH + _dt.timedelta(hours=int(hour_offset))


def datetime_to_hour(when: _dt.datetime) -> int:
    """Convert a naive datetime to a whole hour offset from :data:`EPOCH`.

    Raises
    ------
    ValueError
        If ``when`` is not aligned to a whole hour.
    """
    delta = when - EPOCH
    seconds = delta.total_seconds()
    hours = seconds / 3600.0
    if hours != int(hours):
        raise ValueError(f"{when!r} is not aligned to a whole hour")
    return int(hours)


@dataclass(slots=True)
class TimeSeries:
    """A single regular hourly series with possible gaps (NaN).

    Attributes
    ----------
    start_hour:
        Offset of the first reading, in hours since :data:`EPOCH`.
    values:
        1-D float array of consumption in kWh per hour; NaN marks missing.
    """

    start_hour: int
    values: np.ndarray

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=np.float64)
        if self.values.ndim != 1:
            raise ValueError(f"values must be 1-D, got shape {self.values.shape}")

    def __len__(self) -> int:
        return int(self.values.shape[0])

    def __iter__(self) -> Iterator[float]:
        return iter(self.values)

    @property
    def end_hour(self) -> int:
        """Hour offset one past the final reading (half-open interval)."""
        return self.start_hour + len(self)

    @property
    def hours(self) -> np.ndarray:
        """Hour offsets of every reading."""
        return np.arange(self.start_hour, self.end_hour, dtype=np.int64)

    @property
    def missing_fraction(self) -> float:
        """Share of readings that are NaN."""
        if len(self) == 0:
            return 0.0
        return float(np.isnan(self.values).mean())

    def slice_hours(self, start_hour: int, end_hour: int) -> "TimeSeries":
        """Readings within ``[start_hour, end_hour)``, clipped to the series.

        The result may be empty but is never out of bounds.
        """
        if end_hour < start_hour:
            raise ValueError(
                f"end_hour {end_hour} precedes start_hour {start_hour}"
            )
        lo = max(start_hour, self.start_hour)
        hi = min(end_hour, self.end_hour)
        if hi <= lo:
            return TimeSeries(start_hour=lo, values=np.empty(0))
        a = lo - self.start_hour
        b = hi - self.start_hour
        return TimeSeries(start_hour=lo, values=self.values[a:b].copy())

    def total(self) -> float:
        """Sum of non-missing readings (kWh)."""
        return float(np.nansum(self.values))

    def mean(self) -> float:
        """Mean of non-missing readings; NaN if everything is missing."""
        if len(self) == 0 or np.isnan(self.values).all():
            return float("nan")
        return float(np.nanmean(self.values))


class SeriesSet:
    """A dense matrix of aligned hourly series for many customers.

    This is the workhorse container: rows are customers, columns are hours.
    All model code (reduction, KDE, clustering) consumes a ``SeriesSet``.

    Parameters
    ----------
    customer_ids:
        Row labels; must be unique.
    start_hour:
        Hour offset (since :data:`EPOCH`) of column 0.
    matrix:
        ``(n_customers, n_steps)`` float array; NaN marks missing readings.
    """

    def __init__(
        self,
        customer_ids: Sequence[int],
        start_hour: int,
        matrix: np.ndarray,
    ) -> None:
        self.matrix = np.asarray(matrix, dtype=np.float64)
        if self.matrix.ndim != 2:
            raise ValueError(f"matrix must be 2-D, got shape {self.matrix.shape}")
        self.customer_ids = np.asarray(customer_ids, dtype=np.int64)
        if self.customer_ids.ndim != 1:
            raise ValueError("customer_ids must be a 1-D sequence")
        if self.customer_ids.shape[0] != self.matrix.shape[0]:
            raise ValueError(
                f"{self.customer_ids.shape[0]} customer ids for "
                f"{self.matrix.shape[0]} matrix rows"
            )
        if len(set(self.customer_ids.tolist())) != self.customer_ids.shape[0]:
            raise ValueError("customer_ids contains duplicates")
        self.start_hour = int(start_hour)
        self._row_of: dict[int, int] = {
            int(cid): row for row, cid in enumerate(self.customer_ids)
        }

    # ------------------------------------------------------------------
    # basic shape / lookup
    # ------------------------------------------------------------------
    @property
    def n_customers(self) -> int:
        return int(self.matrix.shape[0])

    @property
    def n_steps(self) -> int:
        return int(self.matrix.shape[1])

    @property
    def end_hour(self) -> int:
        """Hour offset one past the final column (half-open)."""
        return self.start_hour + self.n_steps

    @property
    def hours(self) -> np.ndarray:
        """Hour offsets of every column."""
        return np.arange(self.start_hour, self.end_hour, dtype=np.int64)

    def __len__(self) -> int:
        return self.n_customers

    def __contains__(self, customer_id: int) -> bool:
        return int(customer_id) in self._row_of

    def row_index(self, customer_id: int) -> int:
        """Matrix row of ``customer_id``; raises ``KeyError`` if unknown."""
        return self._row_of[int(customer_id)]

    def series(self, customer_id: int) -> TimeSeries:
        """Extract one customer's readings as a :class:`TimeSeries`."""
        row = self.row_index(customer_id)
        return TimeSeries(start_hour=self.start_hour, values=self.matrix[row].copy())

    # ------------------------------------------------------------------
    # construction / reshaping
    # ------------------------------------------------------------------
    @classmethod
    def from_series(cls, pairs: Iterable[tuple[int, TimeSeries]]) -> "SeriesSet":
        """Stack per-customer series that share one time axis.

        Raises
        ------
        ValueError
            If the iterable is empty or the series are not aligned.
        """
        pairs = list(pairs)
        if not pairs:
            raise ValueError("cannot build a SeriesSet from zero series")
        first = pairs[0][1]
        for cid, ts in pairs:
            if ts.start_hour != first.start_hour or len(ts) != len(first):
                raise ValueError(
                    f"series for customer {cid} is not aligned with the first "
                    f"series (start {ts.start_hour} vs {first.start_hour}, "
                    f"length {len(ts)} vs {len(first)})"
                )
        matrix = np.vstack([ts.values for _, ts in pairs])
        return cls(
            customer_ids=[cid for cid, _ in pairs],
            start_hour=first.start_hour,
            matrix=matrix,
        )

    def select_customers(self, customer_ids: Sequence[int]) -> "SeriesSet":
        """Row-subset preserving the requested order."""
        rows = [self.row_index(cid) for cid in customer_ids]
        return SeriesSet(
            customer_ids=[int(self.customer_ids[r]) for r in rows],
            start_hour=self.start_hour,
            matrix=self.matrix[rows].copy(),
        )

    def slice_hours(self, start_hour: int, end_hour: int) -> "SeriesSet":
        """Column-subset over ``[start_hour, end_hour)``, clipped to bounds."""
        if end_hour < start_hour:
            raise ValueError(
                f"end_hour {end_hour} precedes start_hour {start_hour}"
            )
        lo = max(start_hour, self.start_hour)
        hi = min(end_hour, self.end_hour)
        if hi <= lo:
            return SeriesSet(
                customer_ids=self.customer_ids.tolist(),
                start_hour=lo,
                matrix=np.empty((self.n_customers, 0)),
            )
        a = lo - self.start_hour
        b = hi - self.start_hour
        return SeriesSet(
            customer_ids=self.customer_ids.tolist(),
            start_hour=lo,
            matrix=self.matrix[:, a:b].copy(),
        )

    # ------------------------------------------------------------------
    # aggregates used by the models
    # ------------------------------------------------------------------
    def mean_profile(self) -> np.ndarray:
        """Column-wise NaN-aware mean — the "aggregated consumption pattern"
        view B draws for a selection."""
        if self.n_customers == 0:
            return np.full(self.n_steps, np.nan)
        with np.errstate(invalid="ignore"):
            return np.nanmean(self.matrix, axis=0)

    def per_customer_mean(self) -> np.ndarray:
        """Row-wise NaN-aware mean consumption, the ``c_i`` weight input of
        the paper's Eq. 3."""
        out = np.full(self.n_customers, np.nan)
        valid = ~np.isnan(self.matrix).all(axis=1)
        if valid.any():
            with np.errstate(invalid="ignore"):
                out[valid] = np.nanmean(self.matrix[valid], axis=1)
        return out

    def missing_fraction(self) -> float:
        """Overall share of NaN cells."""
        if self.matrix.size == 0:
            return 0.0
        return float(np.isnan(self.matrix).mean())

    def copy(self) -> "SeriesSet":
        return SeriesSet(
            customer_ids=self.customer_ids.tolist(),
            start_hour=self.start_hour,
            matrix=self.matrix.copy(),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SeriesSet(n_customers={self.n_customers}, n_steps={self.n_steps}, "
            f"start_hour={self.start_hour})"
        )


@dataclass(slots=True)
class HourWindow:
    """A half-open hour interval ``[start_hour, end_hour)``.

    Used by the shift model to name the ``t1`` and ``t2`` aggregation windows
    of Eq. 4, and by the REST API as the wire format for time ranges.
    """

    start_hour: int
    end_hour: int

    def __post_init__(self) -> None:
        if self.end_hour < self.start_hour:
            raise ValueError(
                f"end_hour {self.end_hour} precedes start_hour {self.start_hour}"
            )

    @property
    def n_hours(self) -> int:
        return self.end_hour - self.start_hour

    def shifted(self, hours: int) -> "HourWindow":
        """The same-width window offset by ``hours``."""
        return HourWindow(self.start_hour + hours, self.end_hour + hours)

    def overlaps(self, other: "HourWindow") -> bool:
        return self.start_hour < other.end_hour and other.start_hour < self.end_hour

    def to_record(self) -> dict[str, int]:
        return {"start_hour": self.start_hour, "end_hour": self.end_hour}

    @classmethod
    def from_record(cls, record: dict[str, object]) -> "HourWindow":
        return cls(
            start_hour=int(record["start_hour"]),  # type: ignore[arg-type]
            end_hour=int(record["end_hour"]),  # type: ignore[arg-type]
        )
