"""Domain model, time-series containers, synthetic data generation and I/O."""

from repro.data.meter import Customer, CustomerType, Meter, ZoneKind
from repro.data.timeseries import Resolution, SeriesSet, TimeSeries

__all__ = [
    "Customer",
    "CustomerType",
    "Meter",
    "Resolution",
    "SeriesSet",
    "TimeSeries",
    "ZoneKind",
]
