"""CSV import/export for customers and readings.

The paper loads smart-meter extracts into PostgreSQL; the practical interface
to such systems is CSV.  Two layouts are supported:

- **wide** readings: one row per customer, one column per hour — compact and
  the natural serialisation of :class:`~repro.data.timeseries.SeriesSet`;
- **long** readings: ``customer_id,hour,kwh`` triples — the layout utility
  data warehouses export, converted on load.

Missing readings round-trip as empty cells.
"""

from __future__ import annotations

import csv
import math
from pathlib import Path
from typing import Iterable

import numpy as np

from repro.data.meter import Customer
from repro.data.timeseries import SeriesSet


def save_customers(customers: Iterable[Customer], path: str | Path) -> int:
    """Write customers to CSV; returns the number of rows written."""
    customers = list(customers)
    fieldnames = [
        "customer_id",
        "lon",
        "lat",
        "zone",
        "archetype",
        "meter_id",
        "resolution_minutes",
    ]
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        for cust in customers:
            writer.writerow(cust.to_record())
    return len(customers)


def load_customers(path: str | Path) -> list[Customer]:
    """Read customers written by :func:`save_customers`.

    Raises
    ------
    ValueError
        If the file has no rows or a row is malformed.
    """
    customers: list[Customer] = []
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        for line_no, record in enumerate(reader, start=2):
            try:
                customers.append(Customer.from_record(record))
            except (KeyError, ValueError) as exc:
                raise ValueError(f"{path}:{line_no}: bad customer row: {exc}") from exc
    if not customers:
        raise ValueError(f"{path}: no customer rows found")
    return customers


def save_readings_wide(series_set: SeriesSet, path: str | Path) -> int:
    """Write a :class:`SeriesSet` as wide CSV; returns rows written.

    The header carries the hour offsets so the time axis round-trips:
    ``customer_id,h<start>,h<start+1>,...``.  NaN serialises as empty cell.
    """
    header = ["customer_id"] + [f"h{h}" for h in series_set.hours]
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        for row, cid in enumerate(series_set.customer_ids):
            values = [
                "" if math.isnan(v) else repr(float(v))
                for v in series_set.matrix[row]
            ]
            writer.writerow([int(cid)] + values)
    return series_set.n_customers


def load_readings_wide(path: str | Path) -> SeriesSet:
    """Read wide CSV written by :func:`save_readings_wide`.

    Raises
    ------
    ValueError
        If the header is malformed, hours are not contiguous, or row widths
        disagree with the header.
    """
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"{path}: empty file") from None
        if not header or header[0] != "customer_id":
            raise ValueError(f"{path}: first column must be customer_id")
        try:
            hours = [int(col[1:]) for col in header[1:]]
        except ValueError as exc:
            raise ValueError(f"{path}: bad hour column in header: {exc}") from exc
        if hours and hours != list(range(hours[0], hours[0] + len(hours))):
            raise ValueError(f"{path}: hour columns are not contiguous")
        customer_ids: list[int] = []
        rows: list[list[float]] = []
        for line_no, record in enumerate(reader, start=2):
            if len(record) != len(header):
                raise ValueError(
                    f"{path}:{line_no}: expected {len(header)} cells, "
                    f"got {len(record)}"
                )
            customer_ids.append(int(record[0]))
            rows.append([float(cell) if cell else float("nan") for cell in record[1:]])
    if not rows:
        raise ValueError(f"{path}: no reading rows found")
    return SeriesSet(
        customer_ids=customer_ids,
        start_hour=hours[0] if hours else 0,
        matrix=np.array(rows, dtype=np.float64),
    )


def save_readings_long(series_set: SeriesSet, path: str | Path) -> int:
    """Write ``customer_id,hour,kwh`` triples; missing readings are skipped.

    Returns the number of data rows written.
    """
    written = 0
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["customer_id", "hour", "kwh"])
        hours = series_set.hours
        for row, cid in enumerate(series_set.customer_ids):
            values = series_set.matrix[row]
            for col in np.flatnonzero(~np.isnan(values)):
                writer.writerow([int(cid), int(hours[col]), repr(float(values[col]))])
                written += 1
    return written


def load_readings_long(path: str | Path) -> SeriesSet:
    """Read long CSV into a dense :class:`SeriesSet`.

    The time axis spans the min..max hour present; unobserved cells are NaN.
    Duplicate ``(customer, hour)`` pairs keep the last value, matching
    upsert semantics of a warehouse load.
    """
    triples: list[tuple[int, int, float]] = []
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        for line_no, record in enumerate(reader, start=2):
            try:
                triples.append(
                    (
                        int(record["customer_id"]),
                        int(record["hour"]),
                        float(record["kwh"]),
                    )
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise ValueError(f"{path}:{line_no}: bad reading row: {exc}") from exc
    if not triples:
        raise ValueError(f"{path}: no reading rows found")
    customer_ids = sorted({cid for cid, _, _ in triples})
    min_hour = min(h for _, h, _ in triples)
    max_hour = max(h for _, h, _ in triples)
    n_steps = max_hour - min_hour + 1
    row_of = {cid: i for i, cid in enumerate(customer_ids)}
    matrix = np.full((len(customer_ids), n_steps), np.nan)
    for cid, hour, kwh in triples:
        matrix[row_of[cid], hour - min_hour] = kwh
    return SeriesSet(customer_ids=customer_ids, start_hour=min_hour, matrix=matrix)
