"""Domain model: customers, meters and city zones.

The paper anonymises a real electricity data set whose essential structure is
a set of *customers*, each with a geographic position (longitude/latitude),
a *zone* context (commercial core, residential belt, ...) and a smart *meter*
producing an hourly consumption time series.  This module defines those
entities as plain dataclasses so every other layer (database, models,
visualisation, REST API) can share one vocabulary.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class ZoneKind(enum.Enum):
    """Land-use category of a city zone.

    The Figure 3 narrative of the paper contrasts a *commercial* area (origin
    of the evening demand flow) with a *residential* area (destination).  We
    add industrial and park zones so flow maps have non-trivial geography.
    """

    COMMERCIAL = "commercial"
    RESIDENTIAL = "residential"
    INDUSTRIAL = "industrial"
    PARK = "park"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class CustomerType(enum.Enum):
    """Ground-truth consumption archetype of a customer.

    These are the five typical patterns the paper reports discovering in its
    case study (Section 2.2): *bimodal* (winter & summer peaks from electric
    heating/cooling), *energy-saving* (low, flat, conscious usage), *idle*
    (near-zero vacant premises), *constant high* (e.g. 24/7 commercial
    refrigeration) and *suspicious* (erratic spikes, possibly tampering).
    ``EARLY_BIRD`` covers the S1 demo question "who are the early birds with
    a morning peak between 5:00-7:00?" — a sub-population the selection
    operators must be able to isolate.
    """

    BIMODAL = "bimodal"
    ENERGY_SAVING = "energy_saving"
    IDLE = "idle"
    CONSTANT_HIGH = "constant_high"
    SUSPICIOUS = "suspicious"
    EARLY_BIRD = "early_bird"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Archetypes shown in the paper's Figure 3 (the "five typical patterns").
CANONICAL_TYPES: tuple[CustomerType, ...] = (
    CustomerType.BIMODAL,
    CustomerType.ENERGY_SAVING,
    CustomerType.IDLE,
    CustomerType.CONSTANT_HIGH,
    CustomerType.SUSPICIOUS,
)


@dataclass(frozen=True, slots=True)
class Meter:
    """A smart meter installation.

    Attributes
    ----------
    meter_id:
        Unique identifier, stable across the data set.
    resolution_minutes:
        Native sampling interval of the meter; the paper's case study uses
        hourly readings (60 minutes).
    """

    meter_id: int
    resolution_minutes: int = 60

    def __post_init__(self) -> None:
        if self.meter_id < 0:
            raise ValueError(f"meter_id must be non-negative, got {self.meter_id}")
        if self.resolution_minutes <= 0:
            raise ValueError(
                f"resolution_minutes must be positive, got {self.resolution_minutes}"
            )


@dataclass(frozen=True, slots=True)
class Customer:
    """A metered customer with a geographic position.

    Coordinates use WGS-84 longitude/latitude, matching the vector
    ``x_i = (lon_i, lat_i)^T`` in the paper's Eq. 3.  ``archetype`` is the
    generator's ground-truth label; real data would not carry it, and no model
    in :mod:`repro.core` reads it — it exists purely so the evaluation can
    score pattern recovery.
    """

    customer_id: int
    lon: float
    lat: float
    zone: ZoneKind
    archetype: CustomerType
    meter: Meter = field(default_factory=lambda: Meter(0))

    def __post_init__(self) -> None:
        if self.customer_id < 0:
            raise ValueError(
                f"customer_id must be non-negative, got {self.customer_id}"
            )
        if not -180.0 <= self.lon <= 180.0:
            raise ValueError(f"longitude out of range [-180, 180]: {self.lon}")
        if not -90.0 <= self.lat <= 90.0:
            raise ValueError(f"latitude out of range [-90, 90]: {self.lat}")

    @property
    def position(self) -> tuple[float, float]:
        """``(lon, lat)`` pair, the order used throughout the geometry code."""
        return (self.lon, self.lat)

    def to_record(self) -> dict[str, object]:
        """Flatten to a JSON/CSV-friendly dict (inverse of :meth:`from_record`)."""
        return {
            "customer_id": self.customer_id,
            "lon": self.lon,
            "lat": self.lat,
            "zone": self.zone.value,
            "archetype": self.archetype.value,
            "meter_id": self.meter.meter_id,
            "resolution_minutes": self.meter.resolution_minutes,
        }

    @classmethod
    def from_record(cls, record: dict[str, object]) -> "Customer":
        """Rebuild a customer from :meth:`to_record` output.

        Raises
        ------
        KeyError
            If a required field is missing.
        ValueError
            If zone/archetype names are unknown or coordinates are invalid.
        """
        return cls(
            customer_id=int(record["customer_id"]),  # type: ignore[arg-type]
            lon=float(record["lon"]),  # type: ignore[arg-type]
            lat=float(record["lat"]),  # type: ignore[arg-type]
            zone=ZoneKind(record["zone"]),
            archetype=CustomerType(record["archetype"]),
            meter=Meter(
                meter_id=int(record.get("meter_id", 0)),  # type: ignore[arg-type]
                resolution_minutes=int(record.get("resolution_minutes", 60)),  # type: ignore[arg-type]
            ),
        )
