"""Structured JSON logging correlated by request ID.

Every log record is one JSON object per line — machine-parseable, so a
five-minute incident can be reconstructed by grepping a request ID across
layers instead of eyeballing free-text lines.  The request ID itself lives
in a :class:`contextvars.ContextVar` set by the WSGI middleware: anything
that runs while a request is being handled (pipeline stages, database
queries, numeric kernels) inherits it for free, including worker threads
started with a copied context.

The same context variable feeds the tracer
(:class:`~repro.obs.spans.SpanRecord` carries ``request_id``) and the
slow-op log (:class:`~repro.obs.timewindow.SlowOpLog`), so a slow span, a
log line and a Prometheus series can all be joined on one ID.

The logger's clock is injectable (``time.time`` by default) so timestamp
tests are deterministic; the output stream is resolved lazily (default
``sys.stderr``) so pytest capture and late redirection both work.
"""

from __future__ import annotations

import json
import sys
import threading
import time
import uuid
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Callable, Iterator, TextIO

# Numeric severity thresholds; "off" silences a logger entirely.
LEVELS: dict[str, int] = {
    "debug": 10,
    "info": 20,
    "warning": 30,
    "error": 40,
    "off": 100,
}

_request_id: ContextVar[str | None] = ContextVar("repro_request_id", default=None)
_tenant: ContextVar[str | None] = ContextVar("repro_tenant", default=None)


def new_request_id() -> str:
    """A fresh 16-hex-char request ID (collision-safe at any real rate)."""
    return uuid.uuid4().hex[:16]


def current_request_id() -> str | None:
    """The request ID bound to the current context, if any."""
    return _request_id.get()


@contextmanager
def bind_request_id(request_id: str) -> Iterator[str]:
    """Bind ``request_id`` to the current context for the block's duration.

    Nested binds shadow the outer ID and restore it on exit, so internal
    sub-requests (e.g. the stats CLI driving the app in-process) keep
    their own identity.
    """
    token = _request_id.set(request_id)
    try:
        yield request_id
    finally:
        _request_id.reset(token)


def current_tenant() -> str | None:
    """The tenant bound to the current context, if any."""
    return _tenant.get()


@contextmanager
def bind_tenant(tenant: str | None) -> Iterator[str | None]:
    """Bind a tenant id for the block's duration (None binds "no tenant").

    The server binds the resolved tenant around each handler call so
    spans, slow-op records and log lines emitted while handling the
    request — including shard tasks on pool threads, which re-bind a
    captured context — can be attributed per tenant.
    """
    token = _tenant.set(tenant)
    try:
        yield tenant
    finally:
        _tenant.reset(token)


class JsonLogger:
    """Thread-safe one-JSON-object-per-line logger.

    Parameters
    ----------
    stream:
        Destination text stream; ``None`` (the default) resolves to the
        *current* ``sys.stderr`` at each emit, so redirection after
        construction still takes effect.
    level:
        Minimum severity emitted, one of :data:`LEVELS` (``"off"``
        silences the logger).
    clock:
        Zero-argument callable returning epoch seconds; ``time.time`` by
        default, injectable for deterministic tests.
    """

    def __init__(
        self,
        stream: TextIO | None = None,
        level: str = "info",
        clock: Callable[[], float] = time.time,
    ) -> None:
        if level not in LEVELS:
            raise ValueError(
                f"unknown level {level!r}; pick one of {sorted(LEVELS)}"
            )
        self._stream = stream
        self.level = level
        self.clock = clock
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        """False when the threshold is ``"off"`` (every emit is skipped)."""
        return LEVELS[self.level] < LEVELS["off"]

    def _resolve_stream(self) -> TextIO:
        return self._stream if self._stream is not None else sys.stderr

    def log(self, event: str, level: str = "info", **fields: object) -> None:
        """Emit one record; unknown levels raise, filtered levels no-op.

        The record always leads with ``ts`` (epoch seconds), ``level`` and
        ``event``; a bound request ID is attached as ``request_id``.
        Emission never raises — a broken stream must not take down the
        request being logged.
        """
        if level not in LEVELS:
            raise ValueError(
                f"unknown level {level!r}; pick one of {sorted(LEVELS)}"
            )
        if LEVELS[level] < LEVELS[self.level]:
            return
        record: dict[str, object] = {
            "ts": round(self.clock(), 6),
            "level": level,
            "event": event,
        }
        request_id = _request_id.get()
        if request_id is not None:
            record["request_id"] = request_id
        tenant = _tenant.get()
        if tenant is not None:
            record.setdefault("tenant", tenant)
        record.update(fields)
        line = json.dumps(record, default=str, separators=(",", ":"))
        try:
            with self._lock:
                stream = self._resolve_stream()
                stream.write(line + "\n")
        except Exception:
            pass  # logging is best-effort; never break the caller

    def debug(self, event: str, **fields: object) -> None:
        self.log(event, level="debug", **fields)

    def info(self, event: str, **fields: object) -> None:
        self.log(event, level="info", **fields)

    def warning(self, event: str, **fields: object) -> None:
        self.log(event, level="warning", **fields)

    def error(self, event: str, **fields: object) -> None:
        self.log(event, level="error", **fields)
