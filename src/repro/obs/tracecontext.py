"""Serializable trace context for cross-thread propagation.

Python's :class:`~contextvars.ContextVar` bindings do not follow work
submitted to a ``ThreadPoolExecutor``: the pool's worker threads were
created long ago with their own (empty) contexts.  Before this module,
every scatter-gather shard task, routed stream tick and pooled worker ran
*outside* the originating request — its log lines carried
``request_id: None``, its spans opened as disconnected roots, and its
deadline silently vanished.

:class:`TraceContext` is the fix: an immutable snapshot of everything a
unit of work needs to stay attributable —

- ``trace_id`` / ``span_id`` — the active trace and the span that will be
  the *parent* of any span the worker opens (so worker spans stitch into
  the caller's tree via :class:`~repro.obs.tracestore.TraceStore`);
- ``request_id`` — the correlation ID for logs and slow-op records;
- ``tenant`` — the tenant being served (PR 6's namespaces);
- ``deadline`` — the request's remaining time budget.

Capture it on the submitting thread with :meth:`TraceContext.capture`,
ship it with the task (it is a plain frozen dataclass — cheap, picklable
but normally shared in-process), and re-bind inside the worker with
:meth:`TraceContext.bind`::

    ctx = TraceContext.capture()
    pool.submit(lambda: ctx.run(do_work))

The context is intentionally *explicit* rather than relying on
``contextvars.copy_context()``: a full context copy drags along every
unrelated variable and still would not parent spans correctly, because
the span stack is thread-local state inside the tracer, not a context
variable.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Callable, Iterator, TypeVar

from repro.core.deadline import Deadline, bind_deadline, current_deadline
from repro.obs.logging import (
    bind_request_id,
    bind_tenant,
    current_request_id,
    current_tenant,
)

T = TypeVar("T")

# The cross-thread parent linkage: (trace_id, parent_span_id).  Bound by
# TraceContext.bind inside pool workers; read by the tracer when a span
# opens on a thread with an empty span stack.
_remote_parent: ContextVar[tuple[str, str] | None] = ContextVar(
    "repro_remote_parent", default=None
)


def current_remote_parent() -> tuple[str, str] | None:
    """The propagated (trace_id, parent_span_id) pair, if any."""
    return _remote_parent.get()


@dataclass(frozen=True, slots=True)
class TraceContext:
    """Immutable snapshot of one request's ambient context.

    All fields are optional: capturing outside any request yields an
    all-``None`` context whose :meth:`bind` is a harmless no-op binding.
    """

    trace_id: str | None = None
    span_id: str | None = None
    request_id: str | None = None
    tenant: str | None = None
    deadline: Deadline | None = None

    @classmethod
    def capture(cls) -> "TraceContext":
        """Snapshot the calling thread's context (request id, tenant,
        deadline, and the innermost open span as future parent)."""
        from repro.obs import get_tracer  # late: avoid import cycle

        trace_id: str | None = None
        span_id: str | None = None
        current = get_tracer().current()
        if current is not None and current.span_id is not None:
            trace_id = current.trace_id
            span_id = current.span_id
        else:
            remote = _remote_parent.get()
            if remote is not None:
                trace_id, span_id = remote
        return cls(
            trace_id=trace_id,
            span_id=span_id,
            request_id=current_request_id(),
            tenant=current_tenant(),
            deadline=current_deadline(),
        )

    @contextmanager
    def bind(self) -> Iterator["TraceContext"]:
        """Re-bind this snapshot on the current (worker) thread.

        Request id and tenant bind only when captured as non-``None`` so
        a worker's own ambient bindings are not clobbered by an empty
        snapshot; the deadline binds unconditionally (an expired budget
        must propagate, and ``None`` means "no deadline" either way).
        """
        parent = (
            (self.trace_id, self.span_id)
            if self.trace_id is not None and self.span_id is not None
            else None
        )
        token = _remote_parent.set(parent)
        try:
            with bind_deadline(self.deadline):
                if self.request_id is not None and self.tenant is not None:
                    with bind_request_id(self.request_id), bind_tenant(self.tenant):
                        yield self
                elif self.request_id is not None:
                    with bind_request_id(self.request_id):
                        yield self
                elif self.tenant is not None:
                    with bind_tenant(self.tenant):
                        yield self
                else:
                    yield self
        finally:
            _remote_parent.reset(token)

    def run(self, fn: Callable[[], T]) -> T:
        """Call ``fn`` with this context bound (pool-worker convenience)."""
        with self.bind():
            return fn()

    def to_record(self) -> dict[str, object]:
        """JSON-ready form (the deadline reduces to remaining seconds)."""
        out: dict[str, object] = {}
        if self.trace_id is not None:
            out["trace_id"] = self.trace_id
        if self.span_id is not None:
            out["span_id"] = self.span_id
        if self.request_id is not None:
            out["request_id"] = self.request_id
        if self.tenant is not None:
            out["tenant"] = self.tenant
        if self.deadline is not None:
            out["deadline_remaining_seconds"] = round(
                self.deadline.remaining(), 6
            )
        return out
