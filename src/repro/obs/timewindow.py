"""Rolling time-window aggregation and a top-K slow-operation log.

The registry (:mod:`repro.obs.registry`) answers "how many since the
process started"; this module answers "what happened over the last five
minutes" — the temporal-drilldown stance the VAP paper takes toward
energy data, turned on the system itself.

:class:`TimeWindowStore` keeps a ring of N fixed-width windows.  Each
event lands in the window covering its arrival time; asking for a series
returns per-window counts, rates and latency quantiles, oldest first.
Like the PR-1 instruments the clock is injectable, so window-roll tests
advance logical time instead of sleeping.

:class:`SlowOpLog` retains the K slowest operations ever offered (a
min-heap, O(log K) per offer) together with the request ID that caused
each one — the "which request caused it" half of the question.
"""

from __future__ import annotations

import heapq
import threading
import time
from typing import Callable, Sequence

from repro.obs.logging import current_request_id, current_tenant
from repro.obs.registry import Labels, _label_key


class _WindowStat:
    """Aggregate for one (name, labels) identity inside one window."""

    __slots__ = ("count", "total", "samples")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.samples: list[float] = []


def _percentile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of a non-empty sorted sample list."""
    rank = max(int(q * len(samples) + 0.5), 1)
    return samples[min(rank, len(samples)) - 1]


class TimeWindowStore:
    """Ring of fixed-width windows aggregating counts and value samples.

    Parameters
    ----------
    width_seconds:
        Width of one window.
    n_windows:
        Windows retained; older ones roll off.
    clock:
        Monotonic-seconds callable (``time.monotonic`` by default),
        injectable for deterministic tests.
    max_samples:
        Per-identity per-window cap on retained value samples; beyond it
        counts and sums stay exact but quantiles reflect the first
        ``max_samples`` observations of that window.
    """

    def __init__(
        self,
        width_seconds: float = 10.0,
        n_windows: int = 30,
        clock: Callable[[], float] = time.monotonic,
        max_samples: int = 512,
    ) -> None:
        if width_seconds <= 0:
            raise ValueError(f"width_seconds must be positive, got {width_seconds}")
        if n_windows < 1:
            raise ValueError(f"n_windows must be >= 1, got {n_windows}")
        if max_samples < 1:
            raise ValueError(f"max_samples must be >= 1, got {max_samples}")
        self.width_seconds = float(width_seconds)
        self.n_windows = n_windows
        self.clock = clock
        self.max_samples = max_samples
        self._lock = threading.Lock()
        # window index -> identity -> stat; indices are now // width.
        self._windows: dict[int, dict[tuple[str, Labels], _WindowStat]] = {}

    def _advance(self) -> int:
        """Drop windows older than the horizon; returns the live index."""
        index = int(self.clock() // self.width_seconds)
        horizon = index - self.n_windows + 1
        for stale in [i for i in self._windows if i < horizon]:
            del self._windows[stale]
        return index

    def record(self, name: str, value: float | None = None, **labels: object) -> None:
        """Count one event (and optionally one value sample) right now."""
        with self._lock:
            index = self._advance()
            window = self._windows.setdefault(index, {})
            key = (name, _label_key(labels))
            stat = window.get(key)
            if stat is None:
                stat = window[key] = _WindowStat()
            stat.count += 1
            if value is not None:
                value = float(value)
                stat.total += value
                if len(stat.samples) < self.max_samples:
                    stat.samples.append(value)

    def keys(self) -> list[tuple[str, dict[str, str]]]:
        """Every (name, labels) identity seen in a live window, sorted."""
        with self._lock:
            self._advance()
            seen = {key for window in self._windows.values() for key in window}
            return [(name, dict(labels)) for name, labels in sorted(seen)]

    def series(self, name: str, **labels: object) -> dict:
        """Windowed series for one identity, oldest window first.

        Every retained window appears (empty ones with zero count), so
        plots have a fixed time axis.  ``t`` is the window's start on the
        store's monotonic clock; latency fields are ``None`` for windows
        without value samples.
        """
        key = (name, _label_key(labels))
        with self._lock:
            index = self._advance()
            windows = []
            for i in range(index - self.n_windows + 1, index + 1):
                stat = self._windows.get(i, {}).get(key)
                entry: dict[str, object] = {
                    "t": i * self.width_seconds,
                    "count": 0,
                    "rate": 0.0,
                    "mean": None,
                    "max": None,
                    "p50": None,
                    "p99": None,
                }
                if stat is not None:
                    entry["count"] = stat.count
                    entry["rate"] = stat.count / self.width_seconds
                    if stat.samples:
                        ordered = sorted(stat.samples)
                        entry["mean"] = stat.total / stat.count
                        entry["max"] = ordered[-1]
                        entry["p50"] = _percentile(ordered, 0.50)
                        entry["p99"] = _percentile(ordered, 0.99)
                windows.append(entry)
        return {
            "name": name,
            "labels": {k: v for k, v in key[1]},
            "window_seconds": self.width_seconds,
            "windows": windows,
        }

    def snapshot(self) -> list[dict]:
        """Series for every live identity (JSON-ready)."""
        return [self.series(name, **labels) for name, labels in self.keys()]

    def reset(self) -> None:
        """Drop every window (test isolation)."""
        with self._lock:
            self._windows.clear()


class SlowOpLog:
    """Top-K slowest operations, each tied to the request that caused it.

    Parameters
    ----------
    capacity:
        How many records to retain; the fastest retained record is evicted
        when a slower one arrives.
    """

    def __init__(self, capacity: int = 32) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._heap: list[tuple[float, int, dict]] = []
        self._seq = 0  # tie-break so dicts never get compared

    def offer(
        self,
        name: str,
        duration: float,
        request_id: str | None = None,
        tenant: str | None = None,
        **tags: object,
    ) -> None:
        """Offer one finished operation; kept only if among the K slowest.

        ``request_id`` and ``tenant`` default to the ones bound to the
        current context, so call sites inside a request need not pass
        them — including shard tasks on pool threads, which re-bind the
        originating request's context before running.
        """
        duration = float(duration)
        if request_id is None:
            request_id = current_request_id()
        if tenant is None:
            tenant = current_tenant()
        record = {
            "name": name,
            "duration_ms": duration * 1000.0,
            "request_id": request_id,
        }
        if tenant is not None:
            record["tenant"] = tenant
        if tags:
            record["tags"] = {k: str(v) for k, v in tags.items()}
        with self._lock:
            self._seq += 1
            item = (duration, self._seq, record)
            if len(self._heap) < self.capacity:
                heapq.heappush(self._heap, item)
            elif duration > self._heap[0][0]:
                heapq.heapreplace(self._heap, item)

    def records(self) -> list[dict]:
        """Retained records, slowest first (JSON-ready)."""
        with self._lock:
            ordered = sorted(self._heap, key=lambda item: -item[0])
            return [dict(record) for _, _, record in ordered]

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)

    def reset(self) -> None:
        with self._lock:
            self._heap.clear()
