"""Observability: metrics registry + trace spans for every layer.

The VAP reproduction aims at interactive latency on ever-larger data
sets; this package is how any perf claim gets measured.  Two halves:

- :class:`~repro.obs.registry.MetricsRegistry` — thread-safe counters,
  gauges and fixed-bucket histograms (request rates, cache hit ratios,
  latency percentiles);
- :class:`~repro.obs.spans.Tracer` / :func:`~repro.obs.spans.span` —
  nested wall-time spans exported as trees to a sink
  (:class:`~repro.obs.sinks.RingBufferSink` in memory, or the default
  :class:`~repro.obs.sinks.NullSink` which makes tracing free).

One process-wide default registry and tracer serve call sites that are
not handed an explicit one (the numeric kernels, the CLI); sessions,
databases and apps accept their own for isolation.  Swap the defaults
with :func:`configure`::

    from repro import obs
    from repro.obs import RingBufferSink

    sink = RingBufferSink()
    obs.configure(sink=sink)          # start collecting span trees
    ... run a workload ...
    for root in sink.records():
        print("\\n".join(root.format_tree()))
    print(obs.get_registry().snapshot())

Outward surfaces: ``GET /api/metrics`` on the REST API, the ``repro
stats`` CLI command, and the ``REPRO_BENCH_SPANS=1`` benchmark dump hook.
"""

from __future__ import annotations

from typing import Callable

from repro.obs.registry import (
    COUNT_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.sinks import NullSink, RingBufferSink
from repro.obs.spans import SpanRecord, Tracer, span

__all__ = [
    "COUNT_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullSink",
    "RingBufferSink",
    "SpanRecord",
    "Tracer",
    "configure",
    "get_registry",
    "get_tracer",
    "reset",
    "span",
]

_default_registry = MetricsRegistry()
_default_tracer = Tracer()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _default_registry


def get_tracer() -> Tracer:
    """The process-wide default tracer (NullSink until configured)."""
    return _default_tracer


def configure(
    *,
    registry: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
    sink: object | None = None,
    clock: Callable[[], float] | None = None,
) -> tuple[MetricsRegistry, Tracer]:
    """Swap the process-wide defaults; returns ``(registry, tracer)``.

    Only the arguments given change: ``tracer`` installs that exact
    tracer (use it to restore a saved one), ``sink``/``clock`` rebuild
    the default tracer keeping the other half, ``registry`` replaces the
    default registry wholesale.
    """
    global _default_registry, _default_tracer
    if tracer is not None and (sink is not None or clock is not None):
        raise ValueError("pass either tracer or sink/clock, not both")
    if registry is not None:
        _default_registry = registry
    if tracer is not None:
        _default_tracer = tracer
    elif sink is not None or clock is not None:
        _default_tracer = Tracer(
            sink=sink if sink is not None else _default_tracer.sink,
            clock=clock if clock is not None else _default_tracer.clock,
        )
    return _default_registry, _default_tracer


def reset() -> tuple[MetricsRegistry, Tracer]:
    """Restore a fresh registry and a NullSink tracer (test isolation)."""
    global _default_registry, _default_tracer
    _default_registry = MetricsRegistry()
    _default_tracer = Tracer()
    return _default_registry, _default_tracer
