"""Observability: metrics, spans, structured logs, rolling windows.

The VAP reproduction aims at interactive latency on ever-larger data
sets; this package is how any perf claim gets measured.  Four parts:

- :class:`~repro.obs.registry.MetricsRegistry` — thread-safe counters,
  gauges and fixed-bucket histograms (request rates, cache hit ratios,
  latency percentiles);
- :class:`~repro.obs.spans.Tracer` / :func:`~repro.obs.spans.span` —
  nested wall-time spans exported as trees to a sink
  (:class:`~repro.obs.sinks.RingBufferSink` in memory, or the default
  :class:`~repro.obs.sinks.NullSink` which makes tracing free);
- :class:`~repro.obs.logging.JsonLogger` — one-JSON-object-per-line
  structured logs, correlated across layers by the request ID the WSGI
  middleware binds in a context variable
  (:func:`~repro.obs.logging.bind_request_id`);
- :class:`~repro.obs.timewindow.TimeWindowStore` /
  :class:`~repro.obs.timewindow.SlowOpLog` — rolling per-window
  rates/quantiles and the K slowest operations with their request IDs,
  the data behind ``GET /api/telemetry``.

One process-wide default of each serves call sites that are not handed
an explicit one (the numeric kernels, the CLI); sessions, databases and
apps accept their own for isolation.  Swap the defaults with
:func:`configure`::

    from repro import obs
    from repro.obs import RingBufferSink

    sink = RingBufferSink()
    obs.configure(sink=sink)          # start collecting span trees
    ... run a workload ...
    for root in sink.records():
        print("\\n".join(root.format_tree()))
    print(obs.get_registry().snapshot())

Outward surfaces: ``GET /api/metrics`` (JSON, or Prometheus text with
``?format=prometheus``), ``GET /api/telemetry`` (windowed series, JSON
or an SVG panel), the ``repro stats`` CLI command (``--dashboard`` for
the SVG), and the ``REPRO_BENCH_SPANS=1`` benchmark dump hook.
"""

from __future__ import annotations

from typing import Callable

from repro.obs.logging import (
    JsonLogger,
    bind_request_id,
    bind_tenant,
    current_request_id,
    current_tenant,
    new_request_id,
)
from repro.obs.profiler import StackProfiler
from repro.obs.prometheus import render_prometheus
from repro.obs.registry import (
    COUNT_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    set_exemplar_provider,
)
from repro.obs.sinks import NullSink, RingBufferSink
from repro.obs.slo import (
    OBSERVABILITY_ROUTE_PREFIXES,
    SloEngine,
    SloSpec,
    default_slos,
)
from repro.obs.spans import SpanRecord, Tracer, span
from repro.obs.timewindow import SlowOpLog, TimeWindowStore
from repro.obs.tracecontext import TraceContext, current_remote_parent
from repro.obs.tracestore import TraceStore

__all__ = [
    "COUNT_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonLogger",
    "MetricsRegistry",
    "NullSink",
    "RingBufferSink",
    "OBSERVABILITY_ROUTE_PREFIXES",
    "SloEngine",
    "SloSpec",
    "SlowOpLog",
    "SpanRecord",
    "StackProfiler",
    "TimeWindowStore",
    "TraceContext",
    "TraceStore",
    "Tracer",
    "bind_request_id",
    "bind_tenant",
    "configure",
    "current_request_id",
    "current_remote_parent",
    "current_tenant",
    "current_trace_id",
    "default_slos",
    "get_logger",
    "get_registry",
    "get_slow_log",
    "get_trace_store",
    "get_tracer",
    "get_window_store",
    "log_event",
    "new_request_id",
    "render_prometheus",
    "reset",
    "set_exemplar_provider",
    "span",
]

_default_registry = MetricsRegistry()
_default_tracer = Tracer()
_default_logger = JsonLogger()
_default_window_store = TimeWindowStore()
_default_slow_log = SlowOpLog()


def current_trace_id() -> str | None:
    """The trace id active on this thread (open span or remote parent).

    Installed as the registry's exemplar provider, so any histogram
    observation made while a trace is active links back to it.
    """
    current = _default_tracer.current()
    if current is not None and current.trace_id is not None:
        return current.trace_id
    remote = current_remote_parent()
    if remote is not None:
        return remote[0]
    return None


set_exemplar_provider(current_trace_id)


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _default_registry


def get_tracer() -> Tracer:
    """The process-wide default tracer (NullSink until configured)."""
    return _default_tracer


def get_trace_store() -> TraceStore | None:
    """The default tracer's trace store, if one is attached."""
    store = _default_tracer.store
    return store if isinstance(store, TraceStore) else None


def get_logger() -> JsonLogger:
    """The process-wide default structured logger (stderr, info level)."""
    return _default_logger


def get_window_store() -> TimeWindowStore:
    """The process-wide default rolling time-window store."""
    return _default_window_store


def get_slow_log() -> SlowOpLog:
    """The process-wide default slow-operation log."""
    return _default_slow_log


def log_event(event: str, level: str = "info", **fields: object) -> None:
    """Emit one structured record through the default logger."""
    _default_logger.log(event, level=level, **fields)


def configure(
    *,
    registry: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
    sink: object | None = None,
    clock: Callable[[], float] | None = None,
    trace_store: TraceStore | None = None,
    logger: JsonLogger | None = None,
    window_store: TimeWindowStore | None = None,
    slow_log: SlowOpLog | None = None,
) -> tuple[MetricsRegistry, Tracer]:
    """Swap the process-wide defaults; returns ``(registry, tracer)``.

    Only the arguments given change: ``tracer`` installs that exact
    tracer (use it to restore a saved one), ``sink``/``clock``/
    ``trace_store`` rebuild the default tracer keeping the untouched
    parts, and ``registry``, ``logger``, ``window_store`` and
    ``slow_log`` replace their defaults wholesale.
    """
    global _default_registry, _default_tracer, _default_logger
    global _default_window_store, _default_slow_log
    if tracer is not None and (
        sink is not None or clock is not None or trace_store is not None
    ):
        raise ValueError(
            "pass either tracer or sink/clock/trace_store, not both"
        )
    if registry is not None:
        _default_registry = registry
    if tracer is not None:
        _default_tracer = tracer
    elif sink is not None or clock is not None or trace_store is not None:
        _default_tracer = Tracer(
            sink=sink if sink is not None else _default_tracer.sink,
            clock=clock if clock is not None else _default_tracer.clock,
            store=(
                trace_store
                if trace_store is not None
                else _default_tracer.store
            ),
        )
    if logger is not None:
        _default_logger = logger
    if window_store is not None:
        _default_window_store = window_store
    if slow_log is not None:
        _default_slow_log = slow_log
    return _default_registry, _default_tracer


def reset() -> tuple[MetricsRegistry, Tracer]:
    """Restore fresh process-wide defaults (test isolation).

    Returns ``(registry, tracer)`` like :func:`configure`; the logger,
    window store and slow-op log are recreated too.
    """
    global _default_registry, _default_tracer, _default_logger
    global _default_window_store, _default_slow_log
    _default_registry = MetricsRegistry()
    _default_tracer = Tracer()
    _default_logger = JsonLogger()
    _default_window_store = TimeWindowStore()
    _default_slow_log = SlowOpLog()
    return _default_registry, _default_tracer
