"""Nested trace spans with wall time and tags.

A *span* brackets one unit of work (``pipeline.embed``, ``db.demand``,
one HTTP request).  Spans opened while another span is active on the same
thread become its children, so a finished root span is a tree mirroring
the call structure; the tracer exports each finished root to its sink.

With the default :class:`~repro.obs.sinks.NullSink` the whole machinery
short-circuits: ``span(...)`` yields ``None`` without even reading the
clock, so instrumentation left in hot kernels is free until someone
installs a real sink.

The clock is injectable (any zero-argument monotonic-seconds callable),
which keeps timing tests deterministic — no sleeping, no wall-time flake.
"""

from __future__ import annotations

import functools
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.obs.logging import current_request_id, current_tenant
from repro.obs.sinks import NullSink
from repro.obs.tracecontext import current_remote_parent


def new_span_id() -> str:
    """A fresh 16-hex-char span ID."""
    return uuid.uuid4().hex[:16]


@dataclass(slots=True)
class SpanRecord:
    """One finished (or in-flight) span.

    ``duration`` is wall seconds, filled in when the span closes;
    ``error`` is the exception type name when the block raised;
    ``request_id`` is the correlation ID bound to the context when the
    span opened (see :mod:`repro.obs.logging`), if any; ``tenant`` is
    the tenant bound when it opened.  ``trace_id``/``span_id``/
    ``parent_id`` are assigned when a trace store is attached to the
    tracer: a span opened on a pool worker under a propagated
    :class:`~repro.obs.tracecontext.TraceContext` records the remote
    parent's ids, so the store can stitch it back into the caller's
    tree.
    """

    name: str
    tags: dict[str, object]
    start: float
    duration: float = 0.0
    error: str | None = None
    request_id: str | None = None
    tenant: str | None = None
    trace_id: str | None = None
    span_id: str | None = None
    parent_id: str | None = None
    children: list["SpanRecord"] = field(default_factory=list)

    def walk(self) -> Iterator["SpanRecord"]:
        """This span then every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_record(self) -> dict:
        """JSON-ready dict (recursive)."""
        out: dict = {
            "name": self.name,
            "duration_ms": self.duration * 1000.0,
        }
        if self.request_id is not None:
            out["request_id"] = self.request_id
        if self.tenant is not None:
            out["tenant"] = self.tenant
        if self.trace_id is not None:
            out["trace_id"] = self.trace_id
        if self.span_id is not None:
            out["span_id"] = self.span_id
        if self.parent_id is not None:
            out["parent_id"] = self.parent_id
        if self.tags:
            out["tags"] = dict(self.tags)
        if self.error is not None:
            out["error"] = self.error
        if self.children:
            out["children"] = [c.to_record() for c in self.children]
        return out

    def format_tree(self, indent: int = 0) -> list[str]:
        """Human-readable indented lines (for CLI / benchmark dumps)."""
        tags = " ".join(f"{k}={v}" for k, v in self.tags.items())
        suffix = f"  [{tags}]" if tags else ""
        if self.error is not None:
            suffix += f"  !{self.error}"
        lines = [
            f"{'  ' * indent}{self.name:<{max(28 - 2 * indent, 1)}}"
            f"{self.duration * 1000.0:>10.2f} ms{suffix}"
        ]
        for child in self.children:
            lines.extend(child.format_tree(indent + 1))
        return lines


class _SpanContext:
    """Context manager for one span; not reusable."""

    __slots__ = ("_tracer", "_record", "_parent")

    def __init__(self, tracer: "Tracer", name: str, tags: dict[str, object]):
        self._tracer = tracer
        self._record = SpanRecord(name=name, tags=tags, start=0.0)
        self._parent: SpanRecord | None = None

    def __enter__(self) -> SpanRecord:
        tracer = self._tracer
        record = self._record
        stack = tracer._stack()
        self._parent = stack[-1] if stack else None
        record.request_id = current_request_id()
        record.tenant = current_tenant()
        if tracer.store is not None:
            record.span_id = new_span_id()
            if self._parent is not None:
                record.trace_id = self._parent.trace_id
                record.parent_id = self._parent.span_id
            else:
                remote = current_remote_parent()
                if remote is not None:
                    record.trace_id, record.parent_id = remote
                else:
                    record.trace_id = new_span_id()
        record.start = tracer.clock()
        stack.append(record)
        return record

    def __exit__(self, exc_type, exc, tb) -> None:
        record = self._record
        tracer = self._tracer
        record.duration = tracer.clock() - record.start
        if exc_type is not None:
            record.error = exc_type.__name__
        stack = tracer._stack()
        if stack and stack[-1] is record:
            stack.pop()
        if self._parent is not None:
            self._parent.children.append(record)
            return
        # Thread-root span: a detached fragment when it carries a
        # propagated parent (it belongs inside another thread's tree, so
        # it goes to the store for stitching, not to the sink), a true
        # trace root otherwise.
        if tracer.store is not None and record.parent_id is not None:
            tracer.store.add_fragment(record)
            return
        if tracer.store is not None:
            tracer.store.add_trace(record)
        tracer.sink.export(record)


class _NoopContext:
    """Shared do-nothing context for the disabled (NullSink) path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NOOP = _NoopContext()


class Tracer:
    """Produces spans, threads their nesting, exports finished roots.

    Parameters
    ----------
    sink:
        Destination for finished root spans; :class:`NullSink` (the
        default) disables tracing entirely unless a store is attached.
    clock:
        Monotonic-seconds callable; injectable for deterministic tests.
    store:
        Optional :class:`~repro.obs.tracestore.TraceStore`.  When set,
        spans are assigned trace/span/parent ids, finished roots are
        retained for ``/api/traces``, and detached thread-root spans
        (opened under a propagated :class:`TraceContext`) are stitched
        back into the originating trace instead of being exported as
        their own roots.
    """

    def __init__(
        self,
        sink: object | None = None,
        clock: Callable[[], float] = time.perf_counter,
        store: object | None = None,
    ) -> None:
        self.sink = sink if sink is not None else NullSink()
        self.clock = clock
        self.store = store
        self._local = threading.local()

    @property
    def enabled(self) -> bool:
        """False when there is neither a real sink nor a trace store."""
        return self.store is not None or not isinstance(self.sink, NullSink)

    def _stack(self) -> list[SpanRecord]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def span(self, name: str, **tags: object) -> _SpanContext | _NoopContext:
        """Open a span; use as ``with tracer.span("work", k=1) as rec:``.

        Yields the in-flight :class:`SpanRecord` (or ``None`` when
        disabled — the disabled path never touches the clock).
        """
        if not self.enabled:
            return _NOOP
        return _SpanContext(self, name, tags)

    def current(self) -> SpanRecord | None:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None


class span:
    """Module-level span handle bound to the *current* global tracer.

    Works both ways::

        with span("pipeline.embed", method="tsne"):
            ...

        @span("kernel.tsne")
        def tsne(...): ...

    The global tracer is looked up at ``__enter__``/call time, not at
    construction, so ``repro.obs.configure(sink=...)`` takes effect even
    for decorators applied at import time.
    """

    __slots__ = ("name", "tags", "_cm")

    def __init__(self, name: str, **tags: object) -> None:
        self.name = name
        self.tags = tags
        self._cm: _SpanContext | _NoopContext | None = None

    def __enter__(self) -> SpanRecord | None:
        from repro.obs import get_tracer  # late: avoid import cycle

        self._cm = get_tracer().span(self.name, **self.tags)
        return self._cm.__enter__()

    def __exit__(self, exc_type, exc, tb) -> None:
        cm, self._cm = self._cm, None
        assert cm is not None
        return cm.__exit__(exc_type, exc, tb)

    def __call__(self, func: Callable) -> Callable:
        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            from repro.obs import get_tracer

            with get_tracer().span(self.name, **self.tags):
                return func(*args, **kwargs)

        return wrapper
