"""Nested trace spans with wall time and tags.

A *span* brackets one unit of work (``pipeline.embed``, ``db.demand``,
one HTTP request).  Spans opened while another span is active on the same
thread become its children, so a finished root span is a tree mirroring
the call structure; the tracer exports each finished root to its sink.

With the default :class:`~repro.obs.sinks.NullSink` the whole machinery
short-circuits: ``span(...)`` yields ``None`` without even reading the
clock, so instrumentation left in hot kernels is free until someone
installs a real sink.

The clock is injectable (any zero-argument monotonic-seconds callable),
which keeps timing tests deterministic — no sleeping, no wall-time flake.
"""

from __future__ import annotations

import functools
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.obs.logging import current_request_id
from repro.obs.sinks import NullSink


@dataclass(slots=True)
class SpanRecord:
    """One finished (or in-flight) span.

    ``duration`` is wall seconds, filled in when the span closes;
    ``error`` is the exception type name when the block raised;
    ``request_id`` is the correlation ID bound to the context when the
    span opened (see :mod:`repro.obs.logging`), if any.
    """

    name: str
    tags: dict[str, object]
    start: float
    duration: float = 0.0
    error: str | None = None
    request_id: str | None = None
    children: list["SpanRecord"] = field(default_factory=list)

    def walk(self) -> Iterator["SpanRecord"]:
        """This span then every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_record(self) -> dict:
        """JSON-ready dict (recursive)."""
        out: dict = {
            "name": self.name,
            "duration_ms": self.duration * 1000.0,
        }
        if self.request_id is not None:
            out["request_id"] = self.request_id
        if self.tags:
            out["tags"] = dict(self.tags)
        if self.error is not None:
            out["error"] = self.error
        if self.children:
            out["children"] = [c.to_record() for c in self.children]
        return out

    def format_tree(self, indent: int = 0) -> list[str]:
        """Human-readable indented lines (for CLI / benchmark dumps)."""
        tags = " ".join(f"{k}={v}" for k, v in self.tags.items())
        suffix = f"  [{tags}]" if tags else ""
        if self.error is not None:
            suffix += f"  !{self.error}"
        lines = [
            f"{'  ' * indent}{self.name:<{max(28 - 2 * indent, 1)}}"
            f"{self.duration * 1000.0:>10.2f} ms{suffix}"
        ]
        for child in self.children:
            lines.extend(child.format_tree(indent + 1))
        return lines


class _SpanContext:
    """Context manager for one span; not reusable."""

    __slots__ = ("_tracer", "_record", "_parent")

    def __init__(self, tracer: "Tracer", name: str, tags: dict[str, object]):
        self._tracer = tracer
        self._record = SpanRecord(name=name, tags=tags, start=0.0)
        self._parent: SpanRecord | None = None

    def __enter__(self) -> SpanRecord:
        stack = self._tracer._stack()
        self._parent = stack[-1] if stack else None
        self._record.request_id = current_request_id()
        self._record.start = self._tracer.clock()
        stack.append(self._record)
        return self._record

    def __exit__(self, exc_type, exc, tb) -> None:
        record = self._record
        record.duration = self._tracer.clock() - record.start
        if exc_type is not None:
            record.error = exc_type.__name__
        stack = self._tracer._stack()
        if stack and stack[-1] is record:
            stack.pop()
        if self._parent is not None:
            self._parent.children.append(record)
        else:
            self._tracer.sink.export(record)


class _NoopContext:
    """Shared do-nothing context for the disabled (NullSink) path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NOOP = _NoopContext()


class Tracer:
    """Produces spans, threads their nesting, exports finished roots.

    Parameters
    ----------
    sink:
        Destination for finished root spans; :class:`NullSink` (the
        default) disables tracing entirely.
    clock:
        Monotonic-seconds callable; injectable for deterministic tests.
    """

    def __init__(
        self,
        sink: object | None = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.sink = sink if sink is not None else NullSink()
        self.clock = clock
        self._local = threading.local()

    @property
    def enabled(self) -> bool:
        """False when the sink is a :class:`NullSink` (spans are no-ops)."""
        return not isinstance(self.sink, NullSink)

    def _stack(self) -> list[SpanRecord]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def span(self, name: str, **tags: object) -> _SpanContext | _NoopContext:
        """Open a span; use as ``with tracer.span("work", k=1) as rec:``.

        Yields the in-flight :class:`SpanRecord` (or ``None`` when
        disabled — the disabled path never touches the clock).
        """
        if not self.enabled:
            return _NOOP
        return _SpanContext(self, name, tags)

    def current(self) -> SpanRecord | None:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None


class span:
    """Module-level span handle bound to the *current* global tracer.

    Works both ways::

        with span("pipeline.embed", method="tsne"):
            ...

        @span("kernel.tsne")
        def tsne(...): ...

    The global tracer is looked up at ``__enter__``/call time, not at
    construction, so ``repro.obs.configure(sink=...)`` takes effect even
    for decorators applied at import time.
    """

    __slots__ = ("name", "tags", "_cm")

    def __init__(self, name: str, **tags: object) -> None:
        self.name = name
        self.tags = tags
        self._cm: _SpanContext | _NoopContext | None = None

    def __enter__(self) -> SpanRecord | None:
        from repro.obs import get_tracer  # late: avoid import cycle

        self._cm = get_tracer().span(self.name, **self.tags)
        return self._cm.__enter__()

    def __exit__(self, exc_type, exc, tb) -> None:
        cm, self._cm = self._cm, None
        assert cm is not None
        return cm.__exit__(exc_type, exc, tb)

    def __call__(self, func: Callable) -> Callable:
        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            from repro.obs import get_tracer

            with get_tracer().span(self.name, **self.tags):
                return func(*args, **kwargs)

        return wrapper
