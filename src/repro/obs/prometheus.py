"""Prometheus text-format (version 0.0.4) exposition of a snapshot.

Renders the JSON-ready snapshot produced by
:meth:`repro.obs.MetricsRegistry.snapshot` as the plain-text format every
Prometheus-compatible scraper understands — so the reproduction's metrics
can be wired into a real monitoring stack without any client library.

Format rules honoured here:

- metric and label names sanitised to ``[a-zA-Z_:][a-zA-Z0-9_:]*``
  (labels additionally exclude the colon);
- label values escaped: backslash, double quote and newline;
- one ``# TYPE`` line per metric name, before its first sample;
- histogram ``_bucket`` samples are *cumulative* over increasing ``le``
  (our internal per-bucket counts are not) and always end with
  ``le="+Inf"`` equal to ``_count``;
- bucket exemplars use the OpenMetrics suffix syntax
  ``... # {trace_id="<id>"} <value>`` so a scraped latency bucket links
  straight to the trace that landed in it.  Plain 0.0.4 scrapers treat
  everything after ``#`` as a comment, so exemplars degrade gracefully.
"""

from __future__ import annotations

import re

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_BAD = re.compile(r"[^a-zA-Z0-9_]")


def sanitize_name(name: str) -> str:
    """Coerce a metric name into the allowed character set."""
    if _NAME_OK.match(name):
        return name
    out = _NAME_BAD.sub("_", name) or "_"
    if out[0].isdigit():
        out = "_" + out
    return out


def sanitize_label_name(name: str) -> str:
    """Coerce a label name (no colon allowed, no ``__`` prefix)."""
    out = _LABEL_BAD.sub("_", name) or "_"
    out = out.lstrip("_") or "_"  # "__" prefix is reserved by Prometheus
    if out[0].isdigit():
        out = "_" + out
    return out


def escape_label_value(value: str) -> str:
    """Escape a label value for use inside double quotes."""
    return (
        value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )


def format_value(value: float) -> str:
    """Sample value formatting: integral floats without the ``.0``."""
    value = float(value)
    if value != value:
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _label_str(labels: dict[str, object], extra: list[tuple[str, str]] | None = None) -> str:
    pairs = [
        (sanitize_label_name(str(k)), escape_label_value(str(v)))
        for k, v in sorted(labels.items())
    ]
    if extra:
        pairs.extend(extra)
    if not pairs:
        return ""
    return "{" + ",".join(f'{k}="{v}"' for k, v in pairs) + "}"


def _exemplar_str(exemplar: dict | None) -> str:
    """OpenMetrics exemplar suffix for a bucket sample, or ``""``."""
    if not exemplar:
        return ""
    trace_id = escape_label_value(str(exemplar["trace_id"]))
    return f' # {{trace_id="{trace_id}"}} {format_value(exemplar["value"])}'


def render_prometheus(snapshot: dict) -> str:
    """Render a registry snapshot dict as Prometheus exposition text.

    Accepts the exact schema :meth:`MetricsRegistry.snapshot` produces
    (extra keys such as ``spans`` or ``span_sink`` are ignored) and
    returns text ending in a newline.
    """
    lines: list[str] = []
    typed: set[str] = set()

    def type_line(name: str, kind: str) -> None:
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for record in snapshot.get("counters", ()):
        name = sanitize_name(record["name"])
        type_line(name, "counter")
        lines.append(
            f"{name}{_label_str(record['labels'])} "
            f"{format_value(record['value'])}"
        )
    for record in snapshot.get("gauges", ()):
        name = sanitize_name(record["name"])
        type_line(name, "gauge")
        lines.append(
            f"{name}{_label_str(record['labels'])} "
            f"{format_value(record['value'])}"
        )
    for record in snapshot.get("histograms", ()):
        name = sanitize_name(record["name"])
        type_line(name, "histogram")
        labels = record["labels"]
        running = 0
        overflow_exemplar = ""
        for bucket in record["buckets"]:
            exemplar = _exemplar_str(bucket.get("exemplar"))
            if bucket["le"] == "+Inf":
                overflow_exemplar = exemplar
                continue
            running += bucket["count"]
            le = format_value(float(bucket["le"]))
            lines.append(
                f"{name}_bucket{_label_str(labels, extra=[('le', le)])} "
                f"{running}{exemplar}"
            )
        lines.append(
            f"{name}_bucket{_label_str(labels, extra=[('le', '+Inf')])} "
            f"{record['count']}{overflow_exemplar}"
        )
        lines.append(
            f"{name}_sum{_label_str(labels)} {format_value(record['sum'])}"
        )
        lines.append(f"{name}_count{_label_str(labels)} {record['count']}")
    return "\n".join(lines) + "\n"
