"""Thread-safe metrics: counters, gauges and fixed-bucket histograms.

The registry is the numeric half of the observability layer (spans are the
structural half, see :mod:`repro.obs.spans`).  Instruments follow the
Prometheus vocabulary — a *counter* only goes up, a *gauge* holds the last
value, a *histogram* sorts observations into fixed ``le`` (less-or-equal)
buckets so latency percentiles can be estimated without storing samples.

Every instrument is identified by ``(name, labels)``; asking the registry
for the same identity twice returns the same object, so call sites never
need to pre-register anything.  All mutation goes through one registry
lock — the hot operations are a dict lookup plus a float add, cheap next
to any of the numeric kernels they wrap.

The registry's clock is injectable (``perf_counter`` by default) so timing
tests are deterministic: pass any zero-argument callable returning
monotonic seconds.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from contextlib import contextmanager
from typing import Callable, Iterator, Sequence

# Latency buckets in seconds, spanning sub-millisecond JSON handlers to
# multi-second t-SNE runs.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
    5.0, 10.0, 30.0,
)

# Buckets for discrete quantities — solver iterations, batch sizes.
COUNT_BUCKETS: tuple[float, ...] = (
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1000,
)

Labels = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, object]) -> Labels:
    """Canonical, hashable form of a label set (values stringified)."""
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


# Optional callable returning the current trace id (or None).  Installed
# by :mod:`repro.obs` at import time; kept as an injection point here so
# the registry never imports the tracer (that would be a cycle) and so
# tests can stub it.  When set, histogram observations automatically pick
# up an exemplar linking the bucket to the trace that produced it.
_exemplar_provider: Callable[[], str | None] | None = None


def set_exemplar_provider(provider: Callable[[], str | None] | None) -> None:
    """Install (or clear) the process-wide exemplar trace-id provider."""
    global _exemplar_provider
    _exemplar_provider = provider


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: Labels, lock: threading.RLock) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = lock

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative — counters never go down).

        Raises
        ------
        ValueError
            For a negative amount.
        """
        if amount < 0:
            raise ValueError(f"counters only increase; got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def to_record(self) -> dict:
        return {"name": self.name, "labels": dict(self.labels), "value": self._value}


class Gauge:
    """Last-value instrument (can move in either direction)."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: Labels, lock: threading.RLock) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = lock

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def to_record(self) -> dict:
        return {"name": self.name, "labels": dict(self.labels), "value": self._value}


class Histogram:
    """Fixed-bucket histogram with ``le`` (less-or-equal) edge semantics.

    An observation lands in the first bucket whose upper bound is >= the
    value; anything above the last bound goes to the implicit ``+Inf``
    overflow bucket.  The per-bucket counts are *not* cumulative, so they
    always sum to the observation count.
    """

    __slots__ = (
        "name", "labels", "buckets", "_counts", "_sum", "_count",
        "_exemplars", "_lock",
    )

    def __init__(
        self,
        name: str,
        labels: Labels,
        buckets: Sequence[float],
        lock: threading.RLock,
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must strictly increase: {bounds}")
        self.name = name
        self.labels = labels
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1 = +Inf overflow
        self._sum = 0.0
        self._count = 0
        # Last (trace_id, value) seen per bucket — OpenMetrics exemplars.
        self._exemplars: list[tuple[str, float] | None] = [None] * (
            len(bounds) + 1
        )
        self._lock = lock

    def observe(self, value: float, trace_id: str | None = None) -> None:
        """Record one observation, optionally tagged with a trace id.

        When ``trace_id`` is omitted the installed exemplar provider
        (see :func:`set_exemplar_provider`) is consulted, so any
        observation made while a trace is active links its bucket to
        that trace for free.

        Raises
        ------
        ValueError
            For NaN (it belongs to no bucket).
        """
        value = float(value)
        if value != value:  # NaN
            raise ValueError("cannot observe NaN")
        if trace_id is None and _exemplar_provider is not None:
            trace_id = _exemplar_provider()
        index = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1
            if trace_id is not None:
                self._exemplars[index] = (trace_id, value)

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def bucket_counts(self) -> list[int]:
        """Per-bucket counts (last entry is the +Inf overflow bucket)."""
        with self._lock:
            return list(self._counts)

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket holding the q-quantile observation.

        Returns 0.0 with no observations; observations in the overflow
        bucket report the last finite bound (the estimate saturates).

        Raises
        ------
        ValueError
            For q outside [0, 1].
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            total = self._count
            if total == 0:
                return 0.0
            rank = q * total
            running = 0
            for bound, count in zip(self.buckets, self._counts):
                running += count
                if running >= rank:
                    return bound
        return self.buckets[-1]

    def to_record(self) -> dict:
        with self._lock:
            edges = []
            for i, (bound, count) in enumerate(
                zip(self.buckets, self._counts)
            ):
                edge: dict = {"le": bound, "count": count}
                exemplar = self._exemplars[i]
                if exemplar is not None:
                    edge["exemplar"] = {
                        "trace_id": exemplar[0], "value": exemplar[1]
                    }
                edges.append(edge)
            last: dict = {"le": "+Inf", "count": self._counts[-1]}
            overflow = self._exemplars[-1]
            if overflow is not None:
                last["exemplar"] = {
                    "trace_id": overflow[0], "value": overflow[1]
                }
            edges.append(last)
            return {
                "name": self.name,
                "labels": dict(self.labels),
                "count": self._count,
                "sum": self._sum,
                "buckets": edges,
                "p50": self.quantile(0.5),
                "p90": self.quantile(0.9),
                "p99": self.quantile(0.99),
            }


class MetricsRegistry:
    """Get-or-create store for all instruments of one process/app.

    Parameters
    ----------
    clock:
        Zero-argument monotonic-seconds callable used by :meth:`timer`;
        ``time.perf_counter`` by default, injectable for deterministic
        tests.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self.clock = clock
        self._lock = threading.RLock()
        self._counters: dict[tuple[str, Labels], Counter] = {}
        self._gauges: dict[tuple[str, Labels], Gauge] = {}
        self._histograms: dict[tuple[str, Labels], Histogram] = {}

    # ------------------------------------------------------------------
    # instrument access
    # ------------------------------------------------------------------
    def counter(self, name: str, **labels: object) -> Counter:
        key = (name, _label_key(labels))
        with self._lock:
            if key not in self._counters:
                self._counters[key] = Counter(name, key[1], self._lock)
            return self._counters[key]

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = (name, _label_key(labels))
        with self._lock:
            if key not in self._gauges:
                self._gauges[key] = Gauge(name, key[1], self._lock)
            return self._gauges[key]

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        **labels: object,
    ) -> Histogram:
        """Get-or-create a histogram.

        Raises
        ------
        ValueError
            If an existing histogram of the same identity was declared
            with different buckets — silently mixing scales would corrupt
            the percentiles.
        """
        key = (name, _label_key(labels))
        with self._lock:
            existing = self._histograms.get(key)
            if existing is None:
                self._histograms[key] = Histogram(
                    name, key[1], buckets, self._lock
                )
                return self._histograms[key]
            if existing.buckets != tuple(float(b) for b in buckets):
                raise ValueError(
                    f"histogram {name!r} {dict(key[1])} already declared "
                    f"with buckets {existing.buckets}"
                )
            return existing

    @contextmanager
    def timer(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        **labels: object,
    ) -> Iterator[Histogram]:
        """Time a block into ``histogram(name, **labels)`` in seconds."""
        hist = self.histogram(name, buckets=buckets, **labels)
        start = self.clock()
        try:
            yield hist
        finally:
            hist.observe(self.clock() - start)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-ready dump of every instrument, sorted by identity."""
        with self._lock:
            return {
                "counters": [
                    c.to_record() for _, c in sorted(self._counters.items())
                ],
                "gauges": [
                    g.to_record() for _, g in sorted(self._gauges.items())
                ],
                "histograms": [
                    h.to_record() for _, h in sorted(self._histograms.items())
                ],
            }

    def reset(self) -> None:
        """Drop every instrument (tests and benchmark isolation)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
