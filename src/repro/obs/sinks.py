"""Span sinks: where finished trace trees go.

The tracer exports one :class:`~repro.obs.spans.SpanRecord` per *root*
span (children ride along inside the record).  :class:`NullSink` is the
default — tracing disabled, spans cost nothing.  :class:`RingBufferSink`
keeps the most recent trees in memory for ``/api/metrics``, ``repro
stats`` and the benchmark dumps.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.spans import SpanRecord


class NullSink:
    """Drops everything; its presence tells the tracer to skip timing."""

    __slots__ = ()

    def export(self, record: "SpanRecord") -> None:
        """Discard the record."""


class RingBufferSink:
    """Thread-safe ring buffer of the most recent root spans.

    Parameters
    ----------
    capacity:
        Maximum retained root spans; the oldest is evicted (and counted
        as dropped) when full.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._buffer: deque["SpanRecord"] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._exported = 0
        self._dropped = 0

    def export(self, record: "SpanRecord") -> None:
        with self._lock:
            if len(self._buffer) == self.capacity:
                self._dropped += 1
            self._buffer.append(record)
            self._exported += 1

    def records(self) -> list["SpanRecord"]:
        """Retained root spans, oldest first."""
        with self._lock:
            return list(self._buffer)

    @property
    def n_exported(self) -> int:
        """Total root spans ever exported (including evicted ones)."""
        return self._exported

    @property
    def n_dropped(self) -> int:
        """Root spans evicted because the buffer was full."""
        return self._dropped

    def clear(self) -> None:
        with self._lock:
            self._buffer.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._buffer)
