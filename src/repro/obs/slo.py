"""Declarative SLOs with multi-window burn-rate alerting.

An :class:`SloSpec` states an objective over a rolling horizon — "99.9%
of requests succeed", "99% of requests finish under 500 ms" — optionally
scoped to one route and/or tenant.  The engine counts good and bad
events per spec into a :class:`~repro.obs.timewindow.TimeWindowStore`
and evaluates the Google-SRE multi-window multi-burn-rate rules:

    burn_rate(W) = bad_fraction(W) / (1 - objective)

A burn rate of 1 means the error budget is being consumed exactly at the
rate that would exhaust it over the SLO horizon; 14.4 means fourteen
times faster.  Each rule pairs a *short* window (fast reaction) with a
*long* one (noise suppression) and fires only when **both** exceed the
threshold — a momentary blip trips the short window but not the long
one, a long-ago incident keeps the long window hot while the short one
has recovered, and neither alone pages anyone:

- fast: 5 m / 1 h at 14.4× — budget gone in ~2 days; page now.
- slow: 1 h / 6 h at 6× — budget gone in ~5 days; ticket.

Windows are clamped to the store's retention, so a freshly started
process evaluates over the data it actually has instead of silently
reporting zero.  The remaining error budget is reported from the longest
window: ``1 - bad_fraction(long) / (1 - objective)``, floored at 0.

Alerts fire on the *edge* (a rule transitioning to firing) through any
dispatcher with a ``dispatch(alert_dict)`` method — see
:class:`repro.stream.alerts.AlertDispatcher`, which retries delivery via
:mod:`repro.resilience`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable

from repro.obs.timewindow import TimeWindowStore

# (rule name, short window s, long window s, burn-rate threshold)
DEFAULT_BURN_RULES: tuple[tuple[str, float, float, float], ...] = (
    ("fast", 300.0, 3600.0, 14.4),
    ("slow", 3600.0, 21600.0, 6.0),
)

# Routes that describe the system rather than serve analysts.  The stock
# SLOs leave them out: a deliberate 10-second ``/api/profile`` burst or a
# scraper hammering ``/api/metrics`` is not user pain, and must not page
# the latency SLO.  (The server's quota layer treats the same prefixes
# as uncharged.)
OBSERVABILITY_ROUTE_PREFIXES: tuple[str, ...] = (
    "/api/metrics",
    "/api/telemetry",
    "/api/health",
    "/api/traces",
    "/api/profile",
)


@dataclass(frozen=True, slots=True)
class SloSpec:
    """One service-level objective.

    ``kind`` is ``"availability"`` (bad = HTTP 5xx / handler error) or
    ``"latency"`` (bad = error or slower than ``latency_threshold``
    seconds).  ``route``/``tenant`` of ``None`` match every request;
    ``exclude_route_prefixes`` carves routes out of an otherwise-global
    scope (the stock SLOs exclude the observability endpoints).
    """

    name: str
    kind: str
    objective: float
    latency_threshold: float = 0.0
    route: str | None = None
    tenant: str | None = None
    exclude_route_prefixes: tuple[str, ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("availability", "latency"):
            raise ValueError(
                f"kind must be availability or latency, got {self.kind!r}"
            )
        if not 0.0 < self.objective < 1.0:
            raise ValueError(
                f"objective must be in (0, 1), got {self.objective}"
            )
        if self.kind == "latency" and self.latency_threshold <= 0:
            raise ValueError("a latency SLO needs latency_threshold > 0")

    def matches(self, route: str, tenant: str | None) -> bool:
        if self.route is not None and self.route != route:
            return False
        if self.tenant is not None and self.tenant != tenant:
            return False
        if route.startswith(self.exclude_route_prefixes):
            return False
        return True

    def is_bad(self, duration: float, error: bool) -> bool:
        if self.kind == "availability":
            return error
        return error or duration > self.latency_threshold

    @property
    def budget(self) -> float:
        """The error budget as a fraction (1 - objective)."""
        return 1.0 - self.objective


def default_slos() -> tuple[SloSpec, ...]:
    """The stock pair: three-nines availability, 99% under 500 ms.

    Both cover analyst-facing traffic only — observability routes are
    excluded so profiling or trace-dumping the server never burns its
    own budget."""
    return (
        SloSpec(
            name="availability",
            kind="availability",
            objective=0.999,
            exclude_route_prefixes=OBSERVABILITY_ROUTE_PREFIXES,
            description="99.9% of requests succeed",
        ),
        SloSpec(
            name="latency",
            kind="latency",
            objective=0.99,
            latency_threshold=0.5,
            exclude_route_prefixes=OBSERVABILITY_ROUTE_PREFIXES,
            description="99% of requests finish under 500ms",
        ),
    )


class SloEngine:
    """Counts request outcomes per SLO and evaluates burn-rate rules.

    Parameters
    ----------
    specs:
        SLOs to track; defaults to :func:`default_slos`.
    store:
        TimeWindowStore for the good/bad counts.  Defaults to a
        dedicated store with 60 s windows and 6 h retention (the slow
        rule's long window); inject a narrow one with a fake clock in
        tests.
    rules:
        (name, short, long, threshold) burn-rate rules.
    dispatcher:
        Anything with ``dispatch(alert: dict)``; alerts fire on a rule's
        transition into the firing state.  ``None`` disables delivery
        (evaluation still works).
    registry:
        MetricsRegistry for ``slo_burn_rate``/``slo_error_budget_remaining``
        gauges and the ``slo_alerts_total`` counter; defaults to the
        process-wide registry at first use.
    check_interval:
        Minimum seconds between evaluations triggered via
        :meth:`maybe_check`.
    """

    def __init__(
        self,
        specs: tuple[SloSpec, ...] | list[SloSpec] | None = None,
        store: TimeWindowStore | None = None,
        rules: tuple[tuple[str, float, float, float], ...] = DEFAULT_BURN_RULES,
        dispatcher: object | None = None,
        registry: object | None = None,
        clock: Callable[[], float] = time.monotonic,
        check_interval: float = 5.0,
    ) -> None:
        self.specs = tuple(specs) if specs is not None else default_slos()
        names = [s.name for s in self.specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO names: {names}")
        self.store = store if store is not None else TimeWindowStore(
            width_seconds=60.0, n_windows=360, clock=clock, max_samples=1
        )
        self.rules = rules
        self.dispatcher = dispatcher
        self._registry = registry
        self.clock = clock
        self.check_interval = check_interval
        self._lock = threading.Lock()
        self._firing: set[tuple[str, str]] = set()  # (slo, rule)
        self._last_check = float("-inf")

    def _reg(self):
        if self._registry is None:
            from repro import obs  # late: avoid import cycle

            self._registry = obs.get_registry()
        return self._registry

    # ------------------------------------------------------------------
    # ingest
    # ------------------------------------------------------------------
    def observe(
        self,
        route: str,
        tenant: str | None,
        duration: float,
        error: bool,
    ) -> None:
        """Record one finished request against every matching SLO."""
        for spec in self.specs:
            if not spec.matches(route, tenant):
                continue
            self.store.record("slo.total", slo=spec.name)
            if spec.is_bad(duration, error):
                self.store.record("slo.bad", slo=spec.name)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def _window_counts(self, spec: SloSpec, window_seconds: float) -> tuple[int, int]:
        """(bad, total) summed over the trailing ``window_seconds``,
        clamped to the store's retention."""
        horizon = self.clock() - min(
            window_seconds, self.store.width_seconds * self.store.n_windows
        )
        total = 0
        bad = 0
        series = self.store.series("slo.total", slo=spec.name)
        for entry in series["windows"]:
            if entry["t"] + self.store.width_seconds > horizon:
                total += entry["count"]
        series = self.store.series("slo.bad", slo=spec.name)
        for entry in series["windows"]:
            if entry["t"] + self.store.width_seconds > horizon:
                bad += entry["count"]
        return bad, total

    def evaluate(self) -> list[dict]:
        """Burn rates, rule states and budget for every SLO (JSON-ready).

        Side effects: updates the ``slo_burn_rate`` and
        ``slo_error_budget_remaining`` gauges, and fires edge-triggered
        alerts through the dispatcher.
        """
        registry = self._reg()
        out: list[dict] = []
        alerts: list[dict] = []
        with self._lock:
            for spec in self.specs:
                rule_states = []
                budget_remaining = 1.0
                for rule_name, short_s, long_s, threshold in self.rules:
                    short_bad, short_total = self._window_counts(spec, short_s)
                    long_bad, long_total = self._window_counts(spec, long_s)
                    short_burn = (
                        (short_bad / short_total) / spec.budget
                        if short_total else 0.0
                    )
                    long_burn = (
                        (long_bad / long_total) / spec.budget
                        if long_total else 0.0
                    )
                    firing = (
                        short_total > 0
                        and long_total > 0
                        and short_burn >= threshold
                        and long_burn >= threshold
                    )
                    key = (spec.name, rule_name)
                    if firing and key not in self._firing:
                        self._firing.add(key)
                        alerts.append({
                            "type": "slo_burn_rate",
                            "slo": spec.name,
                            "rule": rule_name,
                            "kind": spec.kind,
                            "burn_rate": round(short_burn, 3),
                            "threshold": threshold,
                            "route": spec.route,
                            "tenant": spec.tenant,
                        })
                    elif not firing:
                        self._firing.discard(key)
                    registry.gauge(
                        "slo_burn_rate", slo=spec.name, rule=rule_name
                    ).set(short_burn)
                    rule_states.append({
                        "rule": rule_name,
                        "short_seconds": short_s,
                        "long_seconds": long_s,
                        "threshold": threshold,
                        "short_burn_rate": round(short_burn, 4),
                        "long_burn_rate": round(long_burn, 4),
                        "firing": firing,
                    })
                    # budget from the longest window seen
                    if long_total:
                        budget_remaining = min(
                            budget_remaining,
                            1.0 - (long_bad / long_total) / spec.budget,
                        )
                budget_remaining = max(0.0, budget_remaining)
                registry.gauge(
                    "slo_error_budget_remaining", slo=spec.name
                ).set(budget_remaining)
                out.append({
                    "name": spec.name,
                    "kind": spec.kind,
                    "objective": spec.objective,
                    "latency_threshold_seconds": spec.latency_threshold or None,
                    "route": spec.route,
                    "tenant": spec.tenant,
                    "error_budget_remaining": round(budget_remaining, 4),
                    "firing": any(r["firing"] for r in rule_states),
                    "rules": rule_states,
                })
        for alert in alerts:
            registry.counter("slo_alerts_total", slo=alert["slo"]).inc()
            if self.dispatcher is not None:
                self.dispatcher.dispatch(alert)
        return out

    def maybe_check(self) -> list[dict] | None:
        """Evaluate at most once per ``check_interval`` (request-path hook)."""
        now = self.clock()
        with self._lock:
            if now - self._last_check < self.check_interval:
                return None
            self._last_check = now
        return self.evaluate()

    def reset(self) -> None:
        with self._lock:
            self.store.reset()
            self._firing.clear()
            self._last_check = float("-inf")
