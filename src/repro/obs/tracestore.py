"""Bounded in-memory trace store with cross-thread stitching.

The tracer keeps span nesting on a thread-local stack, so a span opened
on a pool worker can never attach to its logical parent directly — the
parent lives on the submitting thread.  Instead the worker's thread-root
span records the propagated ``(trace_id, parent_span_id)`` (see
:mod:`repro.obs.tracecontext`) and lands here as a *fragment*.  The trace
root itself closes strictly after its fragments — scatter-gather blocks
on the shard futures before the request span exits — so by the time
:meth:`TraceStore.add_trace` runs, every fragment is buffered and can be
grafted onto its parent by span id.

Retention is bounded both ways: at most ``max_traces`` finished traces
(oldest evicted first) and at most ``max_pending`` buffered fragments per
trace, so a burst of orphaned worker spans cannot grow memory without
limit.  Fragments whose parent id no longer resolves (parent evicted,
clocks raced) attach under the root rather than being dropped — a
misplaced span beats a missing one when debugging.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.obs.spans import SpanRecord


class TraceStore:
    """Thread-safe bounded store of finished trace trees.

    Parameters
    ----------
    max_traces:
        Finished traces retained; the oldest is evicted when full.
    max_pending:
        Fragments buffered per trace while awaiting the root.
    """

    def __init__(self, max_traces: int = 256, max_pending: int = 512) -> None:
        self.max_traces = max_traces
        self.max_pending = max_pending
        self._lock = threading.Lock()
        # trace_id -> assembled root span, insertion-ordered (oldest first)
        self._traces: OrderedDict[str, SpanRecord] = OrderedDict()
        # trace_id -> fragments awaiting their root
        self._pending: dict[str, list[SpanRecord]] = {}
        self.dropped_fragments = 0

    def add_fragment(self, record: SpanRecord) -> None:
        """Buffer a detached thread-root span until its trace root closes.

        If the root already closed (late fragment), graft immediately.
        """
        trace_id = record.trace_id
        if trace_id is None:
            return
        with self._lock:
            root = self._traces.get(trace_id)
            if root is not None:
                self._graft(root, [record])
                return
            bucket = self._pending.setdefault(trace_id, [])
            if len(bucket) >= self.max_pending:
                self.dropped_fragments += 1
                return
            bucket.append(record)

    def add_trace(self, record: SpanRecord) -> None:
        """Retain a finished root, stitching in any buffered fragments."""
        trace_id = record.trace_id
        if trace_id is None:
            return
        with self._lock:
            fragments = self._pending.pop(trace_id, [])
            self._graft(record, fragments)
            self._traces[trace_id] = record
            self._traces.move_to_end(trace_id)
            while len(self._traces) > self.max_traces:
                self._traces.popitem(last=False)

    @staticmethod
    def _graft(root: SpanRecord, fragments: list[SpanRecord]) -> None:
        """Attach fragments to their parents by span id (root if unknown).

        Two passes: index the tree, then attach — a fragment may parent
        another fragment (nested scatter), so re-index after each attach
        wave until no fragment moves.
        """
        remaining = list(fragments)
        while remaining:
            by_id = {
                span.span_id: span
                for span in root.walk()
                if span.span_id is not None
            }
            progressed = False
            still: list[SpanRecord] = []
            for frag in remaining:
                parent = by_id.get(frag.parent_id)
                if parent is not None:
                    parent.children.append(frag)
                    progressed = True
                else:
                    still.append(frag)
            if not progressed:
                # Orphans: parent span evicted or never stored.
                root.children.extend(still)
                return
            remaining = still

    def get(self, trace_id: str) -> SpanRecord | None:
        """The assembled tree for ``trace_id``, or None."""
        with self._lock:
            return self._traces.get(trace_id)

    def traces(
        self,
        request_id: str | None = None,
        tenant: str | None = None,
        min_duration_ms: float = 0.0,
        limit: int = 50,
    ) -> list[SpanRecord]:
        """Finished traces, newest first, optionally filtered.

        ``request_id``/``tenant`` match the root span's fields;
        ``min_duration_ms`` filters on root duration.
        """
        with self._lock:
            roots = list(self._traces.values())
        out: list[SpanRecord] = []
        for root in reversed(roots):
            if request_id is not None and root.request_id != request_id:
                continue
            if tenant is not None and root.tenant != tenant:
                continue
            if root.duration * 1000.0 < min_duration_ms:
                continue
            out.append(root)
            if len(out) >= limit:
                break
        return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()
            self._pending.clear()
            self.dropped_fragments = 0
