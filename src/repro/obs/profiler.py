"""Continuous stack-sampling profiler (stdlib only).

A daemon thread wakes ``hz`` times per second, snapshots every thread's
Python stack via :func:`sys._current_frames`, and folds each stack into a
``frame;frame;frame`` line keyed root-first — the *folded stack* format
flamegraph tooling consumes.  Sampling is statistical: a frame's count is
proportional to the wall time spent under it, with no per-call
instrumentation and no tracing hooks, so the overhead budget is simply
``samples/sec × threads × stack-walk cost`` (measured <5% throughput at
100 hz on the quick bench; see BENCH_PERF.json's ``profiler`` block).

Two collection modes:

- continuous: :meth:`StackProfiler.start` keeps the sampler running for
  the process lifetime; :meth:`collect` with the profiler running blocks
  for the requested wall time and returns the *delta* of counts over it.
- burst: :meth:`collect` with the profiler stopped samples inline in the
  calling thread for the requested window and returns those counts.

Outward surfaces: ``GET /api/profile?seconds=N&format=folded|svg`` and
the ``repro profile`` CLI; the SVG path renders through
:mod:`repro.viz.flamegraph`.
"""

from __future__ import annotations

import sys
import threading
import time
from types import FrameType

# Frames at or below this depth are kept; deeper stacks are truncated at
# the root end so the leaf (where time is actually spent) survives.
MAX_DEPTH = 64


def _fold(frame: FrameType | None) -> str:
    """Fold one thread's stack into ``root;...;leaf`` form."""
    parts: list[str] = []
    depth = 0
    while frame is not None and depth < MAX_DEPTH:
        code = frame.f_code
        filename = code.co_filename.rsplit("/", 1)[-1]
        if filename.endswith(".py"):
            filename = filename[:-3]
        parts.append(f"{filename}.{code.co_name}")
        frame = frame.f_back
        depth += 1
    parts.reverse()
    return ";".join(parts)


class StackProfiler:
    """Sample all Python threads at a fixed rate into folded stacks.

    Parameters
    ----------
    hz:
        Samples per second; 0 disables :meth:`start` (burst collection
        via :meth:`collect` still works).
    clock:
        Monotonic-seconds callable, injectable for tests.
    max_stacks:
        Distinct folded stacks retained; once full, new stacks are
        dropped (counted in :attr:`dropped`) so a pathological workload
        cannot grow the table without bound.
    """

    def __init__(
        self,
        hz: float = 100.0,
        clock=time.perf_counter,
        max_stacks: int = 50_000,
    ) -> None:
        if hz < 0:
            raise ValueError(f"hz must be >= 0, got {hz}")
        self.hz = hz
        self.clock = clock
        self.max_stacks = max_stacks
        self._counts: dict[str, int] = {}
        self._samples = 0
        self.dropped = 0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def _sample_once(self) -> None:
        me = threading.get_ident()
        frames = sys._current_frames()
        with self._lock:
            self._samples += 1
            for ident, frame in frames.items():
                if ident == me:
                    continue  # never profile the profiler
                stack = _fold(frame)
                if not stack:
                    continue
                if stack not in self._counts:
                    if len(self._counts) >= self.max_stacks:
                        self.dropped += 1
                        continue
                    self._counts[stack] = 0
                self._counts[stack] += 1

    def _run(self) -> None:
        interval = 1.0 / self.hz
        next_tick = self.clock()
        while not self._stop.is_set():
            self._sample_once()
            next_tick += interval
            delay = next_tick - self.clock()
            if delay <= 0:
                next_tick = self.clock()  # fell behind; don't burst-catch-up
                continue
            self._stop.wait(delay)

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        """Start the background sampler (no-op when hz == 0 or running)."""
        if self.hz == 0 or self.running:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the background sampler and join it."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=2.0)
        self._thread = None

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, int]:
        """Current folded-stack counts (copy)."""
        with self._lock:
            return dict(self._counts)

    @property
    def samples(self) -> int:
        with self._lock:
            return self._samples

    def collect(self, seconds: float, hz: float | None = None) -> dict[str, int]:
        """Folded-stack counts over a ``seconds`` window.

        With the sampler running, blocks for the window and returns the
        delta accumulated by the background thread.  Stopped, samples
        inline at ``hz`` (default: the profiler's own rate, or 100 if
        that is 0) from the calling thread.
        """
        if seconds <= 0:
            raise ValueError(f"seconds must be > 0, got {seconds}")
        if self.running:
            before = self.snapshot()
            time.sleep(seconds)
            after = self.snapshot()
            return {
                stack: count - before.get(stack, 0)
                for stack, count in after.items()
                if count - before.get(stack, 0) > 0
            }
        rate = hz if hz is not None else (self.hz or 100.0)
        if rate <= 0:
            raise ValueError(f"burst collection needs hz > 0, got {rate}")
        interval = 1.0 / rate
        counts: dict[str, int] = {}
        deadline = self.clock() + seconds
        while self.clock() < deadline:
            me = threading.get_ident()
            for ident, frame in sys._current_frames().items():
                if ident == me:
                    continue
                stack = _fold(frame)
                if stack:
                    counts[stack] = counts.get(stack, 0) + 1
            time.sleep(interval)
        return counts

    def reset(self) -> None:
        with self._lock:
            self._counts.clear()
            self._samples = 0
            self.dropped = 0


def render_folded(counts: dict[str, int]) -> str:
    """Folded-stack text: one ``stack count`` line, heaviest first."""
    lines = [
        f"{stack} {count}"
        for stack, count in sorted(
            counts.items(), key=lambda kv: (-kv[1], kv[0])
        )
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def parse_folded(text: str) -> dict[str, int]:
    """Inverse of :func:`render_folded` (used by the flamegraph CLI)."""
    counts: dict[str, int] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        stack, _, count = line.rpartition(" ")
        if not stack:
            raise ValueError(f"malformed folded line: {line!r}")
        counts[stack] = counts.get(stack, 0) + int(count)
    return counts
