"""Single-flight memoisation: concurrent identical requests compute once.

A :class:`SingleFlightCache` is the concurrency primitive behind every
:class:`~repro.core.pipeline.VapSession` cache.  It combines

- a thread-safe memo table (optionally LRU-bounded, for the big objects
  like embeddings), and
- *single-flight* miss handling: when N threads miss on the same key at
  the same time, exactly one (the *leader*) runs the computation while
  the other N-1 (*waiters*) block on an event and receive the leader's
  result — the expensive kernel runs once, not N times, and misses are
  deduplicated instead of raced.

The leader computes **outside** the cache lock, so distinct keys still
compute in parallel.  A failed leader propagates its exception to every
waiter and leaves the key uncached, so the next request retries.  Waiters
can bound how long they wait (e.g. to a request deadline); a timed-out
waiter raises :class:`WaitTimeout` without disturbing the in-flight
computation.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Generic, Hashable, TypeVar

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")

# Outcomes reported by get_or_compute (exported for metrics labels).
HIT = "hit"
LEADER = "leader"
WAITER = "waiter"


class WaitTimeout(TimeoutError):
    """A single-flight waiter gave up before the leader finished.

    ``bound`` names which limit fired: ``"timeout"`` when the caller's
    fixed wait elapsed, ``"deadline"`` when the caller's bound request
    :class:`~repro.core.deadline.Deadline` expired first.
    """

    def __init__(self, message: str, bound: str = "timeout") -> None:
        super().__init__(message)
        self.bound = bound


class _Call:
    """One in-flight computation: waiters block on the event."""

    __slots__ = ("event", "value", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: object = None
        self.error: BaseException | None = None


class SingleFlightCache(Generic[K, V]):
    """Thread-safe memo table with single-flight misses and LRU bounds.

    Parameters
    ----------
    max_entries:
        Keep at most this many values, evicting least-recently-used ones
        (both hits and inserts refresh recency).  ``None`` means unbounded.
    on_evict:
        ``(key, value) -> None`` called for every evicted entry, outside
        the cache lock (safe to touch metrics or logs).
    name:
        Optional cache name.  When set, the leader's computation runs
        inside a ``cache.<name>.leader`` span, so the one thread that
        actually pays for a miss shows up in the request's trace (the
        waiters just block and stay invisible).
    """

    def __init__(
        self,
        max_entries: int | None = None,
        on_evict: Callable[[K, V], None] | None = None,
        name: str | None = None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self._max = max_entries
        self._on_evict = on_evict
        self.name = name
        self._lock = threading.Lock()
        self._values: OrderedDict[K, V] = OrderedDict()
        self._calls: dict[K, _Call] = {}

    def __len__(self) -> int:
        with self._lock:
            return len(self._values)

    def __contains__(self, key: K) -> bool:
        with self._lock:
            return key in self._values

    @property
    def max_entries(self) -> int | None:
        return self._max

    def keys(self) -> list[K]:
        """Cached keys, least-recently-used first."""
        with self._lock:
            return list(self._values)

    def peek(self, key: K, default: V | None = None) -> V | None:
        """The cached value, without refreshing recency or computing."""
        with self._lock:
            return self._values.get(key, default)

    def clear(self) -> None:
        """Drop every cached value (in-flight computations finish normally)."""
        with self._lock:
            self._values.clear()

    def get_or_compute(
        self,
        key: K,
        compute: Callable[[], V],
        timeout: float | None = None,
    ) -> tuple[V, str]:
        """Return ``(value, outcome)`` with outcome hit/leader/waiter.

        Exactly one concurrent caller per key runs ``compute`` (the
        leader); the rest wait up to ``timeout`` seconds for its result.

        Raises
        ------
        WaitTimeout
            When a waiter's timeout elapses before the leader finishes.
        BaseException
            Whatever ``compute`` raised, re-raised in the leader *and*
            every waiter; the key stays uncached so later calls retry.
        """
        with self._lock:
            if key in self._values:
                self._values.move_to_end(key)
                return self._values[key], HIT
            call = self._calls.get(key)
            if call is None:
                call = _Call()
                self._calls[key] = call
                leading = True
            else:
                leading = False

        if not leading:
            # A waiter must never outlive the caller's own request
            # deadline: clamp the wait to whichever bound is tighter and
            # report which one fired.
            from repro.core.deadline import current_deadline

            deadline = current_deadline()
            wait, bound = timeout, "timeout"
            if deadline is not None:
                remaining = deadline.remaining()
                if wait is None or remaining < wait:
                    wait, bound = max(0.0, remaining), "deadline"
            if not call.event.wait(wait):
                raise WaitTimeout(
                    f"gave up after {wait!r}s ({bound} bound) waiting for "
                    f"in-flight computation of {key!r}",
                    bound=bound,
                )
            if call.error is not None:
                raise call.error
            return call.value, WAITER  # type: ignore[return-value]

        try:
            if self.name is not None:
                from repro import obs  # late: keep core importable alone

                with obs.span(f"cache.{self.name}.leader", key=str(key)):
                    value = compute()
            else:
                value = compute()
        except BaseException as exc:
            call.error = exc
            with self._lock:
                self._calls.pop(key, None)
            call.event.set()
            raise
        evicted: list[tuple[K, V]] = []
        with self._lock:
            self._values[key] = value
            self._values.move_to_end(key)
            while self._max is not None and len(self._values) > self._max:
                evicted.append(self._values.popitem(last=False))
            self._calls.pop(key, None)
        call.value = value
        call.event.set()
        if self._on_evict is not None:
            for old_key, old_value in evicted:
                self._on_evict(old_key, old_value)
        return value, LEADER
