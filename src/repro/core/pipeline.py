"""The VAP logic layer: one facade over data, models and views.

:class:`VapSession` is the object the paper's Figure 1 loop runs through —
Data → Models → Visualization → Users → (refine parameters) → Models.  It
owns an :class:`~repro.db.engine.EnergyDatabase`, performs preprocessing
once, caches embeddings per parameter set (the "refine and re-explore"
loop), and exposes every analytical operation the REST API and the
dashboard need:

- typical patterns: ``embed`` → ``selection_session`` → ``pattern_of`` /
  ``profile_of`` (views C and B);
- shift patterns: ``density`` / ``shift`` / ``flows`` (view A);
- baselines: ``kmeans_baseline`` for the S1d comparison.

A session is safe to share between server threads.  Every cache is a
:class:`~repro.core.singleflight.SingleFlightCache`: concurrent identical
requests compute once (the leader) while the rest wait for its result,
the embedding cache is LRU-bounded (embeddings are the big objects), and
waits are capped by the request deadline when one is bound (see
:mod:`repro.core.deadline`).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.cluster.kmeans import KMeansResult, kmeans, minibatch_kmeans
from repro.core.reduction.dtw import MAX_DTW_ROWS_CEILING
from repro.core.patterns.labeling import (
    PatternLabel,
    label_customers,
    label_selection,
)
from repro.core.patterns.selection import SelectionSession
from repro.core.deadline import DeadlineExceeded, current_deadline
from repro.core.reduction.mds import mds
from repro.core.reduction.tsne import tsne
from repro.core.shift.flow import FlowArrow, ShiftField, flow_vectors, major_flows
from repro.core.shift.grids import DensityGrid, GridSpec
from repro.core.shift.kde import kde_density
from repro.core.shift.sensitivity import (
    GranularityResult,
    QuantileResult,
    granularity_sweep as _granularity_sweep_raw,
    granularity_sweep_from_rollups,
    quantile_sweep as _quantile_sweep_raw,
    quantile_sweep_from_rollups,
)
from repro.core.singleflight import HIT, SingleFlightCache, WaitTimeout
from repro.data.timeseries import HourWindow, Resolution, SeriesSet
from repro.db.engine import EnergyDatabase
from repro.rollup.store import RollupMiss, RollupStore
from repro.preprocess.cleaning import AnomalyReport, remove_anomalies
from repro.preprocess.features import FeatureKind, extract_features
from repro.preprocess.imputation import impute
from repro.preprocess.normalize import normalize_matrix
from repro.preprocess.quality import DataQualityReport, assess_quality
from repro.resilience.breaker import BreakerOpen, CircuitBreaker

EMBED_METHODS = ("tsne", "mds", "mds_classical")

# Kernel operations guarded by a circuit breaker (and therefore able to
# degrade to their last-good result when the breaker is open).
BREAKER_OPS = ("embed", "density")


@dataclass(slots=True)
class EmbeddingInfo:
    """An embedding plus the diagnostics its reducer reported."""

    coords: np.ndarray
    method: str
    metric: str
    feature_kind: FeatureKind
    objective: float  # KL for t-SNE, stress for MDS


class VapSession:
    """One analysis session over one data set (the paper's logic layer).

    Parameters
    ----------
    db:
        The data layer.
    feature_kind:
        Default profile folding for embeddings (see
        :class:`~repro.preprocess.features.FeatureKind`).
    preprocess:
        When True (default), readings are anomaly-filtered and imputed at
        construction — the paper's stated preprocessing.  Pass False when
        the readings are already clean.
    metrics:
        Metrics registry receiving cache hit/miss counters and stage
        timings; the process-wide default registry when omitted.
    max_embeddings:
        LRU bound on the embedding cache — embeddings are the big cached
        objects, so the "refine and re-explore" history is kept but does
        not grow without limit.
    max_densities:
        LRU bound on the density-grid cache (windowed KDE surfaces).
    breakers:
        Per-operation circuit breakers for the heavy kernels (keys from
        :data:`BREAKER_OPS`).  Defaults are built when omitted; pass
        ``{}`` to disable breaking entirely.  While a breaker is open,
        cache *misses* for its operation return the last successfully
        computed result with a ``degraded`` marker (see
        :meth:`embed_degradable`) instead of running the kernel; with no
        last-good result, :class:`~repro.resilience.breaker.BreakerOpen`
        propagates and the API layer answers 503 + Retry-After.
    """

    def __init__(
        self,
        db: EnergyDatabase,
        feature_kind: FeatureKind = FeatureKind.MEAN_WEEK,
        preprocess: bool = True,
        metrics: obs.MetricsRegistry | None = None,
        max_embeddings: int = 16,
        max_densities: int = 32,
        breakers: dict[str, CircuitBreaker] | None = None,
    ) -> None:
        self.db = db
        self._metrics = metrics
        self.feature_kind = feature_kind
        self.quality: DataQualityReport = assess_quality(db.readings)
        self.anomalies: AnomalyReport | None = None
        if preprocess:
            cleaned, self.anomalies = remove_anomalies(db.readings)
            self.series: SeriesSet = impute(cleaned)
        else:
            self.series = db.readings
        self._features: SingleFlightCache[FeatureKind, np.ndarray] = (
            SingleFlightCache(name="features")
        )
        self._member_labels: SingleFlightCache[str, list[PatternLabel]] = (
            SingleFlightCache(name="labels")
        )
        self._embeddings: SingleFlightCache[tuple, EmbeddingInfo] = (
            SingleFlightCache(
                max_entries=max_embeddings,
                on_evict=lambda key, value: self._evicted("embed"),
                name="embed",
            )
        )
        self._densities: SingleFlightCache[tuple, DensityGrid] = (
            SingleFlightCache(
                max_entries=max_densities,
                on_evict=lambda key, value: self._evicted("density"),
                name="density",
            )
        )
        self._grid_lock = threading.RLock()
        self._grid: GridSpec | None = None
        self._rollups: RollupStore | None = None
        self._rollups_lock = threading.Lock()
        if breakers is None:
            breakers = {
                op: CircuitBreaker(name=f"pipeline.{op}", metrics=metrics)
                for op in BREAKER_OPS
            }
        self.breakers = breakers
        # Most recent successful (cache_key, value) per op — the
        # degrade-to-last-good fallback.  Tagging the value with the
        # single-flight cache key it was computed under lets a
        # breaker-open response say exactly *which* parameters the
        # served result belongs to (it may not match the request's).
        self._last_good: dict[str, tuple[object, object]] = {}
        self._last_good_lock = threading.Lock()

    @classmethod
    def from_city(
        cls,
        dataset,
        use_raw: bool = True,
        shards: int | None = None,
        **kwargs,
    ) -> "VapSession":
        """Build a session from a generated
        :class:`~repro.data.generator.simulate.CityDataset`.

        ``shards`` picks the data plane: ``None`` consults the
        ``REPRO_SHARDS`` environment variable (CI runs the whole suite
        with it set to 4), ``<= 1`` keeps the single-lock engine, and
        ``> 1`` builds a hash-partitioned
        :class:`~repro.db.sharding.ShardedEnergyDatabase` with parallel
        scatter-gather queries.
        """
        from repro.db import build_database

        readings = dataset.raw if use_raw else dataset.clean
        db = build_database(
            dataset.customers, readings, shards=shards,
            metrics=kwargs.get("metrics"),
        )
        return cls(db, **kwargs)

    @property
    def metrics(self) -> obs.MetricsRegistry:
        """This session's registry (the process default unless injected)."""
        return self._metrics if self._metrics is not None else obs.get_registry()

    def _cache(self, op: str, hit: bool) -> None:
        result = "hit" if hit else "miss"
        self.metrics.counter("pipeline_cache_total", op=op, result=result).inc()

    def _evicted(self, cache: str) -> None:
        self.metrics.counter("pipeline_cache_evictions_total", cache=cache).inc()

    def _flight(self, cache: SingleFlightCache, op: str, key, compute):
        """Run ``compute`` through a cache with single-flight semantics."""
        value, _ = self._flight_degradable(cache, op, key, compute)
        return value

    def _flight_degradable(
        self, cache: SingleFlightCache, op: str, key, compute
    ) -> tuple[object, dict | bool]:
        """Single-flight caching with circuit breaking; returns
        ``(value, degraded)``.

        ``degraded`` is ``False`` on the healthy path.  On a
        breaker-open fallback it is a dict describing exactly what was
        served: ``served_key`` (the cache key the last-good value was
        computed under), ``requested_key``, and ``exact`` (whether they
        match) — so a response built from parameters other than the
        request's is never silent.

        Leaders count as cache misses, hits and deduplicated waiters as
        hits (they did not compute); both leader and waiter outcomes are
        additionally recorded in ``pipeline_singleflight_total``.  A
        bound request deadline caps how long a waiter blocks and is
        checked before leading a computation.

        When ``op`` has a circuit breaker, the leader computes through
        it; a refused call (breaker open) degrades to the operation's
        last-good result — ``degraded`` True — rather than erroring, and
        propagates :class:`~repro.resilience.breaker.BreakerOpen` only
        when there is nothing to fall back to.

        Raises
        ------
        DeadlineExceeded
            When the bound deadline expired, or elapsed while waiting
            for another thread's in-flight computation.
        BreakerOpen
            When the breaker refuses the call and no last-good result
            exists for this operation.
        """
        deadline = current_deadline()
        timeout = None
        if deadline is not None:
            deadline.check(op)
            timeout = deadline.remaining()
        breaker = self.breakers.get(op)
        guarded = compute if breaker is None else (lambda: breaker.call(compute))
        try:
            value, outcome = cache.get_or_compute(key, guarded, timeout=timeout)
        except WaitTimeout:
            raise DeadlineExceeded(
                f"request deadline exceeded waiting for in-flight {op}"
            ) from None
        except BreakerOpen:
            # Prefer the exact cached value for this key (the breaker
            # only guards *misses*); otherwise fall back to the op's
            # last-good value, reporting whose parameters it carries.
            exact = cache.peek(key)
            if exact is not None:
                served_key = key
                fallback = exact
            else:
                with self._last_good_lock:
                    last = self._last_good.get(op)
                if last is None:
                    raise
                served_key, fallback = last
            degraded = {
                "reason": "breaker_open",
                "served_key": str(served_key),
                "requested_key": str(key),
                "exact": served_key == key,
            }
            self.metrics.counter("pipeline_degraded_total", op=op).inc()
            obs.log_event(
                "pipeline.degraded",
                level="warning",
                op=op,
                reason="breaker_open",
                served_key=str(served_key),
                requested_key=str(key),
                exact=served_key == key,
            )
            return fallback, degraded
        self._cache(op, hit=outcome == HIT)
        if outcome != HIT:
            self.metrics.counter(
                "pipeline_singleflight_total", op=op, result=outcome
            ).inc()
        with self._last_good_lock:
            self._last_good[op] = (key, value)
        return value, False

    # ------------------------------------------------------------------
    # typical patterns (views B and C)
    # ------------------------------------------------------------------
    def features(self, kind: FeatureKind | None = None) -> np.ndarray:
        """Feature matrix for the embedding, cached per kind."""
        kind = kind or self.feature_kind

        def compute() -> np.ndarray:
            with obs.span("pipeline.features", kind=kind.value):
                return extract_features(self.series, kind)

        return self._flight(self._features, "features", kind, compute)

    def embed(
        self,
        method: str = "tsne",
        metric: str = "pearson",
        feature_kind: FeatureKind | None = None,
        perplexity: float = 30.0,
        n_iter: int = 500,
        seed: int = 0,
        tsne_method: str = "auto",
        theta: float = 0.5,
        workers: int | None = None,
        n_landmarks: int | None = None,
        dtw_max_rows: int | None = None,
    ) -> EmbeddingInfo:
        """Reduce the series to 2-D; cached per parameter set.

        ``tsne_method`` selects the t-SNE gradient engine (``"auto"``,
        ``"exact"``, ``"bh"`` for Barnes–Hut at opening angle ``theta``,
        or ``"landmark"`` for the out-of-core engine embedding
        ``n_landmarks`` representatives); every knob that changes the
        result is part of the cache key so variants never alias.
        ``workers`` fans blockwise kernel stages out on the shared pool
        (results are worker-count independent, but the knob stays in the
        key because it is part of the request identity).
        ``dtw_max_rows`` lifts the DTW pairwise ceiling, capped at
        ``MAX_DTW_ROWS_CEILING``.

        Raises
        ------
        ValueError
            For an unknown method or an out-of-range ``dtw_max_rows``.
        """
        info, _ = self.embed_degradable(
            method=method,
            metric=metric,
            feature_kind=feature_kind,
            perplexity=perplexity,
            n_iter=n_iter,
            seed=seed,
            tsne_method=tsne_method,
            theta=theta,
            workers=workers,
            n_landmarks=n_landmarks,
            dtw_max_rows=dtw_max_rows,
        )
        return info

    def embed_degradable(
        self,
        method: str = "tsne",
        metric: str = "pearson",
        feature_kind: FeatureKind | None = None,
        perplexity: float = 30.0,
        n_iter: int = 500,
        seed: int = 0,
        tsne_method: str = "auto",
        theta: float = 0.5,
        workers: int | None = None,
        n_landmarks: int | None = None,
        dtw_max_rows: int | None = None,
    ) -> tuple[EmbeddingInfo, dict | bool]:
        """:meth:`embed`, reporting degradation: ``(info, degraded)``.

        ``degraded`` is falsy on the healthy path.  When the embed
        circuit breaker refused the computation and ``info`` is the
        session's last successfully computed embedding, ``degraded`` is
        a (truthy) dict recording the ``served_key`` vs the
        ``requested_key`` — possibly different parameters — so the
        serving layer marks such responses instead of failing them.

        Raises
        ------
        ValueError
            For an unknown method.
        BreakerOpen
            Breaker open with no last-good embedding to fall back to.
        """
        if method not in EMBED_METHODS:
            raise ValueError(
                f"unknown method {method!r}; pick one of {EMBED_METHODS}"
            )
        if dtw_max_rows is not None and not (
            1 <= int(dtw_max_rows) <= MAX_DTW_ROWS_CEILING
        ):
            raise ValueError(
                f"dtw_max_rows must be in [1, {MAX_DTW_ROWS_CEILING}], "
                f"got {dtw_max_rows}"
            )
        kind = feature_kind or self.feature_kind
        key = (
            method, metric, kind, perplexity, n_iter, seed, tsne_method,
            theta, workers, n_landmarks, dtw_max_rows,
        )

        def compute() -> EmbeddingInfo:
            start = self.metrics.clock()
            with obs.span("pipeline.embed", method=method, metric=metric), \
                    self.metrics.timer("pipeline_seconds", op="embed"):
                feats = self.features(kind)
                if method == "tsne":
                    result = tsne(
                        feats,
                        metric=metric,
                        perplexity=perplexity,
                        n_iter=n_iter,
                        seed=seed,
                        method=tsne_method,
                        theta=theta,
                        workers=workers,
                        n_landmarks=n_landmarks,
                        dtw_max_rows=dtw_max_rows,
                    )
                    info = EmbeddingInfo(
                        coords=result.embedding,
                        method=method,
                        metric=metric,
                        feature_kind=kind,
                        objective=result.kl_divergence,
                    )
                else:
                    mds_method = (
                        "classical" if method == "mds_classical" else "smacof"
                    )
                    result = mds(
                        feats, metric=metric, method=mds_method,
                        workers=workers, dtw_max_rows=dtw_max_rows,
                    )
                    info = EmbeddingInfo(
                        coords=result.embedding,
                        method=method,
                        metric=metric,
                        feature_kind=kind,
                        objective=result.stress,
                    )
            elapsed = self.metrics.clock() - start
            obs.get_slow_log().offer(
                "pipeline.embed", elapsed, method=method, metric=metric
            )
            obs.log_event(
                "pipeline.embed.compute",
                method=method,
                metric=metric,
                perplexity=perplexity,
                n_iter=n_iter,
                seed=seed,
                duration_ms=round(elapsed * 1000.0, 3),
            )
            return info

        value, degraded = self._flight_degradable(
            self._embeddings, "embed", key, compute
        )
        return value, degraded

    def selection_session(
        self, embedding: EmbeddingInfo | None = None
    ) -> SelectionSession:
        """Start an interactive selection session over an embedding."""
        info = embedding or self.embed()
        return SelectionSession(embedding=info.coords)

    def member_labels(self) -> list[PatternLabel]:
        """Template labels for every customer (population context), cached."""
        return self._flight(
            self._member_labels,
            "member_labels",
            "all",
            lambda: label_customers(self.series),
        )

    def _validate_indices(self, indices: np.ndarray) -> np.ndarray:
        """Embedding row indices as int64, bounds-checked.

        Out-of-range values — including negative ones, which numpy would
        silently wrap around to the *wrong customer* — raise ValueError.
        """
        indices = np.asarray(indices, dtype=np.int64)
        n = len(self.series.customer_ids)
        if indices.size:
            lo, hi = int(indices.min()), int(indices.max())
            if lo < 0 or hi >= n:
                raise ValueError(
                    f"embedding row indices must be in [0, {n}); "
                    f"got values spanning [{lo}, {hi}]"
                )
        return indices

    def pattern_of(self, indices: np.ndarray) -> PatternLabel:
        """Name the pattern of a selection (what the analyst reads off
        view B).

        Raises
        ------
        ValueError
            For row indices outside the embedding.
        """
        indices = self._validate_indices(indices)
        return label_selection(
            self.series, indices, member_labels=self.member_labels()
        )

    def profile_of(self, indices: np.ndarray) -> np.ndarray:
        """View B's aggregated consumption curve for a selection.

        Raises
        ------
        ValueError
            If the selection is empty, or for row indices outside the
            embedding.
        """
        indices = self._validate_indices(indices)
        if indices.size == 0:
            raise ValueError("cannot aggregate an empty selection")
        ids = [int(self.series.customer_ids[i]) for i in indices]
        return self.series.select_customers(ids).mean_profile()

    def customers_of(self, indices: np.ndarray) -> list[int]:
        """Customer ids behind embedding row indices.

        Raises
        ------
        ValueError
            For row indices outside the embedding.
        """
        indices = self._validate_indices(indices)
        return [int(self.series.customer_ids[int(i)]) for i in indices]

    def kmeans_baseline(
        self,
        k: int = 5,
        feature_kind: FeatureKind | None = None,
        seed: int = 0,
        algorithm: str = "lloyd",
    ) -> KMeansResult:
        """The S1d baseline: k-means on z-scored features.

        ``algorithm`` is ``"lloyd"`` (full-batch, the default) or
        ``"minibatch"`` (Sculley-style, for fleet-scale feature sets).

        Raises
        ------
        ValueError
            For an unknown algorithm.
        DeadlineExceeded
            When the bound request deadline is already spent.
        """
        if algorithm not in ("lloyd", "minibatch"):
            raise ValueError(
                f"algorithm must be 'lloyd' or 'minibatch', got {algorithm!r}"
            )
        deadline = current_deadline()
        if deadline is not None:
            deadline.check("kmeans_baseline")
        with obs.span("pipeline.kmeans_baseline", k=k, algorithm=algorithm), \
                self.metrics.timer("pipeline_seconds", op="kmeans_baseline"):
            feats = normalize_matrix(self.features(feature_kind), "zscore")
            if algorithm == "minibatch":
                return minibatch_kmeans(feats, k=k, seed=seed)
            return kmeans(feats, k=k, seed=seed)

    def forecast(
        self, customer_id: int, horizon: int = 24, method: str = "profile"
    ) -> np.ndarray:
        """Day-ahead-style forecast for one customer.

        ``method`` is ``"profile"`` (pattern-based, the paper's downstream
        claim), ``"seasonal"`` (repeat last week) or ``"naive"``.

        Raises
        ------
        ValueError
            For an unknown method or customer.
        KeyError
            For an unknown customer id.
        """
        from repro.forecast.baselines import NaiveForecaster, SeasonalNaive
        from repro.forecast.profile import ProfileForecaster

        history = self.series.series(customer_id).values
        if method == "profile":
            model = ProfileForecaster()
            model.fit(history, start_phase=self.series.start_hour % model.season)
        elif method == "seasonal":
            model = SeasonalNaive(168).fit(history)
        elif method == "naive":
            model = NaiveForecaster().fit(history)
        else:
            raise ValueError(
                f"unknown method {method!r}; pick profile/seasonal/naive"
            )
        return model.predict(horizon)

    # ------------------------------------------------------------------
    # shift patterns (view A)
    # ------------------------------------------------------------------
    def grid(self, nx: int | None = None, ny: int | None = None) -> GridSpec:
        """The session's shared density grid (covers every customer).

        With no arguments, the current grid is returned as-is (building a
        default 96x96 one on first use) — so a grid chosen with an
        explicit resolution stays in force for later default-size calls
        instead of being silently rebuilt and dropped.  Passing ``nx``/
        ``ny`` rebuilds only when the resolution actually differs.
        """
        explicit = nx is not None or ny is not None
        want_nx = 96 if nx is None else nx
        want_ny = 96 if ny is None else ny
        with self._grid_lock:
            if self._grid is not None and (
                not explicit or (self._grid.nx, self._grid.ny) == (want_nx, want_ny)
            ):
                return self._grid
            positions = self.db.positions_of(self.db.customer_ids)
            self._grid = GridSpec.covering(positions, nx=want_nx, ny=want_ny)
            return self._grid

    def density(
        self,
        window: HourWindow,
        bandwidth_m: float | None = None,
        customer_ids: list[int] | None = None,
        method: str = "auto",
    ) -> DensityGrid:
        """Eq. 3: demand-weighted density for one window (view A heat map).

        ``method`` selects the KDE engine (``"auto"``, ``"exact"`` or
        ``"binned"``) and is part of the cache key so exact and binned
        surfaces never alias.  Results are cached per ``(window,
        bandwidth, customers, grid, method)`` with single-flight misses,
        so concurrent identical heat-map requests run the KDE kernel once.
        """
        grid, _ = self.density_degradable(
            window, bandwidth_m=bandwidth_m, customer_ids=customer_ids,
            method=method,
        )
        return grid

    def density_degradable(
        self,
        window: HourWindow,
        bandwidth_m: float | None = None,
        customer_ids: list[int] | None = None,
        method: str = "auto",
    ) -> tuple[DensityGrid, dict | bool]:
        """:meth:`density`, reporting degradation: ``(grid, degraded)``.

        ``degraded`` is falsy on the healthy path, or a (truthy) dict
        recording the served vs requested cache key when the density
        circuit breaker refused the computation and ``grid`` is the last
        successfully computed surface (possibly for a different window).

        Raises
        ------
        BreakerOpen
            Breaker open with no last-good density to fall back to.
        """
        spec = self.grid()
        ids_key = None if customer_ids is None else tuple(
            int(cid) for cid in customer_ids
        )
        key = (
            window.start_hour, window.end_hour, bandwidth_m, ids_key, spec,
            method,
        )

        def compute() -> DensityGrid:
            with obs.span(
                "pipeline.density", start=window.start_hour, end=window.end_hour
            ), self.metrics.timer("pipeline_seconds", op="density"):
                positions, values = self.db.demand(window, customer_ids)
                return kde_density(
                    positions, values, spec, bandwidth_m=bandwidth_m,
                    method=method,
                )

        value, degraded = self._flight_degradable(
            self._densities, "density", key, compute
        )
        return value, degraded

    def shift(
        self,
        t1: HourWindow,
        t2: HourWindow,
        bandwidth_m: float | None = None,
        customer_ids: list[int] | None = None,
        method: str = "auto",
    ) -> ShiftField:
        """Eq. 4: the density difference between two windows."""
        field, _ = self.shift_degradable(
            t1, t2, bandwidth_m=bandwidth_m, customer_ids=customer_ids,
            method=method,
        )
        return field

    def shift_degradable(
        self,
        t1: HourWindow,
        t2: HourWindow,
        bandwidth_m: float | None = None,
        customer_ids: list[int] | None = None,
        method: str = "auto",
    ) -> tuple[ShiftField, dict | bool]:
        """:meth:`shift`, reporting degradation: ``(field, degraded)``.

        ``degraded`` is falsy unless either underlying density came from
        the breaker-open fallback path (then it is that density's
        served/requested-key record).
        """
        with obs.span("pipeline.shift"), \
                self.metrics.timer("pipeline_seconds", op="shift"):
            before, degraded_1 = self.density_degradable(
                t1, bandwidth_m, customer_ids, method
            )
            after, degraded_2 = self.density_degradable(
                t2, bandwidth_m, customer_ids, method
            )
            return ShiftField.between(before, after), degraded_1 or degraded_2

    # ------------------------------------------------------------------
    # rollup-backed sweeps (S2)
    # ------------------------------------------------------------------
    def rollups(self, rebuild: bool = False) -> RollupStore:
        """The session's materialized rollup store, built lazily.

        The store covers every customer on the session grid and is
        rebuilt from the database on first use (scattering per shard
        when the data plane supports it).  ``rebuild`` forces a fresh
        rebuild — the CLI's ``rollup rebuild`` path.
        """
        with self._rollups_lock:
            store = self._rollups
            if store is None:
                store = RollupStore(
                    self.db.positions_of(
                        [int(cid) for cid in self.db.readings.customer_ids]
                    ),
                    [int(cid) for cid in self.db.readings.customer_ids],
                    self.grid(),
                    metrics=self._metrics,
                )
                store.rebuild_from(self.db)
                self._rollups = store
            elif rebuild:
                store.rebuild_from(self.db)
            return store

    def rollups_catch_up(self) -> int:
        """Fold any hours the database ingested since the rollups were
        last maintained; returns the hours applied.

        True incremental maintenance: only the missing hour range is
        read, so catching up after ``k`` stream ticks costs O(k · n),
        not a full rebuild.
        """
        store = self.rollups()
        end = self.db.time_span.end_hour
        last = store.last_applied_hour
        if last is None or last >= end:
            return 0
        gap = HourWindow(last, end)
        sliced = self.db.readings_for(None, gap)
        store.apply_hours(
            sliced.matrix,
            gap.start_hour,
            customer_ids=[int(cid) for cid in sliced.customer_ids],
        )
        return end - last

    def rollup_status(self) -> dict[str, object]:
        """Staleness + maintenance state of the rollup layer.

        ``enabled`` is False (with every other key still present) until
        the store has been built — the telemetry block stays
        schema-stable either way.
        """
        with self._rollups_lock:
            store = self._rollups
        if store is None:
            return {"enabled": False, "status": None}
        return {
            "enabled": True,
            "status": store.status(source_end_hour=self.db.time_span.end_hour),
        }

    def _rollup_fallback(self, op: str, reason: str) -> None:
        self.metrics.counter(
            "pipeline_rollup_fallback_total", op=op
        ).inc()
        obs.log_event(
            "pipeline.rollup_fallback", level="warning", op=op, reason=reason
        )

    def granularity_sweep(
        self,
        resolutions: tuple[Resolution, ...] = tuple(Resolution),
        max_pairs_per_resolution: int = 8,
        bandwidth_m: float | None = None,
        use_rollups: bool = True,
    ) -> list[GranularityResult]:
        """S2's temporal-granularity sweep, answered from the rollup
        layer when possible.

        The rollup path first catches the store up to the database's end
        hour (incremental, O(lag)), then answers every bucket field from
        the materialized tables — latency independent of how many raw
        readings exist.  Any rollup gap (:class:`~repro.rollup.store
        .RollupMiss`) falls back to the exact raw-readings sweep and is
        counted in ``pipeline_rollup_fallback_total``.
        """
        with obs.span("pipeline.granularity_sweep"), \
                self.metrics.timer("pipeline_seconds", op="granularity_sweep"):
            if use_rollups:
                try:
                    self.rollups_catch_up()
                    return granularity_sweep_from_rollups(
                        self.rollups(),
                        resolutions=resolutions,
                        max_pairs_per_resolution=max_pairs_per_resolution,
                        bandwidth_m=bandwidth_m,
                    )
                except RollupMiss as exc:
                    self._rollup_fallback("granularity_sweep", str(exc))
            return _granularity_sweep_raw(
                self.db,
                resolutions=resolutions,
                spec=self.grid(),
                max_pairs_per_resolution=max_pairs_per_resolution,
                bandwidth_m=bandwidth_m,
            )

    def quantile_sweep(
        self,
        t1: HourWindow,
        t2: HourWindow,
        quantiles: tuple[float, ...] = (0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9),
        bandwidth_m: float | None = None,
        use_rollups: bool = True,
    ) -> list[QuantileResult]:
        """S2's consumption-intensity sweep, rollup-backed with the same
        exact-fallback contract as :meth:`granularity_sweep`."""
        with obs.span("pipeline.quantile_sweep"), \
                self.metrics.timer("pipeline_seconds", op="quantile_sweep"):
            if use_rollups:
                try:
                    self.rollups_catch_up()
                    return quantile_sweep_from_rollups(
                        self.rollups(),
                        t1,
                        t2,
                        quantiles=quantiles,
                        bandwidth_m=bandwidth_m,
                    )
                except RollupMiss as exc:
                    self._rollup_fallback("quantile_sweep", str(exc))
            return _quantile_sweep_raw(
                self.db,
                t1,
                t2,
                quantiles=quantiles,
                spec=self.grid(),
                bandwidth_m=bandwidth_m,
            )

    def flows(
        self,
        t1: HourWindow,
        t2: HourWindow,
        style: str = "major",
        bandwidth_m: float | None = None,
        customer_ids: list[int] | None = None,
    ) -> list[FlowArrow]:
        """Flow arrows for view A.

        ``style`` is ``"major"`` (blob-to-blob transport, the Figure 3
        narrative arrows) or ``"field"`` (dense gradient arrows).

        Raises
        ------
        ValueError
            For an unknown style.
        """
        if style not in ("major", "field"):
            raise ValueError(f"style must be 'major' or 'field', got {style!r}")
        field = self.shift(t1, t2, bandwidth_m, customer_ids)
        if style == "major":
            return major_flows(field)
        return flow_vectors(field)
