"""The VAP logic layer: one facade over data, models and views.

:class:`VapSession` is the object the paper's Figure 1 loop runs through —
Data → Models → Visualization → Users → (refine parameters) → Models.  It
owns an :class:`~repro.db.engine.EnergyDatabase`, performs preprocessing
once, caches embeddings per parameter set (the "refine and re-explore"
loop), and exposes every analytical operation the REST API and the
dashboard need:

- typical patterns: ``embed`` → ``selection_session`` → ``pattern_of`` /
  ``profile_of`` (views C and B);
- shift patterns: ``density`` / ``shift`` / ``flows`` (view A);
- baselines: ``kmeans_baseline`` for the S1d comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.cluster.kmeans import KMeansResult, kmeans
from repro.core.patterns.labeling import (
    PatternLabel,
    label_customers,
    label_selection,
)
from repro.core.patterns.selection import SelectionSession
from repro.core.reduction.mds import mds
from repro.core.reduction.tsne import tsne
from repro.core.shift.flow import FlowArrow, ShiftField, flow_vectors, major_flows
from repro.core.shift.grids import DensityGrid, GridSpec
from repro.core.shift.kde import kde_density
from repro.data.timeseries import HourWindow, SeriesSet
from repro.db.engine import EnergyDatabase
from repro.preprocess.cleaning import AnomalyReport, remove_anomalies
from repro.preprocess.features import FeatureKind, extract_features
from repro.preprocess.imputation import impute
from repro.preprocess.normalize import normalize_matrix
from repro.preprocess.quality import DataQualityReport, assess_quality

EMBED_METHODS = ("tsne", "mds", "mds_classical")


@dataclass(slots=True)
class EmbeddingInfo:
    """An embedding plus the diagnostics its reducer reported."""

    coords: np.ndarray
    method: str
    metric: str
    feature_kind: FeatureKind
    objective: float  # KL for t-SNE, stress for MDS


class VapSession:
    """One analysis session over one data set (the paper's logic layer).

    Parameters
    ----------
    db:
        The data layer.
    feature_kind:
        Default profile folding for embeddings (see
        :class:`~repro.preprocess.features.FeatureKind`).
    preprocess:
        When True (default), readings are anomaly-filtered and imputed at
        construction — the paper's stated preprocessing.  Pass False when
        the readings are already clean.
    metrics:
        Metrics registry receiving cache hit/miss counters and stage
        timings; the process-wide default registry when omitted.
    """

    def __init__(
        self,
        db: EnergyDatabase,
        feature_kind: FeatureKind = FeatureKind.MEAN_WEEK,
        preprocess: bool = True,
        metrics: obs.MetricsRegistry | None = None,
    ) -> None:
        self.db = db
        self._metrics = metrics
        self.feature_kind = feature_kind
        self.quality: DataQualityReport = assess_quality(db.readings)
        self.anomalies: AnomalyReport | None = None
        if preprocess:
            cleaned, self.anomalies = remove_anomalies(db.readings)
            self.series: SeriesSet = impute(cleaned)
        else:
            self.series = db.readings
        self._features: dict[FeatureKind, np.ndarray] = {}
        self._member_labels: list[PatternLabel] | None = None
        self._embeddings: dict[tuple, EmbeddingInfo] = {}
        self._grid: GridSpec | None = None

    @classmethod
    def from_city(cls, dataset, use_raw: bool = True, **kwargs) -> "VapSession":
        """Build a session from a generated
        :class:`~repro.data.generator.simulate.CityDataset`."""
        readings = dataset.raw if use_raw else dataset.clean
        db = EnergyDatabase(
            dataset.customers, readings, metrics=kwargs.get("metrics")
        )
        return cls(db, **kwargs)

    @property
    def metrics(self) -> obs.MetricsRegistry:
        """This session's registry (the process default unless injected)."""
        return self._metrics if self._metrics is not None else obs.get_registry()

    def _cache(self, op: str, hit: bool) -> None:
        result = "hit" if hit else "miss"
        self.metrics.counter("pipeline_cache_total", op=op, result=result).inc()

    # ------------------------------------------------------------------
    # typical patterns (views B and C)
    # ------------------------------------------------------------------
    def features(self, kind: FeatureKind | None = None) -> np.ndarray:
        """Feature matrix for the embedding, cached per kind."""
        kind = kind or self.feature_kind
        hit = kind in self._features
        self._cache("features", hit)
        if not hit:
            with obs.span("pipeline.features", kind=kind.value):
                self._features[kind] = extract_features(self.series, kind)
        return self._features[kind]

    def embed(
        self,
        method: str = "tsne",
        metric: str = "pearson",
        feature_kind: FeatureKind | None = None,
        perplexity: float = 30.0,
        n_iter: int = 500,
        seed: int = 0,
    ) -> EmbeddingInfo:
        """Reduce the series to 2-D; cached per parameter set.

        Raises
        ------
        ValueError
            For an unknown method.
        """
        if method not in EMBED_METHODS:
            raise ValueError(
                f"unknown method {method!r}; pick one of {EMBED_METHODS}"
            )
        kind = feature_kind or self.feature_kind
        key = (method, metric, kind, perplexity, n_iter, seed)
        hit = key in self._embeddings
        self._cache("embed", hit)
        if hit:
            return self._embeddings[key]
        start = self.metrics.clock()
        with obs.span("pipeline.embed", method=method, metric=metric), \
                self.metrics.timer("pipeline_seconds", op="embed"):
            feats = self.features(kind)
            if method == "tsne":
                result = tsne(
                    feats,
                    metric=metric,
                    perplexity=perplexity,
                    n_iter=n_iter,
                    seed=seed,
                )
                info = EmbeddingInfo(
                    coords=result.embedding,
                    method=method,
                    metric=metric,
                    feature_kind=kind,
                    objective=result.kl_divergence,
                )
            else:
                mds_method = "classical" if method == "mds_classical" else "smacof"
                result = mds(feats, metric=metric, method=mds_method)
                info = EmbeddingInfo(
                    coords=result.embedding,
                    method=method,
                    metric=metric,
                    feature_kind=kind,
                    objective=result.stress,
                )
        elapsed = self.metrics.clock() - start
        obs.get_slow_log().offer(
            "pipeline.embed", elapsed, method=method, metric=metric
        )
        obs.log_event(
            "pipeline.embed.compute",
            method=method,
            metric=metric,
            perplexity=perplexity,
            n_iter=n_iter,
            seed=seed,
            duration_ms=round(elapsed * 1000.0, 3),
        )
        self._embeddings[key] = info
        return info

    def selection_session(
        self, embedding: EmbeddingInfo | None = None
    ) -> SelectionSession:
        """Start an interactive selection session over an embedding."""
        info = embedding or self.embed()
        return SelectionSession(embedding=info.coords)

    def member_labels(self) -> list[PatternLabel]:
        """Template labels for every customer (population context), cached."""
        if self._member_labels is None:
            self._member_labels = label_customers(self.series)
        return self._member_labels

    def pattern_of(self, indices: np.ndarray) -> PatternLabel:
        """Name the pattern of a selection (what the analyst reads off
        view B)."""
        return label_selection(
            self.series, indices, member_labels=self.member_labels()
        )

    def profile_of(self, indices: np.ndarray) -> np.ndarray:
        """View B's aggregated consumption curve for a selection.

        Raises
        ------
        ValueError
            If the selection is empty.
        """
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size == 0:
            raise ValueError("cannot aggregate an empty selection")
        ids = [int(self.series.customer_ids[i]) for i in indices]
        return self.series.select_customers(ids).mean_profile()

    def customers_of(self, indices: np.ndarray) -> list[int]:
        """Customer ids behind embedding row indices."""
        return [int(self.series.customer_ids[int(i)]) for i in np.asarray(indices)]

    def kmeans_baseline(
        self, k: int = 5, feature_kind: FeatureKind | None = None, seed: int = 0
    ) -> KMeansResult:
        """The S1d baseline: k-means on z-scored features."""
        with obs.span("pipeline.kmeans_baseline", k=k), \
                self.metrics.timer("pipeline_seconds", op="kmeans_baseline"):
            feats = normalize_matrix(self.features(feature_kind), "zscore")
            return kmeans(feats, k=k, seed=seed)

    def forecast(
        self, customer_id: int, horizon: int = 24, method: str = "profile"
    ) -> np.ndarray:
        """Day-ahead-style forecast for one customer.

        ``method`` is ``"profile"`` (pattern-based, the paper's downstream
        claim), ``"seasonal"`` (repeat last week) or ``"naive"``.

        Raises
        ------
        ValueError
            For an unknown method or customer.
        KeyError
            For an unknown customer id.
        """
        from repro.forecast.baselines import NaiveForecaster, SeasonalNaive
        from repro.forecast.profile import ProfileForecaster

        history = self.series.series(customer_id).values
        if method == "profile":
            model = ProfileForecaster()
            model.fit(history, start_phase=self.series.start_hour % model.season)
        elif method == "seasonal":
            model = SeasonalNaive(168).fit(history)
        elif method == "naive":
            model = NaiveForecaster().fit(history)
        else:
            raise ValueError(
                f"unknown method {method!r}; pick profile/seasonal/naive"
            )
        return model.predict(horizon)

    # ------------------------------------------------------------------
    # shift patterns (view A)
    # ------------------------------------------------------------------
    def grid(self, nx: int = 96, ny: int = 96) -> GridSpec:
        """The session's shared density grid (covers every customer)."""
        if self._grid is None or (self._grid.nx, self._grid.ny) != (nx, ny):
            positions = self.db.positions_of(self.db.customer_ids)
            self._grid = GridSpec.covering(positions, nx=nx, ny=ny)
        return self._grid

    def density(
        self,
        window: HourWindow,
        bandwidth_m: float | None = None,
        customer_ids: list[int] | None = None,
    ) -> DensityGrid:
        """Eq. 3: demand-weighted density for one window (view A heat map)."""
        with obs.span(
            "pipeline.density", start=window.start_hour, end=window.end_hour
        ), self.metrics.timer("pipeline_seconds", op="density"):
            positions, values = self.db.demand(window, customer_ids)
            return kde_density(
                positions, values, self.grid(), bandwidth_m=bandwidth_m
            )

    def shift(
        self,
        t1: HourWindow,
        t2: HourWindow,
        bandwidth_m: float | None = None,
        customer_ids: list[int] | None = None,
    ) -> ShiftField:
        """Eq. 4: the density difference between two windows."""
        with obs.span("pipeline.shift"), \
                self.metrics.timer("pipeline_seconds", op="shift"):
            before = self.density(t1, bandwidth_m, customer_ids)
            after = self.density(t2, bandwidth_m, customer_ids)
            return ShiftField.between(before, after)

    def flows(
        self,
        t1: HourWindow,
        t2: HourWindow,
        style: str = "major",
        bandwidth_m: float | None = None,
        customer_ids: list[int] | None = None,
    ) -> list[FlowArrow]:
        """Flow arrows for view A.

        ``style`` is ``"major"`` (blob-to-blob transport, the Figure 3
        narrative arrows) or ``"field"`` (dense gradient arrows).

        Raises
        ------
        ValueError
            For an unknown style.
        """
        if style not in ("major", "field"):
            raise ValueError(f"style must be 'major' or 'field', got {style!r}")
        field = self.shift(t1, t2, bandwidth_m, customer_ids)
        if style == "major":
            return major_flows(field)
        return flow_vectors(field)
