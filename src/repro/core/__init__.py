"""The paper's analytical models.

- :mod:`repro.core.reduction` — t-SNE and MDS with the Pearson-correlation
  distance (paper Eq. 1-2), plus embedding-quality metrics;
- :mod:`repro.core.patterns` — typical-pattern discovery: canonical
  templates, interactive selection operators, labelling, transitions;
- :mod:`repro.core.shift` — spatio-temporal shift patterns: weighted
  Gaussian KDE (Eq. 3), density difference (Eq. 4), flow extraction and the
  S2 sensitivity sweeps;
- :mod:`repro.core.pipeline` — the :class:`~repro.core.pipeline.VapSession`
  facade wiring data, models and views together (paper Figure 1).
"""

from repro.core.pipeline import VapSession

__all__ = ["VapSession"]
