"""Principal component analysis.

Not a headline method of the paper, but needed twice: as the standard
initialisation of t-SNE (reproducible layouts instead of random starts) and
as a cheap linear baseline in the reducer comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(slots=True)
class PCAResult:
    """Projection plus the variance bookkeeping callers chart."""

    embedding: np.ndarray
    components: np.ndarray
    explained_variance: np.ndarray
    explained_variance_ratio: np.ndarray


def pca(features: np.ndarray, n_components: int = 2) -> PCAResult:
    """Project rows onto the top principal components via SVD.

    Deterministic up to sign; signs are fixed so each component's largest
    loading is positive.

    Raises
    ------
    ValueError
        If inputs are not finite 2-D or n_components is out of range.
    """
    features = np.asarray(features, dtype=np.float64)
    if features.ndim != 2:
        raise ValueError(f"features must be 2-D, got shape {features.shape}")
    if not np.isfinite(features).all():
        raise ValueError("features contain NaN/inf; impute first")
    n, d = features.shape
    max_components = min(n, d)
    if not 1 <= n_components <= max_components:
        raise ValueError(
            f"n_components must be in [1, {max_components}], got {n_components}"
        )
    centered = features - features.mean(axis=0, keepdims=True)
    u, s, vt = np.linalg.svd(centered, full_matrices=False)
    # Deterministic sign: largest-magnitude loading of each component > 0.
    for i in range(vt.shape[0]):
        pivot = np.argmax(np.abs(vt[i]))
        if vt[i, pivot] < 0:
            vt[i] *= -1.0
            u[:, i] *= -1.0
    explained = (s**2) / max(n - 1, 1)
    total = explained.sum()
    ratio = explained / total if total > 0 else np.zeros_like(explained)
    return PCAResult(
        embedding=u[:, :n_components] * s[:n_components],
        components=vt[:n_components],
        explained_variance=explained[:n_components],
        explained_variance_ratio=ratio[:n_components],
    )
