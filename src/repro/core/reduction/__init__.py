"""Dimension reduction for the embedding view (view C).

The paper reduces high-dimensional consumption series to 2-D with t-SNE or
MDS, using the Pearson correlation coefficient as the distance metric
"as it can better reflect the correlation of the trend between two time
series".  Both reducers are implemented from scratch here, along with the
distance functions and the quality metrics the S1c comparison reports.
"""

from repro.core.reduction.distances import (
    euclidean_distance_matrix,
    pairwise_distances,
    pearson_distance_matrix,
)
from repro.core.reduction.dtw import dtw_distance, dtw_distance_matrix
from repro.core.reduction.mds import MDSResult, mds
from repro.core.reduction.pca import PCAResult, pca
from repro.core.reduction.quality import (
    continuity,
    kl_divergence_embedding,
    neighborhood_hit,
    shepard_correlation,
    trustworthiness,
)
from repro.core.reduction.procrustes import embedding_stability, procrustes_align
from repro.core.reduction.project import EmbeddingProjector
from repro.core.reduction.tsne import TSNEResult, tsne

__all__ = [
    "MDSResult",
    "PCAResult",
    "TSNEResult",
    "EmbeddingProjector",
    "continuity",
    "dtw_distance",
    "dtw_distance_matrix",
    "embedding_stability",
    "euclidean_distance_matrix",
    "kl_divergence_embedding",
    "mds",
    "neighborhood_hit",
    "pairwise_distances",
    "pca",
    "pearson_distance_matrix",
    "procrustes_align",
    "shepard_correlation",
    "trustworthiness",
    "tsne",
]
