"""Multi-dimensional scaling (classical + SMACOF), from scratch.

The paper's second reducer cites Kruskal (1964).  Two variants:

- ``"classical"`` — Torgerson's spectral method: double-centre the squared
  dissimilarities and take the top eigenvectors.  Fast, closed-form, exact
  when the dissimilarities are Euclidean.
- ``"smacof"`` — iterative stress majorisation, the standard way to fit
  arbitrary (e.g. Pearson) dissimilarities.  Initialised from the classical
  solution, so the result is deterministic.

Both report Kruskal's *stress-1*, the fit number the S1c comparison prints.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.core.reduction.distances import pairwise_distances, validate_distance_matrix

METHODS = ("classical", "smacof")


@dataclass(slots=True)
class MDSResult:
    """Embedding plus goodness-of-fit diagnostics."""

    embedding: np.ndarray
    stress: float
    n_iter: int
    method: str


def _embedding_distances(y: np.ndarray) -> np.ndarray:
    sq = (y**2).sum(axis=1)
    d2 = sq[:, None] + sq[None, :] - 2.0 * (y @ y.T)
    np.clip(d2, 0.0, None, out=d2)
    return np.sqrt(d2)


def kruskal_stress(dist: np.ndarray, y: np.ndarray) -> float:
    """Stress-1: sqrt( sum (d - d_hat)^2 / sum d^2 ) over the upper triangle."""
    d_hat = _embedding_distances(y)
    iu = np.triu_indices(dist.shape[0], k=1)
    num = ((dist[iu] - d_hat[iu]) ** 2).sum()
    den = (dist[iu] ** 2).sum()
    if den == 0:
        return 0.0
    return float(np.sqrt(num / den))


def classical_mds(dist: np.ndarray, n_components: int = 2) -> np.ndarray:
    """Torgerson's method.

    Negative eigenvalues (non-Euclidean input) are truncated to zero, the
    standard practical treatment.
    """
    n = dist.shape[0]
    j = np.eye(n) - np.ones((n, n)) / n
    b = -0.5 * j @ (dist**2) @ j
    b = (b + b.T) / 2.0
    eigvals, eigvecs = np.linalg.eigh(b)
    order = np.argsort(eigvals)[::-1][:n_components]
    vals = np.clip(eigvals[order], 0.0, None)
    y = eigvecs[:, order] * np.sqrt(vals)[None, :]
    # Deterministic sign convention.
    for c in range(y.shape[1]):
        pivot = np.argmax(np.abs(y[:, c]))
        if y[pivot, c] < 0:
            y[:, c] *= -1.0
    return y


def smacof(
    dist: np.ndarray,
    n_components: int = 2,
    max_iter: int = 300,
    tol: float = 1e-7,
    init: np.ndarray | None = None,
) -> tuple[np.ndarray, float, int]:
    """Stress majorisation via the Guttman transform.

    Returns ``(embedding, stress, n_iter)``.  Raw stress decreases
    monotonically; iteration stops when the relative improvement drops
    below ``tol``.
    """
    n = dist.shape[0]
    y = init.copy() if init is not None else classical_mds(dist, n_components)
    if y.shape != (n, n_components):
        raise ValueError(
            f"init shape {y.shape} does not match ({n}, {n_components})"
        )
    # Break exact ties (e.g. all-zero classical init) deterministically.
    if np.allclose(y, 0.0):
        rng = np.random.default_rng(0)
        y = rng.normal(0.0, 1e-3, size=(n, n_components))
    previous_raw = np.inf
    iterations = 0
    for iterations in range(1, max_iter + 1):
        d_hat = _embedding_distances(y)
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(d_hat > 0, dist / d_hat, 0.0)
        np.fill_diagonal(ratio, 0.0)
        b = -ratio
        np.fill_diagonal(b, ratio.sum(axis=1))
        y = (b @ y) / n  # Guttman transform (V^+ = I/n for full weights)
        iu = np.triu_indices(n, k=1)
        raw = float(((dist[iu] - _embedding_distances(y)[iu]) ** 2).sum())
        if previous_raw - raw < tol * max(previous_raw, 1e-30):
            break
        previous_raw = raw
    return y, kruskal_stress(dist, y), iterations


def mds(
    features: np.ndarray | None = None,
    *,
    distances: np.ndarray | None = None,
    metric: str = "pearson",
    method: str = "smacof",
    n_components: int = 2,
    max_iter: int = 300,
    workers: int | None = None,
    dtw_max_rows: int | None = None,
) -> MDSResult:
    """Embed rows with MDS; mirrors the :func:`~repro.core.reduction.tsne.tsne`
    calling convention (including the ``workers`` fan-out and the DTW
    row-ceiling override for the distance stage).

    Raises
    ------
    ValueError
        On inconsistent inputs or an unknown method.
    """
    if (features is None) == (distances is None):
        raise ValueError("pass exactly one of features or distances")
    if method not in METHODS:
        raise ValueError(f"unknown method {method!r}; pick one of {METHODS}")
    if distances is None:
        assert features is not None
        dist = pairwise_distances(
            features, metric=metric, workers=workers,
            dtw_max_rows=dtw_max_rows,
        )
    else:
        dist = validate_distance_matrix(distances)
    if dist.shape[0] < 3:
        raise ValueError(f"need at least 3 points for MDS, got {dist.shape[0]}")
    with obs.span("kernel.mds", n_points=dist.shape[0], method=method), \
            obs.get_registry().timer("kernel_runtime_seconds", kernel="mds"):
        if method == "classical":
            y = classical_mds(dist, n_components)
            result = MDSResult(
                embedding=y, stress=kruskal_stress(dist, y), n_iter=0,
                method=method,
            )
        else:
            y, stress, iterations = smacof(dist, n_components, max_iter=max_iter)
            result = MDSResult(
                embedding=y, stress=stress, n_iter=iterations, method=method
            )
    registry = obs.get_registry()
    registry.counter("kernel_runs_total", kernel="mds").inc()
    registry.histogram(
        "kernel_iterations", buckets=obs.COUNT_BUCKETS, kernel="mds"
    ).observe(result.n_iter)
    registry.gauge("kernel_last_objective", kernel="mds").set(result.stress)
    return result
