"""Orthogonal Procrustes alignment and embedding-stability measurement.

t-SNE layouts are only defined up to rotation/reflection/translation (and
runs with different seeds differ even more).  To compare two embeddings of
the *same* customers — different seeds, different iteration counts, before
/after new data — one first aligns them: the orthogonal Procrustes problem
``min_R ||A R - B||_F`` over rotations/reflections, solved in closed form
by an SVD, with optional uniform scaling.

``embedding_stability`` reports the residual disparity in [0, 1] (0 =
identical up to similarity transform), the number the demo would quote
when an attendee asks "does the map change every time?".
"""

from __future__ import annotations

import numpy as np


def procrustes_align(
    source: np.ndarray, target: np.ndarray, allow_scaling: bool = True
) -> tuple[np.ndarray, float]:
    """Align ``source`` onto ``target``; returns ``(aligned, disparity)``.

    Both inputs are centred first; ``disparity`` is the normalised residual
    ``||aligned - target_centred||^2 / ||target_centred||^2`` in [0, 1+]
    (values above 1 are possible only without scaling).

    Raises
    ------
    ValueError
        On shape mismatch, non-finite input or degenerate (all-identical)
        configurations.
    """
    source = np.asarray(source, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if source.shape != target.shape or source.ndim != 2:
        raise ValueError(
            f"source {source.shape} and target {target.shape} must be "
            f"equal-shape 2-D arrays"
        )
    if not (np.isfinite(source).all() and np.isfinite(target).all()):
        raise ValueError("embeddings contain NaN/inf")
    a = source - source.mean(axis=0, keepdims=True)
    b = target - target.mean(axis=0, keepdims=True)
    norm_a = float(np.linalg.norm(a))
    norm_b = float(np.linalg.norm(b))
    if norm_a == 0 or norm_b == 0:
        raise ValueError("degenerate embedding: all points coincide")
    a = a / norm_a
    b = b / norm_b
    u, s, vt = np.linalg.svd(a.T @ b)
    rotation = u @ vt
    scale = float(s.sum()) if allow_scaling else 1.0
    aligned = scale * (a @ rotation)
    disparity = float(((aligned - b) ** 2).sum())
    # Return in the target's original frame.
    restored = aligned * norm_b + target.mean(axis=0, keepdims=True)
    return restored, disparity


def embedding_stability(
    embeddings: list[np.ndarray], allow_scaling: bool = True
) -> float:
    """Mean pairwise Procrustes disparity across runs (0 = fully stable).

    Raises
    ------
    ValueError
        With fewer than two embeddings.
    """
    if len(embeddings) < 2:
        raise ValueError("stability needs at least two embeddings")
    disparities = []
    for i in range(len(embeddings)):
        for j in range(i + 1, len(embeddings)):
            _, disparity = procrustes_align(
                embeddings[i], embeddings[j], allow_scaling=allow_scaling
            )
            disparities.append(disparity)
    return float(np.mean(disparities))
