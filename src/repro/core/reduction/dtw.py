"""Dynamic time warping distance (Sakoe-Chiba banded).

The paper motivates the Pearson metric over Euclidean for *trend*
comparison; DTW is the classic third option, tolerant to small phase
shifts (a household whose evening peak drifts by an hour stays close).
Provided as an alternative metric for small data sets and selections —
DTW is O(n·w) per pair, so full pairwise matrices are only practical up to
a few hundred series.

The implementation is a banded dynamic program vectorised along the
anti-band axis where possible, with an optional z-normalisation so DTW
compares shape rather than magnitude (matching the spirit of the paper's
metric choice).
"""

from __future__ import annotations

import numpy as np

from repro.preprocess.normalize import normalize_matrix


def dtw_distance(
    a: np.ndarray,
    b: np.ndarray,
    band: int | None = None,
    normalize: bool = True,
) -> float:
    """DTW distance between two 1-D series.

    Parameters
    ----------
    a, b:
        Equal-or-different length 1-D arrays, NaN-free.
    band:
        Sakoe-Chiba band half-width; defaults to 10% of the longer series
        (at least 1).  The band also bridges any length difference.
    normalize:
        z-normalise both series first so the distance measures shape.

    Raises
    ------
    ValueError
        On malformed input or a band too narrow for the length difference.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 1 or b.ndim != 1:
        raise ValueError("dtw_distance expects 1-D series")
    if a.size == 0 or b.size == 0:
        raise ValueError("cannot warp empty series")
    if not (np.isfinite(a).all() and np.isfinite(b).all()):
        raise ValueError("series contain NaN/inf; impute first")
    if normalize:
        a = normalize_matrix(a[None, :], "zscore")[0]
        b = normalize_matrix(b[None, :], "zscore")[0]
    n, m = a.size, b.size
    if band is None:
        band = max(1, int(0.1 * max(n, m)))
    if band < abs(n - m):
        raise ValueError(
            f"band {band} cannot bridge length difference {abs(n - m)}"
        )
    # Banded DP over the cumulative cost matrix.
    inf = np.inf
    previous = np.full(m + 1, inf)
    previous[0] = 0.0
    current = np.empty(m + 1)
    for i in range(1, n + 1):
        current.fill(inf)
        lo = max(1, i - band)
        hi = min(m, i + band)
        cost = np.abs(a[i - 1] - b[lo - 1 : hi])
        segment_prev = previous[lo - 1 : hi]      # D[i-1, j-1]
        segment_up = previous[lo : hi + 1]        # D[i-1, j]
        running = inf  # D[i, j-1], filled as we sweep j
        for k in range(hi - lo + 1):
            best = min(segment_prev[k], segment_up[k], running)
            running = cost[k] + best
            current[lo + k] = running
        previous, current = current, previous
    total = previous[m]
    if not np.isfinite(total):
        raise ValueError("band too narrow: no warping path exists")
    return float(total / (n + m))  # path-length normalised


def dtw_distance_matrix(
    features: np.ndarray, band: int | None = None, normalize: bool = True
) -> np.ndarray:
    """Pairwise DTW distances between the rows of a feature matrix.

    O(n^2) DTW evaluations — intended for selections and small fleets
    (a few hundred rows), not the full-city default metric.

    Raises
    ------
    ValueError
        On malformed input.
    """
    features = np.asarray(features, dtype=np.float64)
    if features.ndim != 2:
        raise ValueError(f"features must be 2-D, got shape {features.shape}")
    if features.shape[0] < 2:
        raise ValueError("need at least 2 rows for pairwise distances")
    if not np.isfinite(features).all():
        raise ValueError("features contain NaN/inf; impute first")
    if normalize:
        features = normalize_matrix(features, "zscore")
    n = features.shape[0]
    out = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            d = dtw_distance(
                features[i], features[j], band=band, normalize=False
            )
            out[i, j] = d
            out[j, i] = d
    return out
