"""Dynamic time warping distance (Sakoe-Chiba banded).

The paper motivates the Pearson metric over Euclidean for *trend*
comparison; DTW is the classic third option, tolerant to small phase
shifts (a household whose evening peak drifts by an hour stays close).
Provided as an alternative metric for small data sets and selections —
DTW is O(n·w) per pair, so full pairwise matrices are only practical up to
a few hundred series.

The implementation is a banded dynamic program vectorised along the
anti-band axis where possible, with an optional z-normalisation so DTW
compares shape rather than magnitude (matching the spirit of the paper's
metric choice).
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.preprocess.normalize import normalize_matrix


def dtw_distance(
    a: np.ndarray,
    b: np.ndarray,
    band: int | None = None,
    normalize: bool = True,
) -> float:
    """DTW distance between two 1-D series.

    Parameters
    ----------
    a, b:
        Equal-or-different length 1-D arrays, NaN-free.
    band:
        Sakoe-Chiba band half-width; defaults to 10% of the longer series
        (at least 1).  The band also bridges any length difference.
    normalize:
        z-normalise both series first so the distance measures shape.

    Raises
    ------
    ValueError
        On malformed input or a band too narrow for the length difference.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 1 or b.ndim != 1:
        raise ValueError("dtw_distance expects 1-D series")
    if a.size == 0 or b.size == 0:
        raise ValueError("cannot warp empty series")
    if not (np.isfinite(a).all() and np.isfinite(b).all()):
        raise ValueError("series contain NaN/inf; impute first")
    if normalize:
        a = normalize_matrix(a[None, :], "zscore")[0]
        b = normalize_matrix(b[None, :], "zscore")[0]
    n, m = a.size, b.size
    if band is None:
        band = max(1, int(0.1 * max(n, m)))
    if band < abs(n - m):
        raise ValueError(
            f"band {band} cannot bridge length difference {abs(n - m)}"
        )
    # Banded DP over the cumulative cost matrix, swept along anti-diagonals:
    # every cell on diagonal s = i + j depends only on diagonals s-1 and s-2,
    # so each diagonal is one vectorised expression instead of a Python loop
    # over j (the row-sweep recurrence D[i, j-1] is sequential within a row).
    # Diagonal s is stored indexed by i: diag[i] = D[i, s - i].
    inf = np.inf
    prev2 = np.full(n + 1, inf)  # diagonal s-2
    prev2[0] = 0.0               # D[0, 0]
    prev1 = np.full(n + 1, inf)  # diagonal s-1: D[0,1] and D[1,0] are inf
    current = np.empty(n + 1)
    for s in range(2, n + m + 1):
        # Cell (i, s-i) is in the DP iff 1<=i<=n, 1<=s-i<=m and
        # |i - (s-i)| <= band  =>  ceil((s-band)/2) <= i <= (s+band)//2.
        i_lo = max(1, s - m, -((band - s) // 2))
        i_hi = min(n, s - 1, (s + band) // 2)
        current.fill(inf)
        if i_lo <= i_hi:
            cost = np.abs(a[i_lo - 1 : i_hi] - b[s - i_hi - 1 : s - i_lo][::-1])
            best = np.minimum(prev2[i_lo - 1 : i_hi], prev1[i_lo - 1 : i_hi])
            np.minimum(best, prev1[i_lo : i_hi + 1], out=best)
            current[i_lo : i_hi + 1] = cost + best
        prev2, prev1, current = prev1, current, prev2
    total = prev1[n]  # diagonal n+m holds only D[n, m]
    if not np.isfinite(total):
        raise ValueError("band too narrow: no warping path exists")
    return float(total / (n + m))  # path-length normalised


MAX_DTW_ROWS = 512

# Hard ceiling for caller-supplied ``max_rows`` overrides (pipeline and
# server): a landmark subset legitimately needs more than the default
# 512, but 4096^2 DTW evaluations is already hours of work — anything
# beyond that is rejected as abuse rather than queued.
MAX_DTW_ROWS_CEILING = 4096


class DtwLimitError(ValueError):
    """Raised when a pairwise DTW request exceeds the row ceiling.

    Subclasses ``ValueError`` so existing error handling (the API layer's
    ValueError → 400 mapping) keeps working, while callers that want to
    react specifically — e.g. to suggest sampling — can catch the typed
    error and read :attr:`n_rows` / :attr:`max_rows`.
    """

    def __init__(self, n_rows: int, max_rows: int) -> None:
        super().__init__(
            f"dtw_distance_matrix got {n_rows} rows; the O(n^2) "
            f"pairwise DTW is only practical up to max_rows={max_rows}. "
            "Sample a subset of rows first (or use the euclidean/pearson "
            "metrics, which scale to full fleets), or pass a larger "
            "max_rows= explicitly if you really want the long run."
        )
        self.n_rows = n_rows
        self.max_rows = max_rows


def dtw_distance_matrix(
    features: np.ndarray,
    band: int | None = None,
    normalize: bool = True,
    max_rows: int = MAX_DTW_ROWS,
) -> np.ndarray:
    """Pairwise DTW distances between the rows of a feature matrix.

    O(n^2) DTW evaluations — intended for selections and small fleets
    (a few hundred rows), not the full-city default metric.  ``max_rows``
    guards against accidentally submitting a whole city: at fleet scale the
    quadratic pair count would run for hours, so oversize inputs are
    rejected up front rather than left to hang.

    Raises
    ------
    DtwLimitError
        For more than ``max_rows`` rows (a ``ValueError`` subclass
        carrying ``n_rows`` and ``max_rows``).
    ValueError
        On malformed input.
    """
    features = np.asarray(features, dtype=np.float64)
    if features.ndim != 2:
        raise ValueError(f"features must be 2-D, got shape {features.shape}")
    if features.shape[0] < 2:
        raise ValueError("need at least 2 rows for pairwise distances")
    if features.shape[0] > max_rows:
        raise DtwLimitError(features.shape[0], max_rows)
    if not np.isfinite(features).all():
        raise ValueError("features contain NaN/inf; impute first")
    if normalize:
        features = normalize_matrix(features, "zscore")
    n = features.shape[0]
    out = np.zeros((n, n))
    registry = obs.get_registry()
    with obs.span("kernel.dtw", n_rows=n, length=features.shape[1]):
        with registry.timer("kernel_runtime_seconds", kernel="dtw"):
            for i in range(n):
                for j in range(i + 1, n):
                    d = dtw_distance(
                        features[i], features[j], band=band, normalize=False
                    )
                    out[i, j] = d
                    out[j, i] = d
    registry.counter("kernel_runs_total", kernel="dtw").inc()
    return out


def dtw_cross_distance_matrix(
    queries: np.ndarray,
    references: np.ndarray,
    band: int | None = None,
    normalize: bool = True,
    max_rows: int | None = None,
) -> np.ndarray:
    """``(m, n)`` DTW distances from query rows to reference rows.

    The landmark-placement counterpart of :func:`dtw_distance_matrix`:
    ``m * n`` pair DPs instead of ``n^2``, budgeted against the same
    ceiling — the pair count must not exceed ``max_rows ** 2`` (default
    :data:`MAX_DTW_ROWS`), so placing a big fleet against a small
    landmark set stays inside the work envelope a square request of
    ``max_rows`` rows would have been allowed.

    Raises
    ------
    DtwLimitError
        When ``m * n`` exceeds the pair budget.
    ValueError
        On malformed input.
    """
    limit = MAX_DTW_ROWS if max_rows is None else max_rows
    queries = np.asarray(queries, dtype=np.float64)
    references = np.asarray(references, dtype=np.float64)
    if queries.ndim != 2 or references.ndim != 2:
        raise ValueError("queries and references must be 2-D")
    if queries.shape[0] == 0 or references.shape[0] == 0:
        raise ValueError("need at least 1 query and 1 reference row")
    pairs = queries.shape[0] * references.shape[0]
    if pairs > limit * limit:
        raise DtwLimitError(int(np.ceil(np.sqrt(pairs))), limit)
    if not (np.isfinite(queries).all() and np.isfinite(references).all()):
        raise ValueError("series contain NaN/inf; impute first")
    if normalize:
        queries = normalize_matrix(queries, "zscore")
        references = normalize_matrix(references, "zscore")
    out = np.empty((queries.shape[0], references.shape[0]))
    registry = obs.get_registry()
    with obs.span(
        "kernel.dtw_cross", n_queries=queries.shape[0],
        n_references=references.shape[0],
    ), registry.timer("kernel_runtime_seconds", kernel="dtw"):
        for i in range(queries.shape[0]):
            for j in range(references.shape[0]):
                out[i, j] = dtw_distance(
                    queries[i], references[j], band=band, normalize=False
                )
    registry.counter("kernel_runs_total", kernel="dtw").inc()
    return out
