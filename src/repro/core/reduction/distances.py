"""Distance functions for the embedding models.

The paper's stated choice is the Pearson correlation coefficient, turned
into a distance as ``d = 1 - r`` so that perfectly trend-correlated series
sit at distance 0 and anti-correlated ones at distance 2.  Euclidean (on
normalised rows) is provided for comparison sweeps, plus a small dispatch
helper the reducers share.

Dtype policy: the input dtype (float32 or float64) is preserved end to
end — elementwise work and the large matmuls run in the input dtype,
while every *reduction* (row means, squared norms) accumulates in
float64 before casting back.  float32 halves the memory of the n x n
matrix and roughly doubles matmul throughput at a max relative error
≤ 1e-5 against the float64 path (pinned by the parity suite).  Pass
``dtype=`` to convert explicitly; integer and other inputs still default
to float64.

Scale policy: the pairwise kernels decompose over row blocks —
boundaries fixed by :func:`repro.parallel.row_blocks`, never by worker
count — and fan out on the shared-memory pool when ``workers`` (or
``REPRO_WORKERS``) asks for cores.  The cross-distance kernels
(`*_cross_distance_matrix`) compute an ``(m, n)`` query-vs-reference
block directly, which is what lets the landmark t-SNE path place 50k
points without ever materialising a 50k x 50k matrix.
"""

from __future__ import annotations

import numpy as np

from repro.parallel import DEFAULT_BLOCK_ROWS, map_blocks, row_blocks

METRICS = ("pearson", "euclidean", "dtw")

_COMPUTE_DTYPES = (np.float32, np.float64)


def _validated(features: np.ndarray, dtype: np.dtype | None = None) -> np.ndarray:
    """2-D, finite, >= 1 row; float32 stays float32 (see module dtype policy).

    Historical bug: this helper upcast every input to float64, so a
    caller handing in a float32 matrix silently paid double memory for
    the distance matrix.  Now only non-float inputs (ints, lists) are
    promoted to float64; an explicit ``dtype=`` converts either way.
    """
    features = np.asarray(features)
    if dtype is not None:
        dtype = np.dtype(dtype)
        if dtype.type not in _COMPUTE_DTYPES:
            raise ValueError(
                f"dtype must be float32 or float64, got {dtype}"
            )
        features = features.astype(dtype, copy=False)
    elif features.dtype.type not in _COMPUTE_DTYPES:
        features = features.astype(np.float64)
    if features.ndim != 2:
        raise ValueError(f"features must be 2-D, got shape {features.shape}")
    if not np.isfinite(features).all():
        raise ValueError(
            "features contain NaN/inf; run preprocessing (impute) first"
        )
    return features


def _validated_pairwise(
    features: np.ndarray, dtype: np.dtype | None = None
) -> np.ndarray:
    features = _validated(features, dtype=dtype)
    if features.shape[0] < 2:
        raise ValueError(
            f"need at least 2 rows to compute pairwise distances, "
            f"got {features.shape[0]}"
        )
    return features


def pearson_normalize(
    features: np.ndarray, dtype: np.dtype | None = None
) -> np.ndarray:
    """Rows centred and scaled to unit norm; zero-variance rows become zero.

    With this representation the Pearson distance is a plain matmul:
    ``1 - unit @ unit.T``.  A zero row makes every correlation involving
    a flat series exactly 0 (distance 1), the convention
    :func:`pearson_distance_matrix` documents.  Reductions (mean, norm)
    accumulate in float64 regardless of the compute dtype.
    """
    features = _validated(features, dtype=dtype)
    mean = features.mean(axis=1, keepdims=True, dtype=np.float64)
    centered = features - mean  # float64 intermediate for float32 input
    norms = np.sqrt((centered**2).sum(axis=1, dtype=np.float64))
    flat = norms == 0
    safe = np.where(flat, 1.0, norms)
    unit = (centered / safe[:, None]).astype(features.dtype, copy=False)
    if flat.any():
        unit[flat] = 0.0
    return unit


def _pearson_block(
    block: tuple[int, int], arrays: dict[str, np.ndarray]
) -> np.ndarray:
    start, stop = block
    unit = arrays["unit"]
    corr = unit[start:stop] @ unit.T
    np.clip(corr, -1.0, 1.0, out=corr)
    return 1.0 - corr


def pearson_distance_matrix(
    features: np.ndarray,
    *,
    dtype: np.dtype | None = None,
    workers: int | None = None,
    block_rows: int = DEFAULT_BLOCK_ROWS,
) -> np.ndarray:
    """``1 - r`` distance between all row pairs (paper's metric).

    Rows with zero variance carry no trend information; their correlation
    with anything is defined as 0, i.e. distance 1 — except to themselves
    (distance 0), keeping the matrix a proper dissimilarity (zero diagonal,
    symmetric, non-negative, bounded by 2).

    Computed blockwise over rows (fixed ``block_rows`` boundaries) and in
    parallel when ``workers`` > 1 — worker count never changes the
    result, only which process computes which block.
    """
    unit = pearson_normalize(features, dtype=dtype)
    n = unit.shape[0]
    if n < 2:
        raise ValueError(
            f"need at least 2 rows to compute pairwise distances, got {n}"
        )
    blocks = row_blocks(n, block_rows)
    parts = map_blocks(
        _pearson_block, blocks, arrays={"unit": unit},
        workers=workers, name="pearson",
    )
    dist = parts[0] if len(parts) == 1 else np.concatenate(parts, axis=0)
    np.fill_diagonal(dist, 0.0)
    # Exact symmetry despite floating-point noise.
    return (dist + dist.T) / 2.0


def pearson_cross_distance_matrix(
    queries: np.ndarray,
    references: np.ndarray | None = None,
    *,
    reference_unit: np.ndarray | None = None,
    dtype: np.dtype | None = None,
    workers: int | None = None,
    block_rows: int = DEFAULT_BLOCK_ROWS,
) -> np.ndarray:
    """``(m, n)`` Pearson distances from query rows to reference rows.

    Never materialises the ``(m + n)^2`` stacked matrix — this is the
    out-of-core building block for landmark placement.  Pass either raw
    ``references`` or a precomputed ``reference_unit``
    (:func:`pearson_normalize` output) to amortise normalisation across
    repeated queries.
    """
    if (references is None) == (reference_unit is None):
        raise ValueError("pass exactly one of references / reference_unit")
    if reference_unit is None:
        reference_unit = pearson_normalize(references, dtype=dtype)
    query_unit = pearson_normalize(queries, dtype=dtype)
    if query_unit.shape[1] != reference_unit.shape[1]:
        raise ValueError(
            f"queries have width {query_unit.shape[1]}, "
            f"references have {reference_unit.shape[1]}"
        )
    blocks = row_blocks(query_unit.shape[0], block_rows)
    parts = map_blocks(
        _pearson_cross_block, blocks,
        arrays={"query": query_unit, "reference": reference_unit},
        workers=workers, name="pearson_cross",
    )
    return parts[0] if len(parts) == 1 else np.concatenate(parts, axis=0)


def _pearson_cross_block(
    block: tuple[int, int], arrays: dict[str, np.ndarray]
) -> np.ndarray:
    start, stop = block
    corr = arrays["query"][start:stop] @ arrays["reference"].T
    np.clip(corr, -1.0, 1.0, out=corr)
    return 1.0 - corr


def _euclidean_block(
    block: tuple[int, int], arrays: dict[str, np.ndarray]
) -> np.ndarray:
    start, stop = block
    features = arrays["features"]
    sq = arrays["sq"]
    d2 = sq[start:stop, None] + sq[None, :]
    d2 -= 2.0 * (features[start:stop] @ features.T)
    np.clip(d2, 0.0, None, out=d2)
    return np.sqrt(d2)


def euclidean_distance_matrix(
    features: np.ndarray,
    *,
    dtype: np.dtype | None = None,
    workers: int | None = None,
    block_rows: int = DEFAULT_BLOCK_ROWS,
) -> np.ndarray:
    """Plain Euclidean distance between all row pairs (blockwise)."""
    features = _validated_pairwise(features, dtype=dtype)
    sq = (features**2).sum(axis=1, dtype=np.float64).astype(
        features.dtype, copy=False
    )
    blocks = row_blocks(features.shape[0], block_rows)
    parts = map_blocks(
        _euclidean_block, blocks,
        arrays={"features": features, "sq": sq},
        workers=workers, name="euclidean",
    )
    dist = parts[0] if len(parts) == 1 else np.concatenate(parts, axis=0)
    np.fill_diagonal(dist, 0.0)
    return (dist + dist.T) / 2.0


def euclidean_cross_distance_matrix(
    queries: np.ndarray,
    references: np.ndarray,
    *,
    dtype: np.dtype | None = None,
    workers: int | None = None,
    block_rows: int = DEFAULT_BLOCK_ROWS,
) -> np.ndarray:
    """``(m, n)`` Euclidean distances from query rows to reference rows."""
    queries = _validated(queries, dtype=dtype)
    references = _validated(references, dtype=dtype)
    if queries.shape[1] != references.shape[1]:
        raise ValueError(
            f"queries have width {queries.shape[1]}, "
            f"references have {references.shape[1]}"
        )
    sq_r = (references**2).sum(axis=1, dtype=np.float64).astype(
        references.dtype, copy=False
    )
    sq_q = (queries**2).sum(axis=1, dtype=np.float64).astype(
        queries.dtype, copy=False
    )
    blocks = row_blocks(queries.shape[0], block_rows)
    parts = map_blocks(
        _euclidean_cross_block, blocks,
        arrays={
            "queries": queries, "references": references,
            "sq_q": sq_q, "sq_r": sq_r,
        },
        workers=workers, name="euclidean_cross",
    )
    return parts[0] if len(parts) == 1 else np.concatenate(parts, axis=0)


def _euclidean_cross_block(
    block: tuple[int, int], arrays: dict[str, np.ndarray]
) -> np.ndarray:
    start, stop = block
    d2 = arrays["sq_q"][start:stop, None] + arrays["sq_r"][None, :]
    d2 -= 2.0 * (arrays["queries"][start:stop] @ arrays["references"].T)
    np.clip(d2, 0.0, None, out=d2)
    return np.sqrt(d2)


def pairwise_distances(
    features: np.ndarray,
    metric: str = "pearson",
    *,
    dtype: np.dtype | None = None,
    workers: int | None = None,
    dtw_max_rows: int | None = None,
) -> np.ndarray:
    """Dispatch on metric name.

    ``dtw_max_rows`` overrides the DTW row ceiling (see
    :class:`repro.core.reduction.dtw.DtwLimitError`); the other metrics
    ignore it.

    Raises
    ------
    ValueError
        For an unknown metric name.
    """
    if metric == "pearson":
        return pearson_distance_matrix(features, dtype=dtype, workers=workers)
    if metric == "euclidean":
        return euclidean_distance_matrix(features, dtype=dtype, workers=workers)
    if metric == "dtw":
        # Local import: dtw pulls in the obs/preprocess stack.  DTW is
        # row-capped (see DtwLimitError) — selections and small fleets
        # only, with the limit surfaced to the caller.
        from repro.core.reduction.dtw import MAX_DTW_ROWS, dtw_distance_matrix

        max_rows = MAX_DTW_ROWS if dtw_max_rows is None else dtw_max_rows
        return dtw_distance_matrix(features, max_rows=max_rows)
    raise ValueError(f"unknown metric {metric!r}; pick one of {METRICS}")


def cross_distances(
    queries: np.ndarray,
    references: np.ndarray,
    metric: str = "pearson",
    *,
    dtype: np.dtype | None = None,
    workers: int | None = None,
    dtw_max_rows: int | None = None,
) -> np.ndarray:
    """``(m, n)`` query-vs-reference distances for any supported metric.

    The DTW variant evaluates ``m * n`` pair DPs and is budgeted like the
    square form: the pair count must not exceed ``dtw_max_rows ** 2``.
    """
    if metric == "pearson":
        return pearson_cross_distance_matrix(
            queries, references, dtype=dtype, workers=workers
        )
    if metric == "euclidean":
        return euclidean_cross_distance_matrix(
            queries, references, dtype=dtype, workers=workers
        )
    if metric == "dtw":
        from repro.core.reduction.dtw import dtw_cross_distance_matrix

        return dtw_cross_distance_matrix(
            queries, references, max_rows=dtw_max_rows
        )
    raise ValueError(f"unknown metric {metric!r}; pick one of {METRICS}")


def validate_distance_matrix(dist: np.ndarray) -> np.ndarray:
    """Check a precomputed matrix is a usable dissimilarity.

    Requirements: square, finite, non-negative, symmetric (to tolerance)
    and zero diagonal.  Returns the symmetrised copy.
    """
    dist = np.asarray(dist, dtype=np.float64)
    if dist.ndim != 2 or dist.shape[0] != dist.shape[1]:
        raise ValueError(f"distance matrix must be square, got {dist.shape}")
    if not np.isfinite(dist).all():
        raise ValueError("distance matrix contains NaN/inf")
    if (dist < 0).any():
        raise ValueError("distance matrix contains negative entries")
    if not np.allclose(dist, dist.T, atol=1e-8):
        raise ValueError("distance matrix is not symmetric")
    if not np.allclose(np.diag(dist), 0.0, atol=1e-8):
        raise ValueError("distance matrix diagonal is not zero")
    out = (dist + dist.T) / 2.0
    np.fill_diagonal(out, 0.0)
    return out
