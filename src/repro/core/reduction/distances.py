"""Distance functions for the embedding models.

The paper's stated choice is the Pearson correlation coefficient, turned
into a distance as ``d = 1 - r`` so that perfectly trend-correlated series
sit at distance 0 and anti-correlated ones at distance 2.  Euclidean (on
normalised rows) is provided for comparison sweeps, plus a small dispatch
helper the reducers share.
"""

from __future__ import annotations

import numpy as np

METRICS = ("pearson", "euclidean", "dtw")


def _validated(features: np.ndarray) -> np.ndarray:
    features = np.asarray(features, dtype=np.float64)
    if features.ndim != 2:
        raise ValueError(f"features must be 2-D, got shape {features.shape}")
    if features.shape[0] < 2:
        raise ValueError(
            f"need at least 2 rows to compute pairwise distances, "
            f"got {features.shape[0]}"
        )
    if not np.isfinite(features).all():
        raise ValueError(
            "features contain NaN/inf; run preprocessing (impute) first"
        )
    return features


def pearson_distance_matrix(features: np.ndarray) -> np.ndarray:
    """``1 - r`` distance between all row pairs (paper's metric).

    Rows with zero variance carry no trend information; their correlation
    with anything is defined as 0, i.e. distance 1 — except to themselves
    (distance 0), keeping the matrix a proper dissimilarity (zero diagonal,
    symmetric, non-negative, bounded by 2).
    """
    features = _validated(features)
    n = features.shape[0]
    centered = features - features.mean(axis=1, keepdims=True)
    norms = np.sqrt((centered**2).sum(axis=1))
    flat = norms == 0
    safe = np.where(flat, 1.0, norms)
    unit = centered / safe[:, None]
    corr = unit @ unit.T
    corr[flat, :] = 0.0
    corr[:, flat] = 0.0
    np.clip(corr, -1.0, 1.0, out=corr)
    dist = 1.0 - corr
    np.fill_diagonal(dist, 0.0)
    # Exact symmetry despite floating-point noise.
    return (dist + dist.T) / 2.0


def euclidean_distance_matrix(features: np.ndarray) -> np.ndarray:
    """Plain Euclidean distance between all row pairs."""
    features = _validated(features)
    sq = (features**2).sum(axis=1)
    d2 = sq[:, None] + sq[None, :] - 2.0 * (features @ features.T)
    np.clip(d2, 0.0, None, out=d2)
    dist = np.sqrt(d2)
    np.fill_diagonal(dist, 0.0)
    return (dist + dist.T) / 2.0


def pairwise_distances(features: np.ndarray, metric: str = "pearson") -> np.ndarray:
    """Dispatch on metric name.

    Raises
    ------
    ValueError
        For an unknown metric name.
    """
    if metric == "pearson":
        return pearson_distance_matrix(features)
    if metric == "euclidean":
        return euclidean_distance_matrix(features)
    if metric == "dtw":
        # Local import: dtw pulls in the obs/preprocess stack.  DTW is
        # row-capped (see DtwLimitError) — selections and small fleets
        # only, with the limit surfaced to the caller.
        from repro.core.reduction.dtw import dtw_distance_matrix

        return dtw_distance_matrix(features)
    raise ValueError(f"unknown metric {metric!r}; pick one of {METRICS}")


def validate_distance_matrix(dist: np.ndarray) -> np.ndarray:
    """Check a precomputed matrix is a usable dissimilarity.

    Requirements: square, finite, non-negative, symmetric (to tolerance)
    and zero diagonal.  Returns the symmetrised copy.
    """
    dist = np.asarray(dist, dtype=np.float64)
    if dist.ndim != 2 or dist.shape[0] != dist.shape[1]:
        raise ValueError(f"distance matrix must be square, got {dist.shape}")
    if not np.isfinite(dist).all():
        raise ValueError("distance matrix contains NaN/inf")
    if (dist < 0).any():
        raise ValueError("distance matrix contains negative entries")
    if not np.allclose(dist, dist.T, atol=1e-8):
        raise ValueError("distance matrix is not symmetric")
    if not np.allclose(np.diag(dist), 0.0, atol=1e-8):
        raise ValueError("distance matrix diagonal is not zero")
    out = (dist + dist.T) / 2.0
    np.fill_diagonal(out, 0.0)
    return out
