"""Barnes–Hut approximation of the t-SNE repulsive gradient.

The exact t-SNE gradient is O(n^2) per iteration because every point
repels every other point through the Student-t kernel of the paper's
Eq. 2.  Barnes & Hut (1986) cut the equivalent n-body problem down to
O(n log n): far-away groups of points are summarised by their centre of
mass, and "far away" is judged against the group's cell size — a cell of
side ``s`` at distance ``d`` is summarised whenever ``s / d < theta``.

This module adapts the point-quadtree idea already used by the spatial
index (:mod:`repro.db.index.quadtree`) to the embedding space, with two
differences driven by the hot loop it serves:

- the tree is rebuilt every gradient step (the embedding moves), so it is
  a flat bundle of index arrays rather than a persistent node-object
  graph, and leaves are stored CSR-style for vectorised gathers;
- the traversal is *level-synchronous*: the frontier of live
  ``(point, node)`` pairs lives in two flat integer arrays, and one
  numpy expression per tree level decides, for every pair at once,
  whether the node is absorbed as a pseudo-point or its children join
  the next frontier.  The Python-level work is O(tree depth), not
  O(n log n) or O(#nodes).

With ``theta < 1/sqrt(2)`` a point can never accept a cell that contains
it (the centre of mass is at most ``s * sqrt(2) / 2 < s / theta`` away),
so self-interaction is excluded structurally for the default
``theta = 0.5``; leaves always mask self-pairs explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

_MAX_DEPTH = 32


@dataclass(slots=True)
class _Tree:
    """Flat quadtree: parallel arrays indexed by node id (root is 0).

    ``leaf_start``/``leaf_count`` slice ``members`` (point indices) for
    leaf nodes; internal nodes carry ``leaf_start = -1``.
    """

    children: np.ndarray  # (n_nodes, 4) int32, -1 for an absent child
    com_x: np.ndarray  # (n_nodes,) centre-of-mass coordinates
    com_y: np.ndarray
    count: np.ndarray  # (n_nodes,) points in the subtree
    size2: np.ndarray  # (n_nodes,) squared cell side
    depth: np.ndarray  # (n_nodes,) int32 depth of the node (root is 0)
    leaf_start: np.ndarray  # (n_nodes,) int64 offset into members, -1 if internal
    leaf_count: np.ndarray  # (n_nodes,) int64 member count, 0 if internal
    members: np.ndarray  # concatenated leaf point indices


def build_tree(points: np.ndarray, leaf_capacity: int = 32) -> _Tree:
    """Quadtree over a 2-D point set with per-node centres of mass.

    Raises
    ------
    ValueError
        For a malformed point array.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError(f"points must be (n, 2), got {points.shape}")
    if points.shape[0] == 0:
        raise ValueError("cannot build a tree over zero points")
    xs, ys = points[:, 0], points[:, 1]
    mins = points.min(axis=0)
    maxs = points.max(axis=0)
    cx0, cy0 = (mins + maxs) / 2.0
    # Square root cell; a hair of padding keeps boundary points strictly
    # inside so the > comparisons below place every point in one quadrant.
    half0 = float(max(maxs[0] - mins[0], maxs[1] - mins[1])) / 2.0
    half0 = (half0 or 1e-12) * (1.0 + 1e-9)

    children: list[list[int]] = []
    com_x: list[float] = []
    com_y: list[float] = []
    count: list[int] = []
    size2: list[float] = []
    depths: list[int] = []
    leaf_start: list[int] = []
    leaf_count: list[int] = []
    member_chunks: list[np.ndarray] = []
    n_members = 0

    def rec(idx: np.ndarray, cx: float, cy: float, half: float, depth: int) -> int:
        nonlocal n_members
        node = len(children)
        children.append([-1, -1, -1, -1])
        px, py = xs[idx], ys[idx]
        com_x.append(float(px.mean()))
        com_y.append(float(py.mean()))
        count.append(idx.size)
        size2.append((2.0 * half) ** 2)
        depths.append(depth)
        if idx.size <= leaf_capacity or depth >= _MAX_DEPTH:
            leaf_start.append(n_members)
            leaf_count.append(idx.size)
            member_chunks.append(idx)
            n_members += idx.size
            return node
        leaf_start.append(-1)
        leaf_count.append(0)
        east = px > cx
        north = py > cy
        q = half / 2.0
        quads = (
            (~east & ~north, cx - q, cy - q),
            (east & ~north, cx + q, cy - q),
            (~east & north, cx - q, cy + q),
            (east & north, cx + q, cy + q),
        )
        kids = children[node]
        for qi, (sel, ncx, ncy) in enumerate(quads):
            sub = idx[sel]
            if sub.size:
                kids[qi] = rec(sub, ncx, ncy, q, depth + 1)
        return node

    rec(np.arange(points.shape[0]), float(cx0), float(cy0), half0, 0)
    return _Tree(
        children=np.asarray(children, dtype=np.int32),
        com_x=np.asarray(com_x),
        com_y=np.asarray(com_y),
        count=np.asarray(count, dtype=np.float64),
        size2=np.asarray(size2),
        depth=np.asarray(depths, dtype=np.int32),
        leaf_start=np.asarray(leaf_start, dtype=np.int64),
        leaf_count=np.asarray(leaf_count, dtype=np.int64),
        members=(
            np.concatenate(member_chunks)
            if member_chunks
            else np.empty(0, dtype=np.int64)
        ),
    )


@dataclass(slots=True)
class RepulsionPlan:
    """Frozen Barnes–Hut traversal topology for a point set.

    The plan pins which (point, cell) pairs are summarised and which
    leaf members interact directly.  Like a Verlet neighbour list in
    molecular dynamics, it stays valid while points move a little, so
    the t-SNE descent re-plans only every few iterations and re-runs
    the cheap force evaluation (:func:`run_plan`) — which always uses
    *current* coordinates and freshly recomputed centres of mass — in
    between.
    """

    n: int  # number of points
    count: np.ndarray  # (n_nodes,) float64 subtree populations
    point_leaf: np.ndarray  # (n,) int32 owning leaf of every point
    sweep: list  # [(node_ids, children)] internal levels, deepest first
    members: np.ndarray  # (n,) int32 CSR-ordered member point ids
    far_pid: np.ndarray  # summarised pairs: point ids (int32)
    far_nid: np.ndarray  # summarised pairs: cell ids (int32)
    far_mass: np.ndarray  # (|far|,) float32 cell populations
    leaf_pid: np.ndarray  # direct pairs: point ids (int32)
    leaf_slot: np.ndarray  # direct pairs: CSR member slots (int32)
    leaf_mask: np.ndarray  # (|leaf|,) float32, 0.0 on self-pairs


def plan_repulsion(
    points: np.ndarray, theta: float = 0.5, leaf_capacity: int = 16
) -> RepulsionPlan:
    """Build the quadtree and classify every (point, cell) interaction.

    Cells passing the opening criterion ``size^2 < theta^2 * dist^2``
    are recorded as summarised pseudo-points; near leaves are expanded
    to their members.  ``theta = 0`` degenerates to the exact all-pairs
    classification.

    Raises
    ------
    ValueError
        For malformed points or ``theta`` outside ``[0, 1]``.
    """
    if not 0.0 <= theta <= 1.0:
        raise ValueError(f"theta must be in [0, 1], got {theta}")
    points = np.ascontiguousarray(points, dtype=np.float64)
    tree = build_tree(points, leaf_capacity=leaf_capacity)
    n = points.shape[0]
    # The traversal runs in float32/int32: the gradient is already a
    # theta-approximation (relative error ~1e-2 at theta = 0.5), so the
    # ~1e-7 rounding is immaterial, while halving the memory traffic of
    # a gather-bound loop buys a near-2x speedup.
    x = np.ascontiguousarray(points[:, 0], dtype=np.float32)
    y = np.ascontiguousarray(points[:, 1], dtype=np.float32)
    com_x = tree.com_x.astype(np.float32)
    com_y = tree.com_y.astype(np.float32)
    size2 = tree.size2.astype(np.float32)
    members = tree.members.astype(np.int32)
    leaf_count = tree.leaf_count.astype(np.int32)
    theta2 = np.float32(theta * theta)
    is_leaf = tree.leaf_start >= 0
    leaf_start32 = tree.leaf_start.astype(np.int32)

    far_pid_parts: list[np.ndarray] = []
    far_nid_parts: list[np.ndarray] = []
    leaf_pid_parts: list[np.ndarray] = []
    leaf_slot_parts: list[np.ndarray] = []

    pid = np.arange(n, dtype=np.int32)  # frontier: live (point, node) pairs
    nid = np.zeros(n, dtype=np.int32)
    while pid.size:
        # Opening criterion for every live pair at once — leaf cells are
        # absorbable pseudo-points too when they are far enough.  The
        # hot loop leans on `take`/in-place ufuncs: each avoided
        # temporary is a full pass over the frontier.
        dx = np.take(x, pid)
        dx -= np.take(com_x, nid)
        dy = np.take(y, pid)
        dy -= np.take(com_y, nid)
        d2 = dx * dx
        d2 += dy * dy
        far = np.take(size2, nid) < theta2 * d2
        far_ix = np.flatnonzero(far)
        if far_ix.size:
            far_pid_parts.append(np.take(pid, far_ix))
            far_nid_parts.append(np.take(nid, far_ix))
        if far_ix.size == far.size:
            break
        near_ix = np.flatnonzero(~far)
        pid = np.take(pid, near_ix)
        nid = np.take(nid, near_ix)
        at_leaf = np.take(is_leaf, nid)
        leaf_ix = np.flatnonzero(at_leaf)

        # Near leaf pairs: expand to (point, member) interactions via the
        # CSR arrays, one gather for the whole level.
        if leaf_ix.size:
            lp = np.take(pid, leaf_ix)
            ln = np.take(nid, leaf_ix)
            cnt = np.take(leaf_count, ln)
            ex_p = np.repeat(lp, cnt)
            # Expanded position j of pair k maps to CSR slot
            # leaf_start[k] + j - (ends[k] - cnt[k]): one fused repeat.
            ends = np.cumsum(cnt, dtype=np.int32)
            slot = np.arange(ends[-1], dtype=np.int32)
            slot += np.repeat(np.take(leaf_start32, ln) - ends + cnt, cnt)
            leaf_pid_parts.append(ex_p)
            leaf_slot_parts.append(slot)

        # Near internal pairs: push the children onto the next frontier.
        if leaf_ix.size == at_leaf.size:
            break
        int_ix = np.flatnonzero(~at_leaf)
        kids = tree.children[np.take(nid, int_ix)]  # (r, 4)
        flat_kids = kids.ravel()
        live = np.flatnonzero(flat_kids >= 0)
        if live.size == 0:
            break
        pid = np.take(np.repeat(np.take(pid, int_ix), 4), live)
        nid = np.take(flat_kids, live)

    empty32 = np.empty(0, dtype=np.int32)
    far_pid = np.concatenate(far_pid_parts) if far_pid_parts else empty32
    far_nid = np.concatenate(far_nid_parts) if far_nid_parts else empty32
    leaf_pid = np.concatenate(leaf_pid_parts) if leaf_pid_parts else empty32
    leaf_slot = (
        np.concatenate(leaf_slot_parts) if leaf_slot_parts else empty32
    )
    leaf_mask = (leaf_pid != np.take(members, leaf_slot)).astype(np.float32)

    leaf_ids = np.flatnonzero(is_leaf)
    point_leaf = np.empty(n, dtype=np.int32)
    point_leaf[tree.members] = np.repeat(
        leaf_ids.astype(np.int32), tree.leaf_count[leaf_ids]
    )
    sweep = []
    for depth in range(int(tree.depth.max()), -1, -1):
        ids = np.flatnonzero(~is_leaf & (tree.depth == depth))
        if ids.size:
            sweep.append((ids, tree.children[ids]))

    return RepulsionPlan(
        n=n,
        count=tree.count,
        point_leaf=point_leaf,
        sweep=sweep,
        members=members,
        far_pid=far_pid,
        far_nid=far_nid,
        far_mass=tree.count[far_nid].astype(np.float32),
        leaf_pid=leaf_pid,
        leaf_slot=leaf_slot,
        leaf_mask=leaf_mask,
    )


def run_plan(plan: RepulsionPlan, points: np.ndarray) -> tuple[np.ndarray, float]:
    """Evaluate repulsive forces for ``points`` under a frozen plan.

    Centres of mass are recomputed from the current coordinates with a
    deepest-first sweep over the tree levels; only the far/near pair
    classification is reused from plan time.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.shape != (plan.n, 2):
        raise ValueError(
            f"plan was built for {(plan.n, 2)} points, got {points.shape}"
        )
    n = plan.n
    x = np.ascontiguousarray(points[:, 0], dtype=np.float32)
    y = np.ascontiguousarray(points[:, 1], dtype=np.float32)
    one = np.float32(1.0)

    # Refresh per-cell centres of mass bottom-up: leaves via bincount,
    # internal nodes by summing their children, deepest level first.
    n_nodes = plan.count.shape[0]
    sx = np.bincount(plan.point_leaf, weights=points[:, 0], minlength=n_nodes)
    sy = np.bincount(plan.point_leaf, weights=points[:, 1], minlength=n_nodes)
    for ids, kids in plan.sweep:
        gx = sx[kids]
        gy = sy[kids]
        absent = kids < 0
        gx[absent] = 0.0
        gy[absent] = 0.0
        sx[ids] = gx.sum(axis=1)
        sy[ids] = gy.sum(axis=1)
    com_x = (sx / plan.count).astype(np.float32)
    com_y = (sy / plan.count).astype(np.float32)

    rep_x = np.zeros(n)
    rep_y = np.zeros(n)
    z_total = 0.0

    if plan.far_pid.size:
        dx = np.take(x, plan.far_pid)
        dx -= np.take(com_x, plan.far_nid)
        dy = np.take(y, plan.far_pid)
        dy -= np.take(com_y, plan.far_nid)
        qn = dx * dx
        qn += dy * dy
        qn += one
        np.reciprocal(qn, out=qn)
        mass = plan.far_mass * qn  # mass * q_num
        z_total += float(mass.sum(dtype=np.float64))
        mass *= qn  # mass * q_num^2
        dx *= mass
        dy *= mass
        rep_x += np.bincount(plan.far_pid, weights=dx, minlength=n)
        rep_y += np.bincount(plan.far_pid, weights=dy, minlength=n)

    if plan.leaf_pid.size:
        # Member coordinates laid out in CSR order so the expansion
        # gathers with a single level of indirection.
        mx, my = x[plan.members], y[plan.members]
        ldx = np.take(x, plan.leaf_pid)
        ldx -= np.take(mx, plan.leaf_slot)
        ldy = np.take(y, plan.leaf_pid)
        ldy -= np.take(my, plan.leaf_slot)
        qn = ldx * ldx
        qn += ldy * ldy
        qn += one
        np.reciprocal(qn, out=qn)
        qn *= plan.leaf_mask  # no self-repulsion
        z_total += float(qn.sum(dtype=np.float64))
        qn *= qn
        ldx *= qn
        ldy *= qn
        rep_x += np.bincount(plan.leaf_pid, weights=ldx, minlength=n)
        rep_y += np.bincount(plan.leaf_pid, weights=ldy, minlength=n)

    return np.stack([rep_x, rep_y], axis=1), z_total


def repulsion(
    points: np.ndarray, theta: float = 0.5, leaf_capacity: int = 16
) -> tuple[np.ndarray, float]:
    """Approximate repulsive sums of the t-SNE gradient for every point.

    Returns ``(rep, z)`` where ``rep[i] = sum_j q_num_ij^2 * (y_i - y_j)``
    (the unnormalised repulsive force, ``q_num = 1 / (1 + |y_i - y_j|^2)``)
    and ``z = sum_{i != j} q_num_ij`` is the normalisation term of Eq. 2.
    Cells passing the opening criterion ``size^2 < theta^2 * dist^2``
    contribute as a single pseudo-point at their centre of mass.

    ``theta = 0`` degenerates to the exact O(n^2) sums (every cell is
    opened down to its leaves); larger values trade accuracy for speed.

    Raises
    ------
    ValueError
        For malformed points or ``theta`` outside ``[0, 1]``.
    """
    return run_plan(plan_repulsion(points, theta, leaf_capacity), points)
