"""t-distributed Stochastic Neighbor Embedding (exact and Barnes–Hut).

This is the paper's primary reducer (its Eq. 1 is the KL objective, Eq. 2
the Student-t low-dimensional kernel).  The implementation follows van der
Maaten & Hinton (2008):

1. per-point Gaussian bandwidths found by binary search so each conditional
   distribution has the requested *perplexity* — the search bisects all
   rows simultaneously as one array-wide computation;
2. symmetrised joint probabilities ``P = (P_c + P_c^T) / 2n``;
3. gradient descent on the KL divergence with early exaggeration, momentum
   switching and adaptive per-coordinate gains.

Two gradient engines share step 3:

- ``method="exact"`` — the dense O(n^2)-per-iteration gradient, the
  ground truth every approximation is parity-tested against;
- ``method="bh"`` — Barnes–Hut (van der Maaten 2014): the repulsive term
  comes from a quadtree over the embedding
  (:mod:`repro.core.reduction.bh`) at accuracy/speed trade-off ``theta``,
  and the attractive term runs over a sparse k-nearest-neighbour subset
  of P (k = 3 * perplexity), for O(n log n) iterations.

``method="auto"`` (the default) picks Barnes–Hut above
``BH_THRESHOLD`` points and the exact engine below it.

Distances default to the paper's Pearson metric; any precomputed
dissimilarity is accepted too.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.core.reduction.bh import plan_repulsion, repulsion, run_plan
from repro.core.reduction.distances import pairwise_distances, validate_distance_matrix
from repro.core.reduction.pca import pca
from repro.resilience.faults import fault_point

_P_MIN = 1e-12

# The Barnes–Hut traversal plan (which cells are summarised for which
# points) is reused for this many descent steps before being rebuilt,
# like a Verlet neighbour list: forces always use current coordinates
# and freshly recomputed centres of mass, only the far/near pair
# classification goes slightly stale between rebuilds.
_REPLAN_EVERY = 4

TSNE_METHODS = ("auto", "exact", "bh")

# ``method="auto"`` switches to Barnes–Hut at this many points: below it
# the dense gradient's vectorisation beats the tree overhead, above it
# the O(n^2) inner loop dominates.
BH_THRESHOLD = 1000


@dataclass(slots=True)
class TSNEResult:
    """Embedding plus convergence diagnostics.

    ``kl_divergence`` is the paper's Eq. 1 objective at the final iterate
    (without exaggeration), always computed against the dense P — also
    for Barnes–Hut runs, so approximation error shows up in the
    objective instead of hiding in it.  ``kl_trace`` samples the
    objective every 50 iterations (for ``method="bh"`` the trace uses
    the sparse-P approximation; only the final value is exact).
    ``method`` records the engine that actually ran and
    ``effective_init`` the initialisation that was actually used (PCA
    silently needs raw features, see :func:`tsne`).
    """

    embedding: np.ndarray
    kl_divergence: float
    n_iter: int
    perplexity: float
    kl_trace: list[float]
    method: str = "exact"
    effective_init: str = "pca"


def _perplexity_search(
    dist: np.ndarray, perplexity: float, tol: float = 1e-5, max_tries: int = 64
) -> tuple[np.ndarray, np.ndarray]:
    """Row-stochastic P(j|i) and precisions, all rows bisected at once.

    Binary search on the precision ``beta_i`` of ``exp(-beta_i * d_ij^2)``
    until the row entropy equals ``log(perplexity)``.  Every row carries
    its own ``(lo, hi)`` bracket; converged rows keep their beta while the
    stragglers keep halving, so the result matches the per-row loop
    (:func:`_perplexity_search_loop`) to floating-point noise without the
    n x 64 Python-level iteration count.

    Returns ``(cond, beta)`` — the conditional matrix (zero diagonal) and
    the per-row precisions.
    """
    n = dist.shape[0]
    target_entropy = np.log(perplexity)
    d2 = np.where(np.eye(n, dtype=bool), np.inf, dist.astype(np.float64) ** 2)
    # Shift each row by its off-diagonal min: exp(0) = 1 guarantees a
    # positive normaliser, and the diagonal's exp(-inf) = 0 removes it.
    d2 -= d2.min(axis=1, keepdims=True)
    beta = np.ones(n)
    beta_lo = np.zeros(n)
    beta_hi = np.full(n, np.inf)
    probs = np.full((n, n), 1.0 / max(n - 1, 1))
    # Two savings over the naive max_tries full-matrix passes: only
    # still-bisecting rows are recomputed each round, and the row entropy
    # comes from the Gibbs identity H = ln S + beta * E[d^2] (with
    # S = sum_j w_j, E = sum_j w_j d2_j / S), so the bisection needs no
    # n^2 log/divide — probability rows materialise once, on convergence.
    finite_d2 = np.where(np.isfinite(d2), d2, 0.0)  # 0 * w = 0 on the diagonal
    active = np.arange(n)
    for _ in range(max_tries):
        with np.errstate(invalid="ignore"):
            weights = np.exp(-beta[active, None] * d2[active])
        norm = weights.sum(axis=1)
        mean_d2 = np.einsum("ij,ij->i", weights, finite_d2[active]) / norm
        entropy = np.log(norm) + beta[active] * mean_d2
        diff = entropy - target_entropy
        settled = np.abs(diff) < tol
        if settled.any():
            hit = active[settled]
            probs[hit] = weights[settled] / norm[settled, None]
        active = active[~settled]
        if active.size == 0:
            break
        diff = diff[~settled]
        sharpen = diff > 0
        current = beta[active]
        lo = beta_lo[active]
        hi = beta_hi[active]
        lo[sharpen] = current[sharpen]
        hi[~sharpen] = current[~sharpen]
        beta_lo[active] = lo
        beta_hi[active] = hi
        beta[active] = np.where(
            sharpen,
            np.where(np.isinf(hi), current * 2.0, (current + hi) / 2.0),
            np.where(lo == 0.0, current / 2.0, (current + lo) / 2.0),
        )
    if active.size:
        # Rows that never settled keep their last bisection iterate.
        with np.errstate(invalid="ignore"):
            weights = np.exp(-beta[active, None] * d2[active])
        probs[active] = weights / weights.sum(axis=1, keepdims=True)
    np.fill_diagonal(probs, 0.0)
    return probs, beta


def _perplexity_search_loop(
    dist: np.ndarray, perplexity: float, tol: float = 1e-5, max_tries: int = 64
) -> tuple[np.ndarray, np.ndarray]:
    """Reference per-row implementation of :func:`_perplexity_search`.

    Kept as the parity oracle (and for the perf-trajectory bench): one
    Python-level binary search per row, exactly the pre-vectorisation
    behaviour.
    """
    n = dist.shape[0]
    target_entropy = np.log(perplexity)
    d2 = dist**2
    cond = np.zeros((n, n))
    betas = np.ones(n)
    for i in range(n):
        row = np.delete(d2[i], i)
        beta, beta_lo, beta_hi = 1.0, 0.0, np.inf
        probs = np.ones_like(row) / max(row.size, 1)
        for _ in range(max_tries):
            weights = np.exp(-beta * (row - row.min()))
            total = weights.sum()
            if total <= 0:
                probs = np.ones_like(row) / max(row.size, 1)
                break
            probs = weights / total
            entropy = float(-(probs * np.log(np.clip(probs, _P_MIN, None))).sum())
            diff = entropy - target_entropy
            if abs(diff) < tol:
                break
            if diff > 0:  # entropy too high -> sharpen
                beta_lo = beta
                beta = beta * 2.0 if beta_hi == np.inf else (beta + beta_hi) / 2.0
            else:
                beta_hi = beta
                beta = beta / 2.0 if beta_lo == 0.0 else (beta + beta_lo) / 2.0
        cond[i, np.arange(n) != i] = probs
        betas[i] = beta
    return cond, betas


def _conditional_probabilities(
    dist: np.ndarray, perplexity: float, tol: float = 1e-5, max_tries: int = 64
) -> np.ndarray:
    """Row-stochastic P(j|i) with per-row bandwidth matched to perplexity."""
    cond, _ = _perplexity_search(dist, perplexity, tol=tol, max_tries=max_tries)
    return cond


def joint_probabilities(dist: np.ndarray, perplexity: float) -> np.ndarray:
    """Symmetrised joint P of the t-SNE objective (sums to 1, zero diag)."""
    n = dist.shape[0]
    if not 1.0 < perplexity < n:
        raise ValueError(
            f"perplexity must be in (1, n_points={n}), got {perplexity}"
        )
    cond = _conditional_probabilities(dist, perplexity)
    joint = (cond + cond.T) / (2.0 * n)
    return np.clip(joint, _P_MIN, None)


def _q_matrix(embedding: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Student-t similarities Q (paper Eq. 2) and the unnormalised kernel."""
    sq = (embedding**2).sum(axis=1)
    d2 = sq[:, None] + sq[None, :] - 2.0 * (embedding @ embedding.T)
    np.clip(d2, 0.0, None, out=d2)
    kernel = 1.0 / (1.0 + d2)
    np.fill_diagonal(kernel, 0.0)
    total = kernel.sum()
    q = np.clip(kernel / max(total, _P_MIN), _P_MIN, None)
    return q, kernel


def _kl(p: np.ndarray, q: np.ndarray) -> float:
    """KL(P || Q), the paper's Eq. 1 (diagonal contributes nothing)."""
    mask = ~np.eye(p.shape[0], dtype=bool)
    return float((p[mask] * np.log(p[mask] / q[mask])).sum())


def _sparse_joint(
    p: np.ndarray, perplexity: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sparsify the dense joint P to its k-nearest entries per row.

    Keeps ``k = 3 * perplexity`` largest entries per row (van der
    Maaten's Barnes–Hut heuristic), symmetrises the support and rescales
    to sum to 1.  Returns COO-style ``(rows, cols, vals)`` with both
    ``(i, j)`` and ``(j, i)`` present for every kept pair.
    """
    n = p.shape[0]
    k = min(n - 1, max(3, int(round(3.0 * perplexity))))
    top = np.argpartition(p, n - 1 - k, axis=1)[:, n - k:]
    mask = np.zeros((n, n), dtype=bool)
    mask[np.arange(n)[:, None], top] = True
    np.fill_diagonal(mask, False)
    mask |= mask.T
    rows, cols = np.nonzero(mask)
    vals = p[rows, cols]
    return rows, cols, vals / vals.sum()


def _descend(
    grad_fn, y: np.ndarray, n_iter: int, learning_rate: float,
    exaggeration_iter: int, trace_fn,
) -> tuple[np.ndarray, list[float]]:
    """Shared gradient-descent loop: momentum switching + adaptive gains.

    ``grad_fn(y, iteration)`` returns the (possibly exaggerated) gradient;
    ``trace_fn(y)`` the objective sample recorded every 50 iterations.
    """
    velocity = np.zeros_like(y)
    gains = np.ones_like(y)
    kl_trace: list[float] = []
    for iteration in range(n_iter):
        grad = grad_fn(y, iteration)
        momentum = 0.5 if iteration < exaggeration_iter else 0.8
        same_sign = np.sign(grad) == np.sign(velocity)
        gains = np.where(same_sign, gains * 0.8, gains + 0.2)
        np.clip(gains, 0.01, None, out=gains)
        velocity = momentum * velocity - learning_rate * gains * grad
        y = y + velocity
        y = y - y.mean(axis=0, keepdims=True)
        if iteration % 50 == 0 or iteration == n_iter - 1:
            kl_trace.append(trace_fn(y))
    return y, kl_trace


def tsne(
    features: np.ndarray | None = None,
    *,
    distances: np.ndarray | None = None,
    metric: str = "pearson",
    perplexity: float = 30.0,
    n_iter: int = 500,
    learning_rate: float = 200.0,
    early_exaggeration: float = 12.0,
    exaggeration_iter: int = 250,
    n_components: int = 2,
    init: str = "pca",
    seed: int = 0,
    method: str = "auto",
    theta: float = 0.5,
) -> TSNEResult:
    """Embed rows into ``n_components`` dimensions.

    Exactly one of ``features`` / ``distances`` must be given.  ``init`` is
    ``"pca"`` (deterministic, needs features) or ``"random"``; asking for
    PCA with only a distance matrix degrades to random init — the run
    logs a structured warning and records the fallback in
    ``TSNEResult.effective_init``.  Perplexity is clamped to
    ``(n - 1) / 3`` when the data set is small, the standard guardrail.

    ``method`` selects the gradient engine: ``"exact"`` (dense, ground
    truth), ``"bh"`` (Barnes–Hut at accuracy knob ``theta``, 2-D only) or
    ``"auto"`` (Barnes–Hut from ``BH_THRESHOLD`` points up).

    Raises
    ------
    ValueError
        On inconsistent inputs.
    """
    fault_point("kernel.tsne")
    if (features is None) == (distances is None):
        raise ValueError("pass exactly one of features or distances")
    if init not in ("pca", "random"):
        raise ValueError(f"init must be 'pca' or 'random', got {init!r}")
    if n_iter < 1:
        raise ValueError(f"n_iter must be positive, got {n_iter}")
    if method not in TSNE_METHODS:
        raise ValueError(
            f"method must be one of {TSNE_METHODS}, got {method!r}"
        )
    if not 0.0 < theta <= 1.0:
        raise ValueError(f"theta must be in (0, 1], got {theta}")
    if distances is None:
        assert features is not None
        dist = pairwise_distances(features, metric=metric)
    else:
        dist = validate_distance_matrix(distances)
    effective_init = init
    if init == "pca" and features is None:
        # PCA needs raw features; warn instead of silently degrading.
        effective_init = "random"
        obs.get_logger().warning(
            "tsne.init_degraded",
            requested="pca",
            effective="random",
            reason="pca init needs raw features, got a distance matrix",
        )
    n = dist.shape[0]
    if n < 3:
        raise ValueError(f"need at least 3 points for t-SNE, got {n}")
    if method == "bh" and n_components != 2:
        raise ValueError(
            f"Barnes–Hut t-SNE is 2-D only, got n_components={n_components}"
        )
    use_bh = method == "bh" or (
        method == "auto" and n >= BH_THRESHOLD and n_components == 2
    )
    engine = "bh" if use_bh else "exact"
    perplexity = float(min(perplexity, max(2.0, (n - 1) / 3.0)))

    registry = obs.get_registry()
    with obs.span(
        "kernel.tsne", n_points=n, n_iter=n_iter, method=engine
    ), registry.timer("kernel_runtime_seconds", kernel="tsne"):
        p = joint_probabilities(dist, perplexity)
        rng = np.random.default_rng(seed)
        if effective_init == "pca":
            assert features is not None
            base = pca(np.asarray(features, dtype=np.float64), n_components).embedding
            scale = base[:, 0].std() or 1.0
            y = base / scale * 1e-4
        else:
            y = rng.normal(0.0, 1e-4, size=(n, n_components))

        if use_bh:
            rows, cols, vals = _sparse_joint(p, perplexity)
            rows32 = rows.astype(np.int32)
            cols32 = cols.astype(np.int32)
            vals32 = vals.astype(np.float32)
            vals_exag = (early_exaggeration * vals).astype(np.float32)
            one = np.float32(1.0)
            plan_box: list = [None]

            def grad_fn(y: np.ndarray, iteration: int) -> np.ndarray:
                if plan_box[0] is None or iteration % _REPLAN_EVERY == 0:
                    plan_box[0] = plan_repulsion(y, theta=theta)
                rep, z = run_plan(plan_box[0], y)
                # Attraction over the sparse P support, float32 like the
                # repulsion traversal (the kept tail is a ~1e-2
                # approximation already).
                yx = np.ascontiguousarray(y[:, 0], dtype=np.float32)
                yy = np.ascontiguousarray(y[:, 1], dtype=np.float32)
                dx = np.take(yx, rows32)
                dx -= np.take(yx, cols32)
                dy = np.take(yy, rows32)
                dy -= np.take(yy, cols32)
                qn = dx * dx
                qn += dy * dy
                qn += one
                np.reciprocal(qn, out=qn)
                qn *= vals_exag if iteration < exaggeration_iter else vals32
                dx *= qn
                dy *= qn
                attr = np.empty((n, 2))
                attr[:, 0] = np.bincount(rows32, weights=dx, minlength=n)
                attr[:, 1] = np.bincount(rows32, weights=dy, minlength=n)
                return 4.0 * (attr - rep / max(z, _P_MIN))

            def trace_fn(y: np.ndarray) -> float:
                # Sparse-support approximation of Eq. 1 (the dropped tail
                # of P carries negligible mass); the final objective in
                # the result is still computed densely below.
                delta = y[rows] - y[cols]
                q_num = 1.0 / (1.0 + (delta**2).sum(axis=1))
                if plan_box[0] is not None:
                    _, z = run_plan(plan_box[0], y)
                else:
                    _, z = repulsion(y, theta=theta)
                q = np.clip(q_num / max(z, _P_MIN), _P_MIN, None)
                return float((vals * np.log(vals / q)).sum())

        else:
            exaggerated = p * early_exaggeration

            def grad_fn(y: np.ndarray, iteration: int) -> np.ndarray:
                current_p = (
                    exaggerated if iteration < exaggeration_iter else p
                )
                q, kernel = _q_matrix(y)
                # Gradient: 4 * sum_j (p_ij - q_ij) * kernel_ij * (y_i - y_j)
                coeff = (current_p - q) * kernel
                return 4.0 * ((np.diag(coeff.sum(axis=1)) - coeff) @ y)

            def trace_fn(y: np.ndarray) -> float:
                q, _ = _q_matrix(y)
                return _kl(p, q)

        y, kl_trace = _descend(
            grad_fn, y, n_iter, learning_rate, exaggeration_iter, trace_fn
        )
        q, _ = _q_matrix(y)
        kl = _kl(p, q)
    registry.counter("kernel_runs_total", kernel="tsne").inc()
    registry.counter("kernel_method_total", kernel="tsne", method=engine).inc()
    registry.histogram(
        "kernel_iterations", buckets=obs.COUNT_BUCKETS, kernel="tsne"
    ).observe(n_iter)
    registry.gauge("kernel_last_objective", kernel="tsne").set(kl)
    return TSNEResult(
        embedding=y,
        kl_divergence=kl,
        n_iter=n_iter,
        perplexity=perplexity,
        kl_trace=kl_trace,
        method=engine,
        effective_init=effective_init,
    )
