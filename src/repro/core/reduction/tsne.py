"""t-distributed Stochastic Neighbor Embedding (exact and Barnes–Hut).

This is the paper's primary reducer (its Eq. 1 is the KL objective, Eq. 2
the Student-t low-dimensional kernel).  The implementation follows van der
Maaten & Hinton (2008):

1. per-point Gaussian bandwidths found by binary search so each conditional
   distribution has the requested *perplexity* — the search bisects all
   rows simultaneously as one array-wide computation;
2. symmetrised joint probabilities ``P = (P_c + P_c^T) / 2n``;
3. gradient descent on the KL divergence with early exaggeration, momentum
   switching and adaptive per-coordinate gains.

Two gradient engines share step 3:

- ``method="exact"`` — the dense O(n^2)-per-iteration gradient, the
  ground truth every approximation is parity-tested against;
- ``method="bh"`` — Barnes–Hut (van der Maaten 2014): the repulsive term
  comes from a quadtree over the embedding
  (:mod:`repro.core.reduction.bh`) at accuracy/speed trade-off ``theta``,
  and the attractive term runs over a sparse k-nearest-neighbour subset
  of P (k = 3 * perplexity), for O(n log n) iterations.

A third, out-of-core engine sits on top of both: ``method="landmark"``
embeds only ``n_landmarks`` k-means++-selected rows with Barnes–Hut and
interpolates every other point into that map (kNN barycentre over
blockwise cross distances) — the only path that never materialises the
n² distance matrix, which is what makes n = 50k practical.

``method="auto"`` (the default) picks Barnes–Hut above
``BH_THRESHOLD`` points and the exact engine below it (never landmark —
that approximation is explicit opt-in).

Distances default to the paper's Pearson metric; any precomputed
dissimilarity is accepted too.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro import obs
from repro.core.reduction.bh import plan_repulsion, repulsion, run_plan
from repro.core.reduction.distances import pairwise_distances, validate_distance_matrix
from repro.core.reduction.pca import pca
from repro.core.reduction.project import EmbeddingProjector, barycentric_from_cross
from repro.parallel import DEFAULT_BLOCK_ROWS, map_blocks, row_blocks
from repro.resilience.faults import fault_point

_P_MIN = 1e-12

# The Barnes–Hut traversal plan (which cells are summarised for which
# points) is reused for this many descent steps before being rebuilt,
# like a Verlet neighbour list: forces always use current coordinates
# and freshly recomputed centres of mass, only the far/near pair
# classification goes slightly stale between rebuilds.
_REPLAN_EVERY = 4

TSNE_METHODS = ("auto", "exact", "bh", "landmark")

# ``method="auto"`` switches to Barnes–Hut at this many points: below it
# the dense gradient's vectorisation beats the tree overhead, above it
# the O(n^2) inner loop dominates.
BH_THRESHOLD = 1000

# ``method="landmark"`` never embeds more than this many points directly;
# above it the k x k landmark matrices stop being "small".  Explicit
# opt-in only — ``auto`` never picks landmark, because the placement
# stage is an approximation the caller should knowingly accept.
MAX_LANDMARKS = 4096

# Default landmark count: enough to cover the cluster structure of a
# city-scale fleet while keeping selection + the inner Barnes–Hut run in
# seconds.
DEFAULT_LANDMARKS = 1024

# Neighbours used when interpolating non-landmark points into the
# landmark embedding.
_LANDMARK_KNN = 8


@dataclass(slots=True)
class DescentCheckpoint:
    """Resumable state of the t-SNE gradient descent.

    Captured between iterations: ``iteration`` is the *next* iteration
    to run, and ``y``/``velocity``/``gains`` are the carried arrays at
    that boundary (``kl_trace`` holds the objective samples recorded so
    far).  Everything else the descent touches — the momentum schedule,
    the exaggeration switch, the trace cadence — is a pure function of
    the iteration index, and the Barnes–Hut traversal plan is rebuilt
    whenever ``iteration % _REPLAN_EVERY == 0``, so resuming from a
    checkpoint aligned to that cadence replays the remaining iterations
    bit-identically.
    """

    iteration: int
    y: np.ndarray
    velocity: np.ndarray
    gains: np.ndarray
    kl_trace: list[float]


@dataclass(slots=True)
class TSNEResult:
    """Embedding plus convergence diagnostics.

    ``kl_divergence`` is the paper's Eq. 1 objective at the final iterate
    (without exaggeration), always computed against the dense P — also
    for Barnes–Hut runs, so approximation error shows up in the
    objective instead of hiding in it.  ``kl_trace`` samples the
    objective every 50 iterations (for ``method="bh"`` the trace uses
    the sparse-P approximation; only the final value is exact).
    ``method`` records the engine that actually ran and
    ``effective_init`` the initialisation that was actually used (PCA
    silently needs raw features, see :func:`tsne`).
    """

    embedding: np.ndarray
    kl_divergence: float
    n_iter: int
    perplexity: float
    kl_trace: list[float]
    method: str = "exact"
    effective_init: str = "pca"
    # Per-stage wall time, filled by the landmark path ("select_seconds",
    # "embed_seconds", "place_seconds") for bench breakdowns; None for
    # the single-stage engines.
    stages: dict[str, float] | None = None


def _perplexity_block(
    block: tuple[int, int],
    arrays: Mapping[str, np.ndarray],
    *,
    perplexity: float,
    tol: float,
    max_tries: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Bisect the rows ``[start, stop)`` of the distance matrix.

    Every operation here is row-local (the bisection of row ``i`` reads
    only row ``i``), so splitting the rows into blocks returns exactly
    the same bits as one all-rows pass — the property that lets
    :func:`_perplexity_search` fan blocks out on the worker pool without
    changing results.
    """
    start, stop = block
    dist = arrays["dist"]
    n = dist.shape[1]
    rows = stop - start
    target_entropy = np.log(perplexity)
    d2 = dist[start:stop].astype(np.float64) ** 2
    # Shift each row by its off-diagonal min: exp(0) = 1 guarantees a
    # positive normaliser, and the diagonal's exp(-inf) = 0 removes it.
    d2[np.arange(rows), np.arange(start, stop)] = np.inf
    d2 -= d2.min(axis=1, keepdims=True)
    beta = np.ones(rows)
    beta_lo = np.zeros(rows)
    beta_hi = np.full(rows, np.inf)
    probs = np.full((rows, n), 1.0 / max(n - 1, 1))
    # Two savings over the naive max_tries full-matrix passes: only
    # still-bisecting rows are recomputed each round, and the row entropy
    # comes from the Gibbs identity H = ln S + beta * E[d^2] (with
    # S = sum_j w_j, E = sum_j w_j d2_j / S), so the bisection needs no
    # n^2 log/divide — probability rows materialise once, on convergence.
    finite_d2 = np.where(np.isfinite(d2), d2, 0.0)  # 0 * w = 0 on the diagonal
    active = np.arange(rows)
    for _ in range(max_tries):
        with np.errstate(invalid="ignore"):
            weights = np.exp(-beta[active, None] * d2[active])
        norm = weights.sum(axis=1)
        mean_d2 = np.einsum("ij,ij->i", weights, finite_d2[active]) / norm
        entropy = np.log(norm) + beta[active] * mean_d2
        diff = entropy - target_entropy
        settled = np.abs(diff) < tol
        if settled.any():
            hit = active[settled]
            probs[hit] = weights[settled] / norm[settled, None]
        active = active[~settled]
        if active.size == 0:
            break
        diff = diff[~settled]
        sharpen = diff > 0
        current = beta[active]
        lo = beta_lo[active]
        hi = beta_hi[active]
        lo[sharpen] = current[sharpen]
        hi[~sharpen] = current[~sharpen]
        beta_lo[active] = lo
        beta_hi[active] = hi
        beta[active] = np.where(
            sharpen,
            np.where(np.isinf(hi), current * 2.0, (current + hi) / 2.0),
            np.where(lo == 0.0, current / 2.0, (current + lo) / 2.0),
        )
    if active.size:
        # Rows that never settled keep their last bisection iterate.
        with np.errstate(invalid="ignore"):
            weights = np.exp(-beta[active, None] * d2[active])
        probs[active] = weights / weights.sum(axis=1, keepdims=True)
    probs[np.arange(rows), np.arange(start, stop)] = 0.0
    return probs, beta


def _perplexity_search(
    dist: np.ndarray,
    perplexity: float,
    tol: float = 1e-5,
    max_tries: int = 64,
    workers: int | None = None,
    block_rows: int = DEFAULT_BLOCK_ROWS,
) -> tuple[np.ndarray, np.ndarray]:
    """Row-stochastic P(j|i) and precisions, all rows bisected at once.

    Binary search on the precision ``beta_i`` of ``exp(-beta_i * d_ij^2)``
    until the row entropy equals ``log(perplexity)``.  Every row carries
    its own ``(lo, hi)`` bracket; converged rows keep their beta while the
    stragglers keep halving, so the result matches the per-row loop
    (:func:`_perplexity_search_loop`) to floating-point noise without the
    n x 64 Python-level iteration count.

    The bisection is row-local, so rows run in fixed blocks that can fan
    out on the shared-memory pool (``workers`` / ``REPRO_WORKERS``); the
    result is bit-identical for any worker count.

    Returns ``(cond, beta)`` — the conditional matrix (zero diagonal) and
    the per-row precisions.
    """
    dist = np.asarray(dist)
    blocks = row_blocks(dist.shape[0], block_rows)
    parts = map_blocks(
        _perplexity_block, blocks, arrays={"dist": dist},
        kwargs={"perplexity": perplexity, "tol": tol, "max_tries": max_tries},
        workers=workers, name="perplexity",
    )
    if len(parts) == 1:
        return parts[0]
    probs = np.concatenate([part[0] for part in parts], axis=0)
    beta = np.concatenate([part[1] for part in parts])
    return probs, beta


def _perplexity_search_loop(
    dist: np.ndarray, perplexity: float, tol: float = 1e-5, max_tries: int = 64
) -> tuple[np.ndarray, np.ndarray]:
    """Reference per-row implementation of :func:`_perplexity_search`.

    Kept as the parity oracle (and for the perf-trajectory bench): one
    Python-level binary search per row, exactly the pre-vectorisation
    behaviour.
    """
    n = dist.shape[0]
    target_entropy = np.log(perplexity)
    d2 = dist**2
    cond = np.zeros((n, n))
    betas = np.ones(n)
    for i in range(n):
        row = np.delete(d2[i], i)
        beta, beta_lo, beta_hi = 1.0, 0.0, np.inf
        probs = np.ones_like(row) / max(row.size, 1)
        for _ in range(max_tries):
            weights = np.exp(-beta * (row - row.min()))
            total = weights.sum()
            if total <= 0:
                probs = np.ones_like(row) / max(row.size, 1)
                break
            probs = weights / total
            entropy = float(-(probs * np.log(np.clip(probs, _P_MIN, None))).sum())
            diff = entropy - target_entropy
            if abs(diff) < tol:
                break
            if diff > 0:  # entropy too high -> sharpen
                beta_lo = beta
                beta = beta * 2.0 if beta_hi == np.inf else (beta + beta_hi) / 2.0
            else:
                beta_hi = beta
                beta = beta / 2.0 if beta_lo == 0.0 else (beta + beta_lo) / 2.0
        cond[i, np.arange(n) != i] = probs
        betas[i] = beta
    return cond, betas


def _conditional_probabilities(
    dist: np.ndarray,
    perplexity: float,
    tol: float = 1e-5,
    max_tries: int = 64,
    workers: int | None = None,
) -> np.ndarray:
    """Row-stochastic P(j|i) with per-row bandwidth matched to perplexity."""
    cond, _ = _perplexity_search(
        dist, perplexity, tol=tol, max_tries=max_tries, workers=workers
    )
    return cond


def joint_probabilities(
    dist: np.ndarray, perplexity: float, workers: int | None = None
) -> np.ndarray:
    """Symmetrised joint P of the t-SNE objective (sums to 1, zero diag)."""
    n = dist.shape[0]
    if not 1.0 < perplexity < n:
        raise ValueError(
            f"perplexity must be in (1, n_points={n}), got {perplexity}"
        )
    cond = _conditional_probabilities(dist, perplexity, workers=workers)
    joint = (cond + cond.T) / (2.0 * n)
    return np.clip(joint, _P_MIN, None)


def _q_matrix(embedding: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Student-t similarities Q (paper Eq. 2) and the unnormalised kernel."""
    sq = (embedding**2).sum(axis=1)
    d2 = sq[:, None] + sq[None, :] - 2.0 * (embedding @ embedding.T)
    np.clip(d2, 0.0, None, out=d2)
    kernel = 1.0 / (1.0 + d2)
    np.fill_diagonal(kernel, 0.0)
    total = kernel.sum()
    q = np.clip(kernel / max(total, _P_MIN), _P_MIN, None)
    return q, kernel


def _kl(p: np.ndarray, q: np.ndarray) -> float:
    """KL(P || Q), the paper's Eq. 1 (diagonal contributes nothing)."""
    mask = ~np.eye(p.shape[0], dtype=bool)
    return float((p[mask] * np.log(p[mask] / q[mask])).sum())


def _sparse_joint(
    p: np.ndarray, perplexity: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sparsify the dense joint P to its k-nearest entries per row.

    Keeps ``k = 3 * perplexity`` largest entries per row (van der
    Maaten's Barnes–Hut heuristic), symmetrises the support and rescales
    to sum to 1.  Returns COO-style ``(rows, cols, vals)`` with both
    ``(i, j)`` and ``(j, i)`` present for every kept pair.
    """
    n = p.shape[0]
    k = min(n - 1, max(3, int(round(3.0 * perplexity))))
    top = np.argpartition(p, n - 1 - k, axis=1)[:, n - k:]
    mask = np.zeros((n, n), dtype=bool)
    mask[np.arange(n)[:, None], top] = True
    np.fill_diagonal(mask, False)
    mask |= mask.T
    rows, cols = np.nonzero(mask)
    vals = p[rows, cols]
    return rows, cols, vals / vals.sum()


def _descend(
    grad_fn, y: np.ndarray, n_iter: int, learning_rate: float,
    exaggeration_iter: int, trace_fn,
    checkpoint_every: int | None = None,
    checkpoint_fn=None,
    resume_from: DescentCheckpoint | None = None,
) -> tuple[np.ndarray, list[float]]:
    """Shared gradient-descent loop: momentum switching + adaptive gains.

    ``grad_fn(y, iteration)`` returns the (possibly exaggerated) gradient;
    ``trace_fn(y)`` the objective sample recorded every 50 iterations.

    When ``checkpoint_fn`` is given it receives a
    :class:`DescentCheckpoint` after every ``checkpoint_every``-th
    iteration (never after the last — the finished result supersedes
    it).  ``resume_from`` restarts the loop from a previous checkpoint's
    carried state instead of iteration 0.
    """
    if resume_from is not None:
        start = int(resume_from.iteration)
        y = np.array(resume_from.y, dtype=y.dtype, copy=True)
        velocity = np.array(resume_from.velocity, dtype=y.dtype, copy=True)
        gains = np.array(resume_from.gains, dtype=y.dtype, copy=True)
        kl_trace = list(resume_from.kl_trace)
    else:
        start = 0
        velocity = np.zeros_like(y)
        gains = np.ones_like(y)
        kl_trace = []
    for iteration in range(start, n_iter):
        grad = grad_fn(y, iteration)
        momentum = 0.5 if iteration < exaggeration_iter else 0.8
        same_sign = np.sign(grad) == np.sign(velocity)
        gains = np.where(same_sign, gains * 0.8, gains + 0.2)
        np.clip(gains, 0.01, None, out=gains)
        velocity = momentum * velocity - learning_rate * gains * grad
        y = y + velocity
        y = y - y.mean(axis=0, keepdims=True)
        if iteration % 50 == 0 or iteration == n_iter - 1:
            kl_trace.append(trace_fn(y))
        done = iteration + 1
        if (
            checkpoint_fn is not None
            and checkpoint_every is not None
            and done % checkpoint_every == 0
            and done < n_iter
        ):
            checkpoint_fn(
                DescentCheckpoint(
                    iteration=done,
                    y=y.copy(),
                    velocity=velocity.copy(),
                    gains=gains.copy(),
                    kl_trace=list(kl_trace),
                )
            )
    return y, kl_trace


def _check_bh_checkpoint_alignment(
    checkpoint_every: int | None, resume_from: DescentCheckpoint | None
) -> None:
    """Reject checkpoint cadences the Barnes–Hut engine cannot replay.

    The traversal plan is rebuilt whenever ``iteration % _REPLAN_EVERY
    == 0`` and starts empty on resume, so a resumed run is bit-identical
    only when it restarts exactly at a rebuild boundary.
    """
    if checkpoint_every is not None and checkpoint_every % _REPLAN_EVERY:
        raise ValueError(
            f"Barnes–Hut checkpoints must align with the traversal-plan "
            f"rebuild cadence: checkpoint_every must be a multiple of "
            f"{_REPLAN_EVERY}, got {checkpoint_every}"
        )
    if resume_from is not None and resume_from.iteration % _REPLAN_EVERY:
        raise ValueError(
            f"Barnes–Hut resume must start at a traversal-plan rebuild "
            f"boundary (iteration % {_REPLAN_EVERY} == 0), got iteration "
            f"{resume_from.iteration}"
        )


def _select_landmarks(
    k: int,
    seed: int,
    features: np.ndarray | None = None,
    dist: np.ndarray | None = None,
) -> np.ndarray:
    """k-means++-style D²-sampled landmark indices (sorted, unique).

    Greedy coverage: a seeded uniform first pick, then each subsequent
    landmark is sampled proportionally to the squared distance from the
    nearest landmark chosen so far (the k-means++ seeding rule), which
    spreads landmarks across the cluster structure instead of sampling
    dense regions over and over.  Works from raw features (squared
    Euclidean, one O(n·dim) pass per landmark — never an n² matrix) or
    from the columns of a precomputed distance matrix.  Deterministic
    per seed.
    """
    if features is not None:
        features = np.asarray(features, dtype=np.float64)
        n = features.shape[0]
        sq = np.einsum("ij,ij->i", features, features)
    else:
        assert dist is not None
        n = dist.shape[0]
    rng = np.random.default_rng(seed)
    chosen = np.empty(min(k, n), dtype=np.int64)
    pick = int(rng.integers(n))
    chosen[0] = pick
    d2: np.ndarray | None = None
    for i in range(1, chosen.size):
        if features is not None:
            new = sq + sq[pick] - 2.0 * (features @ features[pick])
            np.clip(new, 0.0, None, out=new)
        else:
            new = dist[pick].astype(np.float64) ** 2
        d2 = new if d2 is None else np.minimum(d2, new)
        total = float(d2.sum())
        if total > 0.0:
            pick = int(rng.choice(n, p=d2 / total))
        else:
            # Every remaining point coincides with a landmark; any pick
            # is as good as any other (unique() below deduplicates).
            pick = int(rng.integers(n))
        chosen[i] = pick
    return np.unique(chosen)


def _landmark_tsne(
    features: np.ndarray | None,
    distances: np.ndarray | None,
    *,
    metric: str,
    perplexity: float,
    n_iter: int,
    learning_rate: float,
    early_exaggeration: float,
    exaggeration_iter: int,
    init: str,
    seed: int,
    theta: float,
    workers: int | None,
    n_landmarks: int | None,
    dtype: str | None,
    dtw_max_rows: int | None,
    checkpoint_every: int | None = None,
    checkpoint_fn=None,
    resume_from: DescentCheckpoint | None = None,
) -> TSNEResult:
    """Out-of-core t-SNE: embed k landmarks, interpolate the rest.

    The n² distance matrix is never materialised when features are
    given: only the k x k landmark block (for the inner Barnes–Hut run)
    and blockwise (rest, k) cross distances (for placement) exist at any
    time.  The reported ``kl_divergence`` is the landmark subproblem's
    objective — the placement stage is an interpolation with no KL of
    its own.
    """
    if distances is not None:
        dist = validate_distance_matrix(distances)
        feats = None
        n = dist.shape[0]
    else:
        dist = None
        feats = np.asarray(features, dtype=np.float64)
        if feats.ndim != 2:
            raise ValueError(f"features must be 2-D, got shape {feats.shape}")
        n = feats.shape[0]
    k = DEFAULT_LANDMARKS if n_landmarks is None else int(n_landmarks)
    if not 4 <= k <= MAX_LANDMARKS:
        raise ValueError(
            f"n_landmarks must be in [4, {MAX_LANDMARKS}], got {k}"
        )
    registry = obs.get_registry()
    stages: dict[str, float] = {}
    with obs.span(
        "kernel.tsne_landmark", n_points=n, n_landmarks=min(k, n)
    ):
        started = time.perf_counter()
        idx = _select_landmarks(
            k, seed, features=feats, dist=dist if feats is None else None
        )
        stages["select_seconds"] = time.perf_counter() - started

        started = time.perf_counter()
        inner_kwargs = dict(
            metric=metric, perplexity=perplexity, n_iter=n_iter,
            learning_rate=learning_rate,
            early_exaggeration=early_exaggeration,
            exaggeration_iter=exaggeration_iter, n_components=2,
            init=init, seed=seed, method="bh", theta=theta,
            workers=workers, dtype=dtype, dtw_max_rows=dtw_max_rows,
            # Landmark selection and placement are deterministic per
            # seed, so checkpointing the inner embed is enough to make
            # the whole landmark run resumable.
            checkpoint_every=checkpoint_every, checkpoint_fn=checkpoint_fn,
            resume_from=resume_from,
        )
        if feats is not None:
            inner = tsne(feats[idx], **inner_kwargs)
        else:
            inner = tsne(distances=dist[np.ix_(idx, idx)], **inner_kwargs)
        stages["embed_seconds"] = time.perf_counter() - started

        started = time.perf_counter()
        rest = np.setdiff1d(np.arange(n), idx, assume_unique=True)
        out = np.empty((n, 2))
        out[idx] = inner.embedding
        if rest.size:
            knn = min(_LANDMARK_KNN, idx.size)
            if feats is not None:
                projector = EmbeddingProjector(
                    feats[idx], inner.embedding, k=knn, metric=metric
                )
                out[rest] = projector.project(
                    feats[rest], workers=workers, dtw_max_rows=dtw_max_rows
                )
            else:
                out[rest] = barycentric_from_cross(
                    dist[np.ix_(rest, idx)], inner.embedding, k=knn
                )
        stages["place_seconds"] = time.perf_counter() - started
    # The inner run already counted kernel_runs_total / iterations; the
    # outer layer records which public method the caller asked for.
    registry.counter(
        "kernel_method_total", kernel="tsne", method="landmark"
    ).inc()
    return TSNEResult(
        embedding=out,
        kl_divergence=inner.kl_divergence,
        n_iter=inner.n_iter,
        perplexity=inner.perplexity,
        kl_trace=inner.kl_trace,
        method="landmark",
        effective_init=inner.effective_init,
        stages=stages,
    )


def tsne(
    features: np.ndarray | None = None,
    *,
    distances: np.ndarray | None = None,
    metric: str = "pearson",
    perplexity: float = 30.0,
    n_iter: int = 500,
    learning_rate: float = 200.0,
    early_exaggeration: float = 12.0,
    exaggeration_iter: int = 250,
    n_components: int = 2,
    init: str = "pca",
    seed: int = 0,
    method: str = "auto",
    theta: float = 0.5,
    workers: int | None = None,
    n_landmarks: int | None = None,
    dtype: str | None = None,
    dtw_max_rows: int | None = None,
    checkpoint_every: int | None = None,
    checkpoint_fn=None,
    resume_from: DescentCheckpoint | None = None,
) -> TSNEResult:
    """Embed rows into ``n_components`` dimensions.

    Exactly one of ``features`` / ``distances`` must be given.  ``init`` is
    ``"pca"`` (deterministic, needs features) or ``"random"``; asking for
    PCA with only a distance matrix degrades to random init — the run
    logs a structured warning and records the fallback in
    ``TSNEResult.effective_init``.  Perplexity is clamped to
    ``(n - 1) / 3`` when the data set is small, the standard guardrail.

    ``method`` selects the gradient engine: ``"exact"`` (dense, ground
    truth), ``"bh"`` (Barnes–Hut at accuracy knob ``theta``, 2-D only),
    ``"landmark"`` (embed ``n_landmarks`` k-means++-selected rows with
    Barnes–Hut, interpolate the rest — the only engine that never
    materialises the n² distance matrix; explicit opt-in, 2-D only) or
    ``"auto"`` (Barnes–Hut from ``BH_THRESHOLD`` points up; never
    landmark).

    ``workers`` (default ``REPRO_WORKERS``, else serial) fans the
    distance and perplexity stages out over the shared-memory pool;
    results are bit-identical for any worker count.  ``dtype`` selects
    the distance compute precision (``"float32"`` halves bandwidth;
    reductions still accumulate in float64).  ``dtw_max_rows``
    overrides the DTW pairwise row ceiling.

    ``checkpoint_every``/``checkpoint_fn`` emit a
    :class:`DescentCheckpoint` every k descent iterations and
    ``resume_from`` restarts from one — the job service's crash-recovery
    hook.  For the Barnes–Hut engines the cadence must align with the
    ``_REPLAN_EVERY`` traversal-plan rebuild so a resumed run rebuilds
    its plan exactly where an uninterrupted run would, keeping the
    output bit-identical.

    Raises
    ------
    ValueError
        On inconsistent inputs.
    """
    fault_point("kernel.tsne")
    if (features is None) == (distances is None):
        raise ValueError("pass exactly one of features or distances")
    if init not in ("pca", "random"):
        raise ValueError(f"init must be 'pca' or 'random', got {init!r}")
    if n_iter < 1:
        raise ValueError(f"n_iter must be positive, got {n_iter}")
    if method not in TSNE_METHODS:
        raise ValueError(
            f"method must be one of {TSNE_METHODS}, got {method!r}"
        )
    if not 0.0 < theta <= 1.0:
        raise ValueError(f"theta must be in (0, 1], got {theta}")
    if checkpoint_every is not None and checkpoint_every < 1:
        raise ValueError(
            f"checkpoint_every must be >= 1, got {checkpoint_every}"
        )
    if resume_from is not None and not 0 <= resume_from.iteration <= n_iter:
        raise ValueError(
            f"resume_from.iteration must be in [0, {n_iter}], "
            f"got {resume_from.iteration}"
        )
    if method == "landmark":
        if n_components != 2:
            raise ValueError(
                f"landmark t-SNE is 2-D only, got n_components={n_components}"
            )
        _check_bh_checkpoint_alignment(checkpoint_every, resume_from)
        return _landmark_tsne(
            features, distances, metric=metric, perplexity=perplexity,
            n_iter=n_iter, learning_rate=learning_rate,
            early_exaggeration=early_exaggeration,
            exaggeration_iter=exaggeration_iter, init=init, seed=seed,
            theta=theta, workers=workers, n_landmarks=n_landmarks,
            dtype=dtype, dtw_max_rows=dtw_max_rows,
            checkpoint_every=checkpoint_every, checkpoint_fn=checkpoint_fn,
            resume_from=resume_from,
        )
    if distances is None:
        assert features is not None
        dist = pairwise_distances(
            features, metric=metric, dtype=dtype, workers=workers,
            dtw_max_rows=dtw_max_rows,
        )
    else:
        dist = validate_distance_matrix(distances)
    effective_init = init
    if init == "pca" and features is None:
        # PCA needs raw features; warn instead of silently degrading.
        effective_init = "random"
        obs.get_logger().warning(
            "tsne.init_degraded",
            requested="pca",
            effective="random",
            reason="pca init needs raw features, got a distance matrix",
        )
    n = dist.shape[0]
    if n < 3:
        raise ValueError(f"need at least 3 points for t-SNE, got {n}")
    if method == "bh" and n_components != 2:
        raise ValueError(
            f"Barnes–Hut t-SNE is 2-D only, got n_components={n_components}"
        )
    use_bh = method == "bh" or (
        method == "auto" and n >= BH_THRESHOLD and n_components == 2
    )
    engine = "bh" if use_bh else "exact"
    if use_bh:
        _check_bh_checkpoint_alignment(checkpoint_every, resume_from)
    perplexity = float(min(perplexity, max(2.0, (n - 1) / 3.0)))

    registry = obs.get_registry()
    with obs.span(
        "kernel.tsne", n_points=n, n_iter=n_iter, method=engine
    ), registry.timer("kernel_runtime_seconds", kernel="tsne"):
        p = joint_probabilities(dist, perplexity, workers=workers)
        rng = np.random.default_rng(seed)
        if effective_init == "pca":
            assert features is not None
            base = pca(np.asarray(features, dtype=np.float64), n_components).embedding
            scale = base[:, 0].std() or 1.0
            y = base / scale * 1e-4
        else:
            y = rng.normal(0.0, 1e-4, size=(n, n_components))

        if use_bh:
            rows, cols, vals = _sparse_joint(p, perplexity)
            rows32 = rows.astype(np.int32)
            cols32 = cols.astype(np.int32)
            vals32 = vals.astype(np.float32)
            vals_exag = (early_exaggeration * vals).astype(np.float32)
            one = np.float32(1.0)
            plan_box: list = [None]

            def grad_fn(y: np.ndarray, iteration: int) -> np.ndarray:
                if plan_box[0] is None or iteration % _REPLAN_EVERY == 0:
                    plan_box[0] = plan_repulsion(y, theta=theta)
                rep, z = run_plan(plan_box[0], y)
                # Attraction over the sparse P support, float32 like the
                # repulsion traversal (the kept tail is a ~1e-2
                # approximation already).
                yx = np.ascontiguousarray(y[:, 0], dtype=np.float32)
                yy = np.ascontiguousarray(y[:, 1], dtype=np.float32)
                dx = np.take(yx, rows32)
                dx -= np.take(yx, cols32)
                dy = np.take(yy, rows32)
                dy -= np.take(yy, cols32)
                qn = dx * dx
                qn += dy * dy
                qn += one
                np.reciprocal(qn, out=qn)
                qn *= vals_exag if iteration < exaggeration_iter else vals32
                dx *= qn
                dy *= qn
                attr = np.empty((n, 2))
                attr[:, 0] = np.bincount(rows32, weights=dx, minlength=n)
                attr[:, 1] = np.bincount(rows32, weights=dy, minlength=n)
                return 4.0 * (attr - rep / max(z, _P_MIN))

            def trace_fn(y: np.ndarray) -> float:
                # Sparse-support approximation of Eq. 1 (the dropped tail
                # of P carries negligible mass); the final objective in
                # the result is still computed densely below.
                delta = y[rows] - y[cols]
                q_num = 1.0 / (1.0 + (delta**2).sum(axis=1))
                if plan_box[0] is not None:
                    _, z = run_plan(plan_box[0], y)
                else:
                    _, z = repulsion(y, theta=theta)
                q = np.clip(q_num / max(z, _P_MIN), _P_MIN, None)
                return float((vals * np.log(vals / q)).sum())

        else:
            exaggerated = p * early_exaggeration

            def grad_fn(y: np.ndarray, iteration: int) -> np.ndarray:
                current_p = (
                    exaggerated if iteration < exaggeration_iter else p
                )
                q, kernel = _q_matrix(y)
                # Gradient: 4 * sum_j (p_ij - q_ij) * kernel_ij * (y_i - y_j)
                coeff = (current_p - q) * kernel
                return 4.0 * ((np.diag(coeff.sum(axis=1)) - coeff) @ y)

            def trace_fn(y: np.ndarray) -> float:
                q, _ = _q_matrix(y)
                return _kl(p, q)

        y, kl_trace = _descend(
            grad_fn, y, n_iter, learning_rate, exaggeration_iter, trace_fn,
            checkpoint_every=checkpoint_every, checkpoint_fn=checkpoint_fn,
            resume_from=resume_from,
        )
        q, _ = _q_matrix(y)
        kl = _kl(p, q)
    registry.counter("kernel_runs_total", kernel="tsne").inc()
    registry.counter("kernel_method_total", kernel="tsne", method=engine).inc()
    registry.histogram(
        "kernel_iterations", buckets=obs.COUNT_BUCKETS, kernel="tsne"
    ).observe(n_iter)
    registry.gauge("kernel_last_objective", kernel="tsne").set(kl)
    return TSNEResult(
        embedding=y,
        kl_divergence=kl,
        n_iter=n_iter,
        perplexity=perplexity,
        kl_trace=kl_trace,
        method=engine,
        effective_init=effective_init,
    )
