"""t-distributed Stochastic Neighbor Embedding (exact, from scratch).

This is the paper's primary reducer (its Eq. 1 is the KL objective, Eq. 2
the Student-t low-dimensional kernel).  The implementation follows van der
Maaten & Hinton (2008):

1. per-point Gaussian bandwidths found by binary search so each conditional
   distribution has the requested *perplexity*;
2. symmetrised joint probabilities ``P = (P_c + P_c^T) / 2n``;
3. gradient descent on the KL divergence with early exaggeration, momentum
   switching and adaptive per-coordinate gains.

Distances default to the paper's Pearson metric; any precomputed
dissimilarity is accepted too.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.core.reduction.distances import pairwise_distances, validate_distance_matrix
from repro.core.reduction.pca import pca

_P_MIN = 1e-12


@dataclass(slots=True)
class TSNEResult:
    """Embedding plus convergence diagnostics.

    ``kl_divergence`` is the paper's Eq. 1 objective at the final iterate
    (without exaggeration); ``kl_trace`` samples it every 50 iterations.
    """

    embedding: np.ndarray
    kl_divergence: float
    n_iter: int
    perplexity: float
    kl_trace: list[float]


def _conditional_probabilities(
    dist: np.ndarray, perplexity: float, tol: float = 1e-5, max_tries: int = 64
) -> np.ndarray:
    """Row-stochastic P(j|i) with per-row bandwidth matched to perplexity.

    Binary search on the precision ``beta_i`` of ``exp(-beta_i * d_ij^2)``
    until the row entropy equals ``log(perplexity)``.
    """
    n = dist.shape[0]
    target_entropy = np.log(perplexity)
    d2 = dist**2
    cond = np.zeros((n, n))
    for i in range(n):
        row = np.delete(d2[i], i)
        beta, beta_lo, beta_hi = 1.0, 0.0, np.inf
        probs = np.ones_like(row) / max(row.size, 1)
        for _ in range(max_tries):
            weights = np.exp(-beta * (row - row.min()))
            total = weights.sum()
            if total <= 0:
                probs = np.ones_like(row) / max(row.size, 1)
                break
            probs = weights / total
            entropy = float(-(probs * np.log(np.clip(probs, _P_MIN, None))).sum())
            diff = entropy - target_entropy
            if abs(diff) < tol:
                break
            if diff > 0:  # entropy too high -> sharpen
                beta_lo = beta
                beta = beta * 2.0 if beta_hi == np.inf else (beta + beta_hi) / 2.0
            else:
                beta_hi = beta
                beta = beta / 2.0 if beta_lo == 0.0 else (beta + beta_lo) / 2.0
        cond[i, np.arange(n) != i] = probs
    return cond


def joint_probabilities(dist: np.ndarray, perplexity: float) -> np.ndarray:
    """Symmetrised joint P of the t-SNE objective (sums to 1, zero diag)."""
    n = dist.shape[0]
    if not 1.0 < perplexity < n:
        raise ValueError(
            f"perplexity must be in (1, n_points={n}), got {perplexity}"
        )
    cond = _conditional_probabilities(dist, perplexity)
    joint = (cond + cond.T) / (2.0 * n)
    return np.clip(joint, _P_MIN, None)


def _q_matrix(embedding: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Student-t similarities Q (paper Eq. 2) and the unnormalised kernel."""
    sq = (embedding**2).sum(axis=1)
    d2 = sq[:, None] + sq[None, :] - 2.0 * (embedding @ embedding.T)
    np.clip(d2, 0.0, None, out=d2)
    kernel = 1.0 / (1.0 + d2)
    np.fill_diagonal(kernel, 0.0)
    total = kernel.sum()
    q = np.clip(kernel / max(total, _P_MIN), _P_MIN, None)
    return q, kernel


def _kl(p: np.ndarray, q: np.ndarray) -> float:
    """KL(P || Q), the paper's Eq. 1 (diagonal contributes nothing)."""
    mask = ~np.eye(p.shape[0], dtype=bool)
    return float((p[mask] * np.log(p[mask] / q[mask])).sum())


def tsne(
    features: np.ndarray | None = None,
    *,
    distances: np.ndarray | None = None,
    metric: str = "pearson",
    perplexity: float = 30.0,
    n_iter: int = 500,
    learning_rate: float = 200.0,
    early_exaggeration: float = 12.0,
    exaggeration_iter: int = 250,
    n_components: int = 2,
    init: str = "pca",
    seed: int = 0,
) -> TSNEResult:
    """Embed rows into ``n_components`` dimensions.

    Exactly one of ``features`` / ``distances`` must be given.  ``init`` is
    ``"pca"`` (deterministic, needs features) or ``"random"``.  Perplexity
    is clamped to ``(n - 1) / 3`` when the data set is small, the standard
    guardrail.

    Raises
    ------
    ValueError
        On inconsistent inputs.
    """
    if (features is None) == (distances is None):
        raise ValueError("pass exactly one of features or distances")
    if init not in ("pca", "random"):
        raise ValueError(f"init must be 'pca' or 'random', got {init!r}")
    if n_iter < 1:
        raise ValueError(f"n_iter must be positive, got {n_iter}")
    if distances is None:
        assert features is not None
        dist = pairwise_distances(features, metric=metric)
    else:
        dist = validate_distance_matrix(distances)
        if init == "pca":
            if features is None:
                init = "random"  # PCA needs raw features
    n = dist.shape[0]
    if n < 3:
        raise ValueError(f"need at least 3 points for t-SNE, got {n}")
    perplexity = float(min(perplexity, max(2.0, (n - 1) / 3.0)))

    p = joint_probabilities(dist, perplexity)
    rng = np.random.default_rng(seed)
    if init == "pca" and features is not None:
        base = pca(np.asarray(features, dtype=np.float64), n_components).embedding
        scale = base[:, 0].std() or 1.0
        y = base / scale * 1e-4
    else:
        y = rng.normal(0.0, 1e-4, size=(n, n_components))

    velocity = np.zeros_like(y)
    gains = np.ones_like(y)
    kl_trace: list[float] = []
    exaggerated = p * early_exaggeration
    with obs.span("kernel.tsne", n_points=n, n_iter=n_iter):
        for iteration in range(n_iter):
            current_p = exaggerated if iteration < exaggeration_iter else p
            q, kernel = _q_matrix(y)
            # Gradient: 4 * sum_j (p_ij - q_ij) * kernel_ij * (y_i - y_j)
            coeff = (current_p - q) * kernel
            grad = 4.0 * ((np.diag(coeff.sum(axis=1)) - coeff) @ y)
            momentum = 0.5 if iteration < exaggeration_iter else 0.8
            same_sign = np.sign(grad) == np.sign(velocity)
            gains = np.where(same_sign, gains * 0.8, gains + 0.2)
            np.clip(gains, 0.01, None, out=gains)
            velocity = momentum * velocity - learning_rate * gains * grad
            y = y + velocity
            y = y - y.mean(axis=0, keepdims=True)
            if iteration % 50 == 0 or iteration == n_iter - 1:
                kl_trace.append(_kl(p, q))
    q, _ = _q_matrix(y)
    kl = _kl(p, q)
    registry = obs.get_registry()
    registry.counter("kernel_runs_total", kernel="tsne").inc()
    registry.histogram(
        "kernel_iterations", buckets=obs.COUNT_BUCKETS, kernel="tsne"
    ).observe(n_iter)
    registry.gauge("kernel_last_objective", kernel="tsne").set(kl)
    return TSNEResult(
        embedding=y,
        kl_divergence=kl,
        n_iter=n_iter,
        perplexity=perplexity,
        kl_trace=kl_trace,
    )
