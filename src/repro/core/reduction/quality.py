"""Embedding-quality metrics for the S1c reducer comparison.

The demo lets attendees "observe difference and compare capabilities in
typical pattern discovery" between t-SNE and MDS.  To make that comparison
quantitative we report the standard projection-quality suite:

- *trustworthiness* — are embedding neighbours true data neighbours?
  (penalises false neighbours / visual artefacts);
- *continuity* — are data neighbours kept together in the embedding?
  (penalises torn-apart clusters);
- *neighbourhood hit* — share of each point's embedding neighbours with the
  same ground-truth label (possible here because the generator keeps
  labels);
- *Shepard correlation* — Spearman rank correlation of original vs
  embedded distances (global structure);
- *KL divergence of the t-SNE objective* for any embedding, so MDS layouts
  can be scored on the paper's Eq. 1 too.
"""

from __future__ import annotations

import numpy as np

from repro.core.reduction.distances import validate_distance_matrix
from repro.core.reduction.tsne import _q_matrix, joint_probabilities


def _knn_sets(dist: np.ndarray, k: int) -> np.ndarray:
    """Indices of each row's k nearest other points, ``(n, k)``."""
    n = dist.shape[0]
    if not 1 <= k < n:
        raise ValueError(f"k must be in [1, {n - 1}], got {k}")
    padded = dist.copy()
    np.fill_diagonal(padded, np.inf)
    return np.argsort(padded, axis=1, kind="stable")[:, :k]


def _ranks_excluding_self(dist: np.ndarray) -> np.ndarray:
    """rank[i, j] = 1-based rank of j among i's other points by distance."""
    n = dist.shape[0]
    padded = dist.copy()
    np.fill_diagonal(padded, np.inf)
    order = np.argsort(padded, axis=1, kind="stable")
    ranks = np.empty((n, n), dtype=np.int64)
    rows = np.arange(n)[:, None]
    ranks[rows, order] = np.arange(1, n + 1)[None, :]
    ranks[np.arange(n), np.arange(n)] = 0
    return ranks


def trustworthiness(
    original_dist: np.ndarray, embedding: np.ndarray, k: int = 10
) -> float:
    """Venna & Kaski trustworthiness in [0, 1]; 1 = no false neighbours."""
    dist = validate_distance_matrix(original_dist)
    n = dist.shape[0]
    k = min(k, n - 2) if n > 2 else 1
    emb_dist = _embedding_dist(embedding)
    knn_emb = _knn_sets(emb_dist, k)
    ranks_orig = _ranks_excluding_self(dist)
    penalty = 0.0
    for i in range(n):
        r = ranks_orig[i, knn_emb[i]]
        penalty += float(np.clip(r - k, 0, None).sum())
    norm = n * k * (2 * n - 3 * k - 1)
    if norm <= 0:
        return 1.0
    return 1.0 - (2.0 / norm) * penalty


def continuity(
    original_dist: np.ndarray, embedding: np.ndarray, k: int = 10
) -> float:
    """Continuity in [0, 1]; 1 = no data neighbours pushed apart."""
    dist = validate_distance_matrix(original_dist)
    n = dist.shape[0]
    k = min(k, n - 2) if n > 2 else 1
    emb_dist = _embedding_dist(embedding)
    knn_orig = _knn_sets(dist, k)
    ranks_emb = _ranks_excluding_self(emb_dist)
    penalty = 0.0
    for i in range(n):
        r = ranks_emb[i, knn_orig[i]]
        penalty += float(np.clip(r - k, 0, None).sum())
    norm = n * k * (2 * n - 3 * k - 1)
    if norm <= 0:
        return 1.0
    return 1.0 - (2.0 / norm) * penalty


def neighborhood_hit(
    embedding: np.ndarray, labels: np.ndarray, k: int = 10
) -> float:
    """Mean share of each point's k embedding-neighbours sharing its label."""
    labels = np.asarray(labels)
    emb_dist = _embedding_dist(embedding)
    n = emb_dist.shape[0]
    if labels.shape[0] != n:
        raise ValueError(
            f"{labels.shape[0]} labels for {n} embedded points"
        )
    k = min(k, n - 1)
    knn = _knn_sets(emb_dist, k)
    hits = labels[knn] == labels[:, None]
    return float(hits.mean())


def shepard_correlation(original_dist: np.ndarray, embedding: np.ndarray) -> float:
    """Spearman rank correlation between original and embedded distances."""
    dist = validate_distance_matrix(original_dist)
    emb_dist = _embedding_dist(embedding)
    iu = np.triu_indices(dist.shape[0], k=1)
    a = dist[iu]
    b = emb_dist[iu]
    if a.size < 2:
        return 1.0
    ra = np.argsort(np.argsort(a, kind="stable"), kind="stable").astype(np.float64)
    rb = np.argsort(np.argsort(b, kind="stable"), kind="stable").astype(np.float64)
    ra -= ra.mean()
    rb -= rb.mean()
    denom = np.sqrt((ra**2).sum() * (rb**2).sum())
    if denom == 0:
        return 0.0
    return float((ra * rb).sum() / denom)


def kl_divergence_embedding(
    original_dist: np.ndarray, embedding: np.ndarray, perplexity: float = 30.0
) -> float:
    """Paper Eq. 1 evaluated for *any* embedding.

    Lets MDS and PCA layouts be scored on the same objective t-SNE
    optimises, giving the S1c comparison a common yardstick.
    """
    dist = validate_distance_matrix(original_dist)
    n = dist.shape[0]
    perplexity = float(min(perplexity, max(2.0, (n - 1) / 3.0)))
    p = joint_probabilities(dist, perplexity)
    q, _ = _q_matrix(np.asarray(embedding, dtype=np.float64))
    mask = ~np.eye(n, dtype=bool)
    return float((p[mask] * np.log(p[mask] / q[mask])).sum())


def _embedding_dist(embedding: np.ndarray) -> np.ndarray:
    embedding = np.asarray(embedding, dtype=np.float64)
    if embedding.ndim != 2:
        raise ValueError(f"embedding must be 2-D, got shape {embedding.shape}")
    sq = (embedding**2).sum(axis=1)
    d2 = sq[:, None] + sq[None, :] - 2.0 * (embedding @ embedding.T)
    np.clip(d2, 0.0, None, out=d2)
    return np.sqrt(d2)
