"""Out-of-sample projection into an existing embedding.

When the live feed introduces a new customer (or a customer's recent data
changes), recomputing t-SNE for the whole fleet would break the analyst's
mental map.  The standard remedy is interpolation: place the new point at
the distance-weighted barycentre of its ``k`` nearest *training* points'
embedding coordinates.  Distances use the same metric as the original
embedding (Pearson by default), so new points land inside their pattern's
cluster.

This is also the placement stage of landmark t-SNE
(:func:`repro.core.reduction.tsne.tsne` with ``method="landmark"``): the
training set is the embedded landmarks and *every other point* is
out-of-sample, so the kernel must scale — distances come from the
blockwise cross-distance kernels (never a stacked ``(n + m)^2`` matrix),
the top-k selection is a vectorised ``argpartition`` per block, and
blocks fan out on the shared-memory pool when ``workers`` asks for
cores.  Block boundaries are fixed (worker-count independent), so the
projection is bit-identical across ``REPRO_WORKERS`` settings.
"""

from __future__ import annotations

import numpy as np

from repro.core.reduction.distances import (
    METRICS,
    cross_distances,
    pearson_cross_distance_matrix,
    pearson_normalize,
)
from repro.parallel import map_blocks, row_blocks

# Placement block size: big enough to amortise the cross-distance
# matmul, small enough that a block's (rows, n_train) scratch stays a
# few MB at the 4096-landmark cap.
PROJECT_BLOCK_ROWS = 4096


def barycentric_from_cross(
    cross: np.ndarray, embedding: np.ndarray, k: int
) -> np.ndarray:
    """kNN barycentric placement from a ``(m, n_train)`` cross matrix.

    For each query row: pick its ``k`` nearest training points, order
    them deterministically by ``(distance, index)`` (argpartition's tie
    order is implementation-defined), and return the inverse-distance
    weighted barycentre of their embedding coordinates.  An exact
    duplicate of a training row lands on that row's coordinates.
    """
    cross = np.asarray(cross, dtype=np.float64)
    m, n_train = cross.shape
    if k < n_train:
        nearest = np.argpartition(cross, k - 1, axis=1)[:, :k]
    else:
        nearest = np.broadcast_to(np.arange(n_train), (m, n_train))
    d = np.take_along_axis(cross, nearest, axis=1)
    order = np.lexsort((nearest, d), axis=1)
    nearest = np.take_along_axis(nearest, order, axis=1)
    d = np.take_along_axis(d, order, axis=1)
    weights = 1.0 / (d + 1e-12)
    weights /= weights.sum(axis=1, keepdims=True)
    out = np.einsum("ij,ijc->ic", weights, embedding[nearest])
    dup = d[:, 0] == 0.0
    if dup.any():
        out[dup] = embedding[nearest[dup, 0]]
    return out


def _project_block(
    block: tuple[int, int],
    arrays: dict[str, np.ndarray],
    *,
    metric: str,
    k: int,
    dtw_max_rows: int | None = None,
) -> np.ndarray:
    """Place one block of new rows: cross distances -> kNN barycentre."""
    start, stop = block
    if metric == "pearson":
        # The training side is pre-normalised once in the parent.
        cross = pearson_cross_distance_matrix(
            arrays["new"][start:stop],
            reference_unit=arrays["train_unit"],
            workers=1,
        )
    else:
        cross = cross_distances(
            arrays["new"][start:stop], arrays["train"], metric=metric,
            workers=1, dtw_max_rows=dtw_max_rows,
        )
    return barycentric_from_cross(cross, arrays["embedding"], k)


class EmbeddingProjector:
    """kNN barycentric out-of-sample projector.

    Parameters
    ----------
    train_features:
        Feature rows the embedding was computed from.
    train_embedding:
        The fitted 2-D coordinates, row-aligned with the features.
    k:
        Neighbours used for interpolation.
    metric:
        Distance metric, matching the embedding's.
    """

    def __init__(
        self,
        train_features: np.ndarray,
        train_embedding: np.ndarray,
        k: int = 8,
        metric: str = "pearson",
    ) -> None:
        self.features = np.asarray(train_features, dtype=np.float64)
        self.embedding = np.asarray(train_embedding, dtype=np.float64)
        if metric not in METRICS:
            raise ValueError(
                f"unknown metric {metric!r}; pick one of {METRICS}"
            )
        if self.features.ndim != 2:
            raise ValueError(
                f"train_features must be 2-D, got {self.features.shape}"
            )
        if not np.isfinite(self.features).all():
            raise ValueError(
                "train_features contain NaN/inf; run preprocessing first"
            )
        if (
            self.embedding.ndim != 2
            or self.embedding.shape[0] != self.features.shape[0]
        ):
            raise ValueError(
                f"embedding {self.embedding.shape} is not row-aligned with "
                f"features {self.features.shape}"
            )
        if not 1 <= k <= self.features.shape[0]:
            raise ValueError(
                f"k must be in [1, {self.features.shape[0]}], got {k}"
            )
        self.k = k
        self.metric = metric
        # Pearson: normalise the training side once; every projected
        # block then needs only its own normalisation plus one matmul.
        self._train_unit = (
            pearson_normalize(self.features) if metric == "pearson" else None
        )

    def project(
        self,
        new_features: np.ndarray,
        *,
        workers: int | None = None,
        dtw_max_rows: int | None = None,
    ) -> np.ndarray:
        """Project new rows; returns ``(m, dim)`` coordinates.

        Blockwise and optionally parallel (``workers`` /
        ``REPRO_WORKERS``); the result is independent of worker count.

        Raises
        ------
        ValueError
            If the new rows' width differs from the training features,
            or contain NaN/inf.
        """
        new_features = np.asarray(new_features, dtype=np.float64)
        if new_features.ndim == 1:
            new_features = new_features[None, :]
        if new_features.ndim != 2:
            raise ValueError(
                f"new features must be 1-D or 2-D, got {new_features.shape}"
            )
        if new_features.shape[1] != self.features.shape[1]:
            raise ValueError(
                f"new features have width {new_features.shape[1]}, "
                f"training features have {self.features.shape[1]}"
            )
        if not np.isfinite(new_features).all():
            raise ValueError(
                "new features contain NaN/inf; run preprocessing (impute) "
                "first"
            )
        if new_features.shape[0] == 0:
            return np.empty((0, self.embedding.shape[1]))
        arrays = {"new": new_features, "embedding": self.embedding}
        if self._train_unit is not None:
            arrays["train_unit"] = self._train_unit
        else:
            arrays["train"] = self.features
        blocks = row_blocks(new_features.shape[0], PROJECT_BLOCK_ROWS)
        parts = map_blocks(
            _project_block, blocks, arrays=arrays,
            kwargs={
                "metric": self.metric, "k": self.k,
                "dtw_max_rows": dtw_max_rows,
            },
            workers=workers, name="project",
        )
        return parts[0] if len(parts) == 1 else np.concatenate(parts, axis=0)
