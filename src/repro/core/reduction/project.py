"""Out-of-sample projection into an existing embedding.

When the live feed introduces a new customer (or a customer's recent data
changes), recomputing t-SNE for the whole fleet would break the analyst's
mental map.  The standard remedy is interpolation: place the new point at
the distance-weighted barycentre of its ``k`` nearest *training* points'
embedding coordinates.  Distances use the same metric as the original
embedding (Pearson by default), so new points land inside their pattern's
cluster.
"""

from __future__ import annotations

import numpy as np

from repro.core.reduction.distances import pairwise_distances


class EmbeddingProjector:
    """kNN barycentric out-of-sample projector.

    Parameters
    ----------
    train_features:
        Feature rows the embedding was computed from.
    train_embedding:
        The fitted 2-D coordinates, row-aligned with the features.
    k:
        Neighbours used for interpolation.
    metric:
        Distance metric, matching the embedding's.
    """

    def __init__(
        self,
        train_features: np.ndarray,
        train_embedding: np.ndarray,
        k: int = 8,
        metric: str = "pearson",
    ) -> None:
        self.features = np.asarray(train_features, dtype=np.float64)
        self.embedding = np.asarray(train_embedding, dtype=np.float64)
        if self.features.ndim != 2:
            raise ValueError(
                f"train_features must be 2-D, got {self.features.shape}"
            )
        if (
            self.embedding.ndim != 2
            or self.embedding.shape[0] != self.features.shape[0]
        ):
            raise ValueError(
                f"embedding {self.embedding.shape} is not row-aligned with "
                f"features {self.features.shape}"
            )
        if not 1 <= k <= self.features.shape[0]:
            raise ValueError(
                f"k must be in [1, {self.features.shape[0]}], got {k}"
            )
        self.k = k
        self.metric = metric

    def project(self, new_features: np.ndarray) -> np.ndarray:
        """Project new rows; returns ``(m, dim)`` coordinates.

        Raises
        ------
        ValueError
            If the new rows' width differs from the training features.
        """
        new_features = np.asarray(new_features, dtype=np.float64)
        if new_features.ndim == 1:
            new_features = new_features[None, :]
        if new_features.shape[1] != self.features.shape[1]:
            raise ValueError(
                f"new features have width {new_features.shape[1]}, "
                f"training features have {self.features.shape[1]}"
            )
        n_train = self.features.shape[0]
        stacked = np.vstack([self.features, new_features])
        dist = pairwise_distances(stacked, metric=self.metric)
        cross = dist[n_train:, :n_train]  # (m, n_train)
        out = np.empty((new_features.shape[0], self.embedding.shape[1]))
        for i in range(cross.shape[0]):
            order = np.argsort(cross[i], kind="stable")[: self.k]
            d = cross[i, order]
            if d[0] == 0.0:
                # Exact duplicate of a training row: land on it.
                out[i] = self.embedding[order[0]]
                continue
            weights = 1.0 / (d + 1e-12)
            weights /= weights.sum()
            out[i] = weights @ self.embedding[order]
        return out
