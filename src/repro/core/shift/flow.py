"""Shift fields and flow arrows — the paper's Eq. 4 and Figure 2b.

``Shift(x) = f(x)|t2 - f(x)|t1``: positive cells gained demand density,
negative cells lost it.  Two arrow constructions render the shift:

- :func:`flow_vectors` — a *vector field*: arrows follow the gradient of
  the shift surface (pointing from loss toward gain), drawn on a coarse
  sub-grid; arrow colour depth encodes the local rate of change.  This is
  the dense texture of arrows in the paper's view A.
- :func:`major_flows` — *blob-to-blob transport*: the connected regions of
  loss and gain are extracted, and loss mass is greedily matched to gain
  mass by proximity.  This produces the headline "commercial area →
  residential area" arrow of Figure 3.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.shift.grids import DensityGrid, GridSpec


@dataclass(frozen=True, slots=True)
class FlowArrow:
    """One arrow of a flow map, in (lon, lat) coordinates.

    ``magnitude`` is the demand-density change the arrow carries; the
    renderer maps it to colour depth ("the darker the colour, the higher
    the rate" in the paper).
    """

    lon: float
    lat: float
    dlon: float
    dlat: float
    magnitude: float

    @property
    def tip(self) -> tuple[float, float]:
        return (self.lon + self.dlon, self.lat + self.dlat)


@dataclass(slots=True)
class ShiftField:
    """Eq. 4 on a grid: the density difference between two time steps."""

    spec: GridSpec
    values: np.ndarray

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=np.float64)
        if self.values.shape != (self.spec.ny, self.spec.nx):
            raise ValueError(
                f"values shape {self.values.shape} does not match grid "
                f"({self.spec.ny}, {self.spec.nx})"
            )

    @classmethod
    def between(cls, before: DensityGrid, after: DensityGrid) -> "ShiftField":
        """Eq. 4: ``after - before``.  Grids must share a spec.

        Raises
        ------
        ValueError
            If the grids were evaluated on different specs.
        """
        if before.spec != after.spec:
            raise ValueError(
                "density grids have different specs; evaluate both on one "
                "GridSpec"
            )
        return cls(spec=before.spec, values=after.values - before.values)

    # ------------------------------------------------------------------
    # scalar summaries the S2 sensitivity sweeps report
    # ------------------------------------------------------------------
    def energy(self) -> float:
        """Mean |shift| over the grid — overall churn between t1 and t2."""
        return float(np.abs(self.values).mean())

    def peak_gain(self) -> tuple[float, float, float]:
        """``(lon, lat, value)`` of the strongest gaining cell."""
        row, col = np.unravel_index(int(np.argmax(self.values)), self.values.shape)
        return (
            float(self.spec.lon_centers()[col]),
            float(self.spec.lat_centers()[row]),
            float(self.values[row, col]),
        )

    def peak_loss(self) -> tuple[float, float, float]:
        """``(lon, lat, value)`` of the strongest losing cell."""
        row, col = np.unravel_index(int(np.argmin(self.values)), self.values.shape)
        return (
            float(self.spec.lon_centers()[col]),
            float(self.spec.lat_centers()[row]),
            float(self.values[row, col]),
        )


def flow_vectors(
    field: ShiftField,
    stride: int = 6,
    min_magnitude_quantile: float = 0.6,
) -> list[FlowArrow]:
    """Gradient-following arrows on a coarse sub-grid.

    The shift surface's gradient points from loss toward gain; each arrow
    sits at a sub-sampled cell centre, its direction is the local gradient
    and its magnitude the gradient norm.  Arrows weaker than the given
    quantile of non-zero magnitudes are dropped to keep the map readable.

    Raises
    ------
    ValueError
        For a non-positive stride or a quantile outside [0, 1).
    """
    if stride < 1:
        raise ValueError(f"stride must be >= 1, got {stride}")
    if not 0.0 <= min_magnitude_quantile < 1.0:
        raise ValueError(
            f"min_magnitude_quantile must be in [0, 1), got "
            f"{min_magnitude_quantile}"
        )
    spec = field.spec
    # Gradient in grid units: d/dlat rows, d/dlon cols.
    grad_lat, grad_lon = np.gradient(field.values, spec.cell_height, spec.cell_width)
    lons = spec.lon_centers()
    lats = spec.lat_centers()
    rows = np.arange(stride // 2, spec.ny, stride)
    cols = np.arange(stride // 2, spec.nx, stride)
    magnitudes = np.sqrt(grad_lon**2 + grad_lat**2)
    sampled = magnitudes[np.ix_(rows, cols)]
    nonzero = sampled[sampled > 0]
    if nonzero.size == 0:
        return []
    threshold = float(np.quantile(nonzero, min_magnitude_quantile))
    # Arrow length: fixed fraction of the grid extent, scaled by relative
    # magnitude so strong flows read longer as well as darker.
    max_len = 0.75 * stride * max(spec.cell_width, spec.cell_height)
    max_mag = float(sampled.max())
    arrows: list[FlowArrow] = []
    for r in rows:
        for c in cols:
            mag = float(magnitudes[r, c])
            if mag < threshold or mag == 0.0:
                continue
            scale = max_len * (mag / max_mag) / mag
            arrows.append(
                FlowArrow(
                    lon=float(lons[c]),
                    lat=float(lats[r]),
                    dlon=float(grad_lon[r, c] * scale),
                    dlat=float(grad_lat[r, c] * scale),
                    magnitude=mag,
                )
            )
    return arrows


def _connected_blobs(
    mask: np.ndarray, weights: np.ndarray, spec: GridSpec, max_blobs: int
) -> list[tuple[float, float, float]]:
    """Connected components of ``mask`` as ``(lon, lat, mass)`` centroids,
    heaviest first (4-connectivity, iterative flood fill)."""
    ny, nx = mask.shape
    labels = np.full(mask.shape, -1, dtype=np.int64)
    blobs: list[tuple[float, float, float]] = []
    lons = spec.lon_centers()
    lats = spec.lat_centers()
    next_label = 0
    for start_row in range(ny):
        for start_col in range(nx):
            if not mask[start_row, start_col] or labels[start_row, start_col] >= 0:
                continue
            stack = [(start_row, start_col)]
            labels[start_row, start_col] = next_label
            cells: list[tuple[int, int]] = []
            while stack:
                r, c = stack.pop()
                cells.append((r, c))
                for rr, cc in ((r - 1, c), (r + 1, c), (r, c - 1), (r, c + 1)):
                    if (
                        0 <= rr < ny
                        and 0 <= cc < nx
                        and mask[rr, cc]
                        and labels[rr, cc] < 0
                    ):
                        labels[rr, cc] = next_label
                        stack.append((rr, cc))
            w = np.array([weights[r, c] for r, c in cells])
            mass = float(w.sum())
            if mass <= 0:
                continue
            lon = float(sum(lons[c] * wi for (_, c), wi in zip(cells, w)) / mass)
            lat = float(sum(lats[r] * wi for (r, _), wi in zip(cells, w)) / mass)
            blobs.append((lon, lat, mass))
            next_label += 1
    blobs.sort(key=lambda b: b[2], reverse=True)
    return blobs[:max_blobs]


def major_flows(
    field: ShiftField,
    max_flows: int = 5,
    threshold_quantile: float = 0.75,
) -> list[FlowArrow]:
    """Blob-to-blob transport arrows, strongest first.

    Cells beyond the ``threshold_quantile`` of |shift| form loss and gain
    regions; their weighted centroids are matched greedily (largest
    remaining loss to nearest substantial gain), each match emitting an
    arrow carrying ``min(loss, gain)`` mass.

    Raises
    ------
    ValueError
        For a quantile outside [0, 1) or non-positive ``max_flows``.
    """
    if max_flows < 1:
        raise ValueError(f"max_flows must be >= 1, got {max_flows}")
    if not 0.0 <= threshold_quantile < 1.0:
        raise ValueError(
            f"threshold_quantile must be in [0, 1), got {threshold_quantile}"
        )
    magnitude = np.abs(field.values)
    nonzero = magnitude[magnitude > 0]
    if nonzero.size == 0:
        return []
    threshold = float(np.quantile(nonzero, threshold_quantile))
    gain_mask = field.values > threshold
    loss_mask = field.values < -threshold
    gains = _connected_blobs(gain_mask, np.abs(field.values), field.spec, max_flows * 3)
    losses = _connected_blobs(loss_mask, np.abs(field.values), field.spec, max_flows * 3)
    if not gains or not losses:
        return []
    remaining_gain = [list(g) for g in gains]  # mutable copies
    arrows: list[FlowArrow] = []
    for lon_l, lat_l, mass_l in losses:
        if len(arrows) >= max_flows:
            break
        # Nearest gain blob with remaining capacity.
        best = None
        best_d2 = np.inf
        for blob in remaining_gain:
            if blob[2] <= 0:
                continue
            d2 = (blob[0] - lon_l) ** 2 + (blob[1] - lat_l) ** 2
            if d2 < best_d2:
                best_d2 = d2
                best = blob
        if best is None:
            break
        carried = min(mass_l, best[2])
        best[2] -= carried
        arrows.append(
            FlowArrow(
                lon=lon_l,
                lat=lat_l,
                dlon=best[0] - lon_l,
                dlat=best[1] - lat_l,
                magnitude=carried,
            )
        )
    arrows.sort(key=lambda a: a.magnitude, reverse=True)
    return arrows
