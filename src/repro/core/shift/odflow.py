"""Origin-destination flow smoothing (paper reference [10], Guo & Zhu 2014).

Raw flow maps over-plot: many near-parallel arrows with nearby endpoints
render as clutter.  Guo & Zhu's remedy is kernel smoothing in *flow space*:
treat each flow as a point in 4-D (origin, destination) space and merge
flows whose origins *and* destinations are both close, aggregating their
magnitudes.  This module implements that consolidation with a greedy
density-peak sweep, which preserves the strongest flows as representatives.
"""

from __future__ import annotations

import numpy as np

from repro.core.shift.flow import FlowArrow


def _flow_distance2(
    a: FlowArrow, b: FlowArrow, endpoint_scale: float
) -> float:
    """Squared distance in flow space: origin gap + destination gap, in
    units of ``endpoint_scale``."""
    o = (a.lon - b.lon) ** 2 + (a.lat - b.lat) ** 2
    atip, btip = a.tip, b.tip
    d = (atip[0] - btip[0]) ** 2 + (atip[1] - btip[1]) ** 2
    return (o + d) / max(endpoint_scale**2, 1e-30)


def smooth_od_flows(
    arrows: list[FlowArrow],
    endpoint_scale: float,
    max_flows: int | None = None,
) -> list[FlowArrow]:
    """Consolidate near-duplicate flows, strongest first.

    Parameters
    ----------
    arrows:
        Input flows (any order).
    endpoint_scale:
        Degrees within which two endpoints count as "the same place"; flows
        merge when the *combined* origin+destination gap is inside this
        scale.
    max_flows:
        Optional cap on output size (after merging).

    Merged arrows keep the magnitude-weighted mean origin and destination
    and the summed magnitude, so total transported mass is conserved.

    Raises
    ------
    ValueError
        For a non-positive endpoint scale.
    """
    if endpoint_scale <= 0:
        raise ValueError(f"endpoint_scale must be positive, got {endpoint_scale}")
    if not arrows:
        return []
    remaining = sorted(arrows, key=lambda a: a.magnitude, reverse=True)
    merged: list[FlowArrow] = []
    used = [False] * len(remaining)
    for i, seed in enumerate(remaining):
        if used[i]:
            continue
        group = [seed]
        used[i] = True
        for j in range(i + 1, len(remaining)):
            if used[j]:
                continue
            if _flow_distance2(seed, remaining[j], endpoint_scale) <= 1.0:
                group.append(remaining[j])
                used[j] = True
        total = sum(a.magnitude for a in group)
        if total <= 0:
            continue
        lon = sum(a.lon * a.magnitude for a in group) / total
        lat = sum(a.lat * a.magnitude for a in group) / total
        tip_lon = sum(a.tip[0] * a.magnitude for a in group) / total
        tip_lat = sum(a.tip[1] * a.magnitude for a in group) / total
        merged.append(
            FlowArrow(
                lon=lon,
                lat=lat,
                dlon=tip_lon - lon,
                dlat=tip_lat - lat,
                magnitude=total,
            )
        )
    merged.sort(key=lambda a: a.magnitude, reverse=True)
    if max_flows is not None:
        if max_flows < 1:
            raise ValueError(f"max_flows must be >= 1, got {max_flows}")
        merged = merged[:max_flows]
    return merged
