"""The S2 sensitivity sweeps.

Demo scenario S2 has attendees learn two sensitivities of the shift maps:

- **temporal granularity** — recompute the shift field for consecutive
  window pairs at hourly, 4-hourly, daily, weekly, monthly, quarterly and
  yearly resolution and watch how the shift signal changes;
- **consumption intensity** — restrict the map to customers above a demand
  quantile (30%..90%) and watch the flows sharpen and sparsify.

Both sweeps are implemented against :class:`~repro.db.engine.EnergyDatabase`
so they exercise the same data-layer path the interactive tool would.

Each sweep also has a rollup-backed twin (``*_from_rollups``) answering
the same question from a :class:`~repro.rollup.store.RollupStore` instead
of the raw readings: per-bucket demand comes from the materialized tables
and warm fields cost O(cells), so sweep latency is independent of
``n_readings``.  The twins return the same result types and match the raw
paths to float tolerance — the differential suite pins that.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.shift.flow import FlowArrow, ShiftField, major_flows
from repro.core.shift.grids import GridSpec
from repro.core.shift.kde import kde_density
from repro.data.timeseries import HourWindow, Resolution
from repro.db.engine import EnergyDatabase
from repro.preprocess.resample import resample
from repro.rollup.store import RollupStore


@dataclass(slots=True)
class GranularityResult:
    """Shift statistics for one temporal granularity.

    ``mean_energy`` averages the Eq. 4 field's mean |shift| over the window
    pairs examined; ``mean_flows`` the number of major flows; the peaks are
    the strongest single-pair values seen.
    """

    resolution: Resolution
    n_window_pairs: int
    mean_energy: float
    mean_flows: float
    peak_gain: float
    peak_loss: float


@dataclass(slots=True)
class QuantileResult:
    """Shift statistics for one intensity quantile."""

    quantile: float
    n_customers: int
    energy: float
    n_flows: int
    main_flow: FlowArrow | None


def _shift_between(
    db: EnergyDatabase,
    spec: GridSpec,
    t1: HourWindow,
    t2: HourWindow,
    customer_ids: list[int] | None = None,
    bandwidth_m: float | None = None,
) -> ShiftField:
    """Eq. 3 at both windows on a shared grid, then Eq. 4."""
    pos1, val1 = db.demand(t1, customer_ids)
    pos2, val2 = db.demand(t2, customer_ids)
    before = kde_density(pos1, val1, spec, bandwidth_m=bandwidth_m)
    after = kde_density(pos2, val2, spec, bandwidth_m=bandwidth_m)
    return ShiftField.between(before, after)


def granularity_sweep(
    db: EnergyDatabase,
    resolutions: tuple[Resolution, ...] = tuple(Resolution),
    spec: GridSpec | None = None,
    max_pairs_per_resolution: int = 8,
    bandwidth_m: float | None = None,
) -> list[GranularityResult]:
    """Shift statistics per temporal granularity (S2 step 1).

    For each resolution, consecutive bucket pairs (up to
    ``max_pairs_per_resolution``, evenly spread across the horizon) produce
    shift fields whose statistics are averaged.

    Raises
    ------
    ValueError
        If ``max_pairs_per_resolution`` is not positive.
    """
    if max_pairs_per_resolution < 1:
        raise ValueError(
            f"max_pairs_per_resolution must be >= 1, got "
            f"{max_pairs_per_resolution}"
        )
    if spec is None:
        spec = GridSpec.covering(db.positions_of(db.customer_ids))
    results: list[GranularityResult] = []
    for resolution in resolutions:
        buckets = resample(db.readings, resolution, aggregate="sum")
        pairs = buckets.window_pairs()
        if not pairs:
            results.append(
                GranularityResult(
                    resolution=resolution,
                    n_window_pairs=0,
                    mean_energy=float("nan"),
                    mean_flows=float("nan"),
                    peak_gain=float("nan"),
                    peak_loss=float("nan"),
                )
            )
            continue
        if len(pairs) > max_pairs_per_resolution:
            picks = np.linspace(0, len(pairs) - 1, max_pairs_per_resolution)
            pairs = [pairs[int(i)] for i in picks]
        energies: list[float] = []
        flow_counts: list[int] = []
        peak_gain = -np.inf
        peak_loss = np.inf
        for t1, t2 in pairs:
            field = _shift_between(db, spec, t1, t2, bandwidth_m=bandwidth_m)
            energies.append(field.energy())
            flow_counts.append(len(major_flows(field)))
            peak_gain = max(peak_gain, field.peak_gain()[2])
            peak_loss = min(peak_loss, field.peak_loss()[2])
        results.append(
            GranularityResult(
                resolution=resolution,
                n_window_pairs=len(pairs),
                mean_energy=float(np.mean(energies)),
                mean_flows=float(np.mean(flow_counts)),
                peak_gain=float(peak_gain),
                peak_loss=float(peak_loss),
            )
        )
    return results


def granularity_sweep_from_rollups(
    store: RollupStore,
    resolutions: tuple[Resolution, ...] | None = None,
    max_pairs_per_resolution: int = 8,
    bandwidth_m: float | None = None,
) -> list[GranularityResult]:
    """The granularity sweep answered from materialized rollups.

    Mirrors :func:`granularity_sweep` pair for pair — same bucket set
    (both derive from the shared bucketing primitive), same even spread
    over the horizon, same statistics — but every field comes from
    :meth:`~repro.rollup.store.RollupStore.bucket_field`: O(cells) when
    warm, never touching raw readings.

    Raises
    ------
    ValueError
        If ``max_pairs_per_resolution`` is not positive.
    RollupMiss
        If a requested resolution is not tracked by the store.
    """
    if max_pairs_per_resolution < 1:
        raise ValueError(
            f"max_pairs_per_resolution must be >= 1, got "
            f"{max_pairs_per_resolution}"
        )
    if resolutions is None:
        resolutions = store.resolutions
    results: list[GranularityResult] = []
    for resolution in resolutions:
        buckets = store.buckets(resolution)
        pairs = list(zip(buckets, buckets[1:]))
        if not pairs:
            results.append(
                GranularityResult(
                    resolution=resolution,
                    n_window_pairs=0,
                    mean_energy=float("nan"),
                    mean_flows=float("nan"),
                    peak_gain=float("nan"),
                    peak_loss=float("nan"),
                )
            )
            continue
        if len(pairs) > max_pairs_per_resolution:
            picks = np.linspace(0, len(pairs) - 1, max_pairs_per_resolution)
            pairs = [pairs[int(i)] for i in picks]
        energies: list[float] = []
        flow_counts: list[int] = []
        peak_gain = -np.inf
        peak_loss = np.inf
        for b1, b2 in pairs:
            before = store.bucket_field(resolution, b1, bandwidth_m=bandwidth_m)
            after = store.bucket_field(resolution, b2, bandwidth_m=bandwidth_m)
            field = ShiftField.between(before, after)
            energies.append(field.energy())
            flow_counts.append(len(major_flows(field)))
            peak_gain = max(peak_gain, field.peak_gain()[2])
            peak_loss = min(peak_loss, field.peak_loss()[2])
        results.append(
            GranularityResult(
                resolution=resolution,
                n_window_pairs=len(pairs),
                mean_energy=float(np.mean(energies)),
                mean_flows=float(np.mean(flow_counts)),
                peak_gain=float(peak_gain),
                peak_loss=float(peak_loss),
            )
        )
    return results


def quantile_sweep(
    db: EnergyDatabase,
    t1: HourWindow,
    t2: HourWindow,
    quantiles: tuple[float, ...] = (0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9),
    spec: GridSpec | None = None,
    bandwidth_m: float | None = None,
) -> list[QuantileResult]:
    """Shift statistics per consumption-intensity group (S2 step 2).

    For each quantile ``q``, the map is restricted to customers whose total
    demand over ``t1 ∪ t2`` is at or above the population's ``q``-quantile
    — "select different customer groups according to the consumption
    intensity".

    Raises
    ------
    ValueError
        For quantiles outside [0, 1).
    """
    for q in quantiles:
        if not 0.0 <= q < 1.0:
            raise ValueError(f"quantiles must be in [0, 1), got {q}")
    if spec is None:
        spec = GridSpec.covering(db.positions_of(db.customer_ids))
    all_ids = [int(cid) for cid in db.readings.customer_ids]
    span = HourWindow(
        min(t1.start_hour, t2.start_hour), max(t1.end_hour, t2.end_hour)
    )
    _, totals = db.demand(span, all_ids, statistic="sum")
    results: list[QuantileResult] = []
    for q in quantiles:
        threshold = float(np.quantile(totals, q))
        selected = [cid for cid, v in zip(all_ids, totals) if v >= threshold]
        if len(selected) < 2:
            results.append(
                QuantileResult(
                    quantile=q,
                    n_customers=len(selected),
                    energy=float("nan"),
                    n_flows=0,
                    main_flow=None,
                )
            )
            continue
        field = _shift_between(db, spec, t1, t2, selected, bandwidth_m=bandwidth_m)
        flows = major_flows(field)
        results.append(
            QuantileResult(
                quantile=q,
                n_customers=len(selected),
                energy=field.energy(),
                n_flows=len(flows),
                main_flow=flows[0] if flows else None,
            )
        )
    return results


def quantile_sweep_from_rollups(
    store: RollupStore,
    t1: HourWindow,
    t2: HourWindow,
    quantiles: tuple[float, ...] = (0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9),
    bandwidth_m: float | None = None,
) -> list[QuantileResult]:
    """The intensity sweep answered from materialized rollups.

    Mirrors :func:`quantile_sweep`: per-customer totals over ``t1 ∪ t2``
    come from the hourly rollup instead of the raw matrix, each group's
    fields from cached kernel factors.  ``bandwidth_m=None`` applies
    Silverman's rule *per selected subset*, exactly as the raw path does.

    Raises
    ------
    ValueError
        For quantiles outside [0, 1).
    RollupMiss
        If the hourly rollup does not cover ``t1 ∪ t2``.
    """
    for q in quantiles:
        if not 0.0 <= q < 1.0:
            raise ValueError(f"quantiles must be in [0, 1), got {q}")
    span = HourWindow(
        min(t1.start_hour, t2.start_hour), max(t1.end_hour, t2.end_hour)
    )
    totals = store.window_demand(span, statistic="sum")
    results: list[QuantileResult] = []
    for q in quantiles:
        threshold = float(np.quantile(totals, q))
        selected = np.flatnonzero(totals >= threshold)
        if selected.size < 2:
            results.append(
                QuantileResult(
                    quantile=q,
                    n_customers=int(selected.size),
                    energy=float("nan"),
                    n_flows=0,
                    main_flow=None,
                )
            )
            continue
        before = store.window_field(t1, rows=selected, bandwidth_m=bandwidth_m)
        after = store.window_field(t2, rows=selected, bandwidth_m=bandwidth_m)
        field = ShiftField.between(before, after)
        flows = major_flows(field)
        results.append(
            QuantileResult(
                quantile=q,
                n_customers=int(selected.size),
                energy=field.energy(),
                n_flows=len(flows),
                main_flow=flows[0] if flows else None,
            )
        )
    return results
