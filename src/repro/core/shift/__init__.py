"""Spatio-temporal shift-pattern discovery (paper Section 2.1, Figure 2).

Pipeline: per-customer demand in two windows → weighted Gaussian KDE on a
geographic grid (Eq. 3) → density difference (Eq. 4) → flow arrows from
losing areas toward gaining areas → (optionally) origin-destination
smoothing.  The S2 sensitivity sweeps vary temporal granularity and the
consumption-intensity quantile.
"""

from repro.core.shift.flow import FlowArrow, ShiftField, flow_vectors, major_flows
from repro.core.shift.grids import DensityGrid, GridSpec
from repro.core.shift.kde import bandwidth_silverman, kde_density
from repro.core.shift.odflow import smooth_od_flows
from repro.core.shift.sensitivity import (
    GranularityResult,
    QuantileResult,
    granularity_sweep,
    quantile_sweep,
)

__all__ = [
    "DensityGrid",
    "FlowArrow",
    "GranularityResult",
    "GridSpec",
    "QuantileResult",
    "ShiftField",
    "bandwidth_silverman",
    "flow_vectors",
    "granularity_sweep",
    "kde_density",
    "major_flows",
    "quantile_sweep",
    "smooth_od_flows",
]
