"""Geographic evaluation grids for the density and shift maps.

A :class:`GridSpec` fixes the geographic extent and resolution once so the
two density maps of Eq. 4 are guaranteed to be evaluated on identical cells
(subtracting grids with different extents would be meaningless).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.db.spatial import BBox


@dataclass(frozen=True, slots=True)
class GridSpec:
    """Extent and resolution of a density evaluation grid.

    ``nx`` cells across longitude, ``ny`` across latitude; cell centres are
    used as evaluation points.
    """

    bbox: BBox
    nx: int = 96
    ny: int = 96

    def __post_init__(self) -> None:
        if self.nx < 2 or self.ny < 2:
            raise ValueError(f"grid must be at least 2x2, got {self.nx}x{self.ny}")
        if self.bbox.width <= 0 or self.bbox.height <= 0:
            raise ValueError("grid bbox must have positive extent")

    @property
    def cell_width(self) -> float:
        return self.bbox.width / self.nx

    @property
    def cell_height(self) -> float:
        return self.bbox.height / self.ny

    def lon_centers(self) -> np.ndarray:
        """Longitudes of cell centres, ascending, length ``nx``."""
        return self.bbox.min_lon + (np.arange(self.nx) + 0.5) * self.cell_width

    def lat_centers(self) -> np.ndarray:
        """Latitudes of cell centres, ascending, length ``ny``."""
        return self.bbox.min_lat + (np.arange(self.ny) + 0.5) * self.cell_height

    def mesh(self) -> tuple[np.ndarray, np.ndarray]:
        """``(lons, lats)`` arrays of shape ``(ny, nx)`` for all centres."""
        return np.meshgrid(self.lon_centers(), self.lat_centers())

    def cell_of(self, lon: float, lat: float) -> tuple[int, int]:
        """``(row, col)`` of the cell containing a point, clipped to bounds."""
        col = int((lon - self.bbox.min_lon) / self.cell_width)
        row = int((lat - self.bbox.min_lat) / self.cell_height)
        return (
            int(np.clip(row, 0, self.ny - 1)),
            int(np.clip(col, 0, self.nx - 1)),
        )

    @classmethod
    def covering(
        cls, positions: np.ndarray, nx: int = 96, ny: int = 96, margin: float = 0.15
    ) -> "GridSpec":
        """Grid covering a point set with a relative margin on each side.

        Raises
        ------
        ValueError
            If fewer than one position is given.
        """
        positions = np.asarray(positions, dtype=np.float64)
        if positions.ndim != 2 or positions.shape[1] != 2 or positions.shape[0] == 0:
            raise ValueError(
                f"positions must be a non-empty (n, 2) array, got {positions.shape}"
            )
        box = BBox.from_points(positions[:, 0], positions[:, 1])
        pad_lon = max(box.width * margin, 1e-4)
        pad_lat = max(box.height * margin, 1e-4)
        return cls(
            bbox=BBox(
                box.min_lon - pad_lon,
                box.min_lat - pad_lat,
                box.max_lon + pad_lon,
                box.max_lat + pad_lat,
            ),
            nx=nx,
            ny=ny,
        )


@dataclass(slots=True)
class DensityGrid:
    """A density surface evaluated on a :class:`GridSpec`.

    ``values[row, col]`` is the density at the cell centre with latitude row
    ``row`` (south→north) and longitude column ``col`` (west→east).
    """

    spec: GridSpec
    values: np.ndarray

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=np.float64)
        if self.values.shape != (self.spec.ny, self.spec.nx):
            raise ValueError(
                f"values shape {self.values.shape} does not match grid "
                f"({self.spec.ny}, {self.spec.nx})"
            )

    def total_mass(self) -> float:
        """Density integrated over the grid extent.

        Densities from :func:`repro.core.shift.kde.kde_density` are per
        square metre, so cell areas are converted to metres at the grid
        centre; for a grid that covers the kernels' support this is ~1.
        """
        from repro.db.geo import meters_per_degree  # local: avoid cycle

        m_per_lon, m_per_lat = meters_per_degree(self.spec.bbox.center.lat)
        cell_area = (self.spec.cell_width * m_per_lon) * (
            self.spec.cell_height * m_per_lat
        )
        return float(self.values.sum() * cell_area)

    def max_cell(self) -> tuple[float, float, float]:
        """``(lon, lat, value)`` of the hottest cell."""
        row, col = np.unravel_index(int(np.argmax(self.values)), self.values.shape)
        return (
            float(self.spec.lon_centers()[col]),
            float(self.spec.lat_centers()[row]),
            float(self.values[row, col]),
        )

    def value_at(self, lon: float, lat: float) -> float:
        """Density of the cell containing a point."""
        row, col = self.spec.cell_of(lon, lat)
        return float(self.values[row, col])
