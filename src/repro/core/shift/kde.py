"""Weighted 2-D Gaussian kernel density estimation — the paper's Eq. 3.

    f(x) = (1/n) * sum_i c_i * K_h(x - x_i)

with ``x_i`` customer positions, ``c_i`` normalised average consumption
(re-weighting demand strength over geography) and a Gaussian kernel, the
paper's choice "since [it] can cover a larger spatial area ... with lower
computation complexity".

Distances are computed in a local planar frame (metres via the latitude-
dependent degree scale) so the bandwidth has physical meaning and the
north-south vs east-west distortion of raw degrees is corrected — what
PostGIS geography types would give the paper's implementation.

Two evaluation engines share the planar frame:

- ``method="exact"`` — every point against every grid centre,
  O(n * grid), the ground truth;
- ``method="binned"`` — cubic B-spline binning of the weighted points
  onto the grid lattice followed by a truncated separable Gaussian
  convolution, O(n + grid * kernel).  Binning smears each point with
  the ``B_3`` kernel (variance ``step^2/3`` per axis); the convolution
  kernel compensates for that smear exactly through fourth order, so
  the binned surface matches the exact one to ~1e-4 relative even at
  bandwidths of only a couple of cells.

``method="auto"`` picks the binned engine for large point sets when the
bandwidth is comfortably wider than a grid cell.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro import obs
from repro.core.shift.grids import DensityGrid, GridSpec
from repro.db.geo import meters_per_degree
from repro.resilience.faults import fault_point

KDE_METHODS = ("auto", "exact", "binned")


def _resolve_dtype(dtype: str | None) -> np.dtype:
    """Map the public ``dtype=`` knob to a numpy dtype (default float64).

    ``"float32"`` halves the memory bandwidth of the exact engine's
    (grid, n) exponential factor matrices; every accumulation (the
    weighted matmul, the binned engine's scatter) still runs in float64,
    keeping the surface within ~1e-5 relative of the float64 path.
    """
    if dtype is None:
        return np.dtype(np.float64)
    dt = np.dtype(dtype)
    if dt not in (np.dtype(np.float32), np.dtype(np.float64)):
        raise ValueError(f"dtype must be float32 or float64, got {dtype!r}")
    return dt

# ``method="auto"`` switches to the binned engine at this many points —
# below it the dense (grid, n) factor matrices are cheap enough that the
# binning machinery is pure overhead.
BINNED_THRESHOLD = 5000


def bandwidth_silverman(positions_m: np.ndarray) -> float:
    """Silverman's rule of thumb for 2-D data, in metres.

    ``h = n^(-1/6) * sqrt((var_x + var_y) / 2)`` — the standard default when
    the user has not chosen a bandwidth interactively.
    """
    n = positions_m.shape[0]
    if n < 2:
        raise ValueError(f"need at least 2 points for a bandwidth rule, got {n}")
    var = positions_m.var(axis=0).mean()
    if var == 0:
        return 1.0  # all points coincide; any positive bandwidth works
    return float(np.sqrt(var) * n ** (-1.0 / 6.0))


def planar_frame(
    positions: np.ndarray, spec: GridSpec
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """The local planar frame shared by every KDE engine.

    Returns ``(px, py, gx, gy)`` — point and grid-centre coordinates in
    metres relative to the grid centre.  The rollup layer's accumulators
    must agree bit-for-bit with :func:`kde_density` on this frame, which
    is why it is one function rather than two copies of the same
    arithmetic.
    """
    positions = np.asarray(positions, dtype=np.float64)
    center_lat = spec.bbox.center.lat
    m_per_lon, m_per_lat = meters_per_degree(center_lat)
    px = (positions[:, 0] - spec.bbox.center.lon) * m_per_lon
    py = (positions[:, 1] - center_lat) * m_per_lat
    gx = (spec.lon_centers() - spec.bbox.center.lon) * m_per_lon
    gy = (spec.lat_centers() - center_lat) * m_per_lat
    return px, py, gx, gy


def normalize_weights(values: np.ndarray) -> np.ndarray:
    """The paper's ``c_i``: average consumption scaled to sum to n.

    Scaling to *sum n* (not 1) keeps Eq. 3's ``1/n`` prefactor meaningful:
    uniform consumption reproduces the unweighted KDE exactly.  Negative
    inputs are clipped to zero (consumption cannot be negative); an all-zero
    vector falls back to uniform weights.
    """
    values = np.clip(np.asarray(values, dtype=np.float64), 0.0, None)
    total = values.sum()
    if total <= 0:
        return np.ones_like(values)
    with np.errstate(over="ignore", invalid="ignore"):
        out = values * (values.size / total)
    # A subnormal total can overflow the rescale; weights that small carry
    # no usable demand signal, so fall back to uniform.
    if not np.isfinite(out).all():
        return np.ones_like(values)
    return out


def _exact_values(
    px: np.ndarray,
    py: np.ndarray,
    c: np.ndarray,
    gx: np.ndarray,
    gy: np.ndarray,
    bandwidth_m: float,
    dtype: np.dtype = np.dtype(np.float64),
) -> np.ndarray:
    """Dense Eq. 3: every point against every grid centre (ground truth).

    Separable Gaussian: exp(-(dx^2+dy^2)/2h^2) = exp(-dx^2/2h^2)*exp(-dy^2/2h^2)
    lets the (ny, nx) surface come from two (grid, n) factor matrices.
    The factor matrices are built in ``dtype``; the weighted matmul
    promotes to float64 (``c`` stays float64), so accumulation precision
    is unchanged by the knob.
    """
    n = px.shape[0]
    inv = 1.0 / (2.0 * bandwidth_m**2)
    gxd, pxd = gx.astype(dtype, copy=False), px.astype(dtype, copy=False)
    gyd, pyd = gy.astype(dtype, copy=False), py.astype(dtype, copy=False)
    fx = np.exp(-inv * (gxd[:, None] - pxd[None, :]) ** 2)  # (nx, n)
    fy = np.exp(-inv * (gyd[:, None] - pyd[None, :]) ** 2)  # (ny, n)
    norm = 1.0 / (n * 2.0 * np.pi * bandwidth_m**2)
    return norm * (fy * c[None, :]) @ fx.T  # (ny, nx)


def _deconvolved_kernel(r: int, step: float, var: float) -> np.ndarray:
    """1-D convolution kernel that undoes the B-spline binning smear.

    Cubic B-spline binning convolves the data with the ``B_3`` kernel
    (variance ``step^2/3``, 4th cumulant ``-step^4/30``); the Gaussian
    evaluated at the reduced variance cancels the smear to second order,
    and the Hermite-4 term cancels the kurtosis mismatch at fourth order.
    """
    x = np.arange(-r, r + 1) * step
    gauss = np.exp(-(x**2) / (2.0 * var))
    u2 = x**2 / var
    hermite4 = u2 * u2 - 6.0 * u2 + 3.0
    return gauss * (1.0 + step**4 / (720.0 * var * var) * hermite4)


def _bspline3_weights(f: np.ndarray) -> tuple[np.ndarray, ...]:
    """Cubic B-spline weights for the 4 lattice nodes around offset ``f``.

    ``f`` in [0, 1) is the fractional position past node ``i0``; returns
    weights for nodes ``i0-1, i0, i0+1, i0+2`` (partition of unity).  The
    cubic spline is preferred over linear cloud-in-cell because its
    spectrum decays as ``omega^-4``: the phase-dependent per-point
    aliasing error that dominates linear binning at small bandwidths drops
    from O((cell/h)^2) to O((cell/h)^4).
    """
    one_f = 1.0 - f
    return (
        one_f**3 / 6.0,
        2.0 / 3.0 - f**2 + f**3 / 2.0,
        2.0 / 3.0 - one_f**2 + one_f**3 / 2.0,
        f**3 / 6.0,
    )


def _binned_values(
    px: np.ndarray,
    py: np.ndarray,
    c: np.ndarray,
    gx: np.ndarray,
    gy: np.ndarray,
    bandwidth_m: float,
    dtype: np.dtype = np.dtype(np.float64),
) -> np.ndarray:
    """B-spline binning + truncated separable convolution, O(n + grid*kernel).

    The lattice is padded by the kernel truncation radius on every side so
    mass from points just outside the reported grid still flows in; points
    beyond even the padded lattice are farther than ~5h from every reported
    cell and are dropped (their contribution is below the truncation error
    already accepted).  The convolution kernel's per-axis variance is
    ``h^2 - step^2/3``, undoing the B-spline smear (see
    :func:`_deconvolved_kernel` and :func:`_bspline3_weights`).
    """
    n = px.shape[0]
    step_x = float(gx[1] - gx[0])
    step_y = float(gy[1] - gy[0])
    var_x = bandwidth_m**2 - step_x**2 / 3.0
    var_y = bandwidth_m**2 - step_y**2 / 3.0
    if var_x <= 0 or var_y <= 0:
        raise ValueError(
            f"binned KDE needs bandwidth_m > cell/sqrt(3) "
            f"(bandwidth {bandwidth_m:.3g} m vs cells {step_x:.3g} x {step_y:.3g} m); "
            "use method='exact' or a coarser bandwidth/finer grid"
        )
    # 5-sigma truncation: exp(-12.5) ~ 4e-6 per tail, safely below the
    # 1e-3 parity budget even when many points sit near the cut.
    rx = int(np.ceil(5.0 * bandwidth_m / step_x)) + 2
    ry = int(np.ceil(5.0 * bandwidth_m / step_y)) + 2
    nxp = gx.size + 2 * rx
    nyp = gy.size + 2 * ry

    # Each point spreads its weight over the 4x4 surrounding lattice nodes
    # with cubic B-spline weights, scattered via bincount on flat indices.
    u = (px - gx[0]) / step_x + rx
    v = (py - gy[0]) / step_y + ry
    i0 = np.floor(u).astype(np.int64)
    j0 = np.floor(v).astype(np.int64)
    ok = (i0 >= 1) & (i0 < nxp - 2) & (j0 >= 1) & (j0 < nyp - 2)
    if not ok.all():
        u, v, i0, j0, cw = u[ok], v[ok], i0[ok], j0[ok], c[ok]
    else:
        cw = c
    # Per-point spline weights in the compute dtype; the bincount
    # scatter below always accumulates in float64.
    wx = _bspline3_weights((u - i0).astype(dtype, copy=False))
    wy = _bspline3_weights((v - j0).astype(dtype, copy=False))
    flat = j0 * nxp + i0
    size = nxp * nyp
    grid = np.zeros(size)
    for dy, wyd in enumerate(wy, start=-1):
        row_weight = cw * wyd
        base = flat + dy * nxp
        for dx, wxd in enumerate(wx, start=-1):
            grid += np.bincount(
                base + dx, weights=row_weight * wxd, minlength=size
            )
    grid = grid.reshape(nyp, nxp)

    kx = _deconvolved_kernel(rx, step_x, var_x)
    ky = _deconvolved_kernel(ry, step_y, var_y)
    rows = sliding_window_view(grid, 2 * rx + 1, axis=1) @ kx  # (nyp, nx)
    values = sliding_window_view(rows, 2 * ry + 1, axis=0) @ ky  # (ny, nx)
    # n counts every input point, dropped ones included — Eq. 3's 1/n.
    norm = 1.0 / (n * 2.0 * np.pi * np.sqrt(var_x * var_y))
    return norm * values


def kde_density(
    positions: np.ndarray,
    weights: np.ndarray | None,
    spec: GridSpec,
    bandwidth_m: float | None = None,
    method: str = "auto",
    dtype: str | None = None,
) -> DensityGrid:
    """Evaluate Eq. 3 on the grid.

    Parameters
    ----------
    positions:
        ``(n, 2)`` customer (lon, lat).
    weights:
        Per-customer average consumption (``c_i`` before normalisation), or
        ``None`` for the unweighted KDE.
    spec:
        Evaluation grid — share one spec between the ``t1`` and ``t2`` maps.
    bandwidth_m:
        Gaussian bandwidth in metres; Silverman's rule when omitted.
    method:
        ``"exact"``, ``"binned"``, or ``"auto"`` (binned for large n when
        the bandwidth spans at least ~2 grid cells, exact otherwise).
    dtype:
        ``"float32"`` computes the per-point factors in single precision
        (float64 accumulators; ~1e-5 relative parity); default float64.

    Returns a density in points-mass per square metre; with weights summing
    to n the surface integrates (over the infinite plane) to 1.

    Raises
    ------
    ValueError
        On malformed inputs, an unknown ``method``, a non-positive or
        non-finite bandwidth (NaN/inf would silently poison every grid
        cell), or ``method="binned"`` with a bandwidth too narrow for the
        grid to represent.
    """
    fault_point("kernel.kde")
    if method not in KDE_METHODS:
        raise ValueError(f"method must be one of {KDE_METHODS}, got {method!r}")
    compute_dtype = _resolve_dtype(dtype)
    positions = np.asarray(positions, dtype=np.float64)
    if positions.ndim != 2 or positions.shape[1] != 2:
        raise ValueError(f"positions must be (n, 2), got {positions.shape}")
    n = positions.shape[0]
    if n == 0:
        raise ValueError("cannot estimate a density from zero points")
    if weights is None:
        c = np.ones(n)
    else:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (n,):
            raise ValueError(
                f"weights shape {weights.shape} does not match {n} positions"
            )
        if not np.isfinite(weights).all():
            raise ValueError("weights contain NaN/inf")
        c = normalize_weights(weights)

    # Local planar frame centred on the grid.
    px, py, gx, gy = planar_frame(positions, spec)
    if bandwidth_m is None:
        bandwidth_m = bandwidth_silverman(np.column_stack([px, py]))
    else:
        bandwidth_m = float(bandwidth_m)
    if not np.isfinite(bandwidth_m) or bandwidth_m <= 0:
        raise ValueError(
            f"bandwidth_m must be a positive finite number, got {bandwidth_m}"
        )

    engine = method
    if engine == "auto":
        wide_enough = bandwidth_m >= 2.0 * max(
            float(gx[1] - gx[0]), float(gy[1] - gy[0])
        )
        engine = "binned" if (n >= BINNED_THRESHOLD and wide_enough) else "exact"

    registry = obs.get_registry()
    with obs.span("kernel.kde", n_points=n, nx=spec.nx, ny=spec.ny, method=engine):
        with registry.timer("kernel_runtime_seconds", kernel="kde"):
            if engine == "binned":
                values = _binned_values(
                    px, py, c, gx, gy, bandwidth_m, dtype=compute_dtype
                )
            else:
                values = _exact_values(
                    px, py, c, gx, gy, bandwidth_m, dtype=compute_dtype
                )
    registry.counter("kernel_runs_total", kernel="kde").inc()
    registry.counter("kernel_method_total", kernel="kde", method=engine).inc()
    registry.gauge("kernel_last_bandwidth_m", kernel="kde").set(bandwidth_m)
    return DensityGrid(spec=spec, values=values)
