"""Weighted 2-D Gaussian kernel density estimation — the paper's Eq. 3.

    f(x) = (1/n) * sum_i c_i * K_h(x - x_i)

with ``x_i`` customer positions, ``c_i`` normalised average consumption
(re-weighting demand strength over geography) and a Gaussian kernel, the
paper's choice "since [it] can cover a larger spatial area ... with lower
computation complexity".

Distances are computed in a local planar frame (metres via the latitude-
dependent degree scale) so the bandwidth has physical meaning and the
north-south vs east-west distortion of raw degrees is corrected — what
PostGIS geography types would give the paper's implementation.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.core.shift.grids import DensityGrid, GridSpec
from repro.db.geo import meters_per_degree


def bandwidth_silverman(positions_m: np.ndarray) -> float:
    """Silverman's rule of thumb for 2-D data, in metres.

    ``h = n^(-1/6) * sqrt((var_x + var_y) / 2)`` — the standard default when
    the user has not chosen a bandwidth interactively.
    """
    n = positions_m.shape[0]
    if n < 2:
        raise ValueError(f"need at least 2 points for a bandwidth rule, got {n}")
    var = positions_m.var(axis=0).mean()
    if var == 0:
        return 1.0  # all points coincide; any positive bandwidth works
    return float(np.sqrt(var) * n ** (-1.0 / 6.0))


def normalize_weights(values: np.ndarray) -> np.ndarray:
    """The paper's ``c_i``: average consumption scaled to sum to n.

    Scaling to *sum n* (not 1) keeps Eq. 3's ``1/n`` prefactor meaningful:
    uniform consumption reproduces the unweighted KDE exactly.  Negative
    inputs are clipped to zero (consumption cannot be negative); an all-zero
    vector falls back to uniform weights.
    """
    values = np.clip(np.asarray(values, dtype=np.float64), 0.0, None)
    total = values.sum()
    if total <= 0:
        return np.ones_like(values)
    with np.errstate(over="ignore", invalid="ignore"):
        out = values * (values.size / total)
    # A subnormal total can overflow the rescale; weights that small carry
    # no usable demand signal, so fall back to uniform.
    if not np.isfinite(out).all():
        return np.ones_like(values)
    return out


def kde_density(
    positions: np.ndarray,
    weights: np.ndarray | None,
    spec: GridSpec,
    bandwidth_m: float | None = None,
) -> DensityGrid:
    """Evaluate Eq. 3 on the grid.

    Parameters
    ----------
    positions:
        ``(n, 2)`` customer (lon, lat).
    weights:
        Per-customer average consumption (``c_i`` before normalisation), or
        ``None`` for the unweighted KDE.
    spec:
        Evaluation grid — share one spec between the ``t1`` and ``t2`` maps.
    bandwidth_m:
        Gaussian bandwidth in metres; Silverman's rule when omitted.

    Returns a density in points-mass per square metre; with weights summing
    to n the surface integrates (over the infinite plane) to 1.

    Raises
    ------
    ValueError
        On malformed inputs or a non-positive or non-finite bandwidth
        (NaN/inf would silently poison every grid cell).
    """
    positions = np.asarray(positions, dtype=np.float64)
    if positions.ndim != 2 or positions.shape[1] != 2:
        raise ValueError(f"positions must be (n, 2), got {positions.shape}")
    n = positions.shape[0]
    if n == 0:
        raise ValueError("cannot estimate a density from zero points")
    if weights is None:
        c = np.ones(n)
    else:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (n,):
            raise ValueError(
                f"weights shape {weights.shape} does not match {n} positions"
            )
        if not np.isfinite(weights).all():
            raise ValueError("weights contain NaN/inf")
        c = normalize_weights(weights)

    # Local planar frame centred on the grid.
    center_lat = spec.bbox.center.lat
    m_per_lon, m_per_lat = meters_per_degree(center_lat)
    px = (positions[:, 0] - spec.bbox.center.lon) * m_per_lon
    py = (positions[:, 1] - center_lat) * m_per_lat
    if bandwidth_m is None:
        bandwidth_m = bandwidth_silverman(np.column_stack([px, py]))
    else:
        bandwidth_m = float(bandwidth_m)
    if not np.isfinite(bandwidth_m) or bandwidth_m <= 0:
        raise ValueError(
            f"bandwidth_m must be a positive finite number, got {bandwidth_m}"
        )

    gx = (spec.lon_centers() - spec.bbox.center.lon) * m_per_lon
    gy = (spec.lat_centers() - center_lat) * m_per_lat

    # Separable Gaussian: exp(-(dx^2+dy^2)/2h^2) = exp(-dx^2/2h^2)*exp(-dy^2/2h^2)
    # lets the (ny, nx) surface come from two (grid, n) factor matrices.
    with obs.span("kernel.kde", n_points=n, nx=spec.nx, ny=spec.ny):
        inv = 1.0 / (2.0 * bandwidth_m**2)
        fx = np.exp(-inv * (gx[:, None] - px[None, :]) ** 2)  # (nx, n)
        fy = np.exp(-inv * (gy[:, None] - py[None, :]) ** 2)  # (ny, n)
        norm = 1.0 / (n * 2.0 * np.pi * bandwidth_m**2)
        values = norm * (fy * c[None, :]) @ fx.T  # (ny, nx)
    registry = obs.get_registry()
    registry.counter("kernel_runs_total", kernel="kde").inc()
    registry.gauge("kernel_last_bandwidth_m", kernel="kde").set(bandwidth_m)
    return DensityGrid(spec=spec, values=values)
