"""Per-request deadlines for the heavy kernel paths.

A :class:`Deadline` is a wall-clock budget the serving layer attaches to
a request (see ``BackpressureMiddleware``); the logic layer checks it
before launching an expensive kernel and bounds single-flight waits by
the remaining budget.  The binding travels in a :class:`~contextvars.
ContextVar`, so it follows the request through nested calls without any
plumbing — the same mechanism the request-ID correlation uses.

An exceeded deadline raises :class:`DeadlineExceeded`, which the API
layer maps to ``503`` + ``Retry-After`` (graceful degradation instead of
queueing work nobody is waiting for anymore).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Callable, Iterator


class DeadlineExceeded(Exception):
    """The request's time budget ran out before the operation finished."""


class Deadline:
    """An absolute expiry instant on an injectable monotonic clock."""

    __slots__ = ("expires_at", "clock")

    def __init__(
        self, seconds: float, clock: Callable[[], float] = time.monotonic
    ) -> None:
        if not seconds > 0:
            raise ValueError(f"deadline must be positive seconds, got {seconds}")
        self.clock = clock
        self.expires_at = clock() + seconds

    def remaining(self) -> float:
        """Seconds left; negative once expired."""
        return self.expires_at - self.clock()

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0

    def check(self, what: str = "operation") -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent."""
        if self.expired:
            raise DeadlineExceeded(f"request deadline exceeded before {what}")


_current: ContextVar[Deadline | None] = ContextVar("repro_deadline", default=None)


def current_deadline() -> Deadline | None:
    """The deadline bound to the current context, if any."""
    return _current.get()


@contextmanager
def bind_deadline(deadline: Deadline | None) -> Iterator[Deadline | None]:
    """Bind a deadline (or explicitly none) for the duration of a block."""
    token = _current.set(deadline)
    try:
        yield deadline
    finally:
        _current.reset(token)
