"""The paper's five typical patterns as analytic templates.

Figure 3 of the paper names five discovered patterns — *bimodal*,
*energy-saving*, *idle*, *constant high* and *suspicious* — and the demo's
S1 question singles out the *early birds* (05:00-07:00 morning peak).  Each
is encoded here as a :class:`CanonicalPattern`: an idealised normalised
daily profile, an idealised monthly (seasonal) profile, coarse level bounds
and the interpretation text an analyst would attach.

Templates are deliberately *independent of the data generator's* shapes —
they describe the published interpretation, not the synthesis code — so
template matching in :mod:`repro.core.patterns.labeling` is a genuine
recovery test rather than a tautology.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.meter import CustomerType


def _unit(values: list[float] | np.ndarray) -> np.ndarray:
    """Normalise a template to zero mean, unit norm (correlation-ready)."""
    arr = np.asarray(values, dtype=np.float64)
    arr = arr - arr.mean()
    norm = float(np.linalg.norm(arr))
    if norm == 0:
        return arr
    return arr / norm


@dataclass(frozen=True)
class CanonicalPattern:
    """One typical pattern with its matching signature.

    Attributes
    ----------
    archetype:
        The :class:`~repro.data.meter.CustomerType` the pattern names.
    title / interpretation:
        The label and reading the paper's demo narration gives.
    day_template:
        24-value idealised hour-of-day shape (zero-mean, unit norm), or
        ``None`` when the pattern is not defined by its diurnal shape.
    month_template:
        12-value idealised month-of-year shape, or ``None``.
    level_band:
        ``(low, high)`` bounds on mean hourly kWh as *population quantiles*
        (0-1): e.g. idle lives in the bottom decile, constant-high in the
        top quintile.
    flatness_max:
        Upper bound on the coefficient of variation of the day profile for
        "flat" patterns, or ``None``.
    """

    archetype: CustomerType
    title: str
    interpretation: str
    day_template: np.ndarray | None
    month_template: np.ndarray | None
    level_band: tuple[float, float]
    flatness_max: float | None = None


def _residential_day(morning: float, evening: float, early: float = 0.0) -> np.ndarray:
    """Helper building a 24 h shape from morning/evening/early-bird weights."""
    hours = np.arange(24, dtype=np.float64)

    def bump(center: float, width: float) -> np.ndarray:
        delta = np.minimum(np.abs(hours - center), 24 - np.abs(hours - center))
        return np.exp(-0.5 * (delta / width) ** 2)

    return (
        0.2
        + early * bump(6.0, 1.0)
        + morning * bump(7.5, 1.5)
        + evening * bump(19.5, 2.2)
    )


#: Winter+summer double hump: electric heating (Dec-Feb) and cooling (Jun-Aug).
_BIMODAL_MONTHS = [1.0, 0.9, 0.6, 0.35, 0.25, 0.5, 0.7, 0.65, 0.3, 0.4, 0.7, 0.95]
#: Mild winter-only seasonality for ordinary homes.
_FLATISH_MONTHS = [0.55, 0.5, 0.45, 0.4, 0.35, 0.35, 0.35, 0.35, 0.4, 0.45, 0.5, 0.55]

CANONICAL_PATTERNS: tuple[CanonicalPattern, ...] = (
    CanonicalPattern(
        archetype=CustomerType.BIMODAL,
        title="Bimodal pattern",
        interpretation=(
            "A peak in winter and summer respectively, likely caused by "
            "electrical heating and cooling appliances."
        ),
        day_template=_unit(_residential_day(morning=0.5, evening=1.0)),
        month_template=_unit(_BIMODAL_MONTHS),
        level_band=(0.35, 1.0),
    ),
    CanonicalPattern(
        archetype=CustomerType.ENERGY_SAVING,
        title="Energy-saving pattern",
        interpretation=(
            "Consistently low consumption with a small evening presence — "
            "an energy-conscious household or an efficient dwelling."
        ),
        day_template=_unit(_residential_day(morning=0.15, evening=0.5)),
        month_template=_unit(_FLATISH_MONTHS),
        level_band=(0.08, 0.45),
    ),
    CanonicalPattern(
        archetype=CustomerType.IDLE,
        title="Idle pattern",
        interpretation=(
            "Near-zero baseline consumption — a vacant or rarely used "
            "premise."
        ),
        day_template=None,
        month_template=None,
        level_band=(0.0, 0.08),
    ),
    CanonicalPattern(
        archetype=CustomerType.CONSTANT_HIGH,
        title="Constant high pattern",
        interpretation=(
            "High, nearly flat around-the-clock consumption — refrigeration, "
            "server rooms or other continuously running equipment."
        ),
        day_template=None,
        month_template=None,
        level_band=(0.75, 1.0),
        flatness_max=0.35,
    ),
    CanonicalPattern(
        archetype=CustomerType.SUSPICIOUS,
        title="Suspicious pattern",
        interpretation=(
            "Erratic spikes, sudden level shifts or implausible outage runs — "
            "possible meter tampering or faults worth inspection."
        ),
        day_template=None,
        month_template=None,
        level_band=(0.0, 1.0),
    ),
    CanonicalPattern(
        archetype=CustomerType.EARLY_BIRD,
        title="Early-bird pattern",
        interpretation=(
            "A pronounced morning peak between 05:00 and 07:00 — households "
            "that rise early; the S1 demo question."
        ),
        day_template=_unit(_residential_day(morning=0.2, evening=0.35, early=1.4)),
        month_template=None,
        level_band=(0.2, 0.95),
    ),
)

#: Lookup by archetype.
PATTERN_BY_ARCHETYPE: dict[CustomerType, CanonicalPattern] = {
    p.archetype: p for p in CANONICAL_PATTERNS
}


def day_correlation(day_profile: np.ndarray, pattern: CanonicalPattern) -> float:
    """Pearson correlation of a 24 h profile with the pattern's template.

    Returns 0 for templates that do not constrain the diurnal shape.
    """
    if pattern.day_template is None:
        return 0.0
    profile = np.asarray(day_profile, dtype=np.float64)
    if profile.shape != (24,):
        raise ValueError(f"day profile must have 24 values, got {profile.shape}")
    unit = _unit(profile)
    if not unit.any():
        return 0.0
    return float(unit @ pattern.day_template)


def month_correlation(month_profile: np.ndarray, pattern: CanonicalPattern) -> float:
    """Pearson correlation of a 12-month profile with the pattern's template.

    Returns 0 for templates without a seasonal signature.  Accepts profiles
    shorter than 12 months (sub-year data) by comparing the covered prefix.
    """
    if pattern.month_template is None:
        return 0.0
    profile = np.asarray(month_profile, dtype=np.float64)
    if profile.ndim != 1 or profile.size < 3:
        return 0.0
    k = min(12, profile.size)
    unit = _unit(profile[:k])
    if not unit.any():
        return 0.0
    template = _unit(pattern.month_template[:k])
    return float(unit @ template)
