"""Typical-pattern discovery (paper Section 2.1, demo scenario S1).

The paper's workflow: reduce series to 2-D, let the analyst select closely
placed points, and interpret each selection as a *typical pattern*.  This
package models every step so the workflow is scriptable and testable:

- :mod:`repro.core.patterns.canonical` — the five patterns of Figure 3 as
  analytic templates with the paper's interpretations;
- :mod:`repro.core.patterns.selection` — the selection gestures view C
  supports (rectangle, lasso, radius, k-nearest), plus a session object
  that accumulates named selections;
- :mod:`repro.core.patterns.labeling` — template matching that plays the
  analyst's role when benchmarks need labels at scale;
- :mod:`repro.core.patterns.transition` — the S1 "pattern transition"
  walk across neighbouring points.
"""

from repro.core.patterns.autodiscover import Proposal, dbscan, propose_selections
from repro.core.patterns.canonical import CANONICAL_PATTERNS, CanonicalPattern
from repro.core.patterns.labeling import PatternLabel, label_customers, label_selection
from repro.core.patterns.selection import (
    KnnSelection,
    LassoSelection,
    RadiusSelection,
    RectSelection,
    SelectionSession,
)
from repro.core.patterns.segmentation import (
    SegmentationReport,
    SegmentStats,
    build_report,
    segment_statistics,
)
from repro.core.patterns.transition import TransitionWalk, transition_walk

__all__ = [
    "CANONICAL_PATTERNS",
    "CanonicalPattern",
    "KnnSelection",
    "LassoSelection",
    "PatternLabel",
    "Proposal",
    "RadiusSelection",
    "RectSelection",
    "SegmentStats",
    "SegmentationReport",
    "SelectionSession",
    "TransitionWalk",
    "build_report",
    "dbscan",
    "label_customers",
    "propose_selections",
    "segment_statistics",
    "label_selection",
    "transition_walk",
]
