"""Template matching: playing the analyst at benchmark scale.

In the demo a human looks at a selection's aggregated curve and names the
pattern.  Benchmarks need that judgement for hundreds of customers, so this
module encodes it: every customer (or selection aggregate) gets a score
against each :class:`~repro.core.patterns.canonical.CanonicalPattern`, built
from interpretable evidence —

- *level*: the customer's mean consumption as a population quantile,
  matched against the pattern's level band;
- *diurnal shape*: correlation of the 24 h mean-day profile with the
  pattern's day template;
- *seasonal shape*: correlation of monthly totals with the month template
  (what makes *bimodal* bimodal);
- *flatness*: coefficient of variation of the day profile (what makes
  *constant high* constant);
- *irregularity*: spike ratio, level-shift ratio and outage runs (what
  makes *suspicious* suspicious).

The classifier never sees generator internals — only the series — so
agreement with ground truth is a meaningful recovery measure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.patterns.canonical import (
    CANONICAL_PATTERNS,
    CanonicalPattern,
    day_correlation,
    month_correlation,
)
from repro.data.meter import CustomerType
from repro.data.timeseries import Resolution, SeriesSet
from repro.preprocess.features import FeatureKind, extract_features
from repro.preprocess.resample import resample


@dataclass(slots=True)
class PatternLabel:
    """Best-matching pattern for one customer or selection."""

    archetype: CustomerType
    score: float
    scores: dict[CustomerType, float]

    def ranked(self) -> list[tuple[CustomerType, float]]:
        """All candidate patterns, best first."""
        return sorted(self.scores.items(), key=lambda kv: kv[1], reverse=True)


def _band_score(value: float, band: tuple[float, float], softness: float = 0.08) -> float:
    """1 inside the band, linear decay to 0 over ``softness`` outside it."""
    low, high = band
    if low <= value <= high:
        return 1.0
    gap = (low - value) if value < low else (value - high)
    return float(np.clip(1.0 - gap / softness, 0.0, 1.0))


@dataclass(slots=True)
class _Evidence:
    """Per-customer evidence vector feeding the pattern scores."""

    level_quantile: float
    day_profile: np.ndarray
    month_profile: np.ndarray
    day_cv: float
    spike_ratio: float
    shift_ratio: float
    outage_fraction: float


def _collect_evidence(series_set: SeriesSet) -> list[_Evidence]:
    matrix = series_set.matrix
    n = series_set.n_customers
    means = series_set.per_customer_mean()
    means = np.where(np.isnan(means), 0.0, means)
    order = means.argsort(kind="stable").argsort(kind="stable")
    quantiles = order / max(n - 1, 1)
    day = extract_features(series_set, FeatureKind.MEAN_DAY)
    try:
        monthly = resample(series_set, Resolution.MONTHLY, aggregate="sum").matrix
    except ValueError:
        monthly = np.zeros((n, 0))
    evidence: list[_Evidence] = []
    for i in range(n):
        row = matrix[i]
        observed = row[~np.isnan(row)]
        if observed.size == 0:
            observed = np.zeros(1)
        median = float(np.median(observed))
        p995 = float(np.quantile(observed, 0.995))
        spike_ratio = p995 / median if median > 0 else 0.0
        half = observed.size // 2
        first = float(observed[:half].mean()) if half else 0.0
        second = float(observed[half:].mean()) if observed.size - half else 0.0
        lo, hi = sorted((first, second))
        shift_ratio = hi / lo if lo > 0 else (1.0 if hi == 0 else 10.0)
        # Outage: hours far below the customer's own typical level.
        threshold = 0.05 * median
        outage_fraction = (
            float((observed < threshold).mean()) if median > 0 else 0.0
        )
        day_i = day[i]
        day_mean = float(day_i.mean())
        day_cv = float(day_i.std() / day_mean) if day_mean > 0 else 0.0
        month_i = monthly[i] if monthly.shape[1] else np.zeros(0)
        month_i = np.where(np.isnan(month_i), 0.0, month_i)
        evidence.append(
            _Evidence(
                level_quantile=float(quantiles[i]),
                day_profile=day_i,
                month_profile=month_i,
                day_cv=day_cv,
                spike_ratio=spike_ratio,
                shift_ratio=shift_ratio,
                outage_fraction=outage_fraction,
            )
        )
    return evidence


def _score_pattern(ev: _Evidence, pattern: CanonicalPattern) -> float:
    """Combine the evidence into one score in [0, 1]."""
    level = _band_score(ev.level_quantile, pattern.level_band)
    kind = pattern.archetype
    if kind is CustomerType.IDLE:
        return level
    if kind is CustomerType.CONSTANT_HIGH:
        assert pattern.flatness_max is not None
        flat = float(np.clip(1.0 - ev.day_cv / pattern.flatness_max, 0.0, 1.0))
        return level * (0.3 + 0.7 * flat)
    if kind is CustomerType.SUSPICIOUS:
        # Thresholds sit just above the honest-population tails: ordinary
        # customers show half-on-half ratios below ~1.15 (even with
        # seasonality) and essentially zero deep-outage hours, while
        # tampering-style series shift by 1.3+ or spend >1% of hours near
        # zero despite a live baseline.
        spike = float(np.clip((ev.spike_ratio - 4.0) / 8.0, 0.0, 1.0))
        shift = float(np.clip((ev.shift_ratio - 1.18) / 0.4, 0.0, 1.0))
        outage = float(np.clip((ev.outage_fraction - 0.005) / 0.02, 0.0, 1.0))
        irregular = max(spike, shift, outage)
        # Require a live premise: an idle meter is not "suspicious".
        live = _band_score(ev.level_quantile, (0.08, 1.0))
        return live * irregular
    day_r = day_correlation(ev.day_profile, pattern)
    month_r = month_correlation(ev.month_profile, pattern)
    if kind is CustomerType.BIMODAL:
        seasonal = float(np.clip(month_r, 0.0, 1.0))
        shape = float(np.clip(day_r, 0.0, 1.0))
        return level * (0.75 * seasonal + 0.25 * shape)
    if kind is CustomerType.EARLY_BIRD:
        shape = float(np.clip(day_r, 0.0, 1.0))
        # Direct evidence: morning (05-07) level vs the day's overall mean.
        day_mean = float(ev.day_profile.mean())
        morning = float(ev.day_profile[5:8].mean())
        ratio = morning / day_mean if day_mean > 0 else 0.0
        boost = float(np.clip((ratio - 1.1) / 0.8, 0.0, 1.0))
        return level * max(shape, boost) * (0.5 + 0.5 * boost)
    if kind is CustomerType.ENERGY_SAVING:
        shape = float(np.clip(day_r, 0.0, 1.0))
        seasonal_penalty = float(np.clip(month_r, 0.0, 1.0))
        return level * (0.4 + 0.6 * shape) * (1.0 - 0.3 * seasonal_penalty)
    raise AssertionError(f"unhandled pattern {kind}")  # pragma: no cover


def label_customers(
    series_set: SeriesSet,
    patterns: tuple[CanonicalPattern, ...] = CANONICAL_PATTERNS,
) -> list[PatternLabel]:
    """Label every customer; result rows align with the series set.

    Raises
    ------
    ValueError
        If the series set is empty.
    """
    if series_set.n_customers == 0:
        raise ValueError("cannot label an empty SeriesSet")
    labels: list[PatternLabel] = []
    for ev in _collect_evidence(series_set):
        scores = {p.archetype: _score_pattern(ev, p) for p in patterns}
        best = max(scores, key=lambda k: scores[k])
        labels.append(
            PatternLabel(archetype=best, score=scores[best], scores=scores)
        )
    return labels


def label_selection(
    series_set: SeriesSet,
    indices: np.ndarray,
    patterns: tuple[CanonicalPattern, ...] = CANONICAL_PATTERNS,
    member_labels: list[PatternLabel] | None = None,
) -> PatternLabel:
    """Name the pattern of a view-C selection (majority of member labels).

    The aggregate curve view B shows is the *mean* of members; labelling the
    members and voting is more robust than labelling the mean because mixed
    selections then expose themselves through a low winning share, reported
    as the label's ``score``.

    Members are labelled in the context of the **full population** — the
    level-quantile evidence is population-relative, so labelling a
    homogeneous subset against itself would misread its level.  Pass
    ``member_labels`` (from :func:`label_customers` on the full set) to
    avoid recomputation across many selections.

    Raises
    ------
    ValueError
        If the selection is empty or out of range.
    """
    indices = np.asarray(indices, dtype=np.int64)
    if indices.size == 0:
        raise ValueError("cannot label an empty selection")
    if indices.min() < 0 or indices.max() >= series_set.n_customers:
        raise ValueError(
            f"selection indices out of range 0..{series_set.n_customers - 1}"
        )
    if member_labels is None:
        member_labels = label_customers(series_set, patterns)
    elif len(member_labels) != series_set.n_customers:
        raise ValueError(
            f"{len(member_labels)} member labels for "
            f"{series_set.n_customers} customers"
        )
    member_labels = [member_labels[int(i)] for i in indices]
    votes: dict[CustomerType, int] = {}
    for lbl in member_labels:
        votes[lbl.archetype] = votes.get(lbl.archetype, 0) + 1
    best = max(votes, key=lambda k: votes[k])
    share = votes[best] / indices.size
    mean_scores: dict[CustomerType, float] = {}
    for pattern in patterns:
        mean_scores[pattern.archetype] = float(
            np.mean([lbl.scores[pattern.archetype] for lbl in member_labels])
        )
    return PatternLabel(archetype=best, score=share, scores=mean_scores)
