"""Pattern transitions across the embedding (demo S1, step 2).

Attendees "select the closely placed points continuously, and observe the
pattern transition over the spatial space".  The computational analogue is
a *walk*: start at a point, repeatedly hop to the nearest unvisited
neighbour, and watch how the consumption pattern morphs step by step.

If the embedding is faithful, consecutive stops should have highly
correlated profiles and the correlation should *decay with walk distance* —
exactly what :func:`transition_walk` measures and what the S1 bench
compares against a random-order baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.timeseries import SeriesSet


@dataclass(slots=True)
class TransitionWalk:
    """A nearest-neighbour walk with its pattern-similarity trace.

    Attributes
    ----------
    order:
        Row indices in visit order.
    step_similarity:
        Pearson correlation between consecutive stops' profiles
        (length ``len(order) - 1``).
    """

    order: np.ndarray
    step_similarity: np.ndarray

    @property
    def mean_step_similarity(self) -> float:
        """Average profile correlation along the walk — the smoothness the
        S1 demo narrates."""
        if self.step_similarity.size == 0:
            return float("nan")
        return float(self.step_similarity.mean())

    def similarity_by_lag(self, max_lag: int = 10) -> np.ndarray:
        """Mean profile correlation between stops ``lag`` apart; a faithful
        embedding shows monotone-ish decay."""
        out = np.full(max_lag, np.nan)
        for lag in range(1, max_lag + 1):
            if self.order.size <= lag:
                break
            pairs = self._profile_corr(self.order[:-lag], self.order[lag:])
            out[lag - 1] = float(pairs.mean())
        return out

    # Filled at construction time by transition_walk.
    _profiles: np.ndarray | None = None

    def _profile_corr(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        assert self._profiles is not None
        pa = self._profiles[a]
        pb = self._profiles[b]
        return (pa * pb).sum(axis=1)


def _unit_rows(matrix: np.ndarray) -> np.ndarray:
    """Zero-mean unit-norm rows, so dot products are Pearson correlations."""
    centered = matrix - matrix.mean(axis=1, keepdims=True)
    norms = np.linalg.norm(centered, axis=1, keepdims=True)
    safe = np.where(norms > 0, norms, 1.0)
    return centered / safe


def transition_walk(
    embedding: np.ndarray,
    series_set: SeriesSet,
    start: int = 0,
    n_steps: int | None = None,
) -> TransitionWalk:
    """Greedy nearest-unvisited-neighbour walk from ``start``.

    Parameters
    ----------
    embedding:
        ``(n, 2)`` view-C coordinates, rows aligned with ``series_set``.
    start:
        Row index of the first stop.
    n_steps:
        Number of stops (including the start); default all points.

    Raises
    ------
    ValueError
        On misaligned inputs or an out-of-range start.
    """
    embedding = np.asarray(embedding, dtype=np.float64)
    if embedding.ndim != 2 or embedding.shape[1] != 2:
        raise ValueError(f"embedding must be (n, 2), got {embedding.shape}")
    n = embedding.shape[0]
    if series_set.n_customers != n:
        raise ValueError(
            f"embedding has {n} rows but series set has "
            f"{series_set.n_customers} customers"
        )
    if not 0 <= start < n:
        raise ValueError(f"start {start} out of range 0..{n - 1}")
    n_steps = n if n_steps is None else min(n_steps, n)
    if n_steps < 1:
        raise ValueError(f"n_steps must be >= 1, got {n_steps}")

    matrix = np.where(np.isnan(series_set.matrix), 0.0, series_set.matrix)
    profiles = _unit_rows(matrix)

    visited = np.zeros(n, dtype=bool)
    order = np.empty(n_steps, dtype=np.int64)
    current = start
    visited[current] = True
    order[0] = current
    for step in range(1, n_steps):
        d2 = ((embedding - embedding[current]) ** 2).sum(axis=1)
        d2[visited] = np.inf
        current = int(np.argmin(d2))
        visited[current] = True
        order[step] = current

    sims = (profiles[order[:-1]] * profiles[order[1:]]).sum(axis=1)
    walk = TransitionWalk(order=order, step_similarity=sims)
    walk._profiles = profiles
    return walk


def random_walk_baseline(
    series_set: SeriesSet, n_steps: int | None = None, seed: int = 0
) -> TransitionWalk:
    """Same trace for a random visiting order — the null the S1 bench
    compares the embedding walk against."""
    n = series_set.n_customers
    n_steps = n if n_steps is None else min(n_steps, n)
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)[:n_steps].astype(np.int64)
    matrix = np.where(np.isnan(series_set.matrix), 0.0, series_set.matrix)
    profiles = _unit_rows(matrix)
    sims = (profiles[order[:-1]] * profiles[order[1:]]).sum(axis=1)
    walk = TransitionWalk(order=order, step_similarity=sims)
    walk._profiles = profiles
    return walk
