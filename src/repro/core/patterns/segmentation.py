"""Customer segmentation statistics for demand-response targeting.

The paper's motivation for typical patterns: they "can be used to develop
targeting demand-response programs".  Whether a segment is worth targeting
is a quantitative question, answered with the standard utility-planning
statistics computed here per segment (a segment = the customers of one
view-C selection, one k-means cluster, one archetype, ...):

- *load factor* — mean / peak of the segment's aggregate; low values mean
  peaky, flexible-looking load;
- *coincidence factor* — aggregate peak / sum of individual peaks; low
  values mean customers peak at different times (diversity);
- *demand at system peak* and its share — how much this segment
  contributes exactly when the whole system peaks;
- *DR priority* — share of system peak x (1 - load factor): big, peaky
  contributors first.  A simple, transparent ranking rule.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.timeseries import SeriesSet


@dataclass(frozen=True, slots=True)
class SegmentStats:
    """Planning statistics of one customer segment."""

    name: str
    n_customers: int
    total_kwh: float
    mean_kw: float
    peak_kw: float
    load_factor: float
    coincidence_factor: float
    peak_hour_of_day: int
    demand_at_system_peak_kw: float
    share_of_system_peak: float

    @property
    def dr_priority(self) -> float:
        """Demand-response targeting score (higher = target first)."""
        return self.share_of_system_peak * (1.0 - self.load_factor)

    def row(self) -> str:
        """One formatted report row."""
        return (
            f"{self.name:<16}{self.n_customers:>5}{self.mean_kw:>9.2f}"
            f"{self.peak_kw:>9.2f}{self.load_factor:>7.2f}"
            f"{self.coincidence_factor:>7.2f}{self.peak_hour_of_day:>6d}h"
            f"{self.share_of_system_peak:>8.1%}{self.dr_priority:>9.3f}"
        )


def _aggregate(matrix: np.ndarray) -> np.ndarray:
    """System/segment load curve: NaN-aware sum over customers."""
    return np.nansum(matrix, axis=0)


def segment_statistics(
    series_set: SeriesSet,
    indices: np.ndarray,
    name: str = "segment",
    system_load: np.ndarray | None = None,
) -> SegmentStats:
    """Compute one segment's statistics.

    Parameters
    ----------
    series_set:
        The whole fleet's readings.
    indices:
        Row indices of the segment members.
    system_load:
        Precomputed fleet aggregate (pass when computing many segments);
        defaults to the aggregate of all rows.

    Raises
    ------
    ValueError
        For an empty selection or out-of-range indices.
    """
    indices = np.asarray(indices, dtype=np.int64)
    if indices.size == 0:
        raise ValueError("cannot profile an empty segment")
    if indices.min() < 0 or indices.max() >= series_set.n_customers:
        raise ValueError(
            f"segment indices out of range 0..{series_set.n_customers - 1}"
        )
    matrix = series_set.matrix[indices]
    segment_load = _aggregate(matrix)
    if system_load is None:
        system_load = _aggregate(series_set.matrix)
    if system_load.shape != segment_load.shape:
        raise ValueError("system_load is not aligned with the series set")

    peak_kw = float(segment_load.max()) if segment_load.size else 0.0
    mean_kw = float(segment_load.mean()) if segment_load.size else 0.0
    load_factor = mean_kw / peak_kw if peak_kw > 0 else 1.0
    with np.errstate(invalid="ignore"):
        individual_peaks = np.nanmax(matrix, axis=1)
    individual_peaks = np.where(np.isfinite(individual_peaks), individual_peaks, 0.0)
    sum_of_peaks = float(individual_peaks.sum())
    coincidence = peak_kw / sum_of_peaks if sum_of_peaks > 0 else 1.0
    peak_column = int(np.argmax(segment_load)) if segment_load.size else 0
    peak_hour_of_day = int((series_set.start_hour + peak_column) % 24)
    system_peak_column = int(np.argmax(system_load)) if system_load.size else 0
    at_system_peak = float(segment_load[system_peak_column]) if segment_load.size else 0.0
    system_peak = float(system_load[system_peak_column]) if system_load.size else 0.0
    share = at_system_peak / system_peak if system_peak > 0 else 0.0
    return SegmentStats(
        name=name,
        n_customers=int(indices.size),
        total_kwh=float(np.nansum(matrix)),
        mean_kw=mean_kw,
        peak_kw=peak_kw,
        load_factor=load_factor,
        coincidence_factor=coincidence,
        peak_hour_of_day=peak_hour_of_day,
        demand_at_system_peak_kw=at_system_peak,
        share_of_system_peak=share,
    )


@dataclass(slots=True)
class SegmentationReport:
    """Statistics for a family of segments over one fleet."""

    segments: list[SegmentStats]
    system_peak_kw: float
    system_peak_hour_of_day: int

    HEADER = (
        f"{'segment':<16}{'n':>5}{'mean kW':>9}{'peak kW':>9}{'LF':>7}"
        f"{'CF':>7}{'peak':>7}{'@sys':>8}{'DR prio':>9}"
    )

    def rows(self) -> list[str]:
        """Formatted table, header + one row per segment."""
        return [self.HEADER] + [s.row() for s in self.segments]

    def targeting_order(self) -> list[SegmentStats]:
        """Segments ranked by demand-response priority, best target first."""
        return sorted(self.segments, key=lambda s: s.dr_priority, reverse=True)


def build_report(
    series_set: SeriesSet, segments: dict[str, np.ndarray]
) -> SegmentationReport:
    """Profile a family of segments (e.g. all named view-C selections).

    Raises
    ------
    ValueError
        If no segments are given or any segment is invalid.
    """
    if not segments:
        raise ValueError("need at least one segment")
    system_load = _aggregate(series_set.matrix)
    stats = [
        segment_statistics(series_set, indices, name=name, system_load=system_load)
        for name, indices in segments.items()
    ]
    peak_column = int(np.argmax(system_load)) if system_load.size else 0
    return SegmentationReport(
        segments=stats,
        system_peak_kw=float(system_load.max()) if system_load.size else 0.0,
        system_peak_hour_of_day=int((series_set.start_hour + peak_column) % 24),
    )
