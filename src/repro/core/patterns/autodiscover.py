"""Automatic selection proposals: density clustering of view C.

The demo's interactive loop starts with the analyst eyeballing the
embedding for dense groups.  A practical tool can *propose* those groups:
DBSCAN over the 2-D points finds exactly the "closely placed" clusters the
paper has attendees select by hand, and each proposal can then be named by
the template labeller.  Implemented from scratch: classic DBSCAN with an
epsilon neighbourhood and a minimum-points core rule; ``auto_epsilon``
picks the knee of the k-distance curve when the analyst does not tune it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Label for points that belong to no cluster.
NOISE = -1


def _validated(embedding: np.ndarray) -> np.ndarray:
    embedding = np.asarray(embedding, dtype=np.float64)
    if embedding.ndim != 2 or embedding.shape[1] != 2:
        raise ValueError(f"embedding must be (n, 2), got {embedding.shape}")
    if not np.isfinite(embedding).all():
        raise ValueError("embedding contains NaN/inf")
    return embedding


def auto_epsilon(embedding: np.ndarray, min_points: int = 5) -> float:
    """Epsilon from the k-distance heuristic.

    The distance to each point's ``min_points``-th neighbour is sorted and
    the value at the 90th percentile taken — a robust stand-in for the
    "knee" a human would read off the curve.

    Raises
    ------
    ValueError
        If there are fewer points than ``min_points + 1``.
    """
    embedding = _validated(embedding)
    n = embedding.shape[0]
    if n <= min_points:
        raise ValueError(
            f"need more than {min_points} points to estimate epsilon, "
            f"got {n}"
        )
    sq = (embedding**2).sum(axis=1)
    d2 = sq[:, None] + sq[None, :] - 2.0 * (embedding @ embedding.T)
    np.clip(d2, 0.0, None, out=d2)
    d2.sort(axis=1)
    kth = np.sqrt(d2[:, min_points])  # column 0 is self (distance 0)
    return float(np.quantile(kth, 0.90))


def dbscan(
    embedding: np.ndarray,
    epsilon: float | None = None,
    min_points: int = 5,
) -> np.ndarray:
    """Density clustering; returns labels with ``-1`` marking noise.

    Cluster ids are assigned in discovery order (0, 1, ...).

    Raises
    ------
    ValueError
        For a non-positive epsilon or min_points.
    """
    embedding = _validated(embedding)
    if min_points < 1:
        raise ValueError(f"min_points must be >= 1, got {min_points}")
    if epsilon is None:
        epsilon = auto_epsilon(embedding, min_points)
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    n = embedding.shape[0]
    sq = (embedding**2).sum(axis=1)
    d2 = sq[:, None] + sq[None, :] - 2.0 * (embedding @ embedding.T)
    np.clip(d2, 0.0, None, out=d2)
    within = d2 <= epsilon**2
    neighbour_counts = within.sum(axis=1)  # includes self
    core = neighbour_counts >= min_points

    labels = np.full(n, NOISE, dtype=np.int64)
    cluster = 0
    for seed in range(n):
        if labels[seed] != NOISE or not core[seed]:
            continue
        # Expand the cluster from this core point (BFS).
        labels[seed] = cluster
        frontier = [seed]
        while frontier:
            point = frontier.pop()
            if not core[point]:
                continue
            for neighbour in np.flatnonzero(within[point]):
                if labels[neighbour] == NOISE:
                    labels[neighbour] = cluster
                    frontier.append(int(neighbour))
        cluster += 1
    return labels


@dataclass(frozen=True, slots=True)
class Proposal:
    """One suggested selection."""

    cluster_id: int
    indices: np.ndarray
    center: tuple[float, float]

    @property
    def size(self) -> int:
        return int(self.indices.size)


def propose_selections(
    embedding: np.ndarray,
    epsilon: float | None = None,
    min_points: int = 5,
    min_size: int = 5,
) -> list[Proposal]:
    """DBSCAN clusters as ready-made selections, largest first.

    Raises
    ------
    ValueError
        For a non-positive ``min_size``.
    """
    if min_size < 1:
        raise ValueError(f"min_size must be >= 1, got {min_size}")
    embedding = _validated(embedding)
    labels = dbscan(embedding, epsilon=epsilon, min_points=min_points)
    proposals: list[Proposal] = []
    for cluster_id in np.unique(labels):
        if cluster_id == NOISE:
            continue
        indices = np.flatnonzero(labels == cluster_id)
        if indices.size < min_size:
            continue
        center = embedding[indices].mean(axis=0)
        proposals.append(
            Proposal(
                cluster_id=int(cluster_id),
                indices=indices,
                center=(float(center[0]), float(center[1])),
            )
        )
    proposals.sort(key=lambda p: p.size, reverse=True)
    return proposals
