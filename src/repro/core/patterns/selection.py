"""Interactive selection operators over the 2-D embedding (view C).

View C "allows users to explore different energy consumption patterns by
selecting the points by clicking and dragging".  The browser gestures map
to four geometric operators — rectangle drag, lasso polygon, radius click
and k-nearest pick — each returning the row indices of the selected points.

:class:`SelectionSession` records the analyst's named selections, supports
set algebra between them (union / intersection / difference — shift-click
semantics) and is what the REST layer serialises back to the client.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.db.spatial import Polygon


def _validated_embedding(embedding: np.ndarray) -> np.ndarray:
    embedding = np.asarray(embedding, dtype=np.float64)
    if embedding.ndim != 2 or embedding.shape[1] != 2:
        raise ValueError(
            f"embedding must be (n, 2) for view-C selection, got {embedding.shape}"
        )
    return embedding


@dataclass(frozen=True, slots=True)
class RectSelection:
    """Click-and-drag rectangle in embedding coordinates (inclusive edges)."""

    x_min: float
    y_min: float
    x_max: float
    y_max: float

    def __post_init__(self) -> None:
        if self.x_max < self.x_min or self.y_max < self.y_min:
            raise ValueError("rectangle max corner precedes min corner")

    def apply(self, embedding: np.ndarray) -> np.ndarray:
        emb = _validated_embedding(embedding)
        hit = (
            (emb[:, 0] >= self.x_min)
            & (emb[:, 0] <= self.x_max)
            & (emb[:, 1] >= self.y_min)
            & (emb[:, 1] <= self.y_max)
        )
        return np.flatnonzero(hit)


@dataclass(frozen=True, slots=True)
class RadiusSelection:
    """Click with a circular brush."""

    x: float
    y: float
    radius: float

    def __post_init__(self) -> None:
        if self.radius < 0:
            raise ValueError(f"radius must be non-negative, got {self.radius}")

    def apply(self, embedding: np.ndarray) -> np.ndarray:
        emb = _validated_embedding(embedding)
        d2 = (emb[:, 0] - self.x) ** 2 + (emb[:, 1] - self.y) ** 2
        return np.flatnonzero(d2 <= self.radius**2)


class LassoSelection:
    """Freehand polygon selection."""

    def __init__(self, vertices: list[tuple[float, float]]) -> None:
        self.polygon = Polygon(vertices)

    def apply(self, embedding: np.ndarray) -> np.ndarray:
        emb = _validated_embedding(embedding)
        hit = self.polygon.contains_many(emb[:, 0], emb[:, 1])
        return np.flatnonzero(hit)


@dataclass(frozen=True, slots=True)
class KnnSelection:
    """Pick the k points closest to a click — "select the closely placed
    points" in its most literal form."""

    x: float
    y: float
    k: int

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")

    def apply(self, embedding: np.ndarray) -> np.ndarray:
        emb = _validated_embedding(embedding)
        d2 = (emb[:, 0] - self.x) ** 2 + (emb[:, 1] - self.y) ** 2
        k = min(self.k, emb.shape[0])
        return np.sort(np.argsort(d2, kind="stable")[:k])


Selector = RectSelection | RadiusSelection | LassoSelection | KnnSelection


@dataclass(slots=True)
class NamedSelection:
    """One analyst gesture with its result and optional label."""

    name: str
    indices: np.ndarray
    note: str = ""


@dataclass(slots=True)
class SelectionSession:
    """Accumulates named selections over one embedding.

    The embedding is fixed at construction; every operator resolves against
    it so selections stay consistent while the analyst works.
    """

    embedding: np.ndarray
    selections: dict[str, NamedSelection] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.embedding = _validated_embedding(self.embedding)

    def select(self, name: str, selector: Selector, note: str = "") -> np.ndarray:
        """Run a gesture and store it under ``name`` (replacing any prior)."""
        if not name:
            raise ValueError("selection name must be non-empty")
        indices = selector.apply(self.embedding)
        self.selections[name] = NamedSelection(name=name, indices=indices, note=note)
        return indices

    def get(self, name: str) -> np.ndarray:
        if name not in self.selections:
            raise KeyError(
                f"no selection {name!r}; have {sorted(self.selections)}"
            )
        return self.selections[name].indices

    def combine(
        self, name: str, left: str, right: str, how: str = "union"
    ) -> np.ndarray:
        """Set algebra between stored selections (shift-click semantics).

        ``how`` is ``"union"``, ``"intersection"`` or ``"difference"``.
        """
        a = set(self.get(left).tolist())
        b = set(self.get(right).tolist())
        if how == "union":
            out = a | b
        elif how == "intersection":
            out = a & b
        elif how == "difference":
            out = a - b
        else:
            raise ValueError(
                f"how must be union/intersection/difference, got {how!r}"
            )
        indices = np.asarray(sorted(out), dtype=np.int64)
        self.selections[name] = NamedSelection(name=name, indices=indices)
        return indices

    def drop(self, name: str) -> None:
        """Forget a stored selection; missing names are a no-op."""
        self.selections.pop(name, None)

    def coverage(self) -> float:
        """Share of embedded points captured by at least one selection."""
        if not self.selections:
            return 0.0
        covered: set[int] = set()
        for sel in self.selections.values():
            covered.update(sel.indices.tolist())
        return len(covered) / self.embedding.shape[0]

    def overlap_matrix(self) -> tuple[list[str], np.ndarray]:
        """Jaccard overlap between all stored selections (diagnostics)."""
        names = sorted(self.selections)
        n = len(names)
        out = np.zeros((n, n))
        sets = [set(self.selections[name].indices.tolist()) for name in names]
        for i in range(n):
            for j in range(n):
                union = sets[i] | sets[j]
                out[i, j] = len(sets[i] & sets[j]) / len(union) if union else 1.0
        return names, out
