"""Perf-regression gate: fresh quick-bench vs the committed baseline.

CI runs ``repro bench --quick --json`` and feeds the result here next to
the committed full-mode ``BENCH_PERF.json``.  Runs are matched by
``(kernel, size)`` — quick mode deliberately reuses sizes the full
document also measures — and the *speedup ratios* are compared, not the
absolute wall times: ratios of two engines timed back-to-back in one
process survive noisy CI machines, absolute seconds do not.

A headline regresses when its fresh speedup drops more than
``DEFAULT_THRESHOLD`` (25%) below the committed one.  Any regression
fails the gate unless ``REPRO_BENCH_ALLOW_REGRESSION=1`` is set — the
escape hatch for landing a change that knowingly trades speed away (the
committed document should be regenerated in the same PR).

Usage::

    python -m repro.bench.compare FRESH.json BASELINE.json
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

DEFAULT_THRESHOLD = 0.25


def _run_key(kernel: str, run: dict) -> tuple | None:
    """Stable identity of one bench run within its kernel block."""
    if kernel == "dtw":
        size = run.get("length")
    else:
        size = run.get("n")
    if size is None:
        return None
    return (kernel, int(size))


def headline_speedups(document: dict) -> dict[tuple, float]:
    """``{(kernel, size): speedup}`` for every run carrying a speedup."""
    out: dict[tuple, float] = {}
    for kernel, block in document.get("kernels", {}).items():
        for run in block.get("runs", []):
            key = _run_key(kernel, run)
            speedup = run.get("speedup")
            if key is not None and isinstance(speedup, (int, float)):
                out[key] = float(speedup)
    return out


def compare_documents(
    fresh: dict, baseline: dict, threshold: float = DEFAULT_THRESHOLD
) -> list[str]:
    """Regression messages; empty when every matched headline holds up.

    Only headlines present in *both* documents are compared — a kernel
    the quick run skips, or a size only the full run measures, is not a
    regression.
    """
    fresh_speedups = headline_speedups(fresh)
    baseline_speedups = headline_speedups(baseline)
    problems = []
    for key in sorted(set(fresh_speedups) & set(baseline_speedups)):
        have = fresh_speedups[key]
        want = baseline_speedups[key]
        if want <= 0:
            continue
        if have < want * (1.0 - threshold):
            kernel, size = key
            problems.append(
                f"{kernel} @ {size}: speedup {have:.2f}x is "
                f"{(1.0 - have / want) * 100.0:.0f}% below the committed "
                f"{want:.2f}x (threshold {threshold * 100.0:.0f}%)"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 2:
        print(
            "usage: python -m repro.bench.compare FRESH.json BASELINE.json",
            file=sys.stderr,
        )
        return 2
    fresh_path, baseline_path = Path(argv[0]), Path(argv[1])
    if not baseline_path.exists():
        # A repo without a committed baseline has nothing to regress.
        print(f"no baseline at {baseline_path}; skipping comparison")
        return 0
    fresh = json.loads(fresh_path.read_text())
    baseline = json.loads(baseline_path.read_text())
    problems = compare_documents(fresh, baseline)
    matched = len(
        set(headline_speedups(fresh)) & set(headline_speedups(baseline))
    )
    print(f"compared {matched} headline speedups against {baseline_path}")
    if not problems:
        print("no perf regressions")
        return 0
    for line in problems:
        print(f"REGRESSION: {line}")
    if os.environ.get("REPRO_BENCH_ALLOW_REGRESSION") == "1":
        print("REPRO_BENCH_ALLOW_REGRESSION=1 set; not failing the gate")
        return 0
    return 1


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    raise SystemExit(main())
