"""Kernel benchmarks: fast engines vs their exact ground-truth twins.

Every entry measures the *same work* through both engines in one process,
back-to-back, so the speedup ratio is meaningful even on noisy shared
machines (absolute wall-clock is not — treat it as indicative only).
Parity numbers ride along with every timing so a speedup can never hide
a wrong answer:

- t-SNE: exact vs Barnes–Hut gradients — final KL ratio;
- KDE: exact vs binned Eq. 3 — max relative error over the grid;
- perplexity search: per-row loop vs array-wide bisection — beta allclose;
- DTW: row-sweep vs anti-diagonal DP — bit-identical distances;
- rollup: raw granularity sweep vs the warmed rollup-backed sweep — mean
  energies allclose.  Sized across a 10x span of reading counts so the
  document shows the rollup path's latency staying flat while the raw
  path grows with ``n_readings``;
- landmark: full Barnes–Hut t-SNE vs the out-of-core landmark engine —
  kNN recall, with per-stage wall times (selection / inner embed /
  placement / cross distances) so the n=50k headline shows where the
  time goes.

The document also carries a top-level ``profiler`` block: the same KDE
workload timed with the continuous stack profiler off and sampling at
100 hz, so the profiler's "always-on is affordable" claim is re-measured
on every bench run instead of trusted.

``run_bench(quick=True)`` is the CI smoke variant: same shape, small sizes.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.core.reduction.distances import (
    euclidean_cross_distance_matrix,
    euclidean_distance_matrix,
)
from repro.core.reduction.dtw import dtw_distance
from repro.core.reduction.tsne import (
    _perplexity_search,
    _perplexity_search_loop,
    tsne,
)
from repro.core.shift.grids import GridSpec
from repro.core.shift.kde import kde_density

KERNELS = ("tsne", "kde", "perplexity", "dtw", "rollup", "landmark")


def _blob_data(
    n: int, dim: int = 24, clusters: int = 8, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Clustered synthetic features plus their generative cluster labels."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=4.0, size=(clusters, dim))
    assignment = rng.integers(0, clusters, size=n)
    features = centers[assignment] + rng.normal(scale=0.8, size=(n, dim))
    return features, assignment


def _blob_features(
    n: int, dim: int = 24, clusters: int = 8, seed: int = 0
) -> np.ndarray:
    """Clustered synthetic features — the regime the paper's views live in."""
    return _blob_data(n, dim, clusters, seed)[0]


def _positions(n: int, seed: int = 0) -> np.ndarray:
    """Clustered (lon, lat) points on a ~10 km city patch."""
    rng = np.random.default_rng(seed)
    centers = np.column_stack(
        [116.0 + rng.random(8) * 0.1, 39.0 + rng.random(8) * 0.1]
    )
    assignment = rng.integers(0, 8, size=n)
    return centers[assignment] + rng.normal(scale=0.004, size=(n, 2))


def _dtw_row_sweep(a: np.ndarray, b: np.ndarray, band: int) -> float:
    """The pre-vectorisation row-sweep DP, kept as the parity oracle."""
    n, m = a.size, b.size
    inf = np.inf
    previous = np.full(m + 1, inf)
    previous[0] = 0.0
    current = np.empty(m + 1)
    for i in range(1, n + 1):
        current.fill(inf)
        lo = max(1, i - band)
        hi = min(m, i + band)
        cost = np.abs(a[i - 1] - b[lo - 1 : hi])
        segment_prev = previous[lo - 1 : hi]
        segment_up = previous[lo : hi + 1]
        running = inf
        for k in range(hi - lo + 1):
            best = min(segment_prev[k], segment_up[k], running)
            running = cost[k] + best
            current[lo + k] = running
        previous, current = current, previous
    return float(previous[m] / (n + m))


def bench_tsne(
    sizes: list[int], n_iter: int, theta: float = 0.5, seed: int = 0
) -> dict:
    runs = []
    for n in sizes:
        feats = _blob_features(n, seed=seed)
        t0 = time.perf_counter()
        exact = tsne(
            feats, metric="euclidean", n_iter=n_iter, seed=seed, method="exact"
        )
        t1 = time.perf_counter()
        fast = tsne(
            feats, metric="euclidean", n_iter=n_iter, seed=seed,
            method="bh", theta=theta,
        )
        t2 = time.perf_counter()
        runs.append(
            {
                "n": n,
                "n_iter": n_iter,
                "exact_seconds": round(t1 - t0, 4),
                "fast_seconds": round(t2 - t1, 4),
                "speedup": round((t1 - t0) / max(t2 - t1, 1e-12), 2),
                "kl_exact": round(exact.kl_divergence, 6),
                "kl_fast": round(fast.kl_divergence, 6),
                "kl_ratio": round(
                    fast.kl_divergence / max(exact.kl_divergence, 1e-12), 4
                ),
            }
        )
    return {"theta": theta, "runs": runs}


def _knn_label_recall(
    embedding: np.ndarray, labels: np.ndarray, k: int = 10
) -> float:
    """Mean fraction of each point's ``k`` embedding-neighbours sharing
    its generative cluster label.

    This is the structure score that is meaningful for an
    interpolation-based method: raw neighbour-*set* overlap between two
    embeddings is near zero for anything that does not reproduce the
    reference layout point-for-point (within a cluster the fine order is
    arbitrary), while label recall asks the question the analyst cares
    about — do a point's neighbours on screen belong to its pattern?
    """
    n = embedding.shape[0]
    k = min(k, n - 1)
    sq = (embedding**2).sum(axis=1)
    d2 = sq[:, None] + sq[None, :] - 2.0 * (embedding @ embedding.T)
    np.fill_diagonal(d2, np.inf)
    nn = np.argpartition(d2, k - 1, axis=1)[:, :k]
    return float((labels[nn] == labels[:, None]).mean())


def bench_landmark(
    sizes: list[int],
    n_iter: int,
    seed: int = 0,
    bh_max: int = 5000,
    n_landmarks: int = 1024,
) -> dict:
    """Landmark t-SNE end-to-end vs the full Barnes–Hut run.

    For every size: one ``method="landmark"`` run (its per-stage wall
    times — landmark selection, inner embed, out-of-sample placement —
    come straight from ``TSNEResult.stages``) plus a standalone timing of
    the blockwise cross-distance kernel, the distance-stage cost at that
    scale.  Sizes up to ``bh_max`` also run the full Barnes–Hut twin for
    a speedup ratio and a kNN label-recall parity score (see
    :func:`_knn_label_recall`); beyond that the exact twin would take
    minutes and the landmark time stands alone as the headline (the
    50k < 60 s acceptance number).
    """
    runs = []
    for n in sizes:
        feats, labels = _blob_data(n, seed=seed)
        k = min(n_landmarks, n)
        t0 = time.perf_counter()
        landmark = tsne(
            feats, metric="euclidean", n_iter=n_iter, seed=seed,
            method="landmark", n_landmarks=k,
        )
        t1 = time.perf_counter()
        # The distance-stage breakdown: one (n, k) blockwise cross pass,
        # the matrix the placement stage is built on.
        t2 = time.perf_counter()
        euclidean_cross_distance_matrix(feats, feats[:k])
        cross_seconds = time.perf_counter() - t2
        stages = dict(landmark.stages or {})
        stages["cross_distances_seconds"] = round(cross_seconds, 4)
        run = {
            "n": n,
            "n_iter": n_iter,
            "n_landmarks": k,
            "fast_seconds": round(t1 - t0, 4),
            "stages": {key: round(val, 4) for key, val in stages.items()},
            "kl_landmark": round(landmark.kl_divergence, 6),
        }
        if n <= bh_max:
            t3 = time.perf_counter()
            bh = tsne(
                feats, metric="euclidean", n_iter=n_iter, seed=seed,
                method="bh",
            )
            t4 = time.perf_counter()
            run["exact_seconds"] = round(t4 - t3, 4)
            run["speedup"] = round((t4 - t3) / max(t1 - t0, 1e-12), 2)
            run["knn_recall"] = round(
                _knn_label_recall(landmark.embedding, labels), 4
            )
            run["knn_recall_exact"] = round(
                _knn_label_recall(bh.embedding, labels), 4
            )
        runs.append(run)
    return {"n_landmarks": n_landmarks, "runs": runs}


def bench_kde(
    sizes: list[int], nx: int = 128, ny: int = 128, seed: int = 0
) -> dict:
    runs = []
    for n in sizes:
        pos = _positions(n, seed=seed)
        weights = np.random.default_rng(seed + 1).gamma(2.0, 1.0, n)
        spec = GridSpec.covering(pos, nx=nx, ny=ny)
        t0 = time.perf_counter()
        exact = kde_density(pos, weights, spec, method="exact")
        t1 = time.perf_counter()
        binned = kde_density(pos, weights, spec, method="binned")
        t2 = time.perf_counter()
        rel = np.abs(binned.values - exact.values) / exact.values.max()
        runs.append(
            {
                "n": n,
                "exact_seconds": round(t1 - t0, 4),
                "fast_seconds": round(t2 - t1, 4),
                "speedup": round((t1 - t0) / max(t2 - t1, 1e-12), 2),
                "max_rel_error": float(f"{rel.max():.3e}"),
            }
        )
    return {"grid": [nx, ny], "runs": runs}


def bench_perplexity(sizes: list[int], seed: int = 0) -> dict:
    runs = []
    for n in sizes:
        feats = _blob_features(n, seed=seed)
        dist = euclidean_distance_matrix(feats)
        t0 = time.perf_counter()
        _, betas_loop = _perplexity_search_loop(dist, perplexity=30.0)
        t1 = time.perf_counter()
        _, betas_vec = _perplexity_search(dist, perplexity=30.0)
        t2 = time.perf_counter()
        runs.append(
            {
                "n": n,
                "exact_seconds": round(t1 - t0, 4),
                "fast_seconds": round(t2 - t1, 4),
                "speedup": round((t1 - t0) / max(t2 - t1, 1e-12), 2),
                "betas_allclose": bool(
                    np.allclose(betas_loop, betas_vec, rtol=1e-9)
                ),
            }
        )
    return {"runs": runs}


def bench_dtw(lengths: list[int], repeats: int = 5, seed: int = 0) -> dict:
    runs = []
    rng = np.random.default_rng(seed)
    for length in lengths:
        band = max(1, length // 10)
        a = rng.normal(size=length)
        b = rng.normal(size=length)
        t0 = time.perf_counter()
        for _ in range(repeats):
            want = _dtw_row_sweep(a, b, band)
        t1 = time.perf_counter()
        for _ in range(repeats):
            got = dtw_distance(a, b, band=band, normalize=False)
        t2 = time.perf_counter()
        runs.append(
            {
                "length": length,
                "band": band,
                "exact_seconds": round((t1 - t0) / repeats, 5),
                "fast_seconds": round((t2 - t1) / repeats, 5),
                "speedup": round((t1 - t0) / max(t2 - t1, 1e-12), 2),
                "identical": bool(got == want),
            }
        )
    return {"runs": runs}


def bench_rollup(
    n_hours_list: list[int], n_customers: int = 80, seed: int = 0
) -> dict:
    """Granularity sweep from raw readings vs materialized rollups.

    The raw path re-resamples the full reading matrix and re-runs Eq. 3
    from scratch per window pair, so its cost grows with ``n_readings``;
    the rollup path answers from per-bucket accumulators and cached
    kernel grids, so its cost is O(cells) per field regardless of how
    many hours fed the store.  Both sweeps use the store's pinned
    bandwidth so the results are directly comparable; mean energies
    ride along as the parity check.
    """
    from repro.core.shift.sensitivity import (
        granularity_sweep,
        granularity_sweep_from_rollups,
    )
    from repro.data.generator.simulate import CityConfig, generate_city
    from repro.data.timeseries import Resolution
    from repro.db import build_database
    from repro.rollup.store import RollupStore

    runs = []
    for n_hours in n_hours_list:
        city = generate_city(
            CityConfig(
                n_customers=n_customers,
                n_days=max(1, n_hours // 24),
                seed=seed,
            )
        )
        db = build_database(city.customers, city.raw)
        ids = [int(cid) for cid in db.readings.customer_ids]
        spec = GridSpec.covering(db.positions_of(ids))
        store = RollupStore(db.positions_of(ids), ids, spec)
        t0 = time.perf_counter()
        store.rebuild_from(db)
        t1 = time.perf_counter()
        bandwidth = store.bandwidth_m
        # Warm once so the timed pass measures the steady-state cost —
        # cached kernel grids, no lazy materialization.
        granularity_sweep_from_rollups(store, bandwidth_m=bandwidth)
        t2 = time.perf_counter()
        raw = granularity_sweep(db, spec=spec, bandwidth_m=bandwidth)
        t3 = time.perf_counter()
        rolled = granularity_sweep_from_rollups(store, bandwidth_m=bandwidth)
        t4 = time.perf_counter()
        energies_raw = [r.mean_energy for r in raw]
        energies_rollup = [r.mean_energy for r in rolled]
        # Direct probe of the O(cells) claim: a single warm field, free of
        # the per-pair flow statistics both sweeps share.  This number must
        # stay flat as n grows 10x — it never touches raw readings.
        probe = store.buckets(Resolution.DAILY)[0]
        repeats = 50
        t5 = time.perf_counter()
        for _ in range(repeats):
            store.bucket_field(Resolution.DAILY, probe, bandwidth_m=bandwidth)
        warm_field_ms = (time.perf_counter() - t5) * 1000.0 / repeats
        runs.append(
            {
                "n": n_hours * n_customers,
                "n_hours": n_hours,
                "n_customers": n_customers,
                "build_seconds": round(t1 - t0, 4),
                "exact_seconds": round(t3 - t2, 4),
                "fast_seconds": round(t4 - t3, 4),
                "speedup": round((t3 - t2) / max(t4 - t3, 1e-12), 2),
                "warm_field_ms": round(warm_field_ms, 4),
                "energies_allclose": bool(
                    np.allclose(
                        energies_raw, energies_rollup,
                        rtol=1e-6, equal_nan=True,
                    )
                ),
            }
        )
    return {"runs": runs}


def bench_profiler_overhead(
    repeats: int, hz: float = 100.0, seed: int = 0
) -> dict:
    """Throughput cost of the continuous stack profiler.

    Runs the same binned-KDE workload back-to-back with the profiler
    stopped and then sampling at ``hz``; the relative throughput loss is
    the number the profiler's <5% overhead budget is graded against.
    """
    from repro.obs.profiler import StackProfiler

    pos = _positions(5000, seed=seed)
    weights = np.random.default_rng(seed + 1).gamma(2.0, 1.0, 5000)
    spec = GridSpec.covering(pos, nx=96, ny=96)

    def throughput() -> float:
        t0 = time.perf_counter()
        for _ in range(repeats):
            kde_density(pos, weights, spec, method="binned")
        return repeats / (time.perf_counter() - t0)

    throughput()  # warm caches so both passes see the same regime
    baseline = throughput()
    profiler = StackProfiler(hz=hz)
    profiler.start()
    try:
        profiled = throughput()
        samples = profiler.samples
    finally:
        profiler.stop()
    overhead = max(0.0, 1.0 - profiled / baseline)
    return {
        "hz": hz,
        "repeats": repeats,
        "baseline_ops_per_s": round(baseline, 2),
        "profiled_ops_per_s": round(profiled, 2),
        "overhead_pct": round(overhead * 100.0, 2),
        "samples": samples,
    }


def run_bench(
    quick: bool = False, kernels: list[str] | None = None, seed: int = 0,
    profiler: bool = True,
) -> dict:
    """Run the kernel benchmarks and return the BENCH_PERF document.

    Raises
    ------
    ValueError
        For an unknown kernel name.
    """
    wanted = list(KERNELS) if kernels is None else kernels
    unknown = [k for k in wanted if k not in KERNELS]
    if unknown:
        raise ValueError(f"unknown kernels {unknown}; pick from {KERNELS}")
    out: dict = {
        "schema": 1,
        "quick": quick,
        "generated_unix": round(time.time(), 1),
        "kernels": {},
    }
    # Quick sizes overlap the full ones so the CI comparator
    # (repro.bench.compare) can match a quick run against the committed
    # full-mode document by (kernel, n) — speedup ratios are comparable
    # across modes even when iteration counts differ.
    if "tsne" in wanted:
        sizes, n_iter = ([500], 150) if quick else ([500, 1000, 2000], 500)
        out["kernels"]["tsne"] = bench_tsne(sizes, n_iter=n_iter, seed=seed)
    if "kde" in wanted:
        sizes = [10000] if quick else [10000, 50000]
        out["kernels"]["kde"] = bench_kde(sizes, seed=seed)
    if "perplexity" in wanted:
        sizes = [500] if quick else [500, 1500]
        out["kernels"]["perplexity"] = bench_perplexity(sizes, seed=seed)
    if "dtw" in wanted:
        lengths = [168] if quick else [168, 336, 720]
        out["kernels"]["dtw"] = bench_dtw(lengths, seed=seed)
    if "rollup" in wanted:
        n_hours = [720] if quick else [720, 7200]
        out["kernels"]["rollup"] = bench_rollup(n_hours, seed=seed)
    if "landmark" in wanted:
        sizes, n_iter = ([5000], 150) if quick else ([5000, 50000], 500)
        out["kernels"]["landmark"] = bench_landmark(
            sizes, n_iter=n_iter, seed=seed
        )
    if profiler:
        out["profiler"] = bench_profiler_overhead(
            repeats=10 if quick else 50, seed=seed
        )
    return out


def write_bench(path: Path, document: dict) -> None:
    path.write_text(json.dumps(document, indent=2) + "\n")
