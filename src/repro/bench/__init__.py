"""Perf-trajectory harness: timed kernel comparisons behind ``repro bench``.

The paper's tool is interactive; the kernels behind its three views are the
latency budget.  This package times each fast kernel against its exact
ground-truth twin and writes a machine-readable ``BENCH_PERF.json`` so the
perf trajectory is tracked across PRs instead of anecdotally.
"""

from repro.bench.compare import compare_documents, headline_speedups
from repro.bench.perf import (
    bench_landmark,
    bench_profiler_overhead,
    run_bench,
    write_bench,
)

__all__ = [
    "bench_landmark",
    "bench_profiler_overhead",
    "compare_documents",
    "headline_speedups",
    "run_bench",
    "write_bench",
]
