"""Reproduction of VAP (EDBT 2020): visual analysis of energy consumption
spatio-temporal patterns.

The package is organised in the same three layers as the paper's tool:

- **data layer** — :mod:`repro.data` (domain model, synthetic-city generator,
  CSV I/O) and :mod:`repro.db` (embedded spatio-temporal store standing in
  for PostgreSQL/PostGIS).
- **logic layer** — :mod:`repro.preprocess`, :mod:`repro.core` (dimension
  reduction, typical-pattern discovery, shift-pattern discovery),
  :mod:`repro.cluster` (k-means baseline) and :mod:`repro.server`
  (RESTful JSON API).
- **presentation layer** — :mod:`repro.viz` (SVG scatter / time-series /
  heat-map / flow-map views composed into an HTML dashboard) and
  :mod:`repro.stream` (near-real-time replay).

The most convenient entry point is :class:`repro.core.pipeline.VapSession`,
which wires the layers together the way the paper's Figure 1 describes.
"""

from repro.core.pipeline import VapSession
from repro.data.generator.simulate import CityConfig, generate_city
from repro.data.timeseries import SeriesSet, TimeSeries

__version__ = "1.0.0"

__all__ = [
    "CityConfig",
    "SeriesSet",
    "TimeSeries",
    "VapSession",
    "generate_city",
    "__version__",
]
