"""The VAP WSGI application.

Endpoints mirror what the paper's three views request from the logic layer:

====================================  =======================================
``GET  /api/health``                  liveness + data set shape
``GET  /api/quality``                 data-quality report of the raw extract
``GET  /api/zones``                   zone geometry for the basemap
``GET  /api/customers``               customer list; filters: ``zone``,
                                      ``bbox=min_lon,min_lat,max_lon,max_lat``
``GET  /api/customers/<id>``          one customer's metadata
``GET  /api/customers/<id>/readings`` readings; ``start``/``end`` hour params
``GET  /api/embedding``               view C coordinates; params ``method``,
                                      ``metric``, ``perplexity``, ``seed``,
                                      ``tsne_method`` (auto/exact/bh) and
                                      Barnes–Hut ``theta``
``POST /api/selection``               run a selection gesture; body gives
                                      ``type`` (rect/radius/knn/lasso) and
                                      geometry; returns indices, customer
                                      ids, pattern label and view-B profile
``GET  /api/density``                 Eq. 3 heat-map grid for a window;
                                      optional ``bandwidth_m`` (metres,
                                      Silverman's rule when absent) and
                                      ``kde_method`` (auto/exact/binned)
``GET  /api/shift``                   Eq. 4 stats + major flows between two
                                      windows (``t1_start`` ... ``t2_end``);
                                      optional ``bandwidth_m``,
                                      ``kde_method``
``GET  /api/sweep/granularity``       S2 temporal-granularity sweep from
                                      the rollup layer (``source=raw``
                                      forces the exact path); params
                                      ``max_pairs``, ``bandwidth_m``
``GET  /api/sweep/quantile``          S2 intensity sweep (``t1_start`` ...
                                      ``t2_end``); rollup-backed with the
                                      same ``source``/``bandwidth_m``
``GET  /api/rollups``                 rollup staleness: last-applied tick,
                                      lag vs the database end hour,
                                      rebuild/refold counters, per-table
                                      bucket counts
``POST /api/rollups/rebuild``         force a full rollup rebuild from
                                      the data plane (sharded partials
                                      merged deterministically)
``GET  /api/kmeans``                  S1d baseline labels; param ``k``
``POST /api/sql``                     ad-hoc SELECT over the customers
                                      table; body ``{"query": ...}``
``GET  /api/customers/<id>/forecast`` day-ahead forecast; params
                                      ``horizon``, ``method``
                                      (profile/seasonal/naive)
``GET  /api/proposals``               auto-discovered selection proposals
                                      (DBSCAN over view C), labelled
``POST /api/jobs``                    submit heavy work asynchronously;
                                      body ``{"kind": embed|render|export,
                                      "params": {...}, "priority": n}``;
                                      answers 202 + job id immediately
``GET  /api/jobs``                    the tenant's jobs, newest first
``GET  /api/jobs/<id>``               job status: state, progress, ETA,
                                      attempts, checkpoint, artifact ref
``DELETE /api/jobs/<id>``             cancel a queued or running job
``POST /api/jobs/<id>/resume``        re-queue a failed job; embedding
                                      jobs resume their last checkpoint
``GET  /api/jobs/<id>/artifact``      the finished job's result bytes
                                      (``ETag`` is the content digest)
``GET  /api/metrics``                 observability snapshot: request
                                      counters/latency histograms per
                                      route, pipeline cache hit/miss,
                                      kernel stats, recent trace spans,
                                      span-sink export/drop counts;
                                      ``?format=prometheus`` returns
                                      Prometheus text exposition
``GET  /api/telemetry``               self-monitoring dashboard data:
                                      rolling request-rate and latency
                                      windows, cache hit ratios, per-op
                                      runtimes, SLO burn rates and error
                                      budgets, slowest operations with
                                      request IDs; ``?format=svg``
                                      renders the SVG panel
``GET  /api/traces``                  finished traces, newest first;
                                      filters ``request_id``, ``tenant``,
                                      ``min_duration_ms``, ``limit``
``GET  /api/traces/<id>``             one assembled trace tree (shard
                                      tasks appear as child spans)
``GET  /api/profile``                 stack-sampling profile over
                                      ``seconds``; ``format`` folded
                                      (default), svg flamegraph, or json
====================================  =======================================

Errors return ``{"error": ...}`` with 400/404/405 status.  The app is a
plain WSGI callable — serve it with any WSGI server, or in-process through
:class:`repro.server.client.TestClient`.

Every request carries a correlation ID (``X-Request-ID`` in and out) and
emits one structured JSON log line; see :mod:`repro.server.middleware`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Iterable
from urllib.parse import parse_qs

import numpy as np

from repro import __version__, obs
from repro.core.deadline import DeadlineExceeded
from repro.obs.prometheus import CONTENT_TYPE as PROMETHEUS_CONTENT_TYPE
from repro.obs.prometheus import render_prometheus
from repro.core.patterns.selection import (
    KnnSelection,
    LassoSelection,
    RadiusSelection,
    RectSelection,
)
from repro.core.pipeline import VapSession
from repro.core.shift.flow import major_flows
from repro.data.generator.city import CityLayout
from repro.data.timeseries import HourWindow
from repro.db.spatial import BBox
from repro.jobs import (
    ArtifactError,
    ArtifactStore,
    JobQueueFull,
    JobService,
)
from repro.server import json_codec
from repro.resilience.breaker import BreakerOpen
from repro.resilience.faults import active_injector
from repro.resilience.retry import RetryExhausted
from repro.server.middleware import BackpressureMiddleware, MetricsMiddleware
from repro.server.router import MethodNotAllowed, Router
from repro.tenancy import QuotaExceeded, TenantRegistry

_STATUS = {
    200: "200 OK",
    202: "202 Accepted",
    400: "400 Bad Request",
    404: "404 Not Found",
    405: "405 Method Not Allowed",
    429: "429 Too Many Requests",
    500: "500 Internal Server Error",
    503: "503 Service Unavailable",
}

# Observability endpoints are never charged against a tenant quota — an
# over-quota tenant must stay diagnosable.  Prefix-matched so the trace
# and profile sub-paths (/api/traces/<id>) are covered too.  Shared with
# the stock SLOs, which exclude the same routes from their scope.
_UNCHARGED_PREFIXES = obs.OBSERVABILITY_ROUTE_PREFIXES


@dataclass(slots=True)
class RawResponse:
    """A handler result served as-is instead of being JSON-encoded."""

    body: bytes
    content_type: str = "application/octet-stream"
    status: int = 200
    headers: list[tuple[str, str]] = field(default_factory=list)


class ApiError(Exception):
    """Handler-raised error carrying an HTTP status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class Request:
    """Parsed request: query params, tenant and (for POST) JSON body.

    ``tenant`` and ``session`` are filled in by the dispatcher after
    tenant resolution; handlers read :attr:`session` instead of the
    app-level default so every request operates on its own tenant's
    isolated database and caches.
    """

    def __init__(self, environ: dict) -> None:
        self.method = environ.get("REQUEST_METHOD", "GET").upper()
        self.path = environ.get("PATH_INFO", "/")
        self.query: dict[str, str] = {
            k: v[-1] for k, v in parse_qs(environ.get("QUERY_STRING", "")).items()
        }
        self.tenant_header: str | None = environ.get("HTTP_X_TENANT")
        self.tenant: str | None = None
        self.session: VapSession | None = None
        self.body: object = None
        try:
            length = int(environ.get("CONTENT_LENGTH") or 0)
        except (TypeError, ValueError):
            raise ApiError(
                400,
                f"malformed Content-Length header: "
                f"{environ.get('CONTENT_LENGTH')!r}",
            ) from None
        if length > 0 and "wsgi.input" in environ:
            raw = environ["wsgi.input"].read(length)
            try:
                self.body = json_codec.loads(raw)
            except ValueError as exc:
                raise ApiError(400, f"malformed JSON body: {exc}") from exc

    def param_int(self, name: str, default: int | None = None) -> int:
        if name not in self.query:
            if default is None:
                raise ApiError(400, f"missing required parameter {name!r}")
            return default
        try:
            return int(self.query[name])
        except ValueError:
            raise ApiError(400, f"parameter {name!r} must be an integer") from None

    def param_float(self, name: str, default: float | None = None) -> float:
        if name not in self.query:
            if default is None:
                raise ApiError(400, f"missing required parameter {name!r}")
            return default
        try:
            value = float(self.query[name])
        except ValueError:
            raise ApiError(400, f"parameter {name!r} must be a number") from None
        # "nan"/"inf" parse as floats but poison every downstream kernel
        # (a NaN bandwidth slips past > 0 guards and yields a 200 full of
        # NaNs), so the request layer rejects them outright.
        if not math.isfinite(value):
            raise ApiError(
                400, f"parameter {name!r} must be a finite number"
            )
        return value

    def param_opt_int(self, name: str) -> int | None:
        """Optional integer parameter: ``None`` when absent, 400 when
        present but unparsable."""
        if name not in self.query:
            return None
        return self.param_int(name)

    def param_str(self, name: str, default: str | None = None) -> str:
        if name not in self.query:
            if default is None:
                raise ApiError(400, f"missing required parameter {name!r}")
            return default
        return self.query[name]


class VapApp:
    """WSGI application over one :class:`~repro.core.pipeline.VapSession`.

    Every request flows through a
    :class:`~repro.server.middleware.MetricsMiddleware` that records
    per-route counters and latency histograms into :attr:`metrics` —
    the session's registry unless an explicit one is given — and
    ``GET /api/metrics`` exposes the snapshot.

    The app is safe to serve from multiple threads: the session's caches
    are single-flight, and ``max_inflight``/``deadline_seconds`` wire a
    :class:`~repro.server.middleware.BackpressureMiddleware` between the
    metrics layer and the handlers, so overload answers ``503`` +
    ``Retry-After`` instead of queueing unboundedly.
    """

    def __init__(
        self,
        session: VapSession | None = None,
        layout: CityLayout | None = None,
        registry: obs.MetricsRegistry | None = None,
        window_store: obs.TimeWindowStore | None = None,
        slow_log: obs.SlowOpLog | None = None,
        max_inflight: int | None = None,
        deadline_seconds: float | None = None,
        retry_after_seconds: float = 1.0,
        tenants: TenantRegistry | None = None,
        slo_engine: obs.SloEngine | None = None,
        profiler: obs.StackProfiler | None = None,
        jobs: JobService | None = None,
        jobs_root: str | None = None,
        job_workers: int = 2,
    ) -> None:
        if session is None and tenants is None:
            raise ValueError("VapApp needs a session or a tenant registry")
        if tenants is None:
            # Single-tenant deployment: the given session becomes the
            # registry's default tenant, so the tenant-routing code path
            # is identical in both shapes.
            tenants = TenantRegistry(metrics=registry)
            tenants.add(tenants.default_tenant, session)
        self.tenants = tenants
        if session is None:
            names = tenants.names()
            if not names:
                raise ValueError("tenant registry has no tenants")
            default = (
                tenants.default_tenant
                if tenants.default_tenant in tenants
                else names[0]
            )
            session = tenants.session(default)
        self.session = session
        self.layout = layout
        self._metrics = registry
        self._window_store = window_store
        self._slow_log = slow_log
        # Every app gets an SLO engine (stock availability + latency
        # objectives) so /api/telemetry's slo block is always present;
        # pass one with a dispatcher to get burn-rate alert delivery.
        self.slo_engine = (
            slo_engine if slo_engine is not None else obs.SloEngine()
        )
        self.profiler = profiler
        # The async job service shares the app's tenant registry (same
        # quotas, same sessions).  When none is injected, one is built
        # over a throwaway artifact root — worker threads start lazily
        # on first submit, so an app that never sees a job pays nothing.
        if jobs is None:
            import tempfile

            root = jobs_root or tempfile.mkdtemp(prefix="repro-jobs-")
            jobs = JobService(
                self.tenants,
                ArtifactStore(root),
                workers=job_workers,
                metrics=registry,
                layout=layout,
            )
        self.jobs = jobs
        self.router = Router()
        self._register()
        self._backpressure = BackpressureMiddleware(
            self._dispatch,
            max_inflight=max_inflight,
            deadline_seconds=deadline_seconds,
            retry_after_seconds=retry_after_seconds,
            registry=lambda: self.metrics,
        )
        self._pipeline = MetricsMiddleware(
            self._backpressure,
            registry=lambda: self.metrics,
            route_resolver=self.router.pattern_of,
            window_store=window_store,
            slow_log=slow_log,
            slo_engine=self.slo_engine,
        )
        self._start_time = self.metrics.clock()

    @property
    def metrics(self) -> obs.MetricsRegistry:
        """The registry requests are recorded into."""
        return self._metrics if self._metrics is not None else self.session.metrics

    @property
    def window_store(self) -> obs.TimeWindowStore:
        """The rolling window store telemetry reads (default unless given)."""
        return (
            self._window_store
            if self._window_store is not None
            else obs.get_window_store()
        )

    @property
    def slow_log(self) -> obs.SlowOpLog:
        """The slow-op log telemetry reads (default unless given)."""
        return self._slow_log if self._slow_log is not None else obs.get_slow_log()

    @property
    def uptime_seconds(self) -> float:
        """Seconds since this app was constructed (registry clock)."""
        return max(self.metrics.clock() - self._start_time, 0.0)

    # ------------------------------------------------------------------
    # WSGI plumbing
    # ------------------------------------------------------------------
    def __call__(self, environ: dict, start_response: Callable) -> Iterable[bytes]:
        return self._pipeline(environ, start_response)

    def _resolve_tenant(self, request: Request) -> None:
        """Fill ``request.tenant``/``request.session`` from the
        ``X-Tenant`` header or ``tenant=`` parameter (header wins; a
        disagreement between the two is a client error), charging the
        tenant's quota for non-observability endpoints.

        On ``/api/traces`` the ``tenant=`` parameter stays with the
        handler as a trace-search filter, so selection there is
        header-only (other observability endpoints keep the parameter:
        ``/api/health?tenant=x`` still selects a tenant)."""
        header = request.tenant_header
        filter_only = request.path.startswith("/api/traces")
        param = None if filter_only else request.query.get("tenant")
        if header is not None and param is not None and header != param:
            raise ApiError(
                400,
                f"X-Tenant header ({header!r}) and tenant parameter "
                f"({param!r}) disagree",
            )
        name = header or param or self.tenants.default_tenant
        try:
            request.session = self.tenants.session(name)
        except KeyError:
            raise ApiError(404, f"unknown tenant {name!r}") from None
        request.tenant = name
        if not request.path.startswith(_UNCHARGED_PREFIXES):
            self.tenants.charge(name)

    def _dispatch(self, environ: dict, start_response: Callable) -> Iterable[bytes]:
        extra_headers: list[tuple[str, str]] = []
        try:
            request = Request(environ)
            matched = self.router.match(request.method, request.path)
            if matched is None:
                raise ApiError(404, f"no such endpoint: {request.path}")
            self._resolve_tenant(request)
            # Expose the resolved tenant to the metrics middleware (for
            # the span/slow-op/SLO labels) and bind it to the context so
            # everything the handler runs — including scatter workers
            # re-binding a captured TraceContext — carries it.
            environ["repro.tenant"] = request.tenant
            handler, params = matched
            with obs.bind_tenant(request.tenant):
                payload = handler(request, **params)
            status = 200
        except ApiError as exc:
            payload = {"error": exc.message}
            status = exc.status
        except QuotaExceeded as exc:
            payload = {"error": str(exc), "tenant": exc.tenant}
            status = 429
            extra_headers.append(
                ("Retry-After", str(self._backpressure.retry_after))
            )
        except MethodNotAllowed:
            payload = {"error": "method not allowed"}
            status = 405
        except DeadlineExceeded as exc:
            # Graceful degradation: the request ran out of budget before
            # (or while waiting on) a heavy kernel — tell the client to
            # come back rather than hold the worker longer.
            payload = {"error": str(exc)}
            status = 503
            extra_headers.append(
                ("Retry-After", str(self._backpressure.retry_after))
            )
        except BreakerOpen as exc:
            # The kernel's circuit is open and the session had no cached
            # result to degrade to: shed with an honest Retry-After —
            # the breaker's remaining open window when it can say, the
            # backpressure constant otherwise.
            retry_after = self._breaker_retry_after(exc)
            payload = {
                "error": str(exc),
                "breaker": exc.name,
                "retry_after_seconds": retry_after,
            }
            status = 503
            extra_headers.append(("Retry-After", str(retry_after)))
        except JobQueueFull as exc:
            # The job queue is a shedding bound like request inflight:
            # tell the client to resubmit later rather than queueing
            # unboundedly.
            payload = {"error": str(exc), "depth": exc.depth, "limit": exc.limit}
            status = 503
            extra_headers.append(
                ("Retry-After", str(self._backpressure.retry_after))
            )
        except ValueError as exc:
            # Model-layer validation errors surface as 400s.
            payload = {"error": str(exc)}
            status = 400
        except (RetryExhausted, OSError) as exc:
            # A transient infrastructure failure survived the retry
            # layer: answer 503 so clients back off and try again,
            # rather than letting the worker die with a 500.
            payload = {"error": f"transient failure: {exc}"}
            status = 503
            extra_headers.append(
                ("Retry-After", str(self._backpressure.retry_after))
            )
        if isinstance(payload, RawResponse):
            start_response(
                _STATUS[payload.status],
                [
                    ("Content-Type", payload.content_type),
                    ("Content-Length", str(len(payload.body))),
                    *payload.headers,
                ],
            )
            return [payload.body]
        body = json_codec.dumps(payload).encode("utf-8")
        start_response(
            _STATUS[status],
            [
                ("Content-Type", "application/json"),
                ("Content-Length", str(len(body))),
                *extra_headers,
            ],
        )
        return [body]

    def _breaker_retry_after(self, exc: BreakerOpen) -> int:
        """``Retry-After`` seconds for a breaker-open 503.

        Derived from the breaker's remaining open window (rounded up, at
        least 1s so clients always back off); the backpressure constant
        when the breaker could not say (e.g. a half-open trial-budget
        refusal, where a probe slot frees up almost immediately).
        """
        if exc.retry_after is not None and exc.retry_after > 0:
            return max(1, math.ceil(exc.retry_after))
        return self._backpressure.retry_after

    # ------------------------------------------------------------------
    # handlers
    # ------------------------------------------------------------------
    def _register(self) -> None:
        r = self.router
        r.add("GET", "/api/health", self.health)
        r.add("GET", "/api/quality", self.quality)
        r.add("GET", "/api/zones", self.zones)
        r.add("GET", "/api/customers", self.customers)
        r.add("GET", "/api/customers/<int:customer_id>", self.customer)
        r.add(
            "GET", "/api/customers/<int:customer_id>/readings", self.readings
        )
        r.add("GET", "/api/embedding", self.embedding)
        r.add("POST", "/api/selection", self.selection)
        r.add("GET", "/api/density", self.density)
        r.add("GET", "/api/shift", self.shift)
        r.add("GET", "/api/sweep/granularity", self.sweep_granularity)
        r.add("GET", "/api/sweep/quantile", self.sweep_quantile)
        r.add("GET", "/api/rollups", self.rollups)
        r.add("POST", "/api/rollups/rebuild", self.rollups_rebuild)
        r.add("GET", "/api/kmeans", self.kmeans)
        r.add("POST", "/api/sql", self.sql)
        r.add(
            "GET", "/api/customers/<int:customer_id>/forecast", self.forecast
        )
        r.add("GET", "/api/proposals", self.proposals)
        r.add("POST", "/api/jobs", self.jobs_submit)
        r.add("GET", "/api/jobs", self.jobs_list)
        r.add("GET", "/api/jobs/<job_id>", self.job_status)
        r.add("DELETE", "/api/jobs/<job_id>", self.job_cancel)
        r.add("POST", "/api/jobs/<job_id>/resume", self.job_resume)
        r.add("GET", "/api/jobs/<job_id>/artifact", self.job_artifact)
        r.add("GET", "/api/metrics", self.metrics_snapshot)
        r.add("GET", "/api/telemetry", self.telemetry)
        r.add("GET", "/api/traces", self.traces)
        r.add("GET", "/api/traces/<trace_id>", self.trace)
        r.add("GET", "/api/profile", self.profile)

    def metrics_snapshot(self, request: Request) -> dict | RawResponse:
        """Observability snapshot: counters, gauges, histograms, spans.

        ``?format=prometheus`` returns the registry part as Prometheus
        text exposition instead of JSON.  In the JSON form, span trees
        appear only when the process tracer exports to a
        :class:`~repro.obs.RingBufferSink` (``?spans=N`` bounds how many
        recent roots are included, default 20), and ``span_sink`` reports
        the sink's exported/dropped counts so span loss under load is
        visible.
        """
        fmt = request.param_str("format", "json")
        if fmt == "prometheus":
            text = render_prometheus(self.metrics.snapshot())
            return RawResponse(
                text.encode("utf-8"), content_type=PROMETHEUS_CONTENT_TYPE
            )
        if fmt != "json":
            raise ApiError(400, f"unknown format {fmt!r}; use json or prometheus")
        snapshot = self.metrics.snapshot()
        limit = request.param_int("spans", 20)
        sink = obs.get_tracer().sink
        if isinstance(sink, obs.RingBufferSink):
            snapshot["span_sink"] = {
                "exported": sink.n_exported,
                "dropped": sink.n_dropped,
                "buffered": len(sink),
                "capacity": sink.capacity,
            }
            if limit > 0:
                snapshot["spans"] = [
                    r.to_record() for r in sink.records()[-limit:]
                ]
        return snapshot

    def _trace_store(self) -> obs.TraceStore:
        store = obs.get_trace_store()
        if store is None:
            raise ApiError(
                404,
                "tracing is not enabled; configure a trace store "
                "(repro serve does this by default)",
            )
        return store

    def traces(self, request: Request) -> dict:
        """Finished traces, newest first; filters ``request_id``,
        ``tenant``, ``min_duration_ms``, ``limit`` (default 50)."""
        store = self._trace_store()
        roots = store.traces(
            request_id=request.query.get("request_id"),
            tenant=request.query.get("tenant"),
            min_duration_ms=request.param_float("min_duration_ms", 0.0),
            limit=request.param_int("limit", 50),
        )
        return {
            "count": len(roots),
            "stored": len(store),
            "dropped_fragments": store.dropped_fragments,
            "traces": [
                {
                    "trace_id": root.trace_id,
                    "name": root.name,
                    "request_id": root.request_id,
                    "tenant": root.tenant,
                    "duration_ms": round(root.duration * 1000.0, 3),
                    "n_spans": sum(1 for _ in root.walk()),
                    "error": root.error,
                }
                for root in roots
            ],
        }

    def trace(self, request: Request, trace_id: str) -> dict:
        """One assembled trace tree by id."""
        root = self._trace_store().get(trace_id)
        if root is None:
            raise ApiError(404, f"unknown trace {trace_id!r}")
        return {"trace": root.to_record()}

    def profile(self, request: Request) -> dict | RawResponse:
        """Sample the process for ``seconds`` and return the profile.

        ``?format=folded`` (default) returns folded-stack text;
        ``?format=svg`` a standalone flamegraph; ``?format=json`` the
        raw counts.  With a continuous profiler running (``repro serve
        --profile-hz``) the window is a delta of its samples; otherwise
        a burst sampler runs inline at ``hz`` (default 100).
        """
        seconds = request.param_float("seconds", 2.0)
        if not 0 < seconds <= 60:
            raise ApiError(400, "seconds must be in (0, 60]")
        hz = request.param_float("hz", 100.0)
        if not 0 < hz <= 1000:
            raise ApiError(400, "hz must be in (0, 1000]")
        fmt = request.param_str("format", "folded")
        if fmt not in ("folded", "svg", "json"):
            raise ApiError(
                400, f"unknown format {fmt!r}; use folded, svg or json"
            )
        profiler = (
            self.profiler
            if self.profiler is not None
            else obs.StackProfiler(hz=0.0)
        )
        counts = profiler.collect(seconds, hz=hz)
        if fmt == "json":
            return {
                "seconds": seconds,
                "continuous": profiler.running,
                "stacks": counts,
            }
        if fmt == "svg":
            from repro.viz.flamegraph import render_flamegraph

            svg = render_flamegraph(
                counts, title=f"repro profile ({seconds:g}s)"
            )
            return RawResponse(
                svg.encode("utf-8"), content_type="image/svg+xml"
            )
        from repro.obs.profiler import render_folded

        return RawResponse(
            render_folded(counts).encode("utf-8"),
            content_type="text/plain; charset=utf-8",
        )

    def telemetry(self, request: Request) -> dict | RawResponse:
        """Self-monitoring dashboard data from the rolling window store.

        ``?format=svg`` renders the SVG telemetry panel instead of JSON;
        ``?top=N`` bounds the slow-op list (default 10).
        """
        fmt = request.param_str("format", "json")
        payload = self.telemetry_payload(top=request.param_int("top", 10))
        if fmt == "svg":
            from repro.viz.telemetry import render_telemetry_panel

            svg = render_telemetry_panel(payload).render_document()
            return RawResponse(
                svg.encode("utf-8"), content_type="image/svg+xml"
            )
        if fmt != "json":
            raise ApiError(400, f"unknown format {fmt!r}; use json or svg")
        return payload

    def telemetry_payload(self, top: int = 10) -> dict:
        """The ``/api/telemetry`` JSON document (also feeds the SVG)."""
        from repro.server.middleware import WINDOW_ERROR_SERIES, WINDOW_SERIES

        store = self.window_store
        requests_overall = store.series(WINDOW_SERIES)
        by_route = []
        errors = []
        for name, labels in store.keys():
            if name == WINDOW_SERIES and labels:
                by_route.append(store.series(name, **labels))
            elif name == WINDOW_ERROR_SERIES:
                errors.append(store.series(name, **labels))
        snapshot = self.metrics.snapshot()
        cache: dict[str, dict[str, float]] = {}
        for record in snapshot["counters"]:
            if record["name"] != "pipeline_cache_total":
                continue
            op = record["labels"].get("op", "?")
            entry = cache.setdefault(op, {"hit": 0.0, "miss": 0.0})
            entry[record["labels"].get("result", "miss")] = record["value"]
        for entry in cache.values():
            total = entry["hit"] + entry["miss"]
            entry["ratio"] = entry["hit"] / total if total else 0.0
        ops = [
            {
                "op": record["labels"].get("op", "?"),
                "count": record["count"],
                "mean_seconds": (
                    record["sum"] / record["count"] if record["count"] else 0.0
                ),
                "p50": record["p50"],
                "p99": record["p99"],
            }
            for record in snapshot["histograms"]
            if record["name"] == "pipeline_seconds"
        ]
        kernels = [
            {
                "kernel": record["labels"].get("kernel", "?"),
                "count": record["count"],
                "mean_seconds": (
                    record["sum"] / record["count"] if record["count"] else 0.0
                ),
                "p50": record["p50"],
                "p99": record["p99"],
            }
            for record in snapshot["histograms"]
            if record["name"] == "kernel_runtime_seconds"
        ]
        throttled = sum(
            record["value"]
            for record in snapshot["counters"]
            if record["name"] == "http_throttled_total"
        )
        inflight = next(
            (
                record["value"]
                for record in snapshot["gauges"]
                if record["name"] == "http_inflight_requests"
            ),
            0.0,
        )
        payload: dict = {
            "uptime_seconds": self.uptime_seconds,
            "version": __version__,
            "ready": len(self.session.db) > 0,
            "window_seconds": store.width_seconds,
            "requests": {"overall": requests_overall, "by_route": by_route},
            "errors": errors,
            "cache": cache,
            "ops": ops,
            "kernels": kernels,
            "backpressure": {
                "inflight": inflight,
                "throttled_total": throttled,
                "max_inflight": self._backpressure.max_inflight,
                "deadline_seconds": self._backpressure.deadline_seconds,
            },
            "resilience": self._resilience_payload(snapshot),
            "tenants": self.tenants.to_record(),
            "parallel": self._parallel_payload(snapshot),
            "sharding": self._sharding_payload(snapshot),
            "rollup": self._rollup_payload(),
            "jobs": self.jobs.to_record(),
            "slo": {"slos": self.slo_engine.evaluate()},
            "slow_ops": self.slow_log.records()[: max(top, 0)],
        }
        sink = obs.get_tracer().sink
        if isinstance(sink, obs.RingBufferSink):
            payload["span_sink"] = {
                "exported": sink.n_exported,
                "dropped": sink.n_dropped,
                "buffered": len(sink),
                "capacity": sink.capacity,
            }
        return payload

    def _parallel_payload(self, snapshot: dict) -> dict:
        """Worker-pool usage per blockwise kernel — the ``parallel``
        block of ``/api/telemetry``.

        ``budget`` is the process-wide ``REPRO_WORKERS`` setting;
        ``pools`` aggregates the ``parallel_*`` counters per pool name
        (runs, tasks, and how many runs actually forked); ``fallbacks``
        counts serial downgrades by reason."""
        from repro.parallel import pool_budget

        pools: dict[str, dict[str, float]] = {}
        fallbacks: dict[str, float] = {}
        for record in snapshot["counters"]:
            name = record["name"]
            if name == "parallel_pool_runs_total":
                pool = record["labels"].get("pool", "?")
                entry = pools.setdefault(
                    pool, {"runs": 0.0, "tasks": 0.0, "fork_runs": 0.0}
                )
                entry["runs"] += record["value"]
                if record["labels"].get("mode") == "fork":
                    entry["fork_runs"] += record["value"]
            elif name == "parallel_tasks_total":
                pool = record["labels"].get("pool", "?")
                entry = pools.setdefault(
                    pool, {"runs": 0.0, "tasks": 0.0, "fork_runs": 0.0}
                )
                entry["tasks"] += record["value"]
            elif name == "parallel_fallback_total":
                reason = record["labels"].get("reason", "?")
                fallbacks[reason] = fallbacks.get(reason, 0.0) + record["value"]
        return {
            "budget": pool_budget(1),
            "pools": pools,
            "fallbacks": fallbacks,
        }

    def _sharding_payload(self, snapshot: dict) -> dict:
        """Per-shard query load and scatter-gather fan-out counters — the
        ``sharding`` block of ``/api/telemetry``.

        Shard-labelled ``db_query_seconds`` series exist only when a
        sharded data plane is active; ``by_shard`` is empty otherwise."""
        by_shard: dict[str, dict[str, float]] = {}
        for record in snapshot["histograms"]:
            if record["name"] != "db_query_seconds":
                continue
            shard = record["labels"].get("shard")
            if shard is None:
                continue
            entry = by_shard.setdefault(
                shard, {"queries": 0.0, "seconds": 0.0}
            )
            entry["queries"] += record["count"]
            entry["seconds"] += record["sum"]
        scatter = {
            record["labels"].get("op", "?"): record["value"]
            for record in snapshot["counters"]
            if record["name"] == "db_scatter_total"
        }
        db = self.session.db
        return {
            "n_shards": getattr(db, "n_shards", 1),
            "shard_sizes": (
                {str(k): v for k, v in db.shard_sizes().items()}
                if hasattr(db, "shard_sizes")
                else {}
            ),
            "by_shard": dict(sorted(by_shard.items())),
            "scatter_queries_total": scatter,
        }

    def _rollup_payload(self, session: VapSession | None = None) -> dict:
        """Staleness block of the materialized rollup layer — the
        ``rollup`` block of ``/api/telemetry`` and the ``/api/rollups``
        body.  Every key is present whether or not the store has been
        built yet (nullable scalars), so the telemetry schema never
        flaps."""
        session = session or self.session
        info = session.rollup_status()
        status = info["status"] or {}
        return {
            "enabled": info["enabled"],
            "n_customers": status.get("n_customers"),
            "bandwidth_m": status.get("bandwidth_m"),
            "first_hour": status.get("first_hour"),
            "last_applied_hour": status.get("last_applied_hour"),
            "source_end_hour": status.get("source_end_hour"),
            "lag_hours": status.get("lag_hours"),
            "rebuilds_total": status.get("rebuilds_total"),
            "hours_applied_total": status.get("hours_applied_total"),
            "grid_builds_total": status.get("grid_builds_total"),
            "grid_adds_total": status.get("grid_adds_total"),
            "grid_refolds_total": status.get("grid_refolds_total"),
            "refold_every": status.get("refold_every"),
            "tables": status.get("tables", []),
        }

    def _resilience_payload(self, snapshot: dict) -> dict:
        """Breaker states, retry totals, degraded serves and injected
        faults — the ``resilience`` block of ``/api/telemetry``."""
        retries = {
            record["labels"].get("site", "?"): record["value"]
            for record in snapshot["counters"]
            if record["name"] == "retry_attempts_total"
        }
        degraded = {
            record["labels"].get("op", "?"): record["value"]
            for record in snapshot["counters"]
            if record["name"] == "pipeline_degraded_total"
        }
        faults = {
            f"{record['labels'].get('site', '?')}:"
            f"{record['labels'].get('kind', '?')}": record["value"]
            for record in snapshot["counters"]
            if record["name"] == "faults_injected_total"
        }
        payload: dict = {
            "breakers": {
                op: breaker.to_record()
                for op, breaker in sorted(self.session.breakers.items())
            },
            "retry_attempts_total": retries,
            "degraded_total": degraded,
            "faults_injected_total": faults,
        }
        injector = active_injector()
        if injector is not None:
            payload["fault_plan"] = {
                "seed": injector.plan.seed,
                "n_specs": len(injector.plan.specs),
                "n_injected": injector.n_injected,
                "by_site": injector.counts(),
            }
        return payload

    def health(self, request: Request) -> dict:
        span = request.session.db.time_span
        return {
            "status": "ok",
            "tenant": request.tenant,
            "ready": len(request.session.db) > 0,
            "version": __version__,
            "uptime_seconds": self.uptime_seconds,
            "n_customers": len(request.session.db),
            "start_hour": span.start_hour,
            "end_hour": span.end_hour,
        }

    def quality(self, request: Request) -> dict:
        report = request.session.quality.to_record()
        if request.session.anomalies is not None:
            report["anomalies_removed"] = {
                "spikes": request.session.anomalies.n_spikes,
                "negatives": request.session.anomalies.n_negatives,
                "stuck": request.session.anomalies.n_stuck,
            }
        return report

    def zones(self, request: Request) -> dict:
        if self.layout is None:
            raise ApiError(404, "no zone layout configured for this data set")
        return {
            "zones": [
                {
                    "name": z.name,
                    "kind": z.kind.value,
                    "center": [z.center_lon, z.center_lat],
                    "radius_deg": z.radius_deg,
                }
                for z in self.layout.zones
            ]
        }

    def customers(self, request: Request) -> dict:
        db = request.session.db
        ids: list[int]
        if "bbox" in request.query:
            parts = request.query["bbox"].split(",")
            if len(parts) != 4:
                raise ApiError(400, "bbox must be min_lon,min_lat,max_lon,max_lat")
            try:
                box = BBox(*(float(p) for p in parts))
            except ValueError as exc:
                raise ApiError(400, f"bad bbox: {exc}") from exc
            ids = [int(i) for i in db.ids_in_bbox(box)]
        else:
            ids = db.customer_ids
        zone = request.query.get("zone")
        rows = []
        for cid in ids:
            cust = db.customer(cid)
            if zone is not None and cust.zone.value != zone:
                continue
            rows.append(cust.to_record())
        return {"customers": rows, "count": len(rows)}

    def customer(self, request: Request, customer_id: int) -> dict:
        try:
            return request.session.db.customer(customer_id).to_record()
        except KeyError:
            raise ApiError(404, f"unknown customer {customer_id}") from None

    def readings(self, request: Request, customer_id: int) -> dict:
        db = request.session.db
        span = db.time_span
        start = request.param_int("start", span.start_hour)
        end = request.param_int("end", span.end_hour)
        if end < start:
            raise ApiError(400, "end must not precede start")
        try:
            series = db.readings_for([customer_id], HourWindow(start, end))
        except KeyError:
            raise ApiError(404, f"unknown customer {customer_id}") from None
        return {
            "customer_id": customer_id,
            "start_hour": series.start_hour,
            "values": series.matrix[0],
        }

    def embedding(self, request: Request) -> dict:
        workers = request.param_opt_int("workers")
        if workers is not None and workers < 1:
            raise ApiError(400, "parameter 'workers' must be >= 1")
        info, degraded = request.session.embed_degradable(
            method=request.param_str("method", "tsne"),
            metric=request.param_str("metric", "pearson"),
            perplexity=request.param_float("perplexity", 30.0),
            n_iter=request.param_int("n_iter", 500),
            seed=request.param_int("seed", 0),
            tsne_method=request.param_str("tsne_method", "auto"),
            theta=request.param_float("theta", 0.5),
            workers=workers,
            n_landmarks=request.param_opt_int("n_landmarks"),
            dtw_max_rows=request.param_opt_int("dtw_max_rows"),
        )
        payload = {
            "method": info.method,
            "metric": info.metric,
            "objective": info.objective,
            "customer_ids": request.session.series.customer_ids,
            "points": info.coords,
        }
        if degraded:
            # Breaker-open fallback: the last-good embedding, which may
            # not match the requested parameters — flagged (with the
            # served vs requested cache keys) so clients can render it
            # dimmed and retry later.
            self._mark_degraded(payload, degraded)
        return payload

    @staticmethod
    def _mark_degraded(payload: dict, degraded: dict | bool) -> None:
        """Flag a breaker-open fallback response, recording which cache
        key the served value was actually computed under."""
        payload["degraded"] = True
        if isinstance(degraded, dict):
            payload["degraded_served"] = degraded

    def selection(self, request: Request) -> dict:
        body = request.body
        if not isinstance(body, dict):
            raise ApiError(400, "selection body must be a JSON object")
        kind = body.get("type")
        try:
            if kind == "rect":
                selector = RectSelection(
                    float(body["x_min"]),
                    float(body["y_min"]),
                    float(body["x_max"]),
                    float(body["y_max"]),
                )
            elif kind == "radius":
                selector = RadiusSelection(
                    float(body["x"]), float(body["y"]), float(body["radius"])
                )
            elif kind == "knn":
                selector = KnnSelection(
                    float(body["x"]), float(body["y"]), int(body["k"])
                )
            elif kind == "lasso":
                selector = LassoSelection(
                    [(float(x), float(y)) for x, y in body["vertices"]]
                )
            else:
                raise ApiError(
                    400, f"unknown selection type {kind!r}; use rect/radius/knn/lasso"
                )
        except (KeyError, TypeError, ValueError) as exc:
            if isinstance(exc, ApiError):
                raise
            raise ApiError(400, f"bad selection geometry: {exc}") from exc
        info = request.session.embed(
            method=str(body.get("method", "tsne")),
        )
        indices = selector.apply(info.coords)
        if indices.size == 0:
            return {"indices": [], "customer_ids": [], "count": 0}
        pattern = request.session.pattern_of(indices)
        return {
            "indices": indices,
            "customer_ids": request.session.customers_of(indices),
            "count": int(indices.size),
            "pattern": pattern.archetype.value,
            "pattern_score": pattern.score,
            "profile": request.session.profile_of(indices),
        }

    def _window(self, request: Request, prefix: str) -> HourWindow:
        start = request.param_int(f"{prefix}_start")
        end = request.param_int(f"{prefix}_end")
        if end < start:
            raise ApiError(400, f"{prefix}_end must not precede {prefix}_start")
        return HourWindow(start, end)

    def _bandwidth(self, request: Request) -> float | None:
        """Optional ``bandwidth_m`` query param (Silverman when absent)."""
        if "bandwidth_m" not in request.query:
            return None
        return request.param_float("bandwidth_m")

    def density(self, request: Request) -> dict:
        window = self._window(request, "t")
        grid, degraded = request.session.density_degradable(
            window,
            bandwidth_m=self._bandwidth(request),
            method=request.param_str("kde_method", "auto"),
        )
        payload = {
            "nx": grid.spec.nx,
            "ny": grid.spec.ny,
            "bbox": [
                grid.spec.bbox.min_lon,
                grid.spec.bbox.min_lat,
                grid.spec.bbox.max_lon,
                grid.spec.bbox.max_lat,
            ],
            "values": grid.values,
            "max_cell": list(grid.max_cell()),
        }
        if degraded:
            self._mark_degraded(payload, degraded)
        return payload

    def shift(self, request: Request) -> dict:
        t1 = self._window(request, "t1")
        t2 = self._window(request, "t2")
        field, degraded = request.session.shift_degradable(
            t1,
            t2,
            bandwidth_m=self._bandwidth(request),
            method=request.param_str("kde_method", "auto"),
        )
        flows = major_flows(field)
        payload = {
            "energy": field.energy(),
            "peak_gain": list(field.peak_gain()),
            "peak_loss": list(field.peak_loss()),
            "flows": [
                {
                    "from": [f.lon, f.lat],
                    "to": list(f.tip),
                    "magnitude": f.magnitude,
                }
                for f in flows
            ],
        }
        if degraded:
            self._mark_degraded(payload, degraded)
        return payload

    @staticmethod
    def _num(value: float) -> float | None:
        """A float JSON-safe: NaN/inf (empty-sweep statistics) become
        null instead of emitting invalid JSON."""
        value = float(value)
        return value if math.isfinite(value) else None

    def sweep_granularity(self, request: Request) -> dict:
        """S2 step 1 over every tracked granularity, rollup-backed."""
        results = request.session.granularity_sweep(
            max_pairs_per_resolution=request.param_int("max_pairs", 8),
            bandwidth_m=self._bandwidth(request),
            use_rollups=request.param_str("source", "rollup") != "raw",
        )
        return {
            "results": [
                {
                    "resolution": str(r.resolution),
                    "n_window_pairs": r.n_window_pairs,
                    "mean_energy": self._num(r.mean_energy),
                    "mean_flows": self._num(r.mean_flows),
                    "peak_gain": self._num(r.peak_gain),
                    "peak_loss": self._num(r.peak_loss),
                }
                for r in results
            ],
            "count": len(results),
        }

    def sweep_quantile(self, request: Request) -> dict:
        """S2 step 2 between two windows, rollup-backed."""
        t1 = self._window(request, "t1")
        t2 = self._window(request, "t2")
        results = request.session.quantile_sweep(
            t1,
            t2,
            bandwidth_m=self._bandwidth(request),
            use_rollups=request.param_str("source", "rollup") != "raw",
        )
        return {
            "results": [
                {
                    "quantile": r.quantile,
                    "n_customers": r.n_customers,
                    "energy": self._num(r.energy),
                    "n_flows": r.n_flows,
                    "main_flow": (
                        None
                        if r.main_flow is None
                        else {
                            "from": [r.main_flow.lon, r.main_flow.lat],
                            "to": list(r.main_flow.tip),
                            "magnitude": r.main_flow.magnitude,
                        }
                    ),
                }
                for r in results
            ],
            "count": len(results),
        }

    def rollups(self, request: Request) -> dict:
        """Rollup staleness + maintenance state."""
        return self._rollup_payload(request.session)

    def rollups_rebuild(self, request: Request) -> dict:
        """Force a full rollup rebuild from the data plane."""
        request.session.rollups(rebuild=True)
        return self._rollup_payload(request.session)

    def proposals(self, request: Request) -> dict:
        """Auto-discovered selection proposals (DBSCAN over view C), each
        labelled with its pattern; params ``min_points``, ``min_size``."""
        from repro.core.patterns.autodiscover import propose_selections

        info = request.session.embed(method=request.param_str("method", "tsne"))
        proposals = propose_selections(
            info.coords,
            min_points=request.param_int("min_points", 5),
            min_size=request.param_int("min_size", 5),
        )
        out = []
        for proposal in proposals:
            label = request.session.pattern_of(proposal.indices)
            out.append(
                {
                    "cluster_id": proposal.cluster_id,
                    "size": proposal.size,
                    "center": list(proposal.center),
                    "indices": proposal.indices,
                    "pattern": label.archetype.value,
                    "pattern_score": label.score,
                }
            )
        return {"proposals": out, "count": len(out)}

    # ------------------------------------------------------------------
    # async jobs: submit → poll → artifact
    # ------------------------------------------------------------------
    def jobs_submit(self, request: Request) -> RawResponse:
        """Submit heavy work; answers ``202 Accepted`` immediately.

        Body: ``{"kind": "embed"|"render"|"export", "params": {...},
        "priority": n}``.  The response carries the job record plus a
        ``Location`` header to poll; quota and queue bounds answer 429 /
        503 like the synchronous endpoints."""
        body = request.body if request.body is not None else {}
        if not isinstance(body, dict):
            raise ApiError(400, "job submission body must be a JSON object")
        kind = body.get("kind")
        if not isinstance(kind, str):
            raise ApiError(400, 'body must carry "kind" (embed/render/export)')
        params = body.get("params", {})
        if not isinstance(params, dict):
            raise ApiError(400, '"params" must be a JSON object')
        try:
            priority = int(body.get("priority", 0))
        except (TypeError, ValueError):
            raise ApiError(400, '"priority" must be an integer') from None
        job = self.jobs.submit(request.tenant, kind, params, priority=priority)
        record = job.to_record(self.jobs.clock())
        record["poll"] = f"/api/jobs/{job.job_id}"
        return RawResponse(
            json_codec.dumps(record).encode("utf-8"),
            content_type="application/json",
            status=202,
            headers=[("Location", f"/api/jobs/{job.job_id}")],
        )

    def jobs_list(self, request: Request) -> dict:
        """The tenant's jobs, newest first."""
        now = self.jobs.clock()
        records = [
            job.to_record(now) for job in self.jobs.list_jobs(request.tenant)
        ]
        return {"jobs": records, "count": len(records)}

    def _job(self, request: Request, job_id: str):
        try:
            return self.jobs.get(request.tenant, job_id)
        except KeyError:
            raise ApiError(404, f"unknown job {job_id!r}") from None

    def job_status(self, request: Request, job_id: str) -> dict:
        """Poll one job: state, monotonic progress, ETA, artifact ref."""
        return self._job(request, job_id).to_record(self.jobs.clock())

    def job_cancel(self, request: Request, job_id: str) -> dict:
        """Cancel a job.  Queued jobs finalise immediately; running ones
        stop at their next cancellation point.  Idempotent."""
        self._job(request, job_id)  # tenant-scoped 404 before acting
        return self.jobs.cancel(request.tenant, job_id).to_record(
            self.jobs.clock()
        )

    def job_resume(self, request: Request, job_id: str) -> dict:
        """Re-queue a failed job; embedding jobs pick up from their last
        descent checkpoint (bit-identically)."""
        self._job(request, job_id)
        return self.jobs.resume(request.tenant, job_id).to_record(
            self.jobs.clock()
        )

    def job_artifact(self, request: Request, job_id: str) -> RawResponse:
        """The finished job's result bytes; 404 until it succeeds.

        ``ETag`` carries the content digest (strong validator — the
        store is content-addressed) and ``X-Job-Id`` ties the bytes back
        to the producing job."""
        job = self._job(request, job_id)
        if job.artifact is None:
            raise ApiError(
                404,
                f"job {job_id!r} has no artifact (state: {job.state})",
            )
        try:
            data = self.jobs.artifacts.get(request.tenant, job.artifact.digest)
        except ArtifactError as exc:
            raise ApiError(404, str(exc)) from None
        return RawResponse(
            data,
            content_type=job.artifact.content_type,
            headers=[
                ("ETag", f'"{job.artifact.digest}"'),
                ("X-Job-Id", job.job_id),
            ],
        )

    def forecast(self, request: Request, customer_id: int) -> dict:
        horizon = request.param_int("horizon", 24)
        if not 1 <= horizon <= 24 * 14:
            raise ApiError(400, "horizon must be between 1 and 336 hours")
        method = request.param_str("method", "profile")
        try:
            values = request.session.forecast(customer_id, horizon, method)
        except KeyError:
            raise ApiError(404, f"unknown customer {customer_id}") from None
        return {
            "customer_id": customer_id,
            "method": method,
            "start_hour": request.session.series.end_hour,
            "values": values,
        }

    def sql(self, request: Request) -> dict:
        """Ad-hoc SQL over the customers table: ``{"query": "SELECT ..."}``."""
        from repro.db.sql import SqlError

        body = request.body
        if not isinstance(body, dict) or not isinstance(body.get("query"), str):
            raise ApiError(400, 'body must be {"query": "SELECT ..."}')
        try:
            rows = request.session.db.sql(body["query"])
        except SqlError as exc:
            raise ApiError(400, f"SQL error: {exc}") from exc
        return {"rows": rows, "count": len(rows)}

    def kmeans(self, request: Request) -> dict:
        k = request.param_int("k", 5)
        algorithm = request.param_str("algorithm", "lloyd")
        result = request.session.kmeans_baseline(
            k=k, seed=request.param_int("seed", 0), algorithm=algorithm
        )
        return {
            "k": k,
            "algorithm": algorithm,
            "inertia": result.inertia,
            "n_iter": result.n_iter,
            "labels": result.labels,
            "customer_ids": request.session.series.customer_ids,
        }
