"""Serve the VAP API over HTTP with a threaded stdlib WSGI server.

Usage::

    python -m repro.server [--port 8765] [--customers 200] [--days 90]
                           [--threads 8] [--max-inflight 32]
                           [--deadline-seconds 30] [--profile-hz 100]
                           [--trace-capacity 256]

Generates a synthetic city (there is no bundled real data set) and serves
the REST API for it — the closest headless equivalent of the paper's demo
deployment.  Requests are handled by a bounded worker pool
(``--threads``); admission beyond ``--max-inflight`` concurrent requests
is shed with ``503`` + ``Retry-After``, and ``--deadline-seconds`` bounds
how long any single request may hold a worker on the heavy kernel paths.
"""

from __future__ import annotations

import argparse

from repro import obs
from repro.core.pipeline import VapSession
from repro.data.generator.simulate import CityConfig, generate_city
from repro.resilience import faults
from repro.resilience.faults import FaultPlan
from repro.server.app import VapApp
from repro.server.serving import make_threaded_server
from repro.tenancy import TenantQuota, TenantRegistry

# Module-level alias so tests (and embedders) can swap the server factory.
make_server = make_threaded_server


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--port", type=int, default=8765)
    parser.add_argument("--customers", type=int, default=200)
    parser.add_argument("--days", type=int, default=90)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--threads", type=int, default=8,
        help="worker threads handling requests concurrently (default 8)",
    )
    parser.add_argument(
        "--max-inflight", type=int, default=32,
        help="admit at most this many concurrent requests; the rest get "
             "503 + Retry-After (0 disables the cap; default 32)",
    )
    parser.add_argument(
        "--deadline-seconds", type=float, default=None,
        help="per-request time budget for the heavy kernel endpoints "
             "(unset = no deadline)",
    )
    parser.add_argument(
        "--fault-plan", type=str, default=None, metavar="PLAN",
        help="arm a deterministic fault-injection plan for chaos demos: "
             "a JSON file path, inline JSON, or compact "
             "'site=kind:rate[:seconds]' pairs (comma-separated); kinds "
             "are error/latency/truncate",
    )
    parser.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed for the fault plan's injection streams (default 0)",
    )
    parser.add_argument(
        "--shards", type=int, default=None,
        help="partition the database into this many hash shards with "
             "parallel scatter-gather queries (default: REPRO_SHARDS "
             "env var, else 1)",
    )
    parser.add_argument(
        "--tenants", type=str, default=None, metavar="NAMES",
        help="comma-separated tenant ids; each gets its own isolated "
             "city/database/caches, selected per request via the "
             "X-Tenant header or tenant= parameter (the first listed "
             "tenant is the default)",
    )
    parser.add_argument(
        "--tenant-quota", type=int, default=None, metavar="N",
        help="per-tenant request quota; beyond it requests get 429 "
             "(unset = unlimited)",
    )
    parser.add_argument(
        "--profile-hz", type=float, default=0.0, metavar="HZ",
        help="run the continuous stack-sampling profiler at this rate; "
             "0 disables it (GET /api/profile then burst-samples on "
             "demand)",
    )
    parser.add_argument(
        "--trace-capacity", type=int, default=256, metavar="N",
        help="finished traces retained for GET /api/traces (default 256; "
             "0 disables tracing)",
    )
    parser.add_argument(
        "--jobs-root", type=str, default=None, metavar="DIR",
        help="directory for async-job artifacts and checkpoints "
             "(default: a throwaway temp directory)",
    )
    parser.add_argument(
        "--job-workers", type=int, default=2, metavar="N",
        help="worker threads for the async job service (default 2)",
    )
    args = parser.parse_args(argv)

    injector = None
    if args.fault_plan is not None:
        plan = FaultPlan.load(args.fault_plan, seed=args.fault_seed)
        injector = faults.install(plan)

    # Tracing is on by default for the served deployment: ids + trace
    # store for /api/traces, ring-buffer sink for /api/metrics spans.
    trace_store = None
    if args.trace_capacity > 0:
        trace_store = obs.TraceStore(max_traces=args.trace_capacity)
        obs.configure(sink=obs.RingBufferSink(), trace_store=trace_store)
    profiler = None
    if args.profile_hz > 0:
        profiler = obs.StackProfiler(hz=args.profile_hz)
        profiler.start()

    city = generate_city(
        CityConfig(n_customers=args.customers, n_days=args.days, seed=args.seed)
    )
    tenants = None
    if args.tenants:
        quota = (
            TenantQuota(max_requests=args.tenant_quota)
            if args.tenant_quota is not None
            else None
        )
        names = [name.strip() for name in args.tenants.split(",") if name.strip()]
        tenants = TenantRegistry(default_tenant=names[0])
        for offset, name in enumerate(names):
            # Distinct seeds per tenant: isolation is visible, not just
            # asserted.
            tenant_city = city if offset == 0 else generate_city(
                CityConfig(
                    n_customers=args.customers, n_days=args.days,
                    seed=args.seed + offset,
                )
            )
            tenants.create_from_city(
                name, tenant_city, shards=args.shards, quota=quota
            )
        session = None
    else:
        session = VapSession.from_city(city, shards=args.shards)
    app = VapApp(
        session,
        layout=city.layout,
        max_inflight=args.max_inflight if args.max_inflight > 0 else None,
        deadline_seconds=args.deadline_seconds,
        tenants=tenants,
        profiler=profiler,
        jobs_root=args.jobs_root,
        job_workers=args.job_workers,
    )
    with make_server("127.0.0.1", args.port, app, threads=args.threads) as server:
        base = f"http://127.0.0.1:{args.port}"
        print(
            f"VAP API listening on {base}/api/health "
            f"({args.threads} worker threads, "
            f"max {args.max_inflight or 'unbounded'} in flight)"
        )
        print(f"  metrics:   {base}/api/metrics  (?format=prometheus)")
        print(f"  telemetry: {base}/api/telemetry  (?format=svg)")
        if trace_store is not None:
            print(f"  traces:    {base}/api/traces  (/api/traces/<id>)")
        print(
            f"  profile:   {base}/api/profile  (?seconds=N&format=svg)"
            + (f"  [continuous @ {args.profile_hz:g} hz]" if profiler else "")
        )
        print(
            f"  jobs:      {base}/api/jobs  "
            f"({args.job_workers} job workers; POST to submit)"
        )
        if args.shards is not None and args.shards > 1:
            print(f"  sharding:  {args.shards} hash shards (scatter-gather)")
        if tenants is not None:
            print(
                f"  tenants:   {', '.join(tenants.names())} "
                f"(select with X-Tenant header or tenant= param)"
            )
        if injector is not None:
            sites = ", ".join(
                f"{s.site}={s.kind}:{s.rate}" for s in injector.plan.specs
            )
            print(
                f"  chaos:     fault plan armed (seed "
                f"{injector.plan.seed}): {sites}"
            )
        server.serve_forever()


if __name__ == "__main__":
    main()
