"""Serve the VAP API over HTTP with the stdlib WSGI server.

Usage::

    python -m repro.server [--port 8765] [--customers 200] [--days 90]

Generates a synthetic city (there is no bundled real data set) and serves
the REST API for it — the closest headless equivalent of the paper's demo
deployment.
"""

from __future__ import annotations

import argparse
from wsgiref.simple_server import make_server

from repro.core.pipeline import VapSession
from repro.data.generator.simulate import CityConfig, generate_city
from repro.server.app import VapApp


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--port", type=int, default=8765)
    parser.add_argument("--customers", type=int, default=200)
    parser.add_argument("--days", type=int, default=90)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    city = generate_city(
        CityConfig(n_customers=args.customers, n_days=args.days, seed=args.seed)
    )
    session = VapSession.from_city(city)
    app = VapApp(session, layout=city.layout)
    with make_server("127.0.0.1", args.port, app) as server:
        base = f"http://127.0.0.1:{args.port}"
        print(f"VAP API listening on {base}/api/health")
        print(f"  metrics:   {base}/api/metrics  (?format=prometheus)")
        print(f"  telemetry: {base}/api/telemetry  (?format=svg)")
        server.serve_forever()


if __name__ == "__main__":
    main()
