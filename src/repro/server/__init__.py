"""The logic layer's RESTful JSON API.

The paper: "RESTful APIs are implemented to exchange JSON-formatted data
between client and server."  :class:`~repro.server.app.VapApp` is a plain
WSGI application (stdlib only) exposing the data and model operations;
:class:`~repro.server.client.TestClient` drives it in-process, and
``python -m repro.server`` serves it with ``wsgiref`` for a real browser.
"""

from repro.server.app import VapApp
from repro.server.client import TestClient
from repro.server.middleware import MetricsMiddleware

__all__ = ["MetricsMiddleware", "TestClient", "VapApp"]
