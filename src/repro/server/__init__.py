"""The logic layer's RESTful JSON API.

The paper: "RESTful APIs are implemented to exchange JSON-formatted data
between client and server."  :class:`~repro.server.app.VapApp` is a plain
WSGI application (stdlib only) exposing the data and model operations;
:class:`~repro.server.client.TestClient` drives it in-process, and
``python -m repro.server`` serves it concurrently with a pooled threaded
WSGI server (:mod:`repro.server.serving`) plus backpressure
(:class:`~repro.server.middleware.BackpressureMiddleware`).
"""

from repro.server.app import VapApp
from repro.server.client import TestClient
from repro.server.middleware import BackpressureMiddleware, MetricsMiddleware
from repro.server.serving import PooledWSGIServer, make_threaded_server

__all__ = [
    "BackpressureMiddleware",
    "MetricsMiddleware",
    "PooledWSGIServer",
    "TestClient",
    "VapApp",
    "make_threaded_server",
]
