"""WSGI timing middleware: one counter and one histogram per request.

Wraps any WSGI callable and records, for every request,

- ``http_requests_total{method, route, status}`` — request count,
- ``http_errors_total{route, status}`` — 4xx/5xx subset,
- ``http_request_seconds{route}`` — latency histogram,

plus an ``http.request`` trace span when the tracer has a real sink.
The response passes through byte-for-byte — error bodies, headers and
status codes are untouched.

Requests are tagged with the *declared route pattern* (e.g.
``/api/customers/<int:customer_id>``), not the raw path, so per-customer
URLs don't explode the label space; a resolver callable supplies the
pattern and unmatched paths fall under ``<unmatched>``.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro import obs

UNMATCHED = "<unmatched>"


class MetricsMiddleware:
    """Times each request into a metrics registry.

    Parameters
    ----------
    app:
        The wrapped WSGI callable.
    registry:
        A :class:`~repro.obs.MetricsRegistry`, or a zero-argument callable
        returning one (resolved per request, so late configuration wins).
        The process-wide default registry when omitted.
    route_resolver:
        ``(method, path) -> pattern | None`` used for the ``route`` label;
        raw paths collapse to :data:`UNMATCHED` when it returns None.
        Without a resolver every request is labelled with its raw path.
    clock:
        Monotonic-seconds callable; defaults to the registry's clock.
    """

    def __init__(
        self,
        app: Callable,
        registry: obs.MetricsRegistry | Callable[[], obs.MetricsRegistry] | None = None,
        route_resolver: Callable[[str, str], str | None] | None = None,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self.app = app
        self._registry = registry
        self.route_resolver = route_resolver
        self._clock = clock

    def _resolve_registry(self) -> obs.MetricsRegistry:
        if self._registry is None:
            return obs.get_registry()
        if callable(self._registry) and not isinstance(
            self._registry, obs.MetricsRegistry
        ):
            return self._registry()
        return self._registry

    def __call__(self, environ: dict, start_response: Callable) -> Iterable[bytes]:
        registry = self._resolve_registry()
        clock = self._clock if self._clock is not None else registry.clock
        method = environ.get("REQUEST_METHOD", "GET").upper()
        path = environ.get("PATH_INFO", "/")
        if self.route_resolver is not None:
            route = self.route_resolver(method, path) or UNMATCHED
        else:
            route = path
        captured: dict[str, str] = {}

        def recording_start_response(status, headers, exc_info=None):
            captured["status"] = status.split(" ", 1)[0]
            if exc_info is not None:
                return start_response(status, headers, exc_info)
            return start_response(status, headers)

        start = clock()
        with obs.span("http.request", method=method, route=route) as span_rec:
            chunks = self.app(environ, recording_start_response)
            try:
                # Materialise so the timing covers body generation too.
                body = b"".join(chunks)
            finally:
                closer = getattr(chunks, "close", None)
                if closer is not None:
                    closer()
            status = captured.get("status", "500")
            if span_rec is not None:
                span_rec.tags["status"] = status
        elapsed = clock() - start

        registry.counter(
            "http_requests_total", method=method, route=route, status=status
        ).inc()
        if int(status) >= 400:
            registry.counter("http_errors_total", route=route, status=status).inc()
        registry.histogram("http_request_seconds", route=route).observe(elapsed)
        return [body]
