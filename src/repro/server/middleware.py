"""WSGI observability middleware: metrics, logs and windows per request.

Wraps any WSGI callable and, for every request,

- binds a *request ID* (honouring an incoming ``X-Request-ID`` header,
  generating one otherwise) to the logging context variable, so every
  span, log line and slow-op record produced while handling the request
  carries the same ID — and echoes it back as an ``X-Request-ID``
  response header;
- records ``http_requests_total{method, route, status}``,
  ``http_errors_total{route, status}`` (4xx/5xx subset) and the
  ``http_request_seconds{route}`` latency histogram;
- records the request into the rolling time-window store (overall and
  per-route series, plus an error series) for ``GET /api/telemetry``;
- offers the request to the slow-op log and emits one structured JSON
  log line (``http.request``) with method, route, status and latency;
- opens an ``http.request`` trace span when the tracer has a real sink.

The response passes through byte-for-byte — error bodies, headers and
status codes are untouched.

Requests are tagged with the *declared route pattern* (e.g.
``/api/customers/<int:customer_id>``), not the raw path, so per-customer
URLs don't explode the label space; a resolver callable supplies the
pattern and unmatched paths fall under ``<unmatched>``.

:class:`BackpressureMiddleware` adds the load-shedding half of the
concurrent serving story: a hard in-flight request cap answered with
``503`` + ``Retry-After`` instead of unbounded queueing, and a
per-request deadline bound into the context for the heavy kernel paths
(see :mod:`repro.core.deadline`).
"""

from __future__ import annotations

import json
import math
import threading
from typing import Callable, Iterable

from repro import obs
from repro.core.deadline import Deadline, bind_deadline
from repro.obs.logging import bind_request_id, new_request_id

UNMATCHED = "<unmatched>"

# Overall request series in the window store (no labels); per-route
# series use the same name with a route label.
WINDOW_SERIES = "http_request"
WINDOW_ERROR_SERIES = "http_error"


class MetricsMiddleware:
    """Times, logs and correlates each request.

    Parameters
    ----------
    app:
        The wrapped WSGI callable.
    registry:
        A :class:`~repro.obs.MetricsRegistry`, or a zero-argument callable
        returning one (resolved per request, so late configuration wins).
        The process-wide default registry when omitted.
    route_resolver:
        ``(method, path) -> pattern | None`` used for the ``route`` label;
        raw paths collapse to :data:`UNMATCHED` when it returns None.
        Without a resolver every request is labelled with its raw path.
    clock:
        Monotonic-seconds callable; defaults to the registry's clock.
    window_store:
        Rolling :class:`~repro.obs.TimeWindowStore` receiving per-window
        request/latency series; the process-wide default when omitted.
    slow_log:
        :class:`~repro.obs.SlowOpLog` receiving every request (it keeps
        only the slowest); the process-wide default when omitted.
    logger:
        :class:`~repro.obs.JsonLogger` for the per-request log line; the
        process-wide default when omitted.
    slo_engine:
        Optional :class:`~repro.obs.slo.SloEngine`; every finished
        request is observed against its SLOs (5xx counts as an error)
        and burn-rate rules are re-checked on its throttled schedule.
    """

    def __init__(
        self,
        app: Callable,
        registry: obs.MetricsRegistry | Callable[[], obs.MetricsRegistry] | None = None,
        route_resolver: Callable[[str, str], str | None] | None = None,
        clock: Callable[[], float] | None = None,
        window_store: obs.TimeWindowStore | None = None,
        slow_log: obs.SlowOpLog | None = None,
        logger: obs.JsonLogger | None = None,
        slo_engine: obs.SloEngine | None = None,
    ) -> None:
        self.app = app
        self._registry = registry
        self.route_resolver = route_resolver
        self._clock = clock
        self._window_store = window_store
        self._slow_log = slow_log
        self._logger = logger
        self.slo_engine = slo_engine

    def _resolve_registry(self) -> obs.MetricsRegistry:
        if self._registry is None:
            return obs.get_registry()
        if callable(self._registry) and not isinstance(
            self._registry, obs.MetricsRegistry
        ):
            return self._registry()
        return self._registry

    @property
    def window_store(self) -> obs.TimeWindowStore:
        return (
            self._window_store
            if self._window_store is not None
            else obs.get_window_store()
        )

    @property
    def slow_log(self) -> obs.SlowOpLog:
        return self._slow_log if self._slow_log is not None else obs.get_slow_log()

    @property
    def logger(self) -> obs.JsonLogger:
        return self._logger if self._logger is not None else obs.get_logger()

    def __call__(self, environ: dict, start_response: Callable) -> Iterable[bytes]:
        registry = self._resolve_registry()
        clock = self._clock if self._clock is not None else registry.clock
        method = environ.get("REQUEST_METHOD", "GET").upper()
        path = environ.get("PATH_INFO", "/")
        if self.route_resolver is not None:
            route = self.route_resolver(method, path) or UNMATCHED
        else:
            route = path
        request_id = environ.get("HTTP_X_REQUEST_ID") or new_request_id()
        captured: dict[str, str] = {}

        def recording_start_response(status, headers, exc_info=None):
            captured["status"] = status.split(" ", 1)[0]
            headers = list(headers) + [("X-Request-ID", request_id)]
            if exc_info is not None:
                return start_response(status, headers, exc_info)
            return start_response(status, headers)

        with bind_request_id(request_id):
            start = clock()
            with obs.span("http.request", method=method, route=route) as span_rec:
                chunks = self.app(environ, recording_start_response)
                try:
                    # Materialise so the timing covers body generation too.
                    body = b"".join(chunks)
                finally:
                    closer = getattr(chunks, "close", None)
                    if closer is not None:
                        closer()
                status = captured.get("status", "500")
                tenant = environ.get("repro.tenant")
                if span_rec is not None:
                    span_rec.tags["status"] = status
                    # The span opened before the app resolved the tenant;
                    # stamp it now so traces are searchable per tenant.
                    if tenant is not None:
                        span_rec.tenant = tenant
            elapsed = clock() - start

            trace_id = span_rec.trace_id if span_rec is not None else None
            registry.counter(
                "http_requests_total", method=method, route=route, status=status
            ).inc()
            if int(status) >= 400:
                registry.counter(
                    "http_errors_total", route=route, status=status
                ).inc()
            registry.histogram("http_request_seconds", route=route).observe(
                elapsed, trace_id=trace_id
            )

            window = self.window_store
            window.record(WINDOW_SERIES, elapsed)
            window.record(WINDOW_SERIES, elapsed, route=route)
            if int(status) >= 400:
                window.record(WINDOW_ERROR_SERIES, route=route)
            self.slow_log.offer(
                "http.request",
                elapsed,
                tenant=tenant,
                method=method,
                route=route,
                status=status,
            )
            log_fields: dict[str, object] = {
                "method": method,
                "route": route,
                "status": int(status),
                "duration_ms": round(elapsed * 1000.0, 3),
            }
            if tenant is not None:
                log_fields["tenant"] = tenant
            self.logger.info("http.request", **log_fields)
            if self.slo_engine is not None:
                self.slo_engine.observe(
                    route, tenant, elapsed, error=int(status) >= 500
                )
                self.slo_engine.maybe_check()
        return [body]


class BackpressureMiddleware:
    """Caps in-flight requests and binds per-request deadlines.

    Sits *inside* :class:`MetricsMiddleware` so shed requests still show
    up in the request counters, error series and latency windows.

    Parameters
    ----------
    app:
        The wrapped WSGI callable.  It must materialise its body before
        returning (the VAP app does), because the in-flight slot is
        released when the call returns.
    max_inflight:
        Admit at most this many concurrent requests; the rest are
        answered immediately with ``503`` + ``Retry-After`` (shedding
        beats queueing unboundedly once the server is saturated).
        ``None`` disables the cap.
    deadline_seconds:
        Time budget bound to each admitted request's context; the heavy
        kernel paths check it and raise
        :class:`~repro.core.deadline.DeadlineExceeded` (mapped to 503)
        instead of starting work nobody is waiting for.  ``None``
        disables deadlines.
    retry_after_seconds:
        Value advertised in the ``Retry-After`` header of shed responses
        (rounded up to whole seconds, minimum 1).
    registry:
        A :class:`~repro.obs.MetricsRegistry` or zero-argument callable
        returning one; receives the ``http_inflight_requests`` gauge and
        the ``http_throttled_total`` counter.  The process-wide default
        when omitted.
    """

    def __init__(
        self,
        app: Callable,
        max_inflight: int | None = None,
        deadline_seconds: float | None = None,
        retry_after_seconds: float = 1.0,
        registry: obs.MetricsRegistry | Callable[[], obs.MetricsRegistry] | None = None,
    ) -> None:
        if max_inflight is not None and max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        if deadline_seconds is not None and not deadline_seconds > 0:
            raise ValueError(
                f"deadline_seconds must be positive, got {deadline_seconds}"
            )
        if not retry_after_seconds > 0:
            raise ValueError(
                f"retry_after_seconds must be positive, got {retry_after_seconds}"
            )
        self.app = app
        self.max_inflight = max_inflight
        self.deadline_seconds = deadline_seconds
        self.retry_after = max(1, math.ceil(retry_after_seconds))
        self._registry = registry
        self._slots = (
            threading.BoundedSemaphore(max_inflight)
            if max_inflight is not None
            else None
        )

    def _resolve_registry(self) -> obs.MetricsRegistry:
        if self._registry is None:
            return obs.get_registry()
        if callable(self._registry) and not isinstance(
            self._registry, obs.MetricsRegistry
        ):
            return self._registry()
        return self._registry

    def _shed(self, start_response: Callable) -> Iterable[bytes]:
        body = json.dumps(
            {
                "error": "server at capacity; retry later",
                "retry_after_seconds": self.retry_after,
            }
        ).encode("utf-8")
        start_response(
            "503 Service Unavailable",
            [
                ("Content-Type", "application/json"),
                ("Content-Length", str(len(body))),
                ("Retry-After", str(self.retry_after)),
            ],
        )
        return [body]

    def __call__(self, environ: dict, start_response: Callable) -> Iterable[bytes]:
        registry = self._resolve_registry()
        if self._slots is not None and not self._slots.acquire(blocking=False):
            registry.counter("http_throttled_total").inc()
            obs.log_event(
                "http.throttled",
                level="warning",
                path=environ.get("PATH_INFO", "/"),
                max_inflight=self.max_inflight,
            )
            return self._shed(start_response)
        gauge = registry.gauge("http_inflight_requests")
        gauge.inc()
        try:
            deadline = (
                Deadline(self.deadline_seconds, clock=registry.clock)
                if self.deadline_seconds is not None
                else None
            )
            with bind_deadline(deadline):
                return self.app(environ, start_response)
        finally:
            gauge.dec()
            if self._slots is not None:
                self._slots.release()
