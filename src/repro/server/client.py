"""In-process WSGI test client.

Drives :class:`~repro.server.app.VapApp` (or any WSGI callable) without a
socket: builds the environ, captures the response and parses the JSON —
what the integration tests and the examples use to exercise the REST
contract.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import Callable
from urllib.parse import urlsplit

from repro.server import json_codec


@dataclass(slots=True)
class Response:
    """Captured WSGI response."""

    status: int
    headers: dict[str, str]
    body: bytes

    @property
    def json(self) -> object:
        """Parse the body as JSON."""
        return json_codec.loads(self.body)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


class TestClient:
    """Synchronous in-process client for a WSGI app."""

    __test__ = False  # not a pytest collection target despite the name

    def __init__(self, app: Callable) -> None:
        self.app = app

    def _request(
        self,
        method: str,
        url: str,
        body: bytes | None = None,
        headers: dict[str, str] | None = None,
    ) -> Response:
        parts = urlsplit(url)
        payload = body or b""
        environ = {
            "REQUEST_METHOD": method.upper(),
            "PATH_INFO": parts.path,
            "QUERY_STRING": parts.query,
            "CONTENT_LENGTH": str(len(payload)),
            "wsgi.input": io.BytesIO(payload),
            "wsgi.errors": io.StringIO(),
            "wsgi.url_scheme": "http",
            "SERVER_NAME": "testserver",
            "SERVER_PORT": "80",
        }
        for name, value in (headers or {}).items():
            key = name.upper().replace("-", "_")
            if key not in ("CONTENT_TYPE", "CONTENT_LENGTH"):
                key = "HTTP_" + key
            environ[key] = value
        captured: dict[str, object] = {}

        def start_response(status: str, headers: list[tuple[str, str]]) -> None:
            captured["status"] = int(status.split(" ", 1)[0])
            captured["headers"] = dict(headers)

        chunks = self.app(environ, start_response)
        try:
            data = b"".join(chunks)
        finally:
            closer = getattr(chunks, "close", None)
            if closer is not None:
                closer()
        if "status" not in captured:
            raise RuntimeError("WSGI app never called start_response")
        return Response(
            status=captured["status"],  # type: ignore[arg-type]
            headers=captured["headers"],  # type: ignore[arg-type]
            body=data,
        )

    def get(self, url: str, headers: dict[str, str] | None = None) -> Response:
        """Issue a GET request."""
        return self._request("GET", url, headers=headers)

    def post(
        self,
        url: str,
        json: object = None,
        headers: dict[str, str] | None = None,
    ) -> Response:
        """Issue a POST request with a JSON body."""
        body = json_codec.dumps(json).encode("utf-8") if json is not None else None
        return self._request("POST", url, body, headers=headers)

    def delete(self, url: str, headers: dict[str, str] | None = None) -> Response:
        """Issue a DELETE request."""
        return self._request("DELETE", url, headers=headers)
