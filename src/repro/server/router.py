"""Minimal path router for the WSGI app.

Routes are declared as ``"GET /api/customers/<int:customer_id>"`` style
patterns; ``<int:name>`` captures an integer segment, ``<name>`` a string
segment.  Matching returns the handler plus extracted path parameters.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable

Handler = Callable[..., object]

_SEGMENT = re.compile(r"<(?:(?P<kind>int):)?(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)>")


@dataclass(slots=True)
class Route:
    """One method+pattern binding."""

    method: str
    path: str
    pattern: re.Pattern
    param_kinds: dict[str, str]
    handler: Handler


class Router:
    """Registry of routes with first-match dispatch."""

    def __init__(self) -> None:
        self._routes: list[Route] = []

    def add(self, method: str, path: str, handler: Handler) -> None:
        """Register a route.

        Raises
        ------
        ValueError
            For malformed method or pattern.
        """
        method = method.upper()
        if method not in ("GET", "POST", "PUT", "DELETE"):
            raise ValueError(f"unsupported HTTP method {method!r}")
        if not path.startswith("/"):
            raise ValueError(f"path must start with '/', got {path!r}")
        kinds: dict[str, str] = {}

        def replace(match: re.Match) -> str:
            name = match.group("name")
            kind = match.group("kind") or "str"
            if name in kinds:
                raise ValueError(f"duplicate path parameter {name!r} in {path!r}")
            kinds[name] = kind
            if kind == "int":
                return f"(?P<{name}>-?\\d+)"
            return f"(?P<{name}>[^/]+)"

        regex = _SEGMENT.sub(replace, path)
        self._routes.append(
            Route(
                method=method,
                path=path,
                pattern=re.compile(f"^{regex}$"),
                param_kinds=kinds,
                handler=handler,
            )
        )

    def get(self, path: str) -> Callable[[Handler], Handler]:
        """Decorator form: ``@router.get('/api/thing')``."""

        def decorate(handler: Handler) -> Handler:
            self.add("GET", path, handler)
            return handler

        return decorate

    def post(self, path: str) -> Callable[[Handler], Handler]:
        def decorate(handler: Handler) -> Handler:
            self.add("POST", path, handler)
            return handler

        return decorate

    def match(self, method: str, path: str) -> tuple[Handler, dict[str, object]] | None:
        """Find the first route matching method+path, or None.

        A path that matches some route with a different method raises
        :class:`MethodNotAllowed`, so the app can answer 405 vs 404
        correctly.
        """
        path_matched = False
        for route in self._routes:
            m = route.pattern.match(path)
            if not m:
                continue
            path_matched = True
            if route.method != method.upper():
                continue
            params: dict[str, object] = {}
            for name, raw in m.groupdict().items():
                params[name] = int(raw) if route.param_kinds[name] == "int" else raw
            return route.handler, params
        if path_matched:
            raise MethodNotAllowed(path)
        return None

    def pattern_of(self, method: str, path: str) -> str | None:
        """The declared pattern string a request path falls under, or None.

        Unlike :meth:`match` this never raises: a path that exists under a
        different method still reports its pattern, so metrics can tag a
        405 with the route it hit.
        """
        method = method.upper()
        fallback: str | None = None
        for route in self._routes:
            if route.pattern.match(path):
                if route.method == method:
                    return route.path
                fallback = fallback or route.path
        return fallback


class MethodNotAllowed(Exception):
    """The path exists but not for this HTTP method."""
