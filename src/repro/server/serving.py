"""Threaded WSGI serving: a bounded worker pool instead of wsgiref's
single thread.

``wsgiref.simple_server`` handles one request at a time, which makes a
multi-user deployment (the paper's interactive analysts plus the S2
replay feed) queue head-of-line behind every t-SNE run.
:class:`PooledWSGIServer` keeps wsgiref's protocol plumbing but accepts
on the main thread and dispatches each connection to a fixed
:class:`~concurrent.futures.ThreadPoolExecutor` — a *bounded* pool, so
``--threads`` is a real resource cap rather than thread-per-connection
growth.  Overload beyond the pool is handled one layer up by
:class:`~repro.server.middleware.BackpressureMiddleware` (503 +
``Retry-After``), not by an ever-longer accept queue.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable
from wsgiref.simple_server import WSGIRequestHandler, WSGIServer


class PooledWSGIServer(WSGIServer):
    """A :class:`~wsgiref.simple_server.WSGIServer` with a worker pool.

    ``process_request`` hands the accepted connection to the pool and
    returns immediately, so the accept loop never blocks on a slow
    handler.  ``server_close`` shuts the pool down without waiting —
    in-flight daemon workers die with the process, matching
    ``ThreadingMixIn.daemon_threads = True`` semantics.
    """

    def __init__(
        self,
        server_address: tuple[str, int],
        RequestHandlerClass: type = WSGIRequestHandler,
        threads: int = 8,
        bind_and_activate: bool = True,
    ) -> None:
        if threads < 1:
            raise ValueError(f"threads must be >= 1, got {threads}")
        self.threads = threads
        # Build the pool before binding: a failed bind makes socketserver
        # call server_close(), which must find _pool already set.
        self._pool = ThreadPoolExecutor(
            max_workers=threads, thread_name_prefix="vap-http"
        )
        super().__init__(server_address, RequestHandlerClass, bind_and_activate)

    def process_request(self, request, client_address) -> None:
        self._pool.submit(self._work, request, client_address)

    def _work(self, request, client_address) -> None:
        try:
            self.finish_request(request, client_address)
        except Exception:
            self.handle_error(request, client_address)
        finally:
            self.shutdown_request(request)

    def server_close(self) -> None:
        super().server_close()
        self._pool.shutdown(wait=False, cancel_futures=True)


def make_threaded_server(
    host: str, port: int, app: Callable, threads: int = 8
) -> PooledWSGIServer:
    """Build a pooled WSGI server for ``app`` (wsgiref's ``make_server``
    signature plus a ``threads`` cap)."""
    server = PooledWSGIServer((host, port), WSGIRequestHandler, threads=threads)
    server.set_app(app)
    return server
