"""JSON encoding that understands the project's types.

numpy scalars/arrays, dataclass-like objects with ``to_record``, enums and
the model result objects all serialise transparently; NaN/inf are mapped to
``null`` so the output is strict JSON any client can parse.
"""

from __future__ import annotations

import enum
import json
import math
from typing import Any

import numpy as np


def _sanitize(value: Any) -> Any:
    """Recursively convert to plain JSON-safe Python values."""
    if value is None or isinstance(value, (bool, str, int)):
        return value
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        out = float(value)
        return out if math.isfinite(out) else None
    if isinstance(value, np.ndarray):
        return [_sanitize(v) for v in value.tolist()]
    if isinstance(value, dict):
        return {str(k): _sanitize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_sanitize(v) for v in value]
    if hasattr(value, "to_record"):
        return _sanitize(value.to_record())
    raise TypeError(f"cannot serialise {type(value).__name__} to JSON")


def dumps(value: Any) -> str:
    """Serialise to strict JSON text (no NaN literals).

    Raises
    ------
    TypeError
        For unsupported object types.
    """
    return json.dumps(_sanitize(value), allow_nan=False, separators=(",", ":"))


def loads(text: str | bytes) -> Any:
    """Parse JSON text; thin wrapper kept for symmetry."""
    return json.loads(text)
