"""Durable storage for a data set: save/load an EnergyDatabase.

The paper lists "data acquisition, processing, **storage**, analysis and
visualization" as the pipeline stages.  This module gives the embedded
engine a durable on-disk format:

- ``customers.csv`` — the customer table (human-readable interchange);
- ``readings.npz`` — the dense hourly matrix (compressed numpy, ~10x
  smaller and ~100x faster to load than CSV at fleet scale);
- ``meta.json`` — format version and shape metadata, checked on load.

``save_database`` / ``load_database`` round-trip exactly, including NaN
cells and the spatial-index choice.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.data.loader import load_customers, save_customers
from repro.data.timeseries import SeriesSet
from repro.db.engine import EnergyDatabase

FORMAT_VERSION = 1

CUSTOMERS_FILE = "customers.csv"
READINGS_FILE = "readings.npz"
META_FILE = "meta.json"


class StorageError(ValueError):
    """Raised when a stored data set is missing, corrupt or incompatible."""


def save_database(db: EnergyDatabase, directory: str | Path) -> Path:
    """Write a database to a directory (created if needed); returns it.

    Existing files of a previous save are overwritten atomically enough
    for single-writer use (metadata is written last).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    customers = [db.customer(cid) for cid in db.customer_ids]
    save_customers(customers, directory / CUSTOMERS_FILE)
    np.savez_compressed(
        directory / READINGS_FILE,
        customer_ids=db.readings.customer_ids,
        matrix=db.readings.matrix,
        start_hour=np.int64(db.readings.start_hour),
    )
    meta = {
        "format_version": FORMAT_VERSION,
        "n_customers": len(db),
        "n_steps": db.readings.n_steps,
        "start_hour": db.readings.start_hour,
        "index_kind": db.index_kind,
    }
    (directory / META_FILE).write_text(json.dumps(meta, indent=2))
    return directory


def load_database(directory: str | Path) -> EnergyDatabase:
    """Load a database saved by :func:`save_database`.

    Raises
    ------
    StorageError
        If files are missing, the version is unknown, or the contents
        disagree with the metadata.
    """
    directory = Path(directory)
    meta_path = directory / META_FILE
    if not meta_path.exists():
        raise StorageError(f"{directory} does not contain {META_FILE}")
    try:
        meta = json.loads(meta_path.read_text())
    except json.JSONDecodeError as exc:
        raise StorageError(f"{meta_path} is not valid JSON: {exc}") from exc
    if meta.get("format_version") != FORMAT_VERSION:
        raise StorageError(
            f"unsupported format version {meta.get('format_version')!r} "
            f"(this build reads {FORMAT_VERSION})"
        )
    for name in (CUSTOMERS_FILE, READINGS_FILE):
        if not (directory / name).exists():
            raise StorageError(f"{directory} is missing {name}")
    customers = load_customers(directory / CUSTOMERS_FILE)
    with np.load(directory / READINGS_FILE) as payload:
        readings = SeriesSet(
            customer_ids=payload["customer_ids"].tolist(),
            start_hour=int(payload["start_hour"]),
            matrix=payload["matrix"],
        )
    if readings.n_customers != meta["n_customers"] or (
        readings.n_steps != meta["n_steps"]
    ):
        raise StorageError(
            f"stored readings shape ({readings.n_customers}, "
            f"{readings.n_steps}) disagrees with metadata "
            f"({meta['n_customers']}, {meta['n_steps']})"
        )
    return EnergyDatabase(
        customers, readings, index_kind=meta.get("index_kind", "rtree")
    )
