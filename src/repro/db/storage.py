"""Durable storage for a data set: save/load an EnergyDatabase.

The paper lists "data acquisition, processing, **storage**, analysis and
visualization" as the pipeline stages.  This module gives the embedded
engine a durable on-disk format:

- ``customers.csv`` — the customer table (human-readable interchange);
- ``readings.npz`` — the dense hourly matrix (compressed numpy, ~10x
  smaller and ~100x faster to load than CSV at fleet scale);
- ``meta.json`` — format version and shape metadata, checked on load.

``save_database`` / ``load_database`` round-trip exactly, including NaN
cells and the spatial-index choice.

Crash safety: a save stages every file in a hidden temp sibling
directory and renames it into place only once complete, so a crash (or
injected fault) mid-save can never leave a readable-but-torn data set —
readers either see the old complete state or the new complete state.
Loads cross-check the metadata against both payload files and raise
:class:`StorageError` with a precise message on any disagreement.

Both paths retry transient I/O errors under a
:class:`~repro.resilience.retry.RetryPolicy` (pass ``retry=None`` to
fail fast) and declare ``storage.*`` fault-injection sites for chaos
runs (see :mod:`repro.resilience.faults`).
"""

from __future__ import annotations

import json
import os
import shutil
from pathlib import Path

import numpy as np

from repro.data.loader import load_customers, save_customers
from repro.data.timeseries import SeriesSet
from repro.db.engine import EnergyDatabase
from repro.db.sharding import ShardedEnergyDatabase
from repro.resilience.faults import fault_bytes, fault_point
from repro.resilience.retry import DEFAULT_POLICY, RetryPolicy

FORMAT_VERSION = 1

CUSTOMERS_FILE = "customers.csv"
READINGS_FILE = "readings.npz"
META_FILE = "meta.json"

# Metadata keys a loadable data set must carry, beyond the version.
REQUIRED_META_KEYS = ("n_customers", "n_steps")


class StorageError(ValueError):
    """Raised when a stored data set is missing, corrupt or incompatible."""


def _stage_dir(directory: Path) -> Path:
    """The hidden temp sibling a save stages into (same filesystem, so
    the final rename is atomic)."""
    return directory.parent / f".{directory.name}.staging"


def _save_once(
    db: EnergyDatabase | ShardedEnergyDatabase, directory: Path
) -> Path:
    staging = _stage_dir(directory)
    if staging.exists():
        shutil.rmtree(staging)  # leftover from a previous crashed save
    staging.mkdir(parents=True)
    try:
        fault_point("storage.save.customers")
        customers = [db.customer(cid) for cid in db.customer_ids]
        save_customers(customers, staging / CUSTOMERS_FILE)
        fault_point("storage.save.readings")
        np.savez_compressed(
            staging / READINGS_FILE,
            customer_ids=db.readings.customer_ids,
            matrix=db.readings.matrix,
            start_hour=np.int64(db.readings.start_hour),
        )
        meta = {
            "format_version": FORMAT_VERSION,
            "n_customers": len(db),
            "n_steps": db.readings.n_steps,
            "start_hour": db.readings.start_hour,
            "index_kind": db.index_kind,
        }
        payload = fault_bytes(
            "storage.save.meta", json.dumps(meta, indent=2).encode("utf-8")
        )
        (staging / META_FILE).write_bytes(payload)
        # Publish: the complete staged tree replaces the target in one
        # rename (plus a backup dance when overwriting an old save).
        if directory.exists():
            backup = directory.parent / f".{directory.name}.old"
            if backup.exists():
                shutil.rmtree(backup)
            os.replace(directory, backup)
            os.replace(staging, directory)
            shutil.rmtree(backup)
        else:
            directory.parent.mkdir(parents=True, exist_ok=True)
            os.replace(staging, directory)
    except BaseException:
        shutil.rmtree(staging, ignore_errors=True)
        raise
    return directory


def save_database(
    db: EnergyDatabase | ShardedEnergyDatabase,
    directory: str | Path,
    retry: RetryPolicy | None = DEFAULT_POLICY,
) -> Path:
    """Write a database to a directory (created if needed); returns it.

    The write is atomic at the directory level: files are staged in a
    temp sibling and renamed into place only once all three are
    complete, so readers never observe a partially-updated data set.
    Transient ``OSError``s are retried under ``retry`` (pass ``None``
    to disable).

    A sharded database saves in the same single-directory format as the
    single-shard engine (its ``readings`` property reassembles the
    canonical row order), so the on-disk layout is shard-count agnostic:
    save with one shard count, load with another.
    """
    directory = Path(directory)
    if retry is None:
        return _save_once(db, directory)
    return retry.call(lambda: _save_once(db, directory), site="storage.save")


def _load_once(
    directory: Path, shards: int | None = None
) -> EnergyDatabase | ShardedEnergyDatabase:
    meta_path = directory / META_FILE
    fault_point("storage.load.meta")
    if not meta_path.exists():
        raise StorageError(f"{directory} does not contain {META_FILE}")
    try:
        meta = json.loads(meta_path.read_text())
    except json.JSONDecodeError as exc:
        raise StorageError(f"{meta_path} is not valid JSON: {exc}") from exc
    if not isinstance(meta, dict):
        raise StorageError(f"{meta_path} must hold a JSON object, got {meta!r}")
    if meta.get("format_version") != FORMAT_VERSION:
        raise StorageError(
            f"unsupported format version {meta.get('format_version')!r} "
            f"(this build reads {FORMAT_VERSION})"
        )
    missing = [key for key in REQUIRED_META_KEYS if key not in meta]
    if missing:
        raise StorageError(
            f"{meta_path} is missing required key(s) {', '.join(missing)} — "
            "the metadata was truncated or written by a broken save"
        )
    for key in REQUIRED_META_KEYS:
        if not isinstance(meta[key], int) or meta[key] < 0:
            raise StorageError(
                f"{meta_path}: {key} must be a non-negative integer, "
                f"got {meta[key]!r}"
            )
    for name in (CUSTOMERS_FILE, READINGS_FILE):
        if not (directory / name).exists():
            raise StorageError(f"{directory} is missing {name}")
    fault_point("storage.load.customers")
    try:
        customers = load_customers(directory / CUSTOMERS_FILE)
    except ValueError as exc:
        raise StorageError(
            f"{directory / CUSTOMERS_FILE} is unreadable: {exc}"
        ) from exc
    fault_point("storage.load.readings")
    try:
        with np.load(directory / READINGS_FILE) as payload:
            readings = SeriesSet(
                customer_ids=payload["customer_ids"].tolist(),
                start_hour=int(payload["start_hour"]),
                matrix=payload["matrix"],
            )
    except (OSError, KeyError, ValueError) as exc:
        if isinstance(exc, StorageError):
            raise
        raise StorageError(
            f"{directory / READINGS_FILE} is unreadable or truncated: {exc}"
        ) from exc
    if readings.n_customers != meta["n_customers"] or (
        readings.n_steps != meta["n_steps"]
    ):
        raise StorageError(
            f"stored readings shape ({readings.n_customers}, "
            f"{readings.n_steps}) disagrees with metadata "
            f"({meta['n_customers']}, {meta['n_steps']})"
        )
    # Cross-check the two payload files against each other, not just the
    # metadata: a torn save could leave a fresh customer table beside old
    # readings (or vice versa).
    if len(customers) != readings.n_customers:
        raise StorageError(
            f"{CUSTOMERS_FILE} lists {len(customers)} customers but "
            f"{READINGS_FILE} holds readings for {readings.n_customers} — "
            "the data set is torn"
        )
    csv_ids = {c.customer_id for c in customers}
    npz_ids = {int(cid) for cid in readings.customer_ids}
    if csv_ids != npz_ids:
        strays = sorted(csv_ids.symmetric_difference(npz_ids))[:5]
        raise StorageError(
            f"{CUSTOMERS_FILE} and {READINGS_FILE} cover different customer "
            f"ids (e.g. {strays}) — the data set is torn"
        )
    index_kind = meta.get("index_kind", "rtree")
    if shards is not None and shards > 1:
        return ShardedEnergyDatabase(
            customers, readings, n_shards=shards, index_kind=index_kind
        )
    return EnergyDatabase(customers, readings, index_kind=index_kind)


def load_database(
    directory: str | Path,
    retry: RetryPolicy | None = DEFAULT_POLICY,
    shards: int | None = None,
) -> EnergyDatabase | ShardedEnergyDatabase:
    """Load a database saved by :func:`save_database`.

    Transient ``OSError``s are retried under ``retry`` (pass ``None`` to
    disable); corrupt or inconsistent data raises immediately.
    ``shards > 1`` rebuilds the loaded data set as a hash-partitioned
    :class:`~repro.db.sharding.ShardedEnergyDatabase` (the format on
    disk is shard-count agnostic).

    Raises
    ------
    StorageError
        If files are missing, the version is unknown, the metadata is
        incomplete, or the payload files disagree with the metadata or
        each other.
    """
    directory = Path(directory)
    if retry is None:
        return _load_once(directory, shards=shards)
    return retry.call(
        lambda: _load_once(directory, shards=shards), site="storage.load"
    )


# ----------------------------------------------------------------------
# tenant namespaces
# ----------------------------------------------------------------------
def tenant_directory(root: str | Path, tenant_id: str) -> Path:
    """The per-tenant data directory under a storage root.

    The tenant id is validated against the tenancy alphabet before being
    used as a path component, so a hostile id can never escape the root.
    """
    from repro.tenancy import validate_tenant_id  # local: avoid cycle

    return Path(root) / validate_tenant_id(tenant_id)


def save_tenant_database(
    db: EnergyDatabase | ShardedEnergyDatabase,
    root: str | Path,
    tenant_id: str,
    retry: RetryPolicy | None = DEFAULT_POLICY,
) -> Path:
    """Save one tenant's database under ``root/<tenant_id>/``.

    Each tenant directory is written with the same staged atomic rename
    as :func:`save_database`, so tenants never see each other's partial
    writes — or data."""
    return save_database(db, tenant_directory(root, tenant_id), retry=retry)


def load_tenant_database(
    root: str | Path,
    tenant_id: str,
    retry: RetryPolicy | None = DEFAULT_POLICY,
    shards: int | None = None,
) -> EnergyDatabase | ShardedEnergyDatabase:
    """Load one tenant's database from ``root/<tenant_id>/``."""
    return load_database(
        tenant_directory(root, tenant_id), retry=retry, shards=shards
    )


def list_tenant_databases(root: str | Path) -> list[str]:
    """Tenant ids with a loadable data set under ``root``, sorted."""
    root = Path(root)
    if not root.is_dir():
        return []
    return sorted(
        entry.name
        for entry in root.iterdir()
        if entry.is_dir() and (entry / META_FILE).exists()
    )
