"""Uniform grid spatial index.

Points are binned into an ``n x n`` grid over their bounding box.  Queries
visit only the cells their geometry overlaps.  Build is O(n); the structure
suits city data where customer density varies by a small constant factor.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.db.spatial import BBox, Circle


class GridIndex:
    """Uniform binning index over (lon, lat) points.

    Parameters
    ----------
    ids, lons, lats:
        Equal-length point arrays; ids must be unique.
    cells_per_axis:
        Grid resolution; defaults to ``ceil(sqrt(n))`` capped to [4, 256],
        giving ~1 point per cell on uniform data.
    """

    def __init__(
        self,
        ids: Sequence[int],
        lons: Sequence[float],
        lats: Sequence[float],
        cells_per_axis: int | None = None,
    ) -> None:
        self.ids = np.asarray(ids, dtype=np.int64)
        self.lons = np.asarray(lons, dtype=np.float64)
        self.lats = np.asarray(lats, dtype=np.float64)
        if not (self.ids.shape == self.lons.shape == self.lats.shape):
            raise ValueError("ids, lons and lats must have equal length")
        if self.ids.size == 0:
            raise ValueError("cannot index zero points")
        if len(set(self.ids.tolist())) != self.ids.size:
            raise ValueError("ids contain duplicates")
        n = self.ids.size
        if cells_per_axis is None:
            cells_per_axis = int(np.clip(np.ceil(np.sqrt(n)), 4, 256))
        if cells_per_axis < 1:
            raise ValueError(f"cells_per_axis must be >= 1, got {cells_per_axis}")
        self.n_cells = cells_per_axis
        self.bounds = BBox.from_points(self.lons, self.lats)
        # Guard zero-extent axes (all points collinear) with a tiny pad.
        width = max(self.bounds.width, 1e-12)
        height = max(self.bounds.height, 1e-12)
        self._cell_w = width / cells_per_axis
        self._cell_h = height / cells_per_axis
        cols = self._col_of(self.lons)
        rows = self._row_of(self.lats)
        self._buckets: dict[tuple[int, int], np.ndarray] = {}
        order = np.lexsort((cols, rows))
        keys = rows[order] * cells_per_axis + cols[order]
        boundaries = np.flatnonzero(np.diff(keys)) + 1
        for chunk in np.split(order, boundaries):
            r = int(rows[chunk[0]])
            c = int(cols[chunk[0]])
            self._buckets[(r, c)] = chunk

    def __len__(self) -> int:
        return int(self.ids.size)

    def _col_of(self, lons: np.ndarray) -> np.ndarray:
        cols = np.floor((lons - self.bounds.min_lon) / self._cell_w).astype(np.int64)
        return np.clip(cols, 0, self.n_cells - 1)

    def _row_of(self, lats: np.ndarray) -> np.ndarray:
        rows = np.floor((lats - self.bounds.min_lat) / self._cell_h).astype(np.int64)
        return np.clip(rows, 0, self.n_cells - 1)

    def _candidates(self, box: BBox) -> np.ndarray:
        """Point positions (array indexes) in cells overlapping ``box``."""
        if not box.intersects(self.bounds):
            return np.empty(0, dtype=np.int64)
        c0 = int(self._col_of(np.asarray([box.min_lon]))[0])
        c1 = int(self._col_of(np.asarray([box.max_lon]))[0])
        r0 = int(self._row_of(np.asarray([box.min_lat]))[0])
        r1 = int(self._row_of(np.asarray([box.max_lat]))[0])
        chunks = [
            self._buckets[(r, c)]
            for r in range(r0, r1 + 1)
            for c in range(c0, c1 + 1)
            if (r, c) in self._buckets
        ]
        if not chunks:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(chunks)

    def query_bbox(self, box: BBox) -> np.ndarray:
        cand = self._candidates(box)
        if cand.size == 0:
            return cand
        hit = box.contains_many(self.lons[cand], self.lats[cand])
        return np.sort(self.ids[cand[hit]])

    def query_radius(self, circle: Circle) -> np.ndarray:
        cand = self._candidates(circle.bbox())
        if cand.size == 0:
            return cand
        hit = circle.contains_many(self.lons[cand], self.lats[cand])
        return np.sort(self.ids[cand[hit]])

    def nearest(self, lon: float, lat: float, k: int = 1) -> np.ndarray:
        """Expanding-ring search: widen the candidate box until k points are
        inside its inscribed circle (guaranteeing no closer point is missed),
        then rank by exact distance."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        k = min(k, len(self))
        radius = max(self._cell_w, self._cell_h)
        for _ in range(64):
            box = BBox(lon - radius, lat - radius, lon + radius, lat + radius)
            cand = self._candidates(box)
            if cand.size >= k:
                d2 = (self.lons[cand] - lon) ** 2 + (self.lats[cand] - lat) ** 2
                # Points inside the inscribed circle are definitive.
                if np.sort(d2)[k - 1] <= radius**2 or cand.size == len(self):
                    order = cand[np.argsort(d2, kind="stable")[:k]]
                    return self.ids[order]
            radius *= 2.0
        # Fallback: brute force (unreachable in practice, kept for safety).
        d2 = (self.lons - lon) ** 2 + (self.lats - lat) ** 2
        return self.ids[np.argsort(d2, kind="stable")[:k]]
