"""Spatial point indexes.

Three classic structures with one interface (:class:`SpatialIndex`):

- :class:`~repro.db.index.grid.GridIndex` — uniform binning; fastest to
  build, great for the evenly-spread city-scale data here;
- :class:`~repro.db.index.quadtree.QuadTree` — adaptive splitting, better
  for skewed distributions;
- :class:`~repro.db.index.rtree.RTree` — STR bulk-loaded R-tree, the
  structure PostGIS itself uses (GiST over rectangles).

All indexes answer box, radius and k-nearest-neighbour queries and are
validated against brute force in the test suite.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from repro.db.spatial import BBox, Circle


@runtime_checkable
class SpatialIndex(Protocol):
    """What the query layer requires of an index implementation."""

    def query_bbox(self, box: BBox) -> np.ndarray:
        """Ids of points inside the box (inclusive edges), ascending."""
        ...

    def query_radius(self, circle: Circle) -> np.ndarray:
        """Ids of points inside the circle, ascending."""
        ...

    def nearest(self, lon: float, lat: float, k: int = 1) -> np.ndarray:
        """Ids of the k nearest points (planar degree metric), closest first."""
        ...

    def __len__(self) -> int:
        ...


from repro.db.index.grid import GridIndex  # noqa: E402
from repro.db.index.quadtree import QuadTree  # noqa: E402
from repro.db.index.rtree import RTree  # noqa: E402

__all__ = ["GridIndex", "QuadTree", "RTree", "SpatialIndex"]
