"""STR bulk-loaded R-tree.

PostGIS indexes geometries with a GiST tree over rectangles; the classic
equivalent for static point sets is the Sort-Tile-Recursive (STR) R-tree:
sort by longitude, cut into vertical slices, sort each slice by latitude,
pack leaves bottom-up.  Queries descend only into nodes whose rectangle
intersects the query geometry; kNN runs best-first on box distance.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.db.spatial import BBox, Circle


@dataclass(slots=True)
class _RNode:
    """R-tree node: leaves hold point positions, inner nodes hold children."""

    box: BBox
    points: np.ndarray | None = None
    children: list["_RNode"] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return self.points is not None


class RTree:
    """Static R-tree over (lon, lat) points, STR bulk load.

    Parameters
    ----------
    node_capacity:
        Maximum entries per node (leaf points or inner children).
    """

    def __init__(
        self,
        ids: Sequence[int],
        lons: Sequence[float],
        lats: Sequence[float],
        node_capacity: int = 16,
    ) -> None:
        self.ids = np.asarray(ids, dtype=np.int64)
        self.lons = np.asarray(lons, dtype=np.float64)
        self.lats = np.asarray(lats, dtype=np.float64)
        if not (self.ids.shape == self.lons.shape == self.lats.shape):
            raise ValueError("ids, lons and lats must have equal length")
        if self.ids.size == 0:
            raise ValueError("cannot index zero points")
        if len(set(self.ids.tolist())) != self.ids.size:
            raise ValueError("ids contain duplicates")
        if node_capacity < 2:
            raise ValueError(f"node_capacity must be >= 2, got {node_capacity}")
        self.node_capacity = node_capacity
        self.root = self._bulk_load()

    def __len__(self) -> int:
        return int(self.ids.size)

    # ------------------------------------------------------------------
    # STR bulk load
    # ------------------------------------------------------------------
    def _leaf_of(self, positions: np.ndarray) -> _RNode:
        return _RNode(
            box=BBox.from_points(self.lons[positions], self.lats[positions]),
            points=positions,
        )

    def _bulk_load(self) -> _RNode:
        cap = self.node_capacity
        positions = np.argsort(self.lons, kind="stable")
        n = positions.size
        n_leaves = int(np.ceil(n / cap))
        n_slices = int(np.ceil(np.sqrt(n_leaves)))
        slice_size = int(np.ceil(n / n_slices))
        leaves: list[_RNode] = []
        for s in range(0, n, slice_size):
            vertical = positions[s : s + slice_size]
            vertical = vertical[np.argsort(self.lats[vertical], kind="stable")]
            for t in range(0, vertical.size, cap):
                leaves.append(self._leaf_of(vertical[t : t + cap]))
        # Pack levels bottom-up until one root remains.
        level = leaves
        while len(level) > 1:
            parents: list[_RNode] = []
            for i in range(0, len(level), cap):
                group = level[i : i + cap]
                box = group[0].box
                for child in group[1:]:
                    box = box.union(child.box)
                parents.append(_RNode(box=box, children=group))
            level = parents
        return level[0]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _collect_box(self, node: _RNode, box: BBox, out: list[np.ndarray]) -> None:
        if not node.box.intersects(box):
            return
        if node.is_leaf:
            pts = node.points
            assert pts is not None
            hit = box.contains_many(self.lons[pts], self.lats[pts])
            if hit.any():
                out.append(pts[hit])
            return
        for child in node.children:
            self._collect_box(child, box, out)

    def query_bbox(self, box: BBox) -> np.ndarray:
        out: list[np.ndarray] = []
        self._collect_box(self.root, box, out)
        if not out:
            return np.empty(0, dtype=np.int64)
        return np.sort(self.ids[np.concatenate(out)])

    def query_radius(self, circle: Circle) -> np.ndarray:
        out: list[np.ndarray] = []
        self._collect_box(self.root, circle.bbox(), out)
        if not out:
            return np.empty(0, dtype=np.int64)
        cand = np.concatenate(out)
        hit = circle.contains_many(self.lons[cand], self.lats[cand])
        return np.sort(self.ids[cand[hit]])

    @staticmethod
    def _box_distance2(box: BBox, lon: float, lat: float) -> float:
        dx = max(box.min_lon - lon, 0.0, lon - box.max_lon)
        dy = max(box.min_lat - lat, 0.0, lat - box.max_lat)
        return dx * dx + dy * dy

    def nearest(self, lon: float, lat: float, k: int = 1) -> np.ndarray:
        """Best-first kNN identical in structure to the quadtree variant."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        k = min(k, len(self))
        counter = 0
        heap: list[tuple[float, int, object, bool]] = [
            (self._box_distance2(self.root.box, lon, lat), counter, self.root, False)
        ]
        found: list[int] = []
        while heap and len(found) < k:
            dist2, _, item, is_point = heapq.heappop(heap)
            if is_point:
                found.append(int(item))  # type: ignore[arg-type]
                continue
            node: _RNode = item  # type: ignore[assignment]
            if node.is_leaf:
                pts = node.points
                assert pts is not None
                d2 = (self.lons[pts] - lon) ** 2 + (self.lats[pts] - lat) ** 2
                for pos, dd in zip(pts, d2):
                    counter += 1
                    heapq.heappush(heap, (float(dd), counter, int(pos), True))
            else:
                for child in node.children:
                    counter += 1
                    heapq.heappush(
                        heap,
                        (
                            self._box_distance2(child.box, lon, lat),
                            counter,
                            child,
                            False,
                        ),
                    )
        return self.ids[np.asarray(found, dtype=np.int64)]
