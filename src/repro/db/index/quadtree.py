"""Point quadtree index.

Adaptive recursive splitting: a leaf holding more than ``leaf_capacity``
points splits into four quadrants.  Handles skewed point distributions
(e.g. a dense commercial core inside a sparse region) better than the
uniform grid.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.db.spatial import BBox, Circle

_MAX_DEPTH = 24


@dataclass(slots=True)
class _Node:
    """One quadtree node; a leaf holds point positions, an inner node holds
    four children ordered (SW, SE, NW, NE)."""

    box: BBox
    points: np.ndarray | None = None  # positions into the point arrays
    children: list["_Node"] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return not self.children


class QuadTree:
    """Quadtree over (lon, lat) points with box/radius/kNN queries."""

    def __init__(
        self,
        ids: Sequence[int],
        lons: Sequence[float],
        lats: Sequence[float],
        leaf_capacity: int = 16,
    ) -> None:
        self.ids = np.asarray(ids, dtype=np.int64)
        self.lons = np.asarray(lons, dtype=np.float64)
        self.lats = np.asarray(lats, dtype=np.float64)
        if not (self.ids.shape == self.lons.shape == self.lats.shape):
            raise ValueError("ids, lons and lats must have equal length")
        if self.ids.size == 0:
            raise ValueError("cannot index zero points")
        if len(set(self.ids.tolist())) != self.ids.size:
            raise ValueError("ids contain duplicates")
        if leaf_capacity < 1:
            raise ValueError(f"leaf_capacity must be >= 1, got {leaf_capacity}")
        self.leaf_capacity = leaf_capacity
        bounds = BBox.from_points(self.lons, self.lats)
        # Pad zero-extent bounds so splitting always reduces area.
        if bounds.width == 0 or bounds.height == 0:
            bounds = bounds.expanded(max(bounds.width, bounds.height, 1e-9))
        self.root = _Node(box=bounds, points=np.arange(self.ids.size))
        self._split(self.root, depth=0)

    def __len__(self) -> int:
        return int(self.ids.size)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _split(self, node: _Node, depth: int) -> None:
        assert node.points is not None
        if node.points.size <= self.leaf_capacity or depth >= _MAX_DEPTH:
            return
        box = node.box
        mid_lon = (box.min_lon + box.max_lon) / 2.0
        mid_lat = (box.min_lat + box.max_lat) / 2.0
        pts = node.points
        east = self.lons[pts] > mid_lon
        north = self.lats[pts] > mid_lat
        quads = [
            (~east & ~north, BBox(box.min_lon, box.min_lat, mid_lon, mid_lat)),
            (east & ~north, BBox(mid_lon, box.min_lat, box.max_lon, mid_lat)),
            (~east & north, BBox(box.min_lon, mid_lat, mid_lon, box.max_lat)),
            (east & north, BBox(mid_lon, mid_lat, box.max_lon, box.max_lat)),
        ]
        # Degenerate split (all points in one quadrant at max precision):
        # keep the node a leaf to guarantee termination.
        occupancy = [int(sel.sum()) for sel, _ in quads]
        if max(occupancy) == pts.size and depth > 0:
            all_same = (
                np.all(self.lons[pts] == self.lons[pts[0]])
                and np.all(self.lats[pts] == self.lats[pts[0]])
            )
            if all_same:
                return
        node.children = []
        for sel, child_box in quads:
            child = _Node(box=child_box, points=pts[sel])
            node.children.append(child)
            self._split(child, depth + 1)
        node.points = None

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _collect_box(self, node: _Node, box: BBox, out: list[np.ndarray]) -> None:
        if not node.box.intersects(box):
            return
        if node.is_leaf:
            pts = node.points
            assert pts is not None
            if pts.size:
                hit = box.contains_many(self.lons[pts], self.lats[pts])
                if hit.any():
                    out.append(pts[hit])
            return
        for child in node.children:
            self._collect_box(child, box, out)

    def query_bbox(self, box: BBox) -> np.ndarray:
        out: list[np.ndarray] = []
        self._collect_box(self.root, box, out)
        if not out:
            return np.empty(0, dtype=np.int64)
        return np.sort(self.ids[np.concatenate(out)])

    def query_radius(self, circle: Circle) -> np.ndarray:
        box = circle.bbox()
        out: list[np.ndarray] = []
        self._collect_box(self.root, box, out)
        if not out:
            return np.empty(0, dtype=np.int64)
        cand = np.concatenate(out)
        hit = circle.contains_many(self.lons[cand], self.lats[cand])
        return np.sort(self.ids[cand[hit]])

    @staticmethod
    def _box_distance2(box: BBox, lon: float, lat: float) -> float:
        """Squared planar distance from a point to a box (0 inside)."""
        dx = max(box.min_lon - lon, 0.0, lon - box.max_lon)
        dy = max(box.min_lat - lat, 0.0, lat - box.max_lat)
        return dx * dx + dy * dy

    def nearest(self, lon: float, lat: float, k: int = 1) -> np.ndarray:
        """Best-first kNN over the tree (priority queue on box distance)."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        k = min(k, len(self))
        # Heap entries: (distance2, tiebreak, node-or-point, is_point)
        counter = 0
        heap: list[tuple[float, int, object, bool]] = [
            (self._box_distance2(self.root.box, lon, lat), counter, self.root, False)
        ]
        found: list[tuple[float, int]] = []
        while heap and len(found) < k:
            dist2, _, item, is_point = heapq.heappop(heap)
            if is_point:
                found.append((dist2, int(item)))  # type: ignore[arg-type]
                continue
            node: _Node = item  # type: ignore[assignment]
            if node.is_leaf:
                pts = node.points
                assert pts is not None
                d2 = (self.lons[pts] - lon) ** 2 + (self.lats[pts] - lat) ** 2
                for pos, dd in zip(pts, d2):
                    counter += 1
                    heapq.heappush(heap, (float(dd), counter, int(pos), True))
            else:
                for child in node.children:
                    counter += 1
                    heapq.heappush(
                        heap,
                        (self._box_distance2(child.box, lon, lat), counter, child, False),
                    )
        return self.ids[np.asarray([pos for _, pos in found], dtype=np.int64)]
