"""Predicate and query evaluation over :class:`~repro.db.table.Table`.

A composable predicate algebra (comparisons, set membership, ranges,
boolean combinators) plus a fluent ``Query`` supporting where / select /
order_by / limit and grouped aggregation — the subset of SQL the VAP REST
endpoints would issue against PostgreSQL.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.db.table import Table

AGG_FUNCS = ("count", "sum", "mean", "min", "max")


class Predicate:
    """Base class: a predicate maps a table to a boolean row mask."""

    def mask(self, table: Table) -> np.ndarray:
        raise NotImplementedError

    def __and__(self, other: "Predicate") -> "Predicate":
        return And(self, other)

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or(self, other)

    def __invert__(self) -> "Predicate":
        return Not(self)


@dataclass(frozen=True)
class Compare(Predicate):
    """column <op> literal, with ``op`` one of == != < <= > >=."""

    column: str
    op: str
    value: object

    _OPS = {
        "==": np.equal,
        "!=": np.not_equal,
        "<": np.less,
        "<=": np.less_equal,
        ">": np.greater,
        ">=": np.greater_equal,
    }

    def __post_init__(self) -> None:
        if self.op not in self._OPS:
            raise ValueError(f"unknown operator {self.op!r}; use {sorted(self._OPS)}")

    def mask(self, table: Table) -> np.ndarray:
        return self._OPS[self.op](table.column(self.column), self.value)


@dataclass(frozen=True)
class IsIn(Predicate):
    """column value is one of a literal set."""

    column: str
    values: tuple

    def __init__(self, column: str, values: Sequence[object]) -> None:
        object.__setattr__(self, "column", column)
        object.__setattr__(self, "values", tuple(values))

    def mask(self, table: Table) -> np.ndarray:
        return np.isin(table.column(self.column), list(self.values))


@dataclass(frozen=True)
class Between(Predicate):
    """low <= column <= high (inclusive both ends, like SQL BETWEEN)."""

    column: str
    low: object
    high: object

    def mask(self, table: Table) -> np.ndarray:
        col = table.column(self.column)
        return (col >= self.low) & (col <= self.high)


@dataclass(frozen=True)
class And(Predicate):
    left: Predicate
    right: Predicate

    def mask(self, table: Table) -> np.ndarray:
        return self.left.mask(table) & self.right.mask(table)


@dataclass(frozen=True)
class Or(Predicate):
    left: Predicate
    right: Predicate

    def mask(self, table: Table) -> np.ndarray:
        return self.left.mask(table) | self.right.mask(table)


@dataclass(frozen=True)
class Not(Predicate):
    inner: Predicate

    def mask(self, table: Table) -> np.ndarray:
        return ~self.inner.mask(table)


class Query:
    """Fluent query over one table.

    Example
    -------
    >>> q = (Query(customers)
    ...      .where(Compare("zone", "==", "residential"))
    ...      .order_by("lat", descending=True)
    ...      .limit(10))
    >>> rows = q.rows()
    """

    def __init__(self, table: Table) -> None:
        self.table = table
        self._predicate: Predicate | None = None
        self._columns: tuple[str, ...] | None = None
        self._order_by: str | None = None
        self._descending = False
        self._limit: int | None = None

    def where(self, predicate: Predicate) -> "Query":
        """AND another predicate into the filter."""
        if self._predicate is None:
            self._predicate = predicate
        else:
            self._predicate = And(self._predicate, predicate)
        return self

    def select(self, *columns: str) -> "Query":
        for name in columns:
            self.table.schema.column(name)  # validate eagerly
        self._columns = columns
        return self

    def order_by(self, column: str, descending: bool = False) -> "Query":
        self.table.schema.column(column)
        self._order_by = column
        self._descending = descending
        return self

    def limit(self, n: int) -> "Query":
        if n < 0:
            raise ValueError(f"limit must be non-negative, got {n}")
        self._limit = n
        return self

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def positions(self) -> np.ndarray:
        """Row positions satisfying the query, in output order."""
        if self._predicate is None:
            pos = np.arange(len(self.table))
        else:
            pos = np.flatnonzero(self._predicate.mask(self.table))
        if self._order_by is not None:
            keys = self.table.column(self._order_by)[pos]
            order = np.argsort(keys, kind="stable")
            if self._descending:
                order = order[::-1]
            pos = pos[order]
        if self._limit is not None:
            pos = pos[: self._limit]
        return pos

    def count(self) -> int:
        return int(self.positions().size)

    def columns(self) -> dict[str, np.ndarray]:
        """Result as column arrays."""
        pos = self.positions()
        names = self._columns or self.table.schema.names
        data = self.table.take(pos)
        return {name: data[name] for name in names}

    def rows(self) -> list[dict[str, object]]:
        """Result as row dicts of Python scalars."""
        cols = self.columns()
        names = list(cols)
        n = cols[names[0]].size if names else 0
        return [
            {
                name: (
                    cols[name][i].item()
                    if hasattr(cols[name][i], "item")
                    else cols[name][i]
                )
                for name in names
            }
            for i in range(n)
        ]

    def group_by(self, key: str, aggregates: dict[str, tuple[str, str]]) -> list[dict[str, object]]:
        """Grouped aggregation.

        Parameters
        ----------
        key:
            Grouping column.
        aggregates:
            ``{output_name: (column, func)}`` with func in
            :data:`AGG_FUNCS`; ``count`` ignores its column.

        Returns rows sorted by group key.
        """
        self.table.schema.column(key)
        for out_name, (column, func) in aggregates.items():
            if func not in AGG_FUNCS:
                raise ValueError(
                    f"aggregate {out_name!r}: unknown func {func!r}; "
                    f"use {AGG_FUNCS}"
                )
            if func != "count":
                self.table.schema.column(column)
        pos = self.positions()
        keys = self.table.column(key)[pos]
        uniques = np.unique(keys)
        out: list[dict[str, object]] = []
        for value in uniques:
            sel = pos[keys == value]
            row: dict[str, object] = {key: value.item() if hasattr(value, "item") else value}
            for out_name, (column, func) in aggregates.items():
                if func == "count":
                    row[out_name] = int(sel.size)
                    continue
                data = self.table.column(column)[sel]
                if data.size == 0:
                    row[out_name] = float("nan")
                elif func == "sum":
                    row[out_name] = float(data.sum())
                elif func == "mean":
                    row[out_name] = float(data.mean())
                elif func == "min":
                    row[out_name] = data.min().item()
                else:  # max
                    row[out_name] = data.max().item()
            out.append(row)
        return out
