"""The database facade: customers + readings + spatial index.

:class:`EnergyDatabase` is the data layer the rest of the tool talks to —
the role PostgreSQL/PostGIS plays in the paper.  It owns

- a typed customers table (id, lon, lat, zone, archetype) queryable through
  :mod:`repro.db.query`,
- the dense hourly readings (:class:`~repro.data.timeseries.SeriesSet`),
- a spatial index over customer positions (grid, quadtree or R-tree),

and answers the composed spatio-temporal requests the logic layer issues:
"customers in this polygon", "their readings for this window", "per-customer
demand between t1 and t2" (the input of the KDE shift model).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Sequence

import numpy as np

from repro import obs
from repro.data.meter import Customer
from repro.data.timeseries import HourWindow, SeriesSet
from repro.db.index.grid import GridIndex
from repro.db.index.quadtree import QuadTree
from repro.db.index.rtree import RTree
from repro.db.query import Query
from repro.db.spatial import BBox, Circle, Polygon
from repro.db.table import ColumnSpec, Schema, Table

INDEX_KINDS = ("grid", "quadtree", "rtree")

CUSTOMER_SCHEMA = Schema(
    [
        ColumnSpec("customer_id", "int"),
        ColumnSpec("lon", "float"),
        ColumnSpec("lat", "float"),
        ColumnSpec("zone", "str"),
        ColumnSpec("archetype", "str"),
    ]
)

DEMAND_STATISTICS = ("mean", "sum", "max")


class EnergyDatabase:
    """In-memory spatio-temporal store for one metering data set.

    Parameters
    ----------
    customers:
        Customer rows; ids must be unique.
    readings:
        Hourly readings whose customer ids exactly match ``customers``.
    index_kind:
        Spatial index implementation, one of :data:`INDEX_KINDS`.
    metrics:
        Registry receiving ``db_query_seconds`` histograms (one per query
        kind); the process-wide default registry when omitted.
    slow_query_seconds:
        Queries slower than this are logged (``db.slow_query``, warning)
        and offered to the process slow-op log with the request ID that
        issued them.
    metric_labels:
        Extra labels stamped onto every ``db_query_seconds`` observation
        — the sharded data plane passes ``{"shard": "<id>"}`` here so
        per-shard query latency (and therefore per-shard lock
        contention) is visible in the metrics instead of folding into
        one anonymous series.
    """

    def __init__(
        self,
        customers: Sequence[Customer],
        readings: SeriesSet,
        index_kind: str = "rtree",
        metrics: obs.MetricsRegistry | None = None,
        slow_query_seconds: float = 0.25,
        metric_labels: dict[str, str] | None = None,
    ) -> None:
        self._metrics = metrics
        self._metric_labels = dict(metric_labels or {})
        # Serving threads issue composed reads concurrently; a reentrant
        # read lock keeps each query atomic over table + index + readings
        # (the composed demand path nests readings_for inside demand).
        self._read_lock = threading.RLock()
        if slow_query_seconds <= 0:
            raise ValueError(
                f"slow_query_seconds must be positive, got {slow_query_seconds}"
            )
        self.slow_query_seconds = slow_query_seconds
        if index_kind not in INDEX_KINDS:
            raise ValueError(
                f"unknown index_kind {index_kind!r}; pick one of {INDEX_KINDS}"
            )
        customers = list(customers)
        if not customers:
            raise ValueError("a database needs at least one customer")
        ids = [c.customer_id for c in customers]
        if len(set(ids)) != len(ids):
            raise ValueError("customer ids contain duplicates")
        if set(ids) != {int(cid) for cid in readings.customer_ids}:
            raise ValueError("customers and readings cover different ids")

        self._customers = {c.customer_id: c for c in customers}
        self.readings = readings
        self.table = Table("customers", CUSTOMER_SCHEMA)
        self.table.insert_columns(
            {
                "customer_id": ids,
                "lon": [c.lon for c in customers],
                "lat": [c.lat for c in customers],
                "zone": [c.zone.value for c in customers],
                "archetype": [c.archetype.value for c in customers],
            }
        )
        lons = np.array([c.lon for c in customers])
        lats = np.array([c.lat for c in customers])
        if index_kind == "grid":
            self.index = GridIndex(ids, lons, lats)
        elif index_kind == "quadtree":
            self.index = QuadTree(ids, lons, lats)
        else:
            self.index = RTree(ids, lons, lats)
        self.index_kind = index_kind

    # ------------------------------------------------------------------
    # metadata
    # ------------------------------------------------------------------
    @property
    def metrics(self) -> obs.MetricsRegistry:
        """This database's registry (the process default unless injected)."""
        return self._metrics if self._metrics is not None else obs.get_registry()

    @contextmanager
    def _timed(self, op: str):
        """Timer context recording one query into ``db_query_seconds``;
        queries over :attr:`slow_query_seconds` are also logged and
        offered to the slow-op log (correlated by request ID)."""
        registry = self.metrics
        hist = registry.histogram(
            "db_query_seconds", op=op, **self._metric_labels
        )
        start = registry.clock()
        try:
            with self._read_lock:
                yield
        finally:
            elapsed = registry.clock() - start
            hist.observe(elapsed)
            if elapsed >= self.slow_query_seconds:
                obs.get_slow_log().offer(f"db.{op}", elapsed)
                obs.log_event(
                    "db.slow_query",
                    level="warning",
                    op=op,
                    duration_ms=round(elapsed * 1000.0, 3),
                )

    def __len__(self) -> int:
        return len(self._customers)

    @property
    def customer_ids(self) -> list[int]:
        """All customer ids, ascending."""
        return sorted(self._customers)

    @property
    def time_span(self) -> HourWindow:
        """The hour window covered by the readings."""
        return HourWindow(self.readings.start_hour, self.readings.end_hour)

    def customer(self, customer_id: int) -> Customer:
        """Look up one customer; raises ``KeyError`` if unknown."""
        if customer_id not in self._customers:
            raise KeyError(f"unknown customer_id {customer_id}")
        return self._customers[customer_id]

    def query(self) -> Query:
        """A fresh fluent query over the customers table."""
        return Query(self.table)

    def group_by(
        self,
        key: str,
        aggregates: dict[str, tuple[str, str]],
        predicate=None,
    ) -> list[dict[str, object]]:
        """Grouped aggregates over the (optionally filtered) customers.

        Convenience over :meth:`repro.db.query.Query.group_by`; exists so
        single-shard and sharded databases expose the same grouped-query
        entry point.
        """
        with self._timed("group_by"):
            q = self.query()
            if predicate is not None:
                q = q.where(predicate)
            return q.group_by(key, aggregates)

    def sql(self, statement: str) -> list[dict[str, object]]:
        """Run a SQL SELECT against the ``customers`` table.

        See :mod:`repro.db.sql` for the supported dialect.

        Raises
        ------
        repro.db.sql.SqlError
            On parse errors or unknown tables/columns.
        """
        from repro.db.sql import execute_sql  # local: avoid import cycle

        with self._timed("sql"):
            return execute_sql({"customers": self.table}, statement)

    def bounding_box(self) -> BBox:
        """Smallest box covering every customer."""
        with self._read_lock:
            return BBox.from_points(
                self.table.column("lon"), self.table.column("lat")
            )

    # ------------------------------------------------------------------
    # spatial queries
    # ------------------------------------------------------------------
    def ids_in_bbox(self, box: BBox) -> np.ndarray:
        """Customer ids inside the box, ascending."""
        with self._timed("bbox"):
            return self.index.query_bbox(box)

    def ids_in_radius(self, circle: Circle) -> np.ndarray:
        """Customer ids inside the circle, ascending."""
        with self._timed("radius"):
            return self.index.query_radius(circle)

    def ids_in_polygon(self, polygon: Polygon) -> np.ndarray:
        """Customer ids inside the polygon (index pre-filter + exact test)."""
        with self._timed("polygon"):
            candidates = self.index.query_bbox(polygon.bbox())
            if candidates.size == 0:
                return candidates
            lons = np.array([self._customers[int(cid)].lon for cid in candidates])
            lats = np.array([self._customers[int(cid)].lat for cid in candidates])
            hit = polygon.contains_many(lons, lats)
            return candidates[hit]

    def nearest(self, lon: float, lat: float, k: int = 1) -> np.ndarray:
        """Ids of the k customers nearest to a point, closest first."""
        with self._timed("nearest"):
            return self.index.nearest(lon, lat, k=k)

    def ids_in_zone(self, zone: str) -> np.ndarray:
        """Customer ids in a land-use zone, ascending."""
        with self._read_lock:
            positions = np.flatnonzero(self.table.column("zone") == zone)
            return np.sort(self.table.column("customer_id")[positions])

    def positions_of(self, customer_ids: Sequence[int]) -> np.ndarray:
        """``(n, 2)`` array of (lon, lat) for the given ids, same order."""
        with self._read_lock:
            return np.array(
                [
                    (self._customers[int(cid)].lon, self._customers[int(cid)].lat)
                    for cid in customer_ids
                ],
                dtype=np.float64,
            ).reshape(len(list(customer_ids)), 2)

    # ------------------------------------------------------------------
    # temporal queries
    # ------------------------------------------------------------------
    def readings_for(
        self,
        customer_ids: Sequence[int] | None = None,
        window: HourWindow | None = None,
    ) -> SeriesSet:
        """Readings sliced to a customer subset and/or an hour window."""
        with self._timed("readings"):
            out = self.readings
            if customer_ids is not None:
                out = out.select_customers([int(cid) for cid in customer_ids])
            if window is not None:
                out = out.slice_hours(window.start_hour, window.end_hour)
            return out

    def demand(
        self,
        window: HourWindow,
        customer_ids: Sequence[int] | None = None,
        statistic: str = "mean",
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-customer demand over a window — the KDE model's input.

        Returns ``(positions, values)`` where positions is ``(n, 2)`` of
        (lon, lat) and values the chosen per-customer statistic over the
        window (NaN-aware; customers with no readings in the window get 0).

        Raises
        ------
        ValueError
            For an unknown statistic or a window outside the data span.
        """
        if statistic not in DEMAND_STATISTICS:
            raise ValueError(
                f"unknown statistic {statistic!r}; pick one of {DEMAND_STATISTICS}"
            )
        with self._timed("demand"), obs.span("db.demand", statistic=statistic):
            if customer_ids is None:
                customer_ids = [int(cid) for cid in self.readings.customer_ids]
            sliced = self.readings_for(customer_ids, window)
            matrix = sliced.matrix
            values = np.zeros(len(customer_ids))
            if matrix.shape[1] > 0:
                observed = ~np.isnan(matrix).all(axis=1)
                with np.errstate(invalid="ignore"):
                    if statistic == "mean":
                        stat = np.nanmean(matrix[observed], axis=1)
                    elif statistic == "sum":
                        stat = np.nansum(matrix[observed], axis=1)
                    else:  # max
                        stat = np.nanmax(matrix[observed], axis=1)
                values[observed] = stat
            return self.positions_of(customer_ids), values

    def top_consumers(
        self,
        window: HourWindow,
        k: int = 10,
        statistic: str = "mean",
    ) -> tuple[np.ndarray, np.ndarray]:
        """The k heaviest consumers over a window, heaviest first.

        Returns ``(ids, values)``; ties on the statistic break toward the
        smaller customer id so the ranking is deterministic (and therefore
        mergeable shard by shard).

        Raises
        ------
        ValueError
            For ``k < 1`` or an unknown statistic.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        with self._timed("topk"):
            ids = np.asarray(
                [int(cid) for cid in self.readings.customer_ids],
                dtype=np.int64,
            )
            _, values = self.demand(window, None, statistic)
            # lexsort: last key is primary — descending value, then id.
            order = np.lexsort((ids, -values))[:k]
            return ids[order], values[order]

    def rollup_partials(
        self,
        resolutions: Sequence["Resolution"],
        window: HourWindow | None = None,
    ) -> dict["Resolution", "BucketPartials"]:
        """Per-customer bucket partials for the rollup layer, one entry
        per requested resolution, rows in readings order.

        The shared bucketing primitive
        (:func:`~repro.preprocess.resample.bucket_partials`) does the
        work, so the derived tables a :class:`~repro.rollup.store
        .RollupStore` rebuilds from here cannot drift from the batch
        resample path.  ``window`` restricts the partials to an hour
        range (the sharded engine uses it to pin every shard to the
        common time prefix).
        """
        from repro.preprocess.resample import bucket_partials

        with self._timed("rollup_partials"):
            readings = self.readings
            if window is not None:
                readings = readings.slice_hours(
                    window.start_hour, window.end_hour
                )
            return {res: bucket_partials(readings, res) for res in resolutions}

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def ingest_hours(
        self,
        values: np.ndarray,
        start_hour: int,
        customer_ids: Sequence[int] | None = None,
    ) -> int:
        """Append hourly columns to the readings (the stream write path).

        The batch must start exactly where the stored readings end and
        cover every customer (``customer_ids`` may reorder the rows; it
        must be a permutation of the stored ids).  The new
        :class:`~repro.data.timeseries.SeriesSet` is built off-lock-free
        reads and swapped in atomically under the write lock, so a
        concurrent reader sees either the old or the new readings —
        never a torn matrix.

        Returns the new ``end_hour``.
        """
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 2:
            raise ValueError(
                f"ingest values must be 2-D, got shape {values.shape}"
            )
        with self._read_lock:
            readings = self.readings
            stored_ids = [int(cid) for cid in readings.customer_ids]
            if customer_ids is None:
                rows = values
            else:
                batch_ids = [int(cid) for cid in customer_ids]
                if len(batch_ids) != values.shape[0]:
                    raise ValueError(
                        f"got {len(batch_ids)} customer ids for "
                        f"{values.shape[0]} rows"
                    )
                if sorted(batch_ids) != sorted(stored_ids):
                    raise ValueError(
                        "ingest batch must cover exactly the stored "
                        "customers"
                    )
                row_of = {cid: i for i, cid in enumerate(batch_ids)}
                rows = values[[row_of[cid] for cid in stored_ids]]
            if rows.shape[0] != len(stored_ids):
                raise ValueError(
                    f"ingest batch has {rows.shape[0]} rows for "
                    f"{len(stored_ids)} customers"
                )
            if start_hour != readings.end_hour:
                raise ValueError(
                    f"ingest batch must start at hour {readings.end_hour} "
                    f"(the current end), got {start_hour}"
                )
            merged = SeriesSet(
                customer_ids=stored_ids,
                start_hour=readings.start_hour,
                matrix=np.hstack([readings.matrix, rows]),
            )
            # Atomic swap: readers holding the old reference keep a
            # consistent snapshot.
            self.readings = merged
        self.metrics.counter("db_ingest_hours_total", **self._metric_labels).inc(
            int(values.shape[1])
        )
        return merged.end_hour
