"""Sharded data plane: hash-partitioned stores + scatter-gather queries.

:class:`ShardedEnergyDatabase` splits one city across N independent
:class:`~repro.db.engine.EnergyDatabase` shards, each with its own
customers table, spatial index, readings matrix and read lock.  Customers
are assigned to shards by :func:`shard_of` — a stable FNV-1a hash of the
customer id — so the assignment is identical across processes and
releases (saved per-shard artifacts and routed stream ticks depend on
that).

Queries scatter across the owning shards in parallel on a shared
``ThreadPoolExecutor`` and gather deterministically:

- id sets merge by ascending id (each shard already returns ascending);
- ``group_by`` scatters the *predicate* and gathers the selected rows in
  the original table insertion order before recomputing aggregates —
  recomputing rather than merging per-shard partial sums because
  floating-point addition is not associative and the contract here is
  *bit-identical* results, proven by ``tests/db/test_shard_equivalence``;
- k-nearest-neighbour and top-k consumer queries merge per-shard
  candidate lists on a total order (``(distance², id)`` respectively
  ``(-value, id)``);
- bounding boxes merge by exact min/max union.

Consistency model: every single-shard operation is atomic under that
shard's lock.  Cross-shard reads take no global lock; instead each shard
contributes an atomic snapshot and time-dimension gathers trim to the
common time prefix, so concurrent stream ticks can never surface a torn
row — only a slightly older, internally consistent column range.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Mapping, Sequence

import numpy as np

from repro import obs
from repro.data.meter import Customer
from repro.parallel import scatter_budget
from repro.data.timeseries import HourWindow, SeriesSet
from repro.db.engine import (
    CUSTOMER_SCHEMA,
    DEMAND_STATISTICS,
    EnergyDatabase,
)
from repro.db.query import AGG_FUNCS, Predicate, Query
from repro.db.spatial import BBox, Circle, Polygon
from repro.db.table import Table

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = 0xFFFFFFFFFFFFFFFF


def shard_of(customer_id: int, n_shards: int) -> int:
    """Stable shard assignment: FNV-1a over the id's 8 little-endian bytes.

    Deliberately *not* Python's builtin ``hash`` (salted per process for
    strings, identity for small ints): shard membership must be a pure
    function of ``(customer_id, n_shards)`` so that routing, storage
    layout and replayed streams agree across processes.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    h = _FNV_OFFSET
    for byte in int(customer_id).to_bytes(8, "little", signed=True):
        h ^= byte
        h = (h * _FNV_PRIME) & _MASK64
    return h % n_shards


# One process-wide pool for scatter tasks.  Scatter tasks never submit
# nested scatter tasks (each is a plain single-shard call), so a bounded
# shared pool cannot deadlock — and sharing avoids thread churn when many
# short-lived databases exist (e.g. under hypothesis).  The width comes
# from the same ``REPRO_WORKERS`` budget the kernel pool obeys
# (:func:`repro.parallel.scatter_budget`), read once at first use, so
# one knob bounds both the kernel processes and the scatter threads.
_pool_lock = threading.Lock()
_pool: ThreadPoolExecutor | None = None


def _shared_pool() -> ThreadPoolExecutor:
    global _pool
    with _pool_lock:
        if _pool is None:
            _pool = ThreadPoolExecutor(
                max_workers=scatter_budget(),
                thread_name_prefix="shard-query",
            )
        return _pool


class ShardedEnergyDatabase:
    """N independent shards behind the :class:`EnergyDatabase` interface.

    Duck-type compatible with the single-shard engine for every read the
    rest of the tool issues (sessions, server handlers, storage), plus
    shard introspection (:attr:`shard_ids`, :meth:`shard`,
    :meth:`shard_sizes`) and the shard-aware stream write path
    :meth:`ingest_tick`.

    Parameters mirror :class:`EnergyDatabase`; ``n_shards=1`` is valid
    (one shard holding everything) and is the degenerate case the
    differential tests pin against.  ``parallel=False`` forces inline
    scatter — useful for debugging determinism questions.
    """

    def __init__(
        self,
        customers: Sequence[Customer],
        readings: SeriesSet,
        n_shards: int = 4,
        index_kind: str = "rtree",
        metrics: obs.MetricsRegistry | None = None,
        slow_query_seconds: float = 0.25,
        parallel: bool = True,
    ) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        customers = list(customers)
        if not customers:
            raise ValueError("a database needs at least one customer")
        ids = [c.customer_id for c in customers]
        if len(set(ids)) != len(ids):
            raise ValueError("customer ids contain duplicates")
        if set(ids) != {int(cid) for cid in readings.customer_ids}:
            raise ValueError("customers and readings cover different ids")

        self.n_shards = n_shards
        self.index_kind = index_kind
        self._metrics = metrics
        self._parallel = parallel
        # Canonical orders for deterministic gathers.  The engine only
        # requires *set* equality between customers and readings ids, so
        # the two orders can differ and both must be preserved: table
        # insertion order drives group_by/sql row order, readings row
        # order drives SeriesSet reassembly.
        self._table_order: dict[int, int] = {
            int(c.customer_id): i for i, c in enumerate(customers)
        }
        self._reading_ids: list[int] = [
            int(cid) for cid in readings.customer_ids
        ]
        self._reading_order: dict[int, int] = {
            cid: i for i, cid in enumerate(self._reading_ids)
        }
        self._shard_of_id: dict[int, int] = {
            int(c.customer_id): shard_of(c.customer_id, n_shards)
            for c in customers
        }

        by_shard: dict[int, list[Customer]] = {}
        for c in customers:
            by_shard.setdefault(self._shard_of_id[int(c.customer_id)], []).append(c)
        self._shards: dict[int, EnergyDatabase] = {}
        for sid in sorted(by_shard):
            members = by_shard[sid]
            # Shard readings keep the source row order so per-shard
            # matrices are verbatim row subsets of the original.
            sub_ids = sorted(
                (int(c.customer_id) for c in members),
                key=self._reading_order.__getitem__,
            )
            self._shards[sid] = EnergyDatabase(
                members,
                readings.select_customers(sub_ids),
                index_kind=index_kind,
                metrics=metrics,
                slow_query_seconds=slow_query_seconds,
                metric_labels={"shard": str(sid)},
            )

        self._gather_lock = threading.Lock()
        self._table_cache: Table | None = None
        self._readings_cache: tuple[tuple[int, ...], SeriesSet] | None = None

    # ------------------------------------------------------------------
    # shard plumbing
    # ------------------------------------------------------------------
    @property
    def metrics(self) -> obs.MetricsRegistry:
        """This database's registry (the process default unless injected)."""
        return self._metrics if self._metrics is not None else obs.get_registry()

    @property
    def shard_ids(self) -> list[int]:
        """Populated shard ids, ascending (hash gaps are possible)."""
        return sorted(self._shards)

    def shard(self, shard_id: int) -> EnergyDatabase:
        """The underlying engine for one shard; ``KeyError`` if empty."""
        return self._shards[shard_id]

    def shard_sizes(self) -> dict[int, int]:
        """Customers per populated shard."""
        return {sid: len(db) for sid, db in sorted(self._shards.items())}

    def shard_of_customer(self, customer_id: int) -> int:
        """The shard owning a customer; ``KeyError`` if unknown."""
        cid = int(customer_id)
        if cid not in self._shard_of_id:
            raise KeyError(f"unknown customer_id {customer_id}")
        return self._shard_of_id[cid]

    def _scatter(
        self,
        op: str,
        fn: Callable[[int, EnergyDatabase], object],
        shard_ids: Sequence[int] | None = None,
    ) -> list[tuple[int, object]]:
        """Run ``fn(shard_id, shard_db)`` on the target shards.

        Single-target scatters run inline — they take exactly one shard
        lock and never touch the pool, which is what lets point queries
        on different shards proceed fully in parallel.  Multi-target
        scatters fan out on the shared executor; results come back in
        ascending shard-id order regardless of completion order.

        The caller's :class:`~repro.obs.TraceContext` (request id,
        tenant, deadline, active span) is captured here and re-bound
        inside each pool worker, so per-shard spans stitch into the
        caller's trace and shard-side log/slow-op records keep the
        originating request id — ContextVars alone do not cross the pool
        boundary.
        """
        targets = sorted(self._shards) if shard_ids is None else sorted(shard_ids)
        self.metrics.counter("db_scatter_total", op=op).inc()
        self.metrics.counter("db_scatter_fanout_total", op=op).inc(len(targets))
        if len(targets) <= 1 or not self._parallel:
            return [(sid, fn(sid, self._shards[sid])) for sid in targets]
        ctx = obs.TraceContext.capture()

        def run_shard(sid: int) -> object:
            with ctx.bind(), obs.span("db.shard", op=op, shard=sid):
                return fn(sid, self._shards[sid])

        pool = _shared_pool()
        futures = [(sid, pool.submit(run_shard, sid)) for sid in targets]
        return [(sid, future.result()) for sid, future in futures]

    def _partition(self, customer_ids: Sequence[int]) -> dict[int, list[int]]:
        """Group requested ids by owning shard (insertion order kept)."""
        parts: dict[int, list[int]] = {}
        for cid in customer_ids:
            cid = int(cid)
            sid = self._shard_of_id.get(cid)
            if sid is None:
                raise KeyError(f"unknown customer_id {cid}")
            parts.setdefault(sid, []).append(cid)
        return parts

    # ------------------------------------------------------------------
    # metadata (engine-compatible)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._shard_of_id)

    @property
    def customer_ids(self) -> list[int]:
        """All customer ids, ascending."""
        return sorted(self._shard_of_id)

    @property
    def time_span(self) -> HourWindow:
        """The hour window every shard covers (common prefix under writes)."""
        spans = [db.time_span for db in self._shards.values()]
        return HourWindow(
            spans[0].start_hour, min(s.end_hour for s in spans)
        )

    def customer(self, customer_id: int) -> Customer:
        """Look up one customer; raises ``KeyError`` if unknown."""
        return self._shards[self.shard_of_customer(customer_id)].customer(
            customer_id
        )

    @property
    def readings(self) -> SeriesSet:
        """All readings, reassembled in the source row order.

        Gathered from per-shard atomic snapshots and trimmed to the
        common time prefix; cached until any shard's end hour moves.
        """
        snaps = [(sid, db.readings) for sid, db in sorted(self._shards.items())]
        key = tuple(s.end_hour for _, s in snaps)
        with self._gather_lock:
            cached = self._readings_cache
            if cached is not None and cached[0] == key:
                return cached[1]
        start = snaps[0][1].start_hour
        width = min(key) - start
        matrix = np.empty((len(self._reading_ids), width), dtype=np.float64)
        for _, series in snaps:
            rows = [self._reading_order[int(cid)] for cid in series.customer_ids]
            matrix[rows, :] = series.matrix[:, :width]
        merged = SeriesSet(
            customer_ids=list(self._reading_ids),
            start_hour=start,
            matrix=matrix,
        )
        with self._gather_lock:
            self._readings_cache = (key, merged)
        return merged

    @property
    def table(self) -> Table:
        """A gathered customers table in the original insertion order.

        Built once (customers are immutable after construction) — this
        is a *gather-based* view for SQL and fluent queries, not a
        scatter path.
        """
        with self._gather_lock:
            if self._table_cache is not None:
                return self._table_cache
        columns: dict[str, list[np.ndarray]] = {
            spec.name: [] for spec in CUSTOMER_SCHEMA.columns
        }
        orders: list[np.ndarray] = []
        for _, db in sorted(self._shards.items()):
            cids = db.table.column("customer_id")
            orders.append(
                np.asarray(
                    [self._table_order[int(c)] for c in cids], dtype=np.int64
                )
            )
            for name in columns:
                columns[name].append(db.table.column(name))
        order = np.concatenate(orders)
        sort_idx = np.argsort(order, kind="stable")
        table = Table("customers", CUSTOMER_SCHEMA)
        table.insert_columns(
            {
                name: np.concatenate(parts)[sort_idx]
                for name, parts in columns.items()
            }
        )
        with self._gather_lock:
            if self._table_cache is None:
                self._table_cache = table
            return self._table_cache

    def query(self) -> Query:
        """A fresh fluent query over the gathered customers table."""
        return Query(self.table)

    def sql(self, statement: str) -> list[dict[str, object]]:
        """Run a SQL SELECT against the gathered ``customers`` table."""
        from repro.db.sql import execute_sql  # local: avoid import cycle

        return execute_sql({"customers": self.table}, statement)

    def bounding_box(self) -> BBox:
        """Smallest box covering every customer (exact min/max union)."""
        gathered = self._scatter("bbox_meta", lambda sid, db: db.bounding_box())
        boxes = [box for _, box in gathered]
        merged = boxes[0]
        for box in boxes[1:]:
            merged = merged.union(box)
        return merged

    # ------------------------------------------------------------------
    # spatial queries (scatter → ascending-id merge)
    # ------------------------------------------------------------------
    @staticmethod
    def _merge_ids(arrays: list[np.ndarray]) -> np.ndarray:
        parts = [np.asarray(a, dtype=np.int64) for a in arrays if len(a)]
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.sort(np.concatenate(parts))

    def ids_in_bbox(self, box: BBox) -> np.ndarray:
        """Customer ids inside the box, ascending."""
        gathered = self._scatter("bbox", lambda sid, db: db.ids_in_bbox(box))
        return self._merge_ids([r for _, r in gathered])

    def ids_in_radius(self, circle: Circle) -> np.ndarray:
        """Customer ids inside the circle, ascending."""
        gathered = self._scatter(
            "radius", lambda sid, db: db.ids_in_radius(circle)
        )
        return self._merge_ids([r for _, r in gathered])

    def ids_in_polygon(self, polygon: Polygon) -> np.ndarray:
        """Customer ids inside the polygon, ascending."""
        gathered = self._scatter(
            "polygon", lambda sid, db: db.ids_in_polygon(polygon)
        )
        return self._merge_ids([r for _, r in gathered])

    def ids_in_zone(self, zone: str) -> np.ndarray:
        """Customer ids in a land-use zone, ascending."""
        gathered = self._scatter("zone", lambda sid, db: db.ids_in_zone(zone))
        return self._merge_ids([r for _, r in gathered])

    def nearest(self, lon: float, lat: float, k: int = 1) -> np.ndarray:
        """Ids of the k customers nearest to a point, closest first.

        Per-shard candidate lists merge on the total order
        ``(distance², id)`` so the result is deterministic even when the
        single-shard engine's traversal order would not be.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        gathered = self._scatter(
            "nearest",
            lambda sid, db: db.nearest(lon, lat, k=min(k, len(db))),
        )
        candidates: list[tuple[float, int]] = []
        for sid, ids in gathered:
            shard = self._shards[sid]
            for cid in ids:
                c = shard.customer(int(cid))
                d2 = (c.lon - lon) ** 2 + (c.lat - lat) ** 2
                candidates.append((d2, int(cid)))
        candidates.sort()
        top = candidates[: min(k, len(self))]
        return np.asarray([cid for _, cid in top], dtype=np.int64)

    def positions_of(self, customer_ids: Sequence[int]) -> np.ndarray:
        """``(n, 2)`` array of (lon, lat) for the given ids, same order."""
        ids = [int(cid) for cid in customer_ids]
        out = np.empty((len(ids), 2), dtype=np.float64)
        parts = self._partition(ids)
        slots: dict[int, list[int]] = {}
        for slot, cid in enumerate(ids):
            slots.setdefault(cid, []).append(slot)
        gathered = self._scatter(
            "positions",
            lambda sid, db: db.positions_of(parts[sid]),
            shard_ids=list(parts),
        )
        for sid, positions in gathered:
            for row, cid in enumerate(parts[sid]):
                for slot in slots[cid]:
                    out[slot] = positions[row]
        return out

    # ------------------------------------------------------------------
    # temporal queries (scatter → row reassembly)
    # ------------------------------------------------------------------
    def readings_for(
        self,
        customer_ids: Sequence[int] | None = None,
        window: HourWindow | None = None,
    ) -> SeriesSet:
        """Readings sliced to a customer subset and/or an hour window."""
        if customer_ids is None:
            ids = list(self._reading_ids)
        else:
            ids = [int(cid) for cid in customer_ids]
        span = self.time_span
        lo = span.start_hour if window is None else max(window.start_hour, span.start_hour)
        hi = span.end_hour if window is None else min(window.end_hour, span.end_hour)
        width = max(0, hi - lo)
        if not ids:
            return SeriesSet(
                customer_ids=[],
                start_hour=lo,
                matrix=np.empty((0, width), dtype=np.float64),
            )
        parts = self._partition(ids)
        gathered = self._scatter(
            "readings",
            lambda sid, db: db.readings_for(parts[sid], window),
            shard_ids=list(parts),
        )
        # Concurrent ticks may leave shards at different end hours; trim
        # every sub-result to the narrowest so rows stay aligned.
        width = min(width, *(s.n_steps for _, s in gathered))
        matrix = np.empty((len(ids), width), dtype=np.float64)
        slot_of: dict[int, int] = {}
        for slot, cid in enumerate(ids):
            if cid in slot_of:
                # Match the single-shard error: duplicates are rejected
                # by the SeriesSet constructor.
                raise ValueError("customer_ids contains duplicates")
            slot_of[cid] = slot
        for sid, series in gathered:
            for row, cid in enumerate(series.customer_ids):
                matrix[slot_of[int(cid)], :] = series.matrix[row, :width]
        return SeriesSet(customer_ids=ids, start_hour=lo, matrix=matrix)

    def demand(
        self,
        window: HourWindow,
        customer_ids: Sequence[int] | None = None,
        statistic: str = "mean",
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-customer demand over a window (see engine docstring)."""
        if statistic not in DEMAND_STATISTICS:
            raise ValueError(
                f"unknown statistic {statistic!r}; pick one of {DEMAND_STATISTICS}"
            )
        if customer_ids is None:
            ids = list(self._reading_ids)
        else:
            ids = [int(cid) for cid in customer_ids]
        positions = np.empty((len(ids), 2), dtype=np.float64)
        values = np.zeros(len(ids), dtype=np.float64)
        if ids:
            parts = self._partition(ids)
            # Open db.demand on the caller's thread; _scatter propagates
            # the context so per-shard db.shard spans become children.
            with obs.span(
                "db.demand", statistic=statistic, n_shards=len(parts)
            ):
                gathered = self._scatter(
                    "demand",
                    lambda sid, db: db.demand(window, parts[sid], statistic),
                    shard_ids=list(parts),
                )
            slots: dict[int, list[int]] = {}
            for slot, cid in enumerate(ids):
                slots.setdefault(cid, []).append(slot)
            for sid, (pos, vals) in gathered:
                for row, cid in enumerate(parts[sid]):
                    for slot in slots[cid]:
                        positions[slot] = pos[row]
                        values[slot] = vals[row]
        return positions, values

    def rollup_partials(
        self,
        resolutions: Sequence["Resolution"],
        window: HourWindow | None = None,
    ) -> dict["Resolution", "BucketPartials"]:
        """Per-shard bucket partials merged into the gathered row order.

        Two phases: first pin the common time prefix across shard
        snapshots, then scatter the partial computation with that window
        so every shard buckets the *identical* hour range (and therefore
        produces the identical bucket set).  Each customer lives in
        exactly one shard, so the merge is pure row assembly into the
        canonical reading order — bit-identical to computing the
        partials over the gathered readings, without ever gathering
        them.
        """
        from repro.preprocess.resample import BucketPartials

        resolutions = tuple(resolutions)
        if window is None:
            spans = self._scatter("rollup_span", lambda sid, db: db.time_span)
            window = HourWindow(
                spans[0][1].start_hour, min(s.end_hour for _, s in spans)
            )
        with obs.span(
            "db.rollup_partials",
            n_shards=len(self._shards),
            resolutions=len(resolutions),
        ):
            gathered = self._scatter(
                "rollup_partials",
                lambda sid, db: (
                    [int(cid) for cid in db.readings.customer_ids],
                    db.rollup_partials(resolutions, window=window),
                ),
            )
        n = len(self._reading_ids)
        merged: dict[object, object] = {}
        for res in resolutions:
            template = gathered[0][1][1][res]
            sums = np.zeros((n, template.n_buckets))
            counts = np.zeros((n, template.n_buckets))
            for _, (ids, parts) in gathered:
                p = parts[res]
                if not np.array_equal(p.buckets, template.buckets):
                    raise RuntimeError(
                        "shard bucket sets diverged during the gather; "
                        "retry the rollup rebuild"
                    )
                rows = [self._reading_order[cid] for cid in ids]
                sums[rows, :] = p.sums
                counts[rows, :] = p.counts
            merged[res] = BucketPartials(
                resolution=res,
                buckets=template.buckets.copy(),
                edges=template.edges.copy(),
                sums=sums,
                counts=counts,
            )
        return merged

    def top_consumers(
        self,
        window: HourWindow,
        k: int = 10,
        statistic: str = "mean",
    ) -> tuple[np.ndarray, np.ndarray]:
        """The k heaviest consumers over a window, heaviest first.

        Classic top-k merge: each shard returns its own top
        ``min(k, len(shard))`` on the total order ``(-value, id)``; the
        union of those lists provably contains the global top k, which a
        second lexsort extracts.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if statistic not in DEMAND_STATISTICS:
            raise ValueError(
                f"unknown statistic {statistic!r}; pick one of {DEMAND_STATISTICS}"
            )
        gathered = self._scatter(
            "topk",
            lambda sid, db: db.top_consumers(
                window, k=min(k, len(db)), statistic=statistic
            ),
        )
        ids = np.concatenate([r[0] for _, r in gathered])
        values = np.concatenate([r[1] for _, r in gathered])
        order = np.lexsort((ids, -values))[:k]
        return ids[order], values[order]

    # ------------------------------------------------------------------
    # group-by (scatter the predicate, gather rows, recompute exactly)
    # ------------------------------------------------------------------
    def group_by(
        self,
        key: str,
        aggregates: Mapping[str, tuple[str, str]],
        predicate: Predicate | None = None,
    ) -> list[dict[str, object]]:
        """Grouped aggregates over the (optionally filtered) customers.

        Shards evaluate the predicate and ship the *selected raw values*;
        the gather step re-orders them into table insertion order and
        recomputes each aggregate with exactly the same numpy reductions
        as :meth:`repro.db.query.Query.group_by`.  Merging per-shard
        partial sums instead would be cheaper but not bit-identical
        (floating-point addition is not associative).
        """
        probe = next(iter(self._shards.values())).table
        probe.schema.column(key)  # raises KeyError on unknown key
        needed: set[str] = set()
        for out_name, (column, func) in aggregates.items():
            if func not in AGG_FUNCS:
                raise ValueError(
                    f"aggregate {out_name!r}: unknown func {func!r}; "
                    f"use {AGG_FUNCS}"
                )
            if func != "count":
                probe.schema.column(column)
                needed.add(column)

        def per_shard(sid: int, db: EnergyDatabase):
            q = Query(db.table)
            if predicate is not None:
                q = q.where(predicate)
            pos = q.positions()
            cids = db.table.column("customer_id")[pos]
            order = np.asarray(
                [self._table_order[int(c)] for c in cids], dtype=np.int64
            )
            keys = db.table.column(key)[pos]
            cols = {name: db.table.column(name)[pos] for name in needed}
            return order, keys, cols

        gathered = self._scatter("group_by", per_shard)
        orders = [r[0] for _, r in gathered if len(r[0])]
        if not orders:
            return []
        order = np.concatenate(orders)
        sort_idx = np.argsort(order, kind="stable")
        keys = np.concatenate([r[1] for _, r in gathered if len(r[1])])[sort_idx]
        cols = {
            name: np.concatenate(
                [r[2][name] for _, r in gathered if len(r[1])]
            )[sort_idx]
            for name in needed
        }
        rows: list[dict[str, object]] = []
        for value in np.unique(keys):
            sel = keys == value
            row: dict[str, object] = {
                key: value.item() if hasattr(value, "item") else value
            }
            for out_name, (column, func) in aggregates.items():
                if func == "count":
                    row[out_name] = int(sel.sum())
                    continue
                data = cols[column][sel]
                if data.size == 0:
                    row[out_name] = float("nan")
                elif func == "sum":
                    row[out_name] = float(data.sum())
                elif func == "mean":
                    row[out_name] = float(data.mean())
                elif func == "min":
                    row[out_name] = data.min().item()
                else:  # max
                    row[out_name] = data.max().item()
            rows.append(row)
        return rows

    # ------------------------------------------------------------------
    # writes (shard-aware stream ingestion)
    # ------------------------------------------------------------------
    def ingest_tick(
        self,
        customer_ids: Sequence[int],
        values: np.ndarray,
        start_hour: int,
    ) -> int:
        """Route one stream batch to the owning shards and append it.

        Rows are split by :func:`shard_of` and each shard appends its
        slice under its own lock (in parallel when several shards are
        touched).  A batch must cover *every* customer of each shard it
        touches — partial shard coverage would desynchronise that
        shard's clock.

        Returns the new common ``end_hour``.
        """
        values = np.asarray(values, dtype=np.float64)
        ids = [int(cid) for cid in customer_ids]
        if values.ndim != 2 or values.shape[0] != len(ids):
            raise ValueError(
                f"tick values must be ({len(ids)}, hours), got shape "
                f"{values.shape}"
            )
        parts = self._partition(ids)
        row_of = {cid: i for i, cid in enumerate(ids)}

        def per_shard(sid: int, db: EnergyDatabase) -> int:
            members = parts[sid]
            rows = values[[row_of[cid] for cid in members]]
            return db.ingest_hours(rows, start_hour, customer_ids=members)

        gathered = self._scatter("ingest", per_shard, shard_ids=list(parts))
        self.metrics.counter("db_ingest_ticks_total").inc()
        return min(end for _, end in gathered)
