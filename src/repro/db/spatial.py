"""Geometry types and predicates (the PostGIS surface VAP uses).

Minimal but correct planar geometry in (lon, lat) degree space: points,
axis-aligned boxes, circles (with optional geodesic radius test) and simple
polygons with even-odd containment.  Everything is immutable and hashable
(except Polygon, which holds an array) so geometries can be used as query
parameters and cache keys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.db.geo import haversine_m


@dataclass(frozen=True, slots=True)
class Point:
    """A WGS-84 position."""

    lon: float
    lat: float

    def distance_m(self, other: "Point") -> float:
        """Great-circle distance to another point in metres."""
        return float(haversine_m(self.lon, self.lat, other.lon, other.lat))

    def as_tuple(self) -> tuple[float, float]:
        return (self.lon, self.lat)


@dataclass(frozen=True, slots=True)
class BBox:
    """Axis-aligned box, inclusive on all edges."""

    min_lon: float
    min_lat: float
    max_lon: float
    max_lat: float

    def __post_init__(self) -> None:
        if self.max_lon < self.min_lon:
            raise ValueError(
                f"max_lon {self.max_lon} precedes min_lon {self.min_lon}"
            )
        if self.max_lat < self.min_lat:
            raise ValueError(
                f"max_lat {self.max_lat} precedes min_lat {self.min_lat}"
            )

    @classmethod
    def from_points(cls, lons: Sequence[float], lats: Sequence[float]) -> "BBox":
        """Smallest box covering the given coordinates.

        Raises
        ------
        ValueError
            If the coordinate lists are empty or of different lengths.
        """
        lons = np.asarray(lons, dtype=np.float64)
        lats = np.asarray(lats, dtype=np.float64)
        if lons.size == 0 or lats.size == 0:
            raise ValueError("cannot build a BBox from zero points")
        if lons.shape != lats.shape:
            raise ValueError("lons and lats must have the same length")
        return cls(
            float(lons.min()), float(lats.min()), float(lons.max()), float(lats.max())
        )

    @property
    def width(self) -> float:
        return self.max_lon - self.min_lon

    @property
    def height(self) -> float:
        return self.max_lat - self.min_lat

    @property
    def center(self) -> Point:
        return Point(
            (self.min_lon + self.max_lon) / 2.0, (self.min_lat + self.max_lat) / 2.0
        )

    def contains(self, lon: float, lat: float) -> bool:
        return (
            self.min_lon <= lon <= self.max_lon
            and self.min_lat <= lat <= self.max_lat
        )

    def contains_many(self, lons: np.ndarray, lats: np.ndarray) -> np.ndarray:
        """Vectorised containment test."""
        return (
            (lons >= self.min_lon)
            & (lons <= self.max_lon)
            & (lats >= self.min_lat)
            & (lats <= self.max_lat)
        )

    def intersects(self, other: "BBox") -> bool:
        return not (
            other.min_lon > self.max_lon
            or other.max_lon < self.min_lon
            or other.min_lat > self.max_lat
            or other.max_lat < self.min_lat
        )

    def expanded(self, margin: float) -> "BBox":
        """Box grown by ``margin`` degrees on every side."""
        if margin < 0:
            raise ValueError(f"margin must be non-negative, got {margin}")
        return BBox(
            self.min_lon - margin,
            self.min_lat - margin,
            self.max_lon + margin,
            self.max_lat + margin,
        )

    def union(self, other: "BBox") -> "BBox":
        return BBox(
            min(self.min_lon, other.min_lon),
            min(self.min_lat, other.min_lat),
            max(self.max_lon, other.max_lon),
            max(self.max_lat, other.max_lat),
        )

    def area(self) -> float:
        """Planar degree-space area (index bookkeeping, not geodesic)."""
        return self.width * self.height


@dataclass(frozen=True, slots=True)
class Circle:
    """A disc around a centre point.

    ``radius_deg`` tests in planar degree space (fast, index-friendly);
    ``radius_m`` when set switches containment to geodesic metres, the
    PostGIS ``ST_DWithin(geography, ...)`` behaviour.
    """

    center: Point
    radius_deg: float
    radius_m: float | None = None

    def __post_init__(self) -> None:
        if self.radius_deg < 0:
            raise ValueError(f"radius_deg must be non-negative: {self.radius_deg}")
        if self.radius_m is not None and self.radius_m < 0:
            raise ValueError(f"radius_m must be non-negative: {self.radius_m}")

    def contains(self, lon: float, lat: float) -> bool:
        if self.radius_m is not None:
            return (
                haversine_m(self.center.lon, self.center.lat, lon, lat)
                <= self.radius_m
            )
        d2 = (lon - self.center.lon) ** 2 + (lat - self.center.lat) ** 2
        return d2 <= self.radius_deg**2

    def contains_many(self, lons: np.ndarray, lats: np.ndarray) -> np.ndarray:
        if self.radius_m is not None:
            d = haversine_m(self.center.lon, self.center.lat, lons, lats)
            return np.asarray(d) <= self.radius_m
        d2 = (lons - self.center.lon) ** 2 + (lats - self.center.lat) ** 2
        return d2 <= self.radius_deg**2

    def bbox(self) -> BBox:
        """Bounding box for index pre-filtering (conservative for metres)."""
        radius = self.radius_deg
        if self.radius_m is not None:
            # Conservative: one degree of latitude is ~111 km everywhere, and
            # longitude degrees only shrink, so dividing by the cosine at the
            # centre overestimates the needed box.
            deg_lat = self.radius_m / 111_000.0
            cos_lat = max(0.01, float(np.cos(np.radians(self.center.lat))))
            radius = max(radius, deg_lat / cos_lat)
        return BBox(
            self.center.lon - radius,
            self.center.lat - radius,
            self.center.lon + radius,
            self.center.lat + radius,
        )


class Polygon:
    """A simple (non-self-intersecting) polygon with even-odd containment.

    Vertices are ``(lon, lat)`` pairs; the ring closes implicitly.  Used for
    the lasso selection the tool's view C supports and for zone boundaries.
    """

    def __init__(self, vertices: Sequence[tuple[float, float]]) -> None:
        pts = np.asarray(vertices, dtype=np.float64)
        if pts.ndim != 2 or pts.shape[1] != 2:
            raise ValueError("vertices must be a sequence of (lon, lat) pairs")
        # Drop an explicit closing vertex if present.
        if pts.shape[0] >= 2 and np.allclose(pts[0], pts[-1]):
            pts = pts[:-1]
        if pts.shape[0] < 3:
            raise ValueError(f"a polygon needs at least 3 vertices, got {pts.shape[0]}")
        self.vertices = pts

    def bbox(self) -> BBox:
        return BBox.from_points(self.vertices[:, 0], self.vertices[:, 1])

    def contains(self, lon: float, lat: float) -> bool:
        return bool(
            self.contains_many(np.asarray([lon]), np.asarray([lat]))[0]
        )

    def contains_many(self, lons: np.ndarray, lats: np.ndarray) -> np.ndarray:
        """Vectorised even-odd (ray casting) containment.

        Points exactly on an edge may land on either side — acceptable for
        interactive selection semantics.
        """
        lons = np.asarray(lons, dtype=np.float64)
        lats = np.asarray(lats, dtype=np.float64)
        inside = np.zeros(lons.shape, dtype=bool)
        xs = self.vertices[:, 0]
        ys = self.vertices[:, 1]
        n = xs.shape[0]
        j = n - 1
        for i in range(n):
            crosses = (ys[i] > lats) != (ys[j] > lats)
            with np.errstate(divide="ignore", invalid="ignore"):
                x_at = xs[i] + (lats - ys[i]) / (ys[j] - ys[i]) * (xs[j] - xs[i])
            inside ^= crosses & (lons < x_at)
            j = i
        return inside

    def area(self) -> float:
        """Planar degree-space area via the shoelace formula."""
        xs = self.vertices[:, 0]
        ys = self.vertices[:, 1]
        return float(
            0.5 * abs(np.dot(xs, np.roll(ys, -1)) - np.dot(ys, np.roll(xs, -1)))
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Polygon(n_vertices={self.vertices.shape[0]})"
