"""Typed column tables.

A deliberately small column-store: each column is a numpy array (float64,
int64 or unicode), rows are appended in batches, and filters evaluate to
boolean masks.  It gives the engine and the query layer a PostgreSQL-shaped
surface (schema, predicates, projections, group-by) without a SQL parser.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

#: Supported logical column types and their numpy dtypes.
COLUMN_TYPES: dict[str, type] = {"int": np.int64, "float": np.float64, "str": np.str_}


@dataclass(frozen=True, slots=True)
class ColumnSpec:
    """Declared name and logical type of one column."""

    name: str
    kind: str

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise ValueError(f"column name must be an identifier, got {self.name!r}")
        if self.kind not in COLUMN_TYPES:
            raise ValueError(
                f"unknown column kind {self.kind!r}; pick one of "
                f"{sorted(COLUMN_TYPES)}"
            )


class Schema:
    """An ordered set of column specs with name lookup."""

    def __init__(self, columns: Sequence[ColumnSpec]) -> None:
        if not columns:
            raise ValueError("a schema needs at least one column")
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate column names in schema: {names}")
        self.columns = tuple(columns)
        self._by_name = {c.name: c for c in columns}

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __iter__(self):
        return iter(self.columns)

    def __len__(self) -> int:
        return len(self.columns)

    def column(self, name: str) -> ColumnSpec:
        if name not in self._by_name:
            raise KeyError(
                f"no column {name!r}; known: {[c.name for c in self.columns]}"
            )
        return self._by_name[name]

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)


class Table:
    """A growable column table bound to a :class:`Schema`.

    Appends amortise through chunking: batches accumulate in a staging list
    and consolidate lazily on first read, so bulk loads stay O(n).
    """

    def __init__(self, name: str, schema: Schema) -> None:
        if not name:
            raise ValueError("table name must be non-empty")
        self.name = name
        self.schema = schema
        self._chunks: list[dict[str, np.ndarray]] = []
        self._consolidated: dict[str, np.ndarray] | None = None
        self._n_rows = 0

    def __len__(self) -> int:
        return self._n_rows

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def insert(self, rows: Iterable[Mapping[str, object]]) -> int:
        """Append row dicts; returns the number inserted.

        Raises
        ------
        KeyError
            If a row misses a schema column.
        ValueError
            If a value cannot coerce to the declared type.
        """
        rows = list(rows)
        if not rows:
            return 0
        chunk: dict[str, np.ndarray] = {}
        for spec in self.schema:
            dtype = COLUMN_TYPES[spec.kind]
            try:
                values = [row[spec.name] for row in rows]
            except KeyError:
                raise KeyError(
                    f"table {self.name!r}: row is missing column {spec.name!r}"
                ) from None
            try:
                chunk[spec.name] = np.asarray(values, dtype=dtype)
            except (TypeError, ValueError) as exc:
                raise ValueError(
                    f"table {self.name!r}: column {spec.name!r} expects "
                    f"{spec.kind}: {exc}"
                ) from exc
        self._chunks.append(chunk)
        self._consolidated = None
        self._n_rows += len(rows)
        return len(rows)

    def insert_columns(self, columns: Mapping[str, Sequence[object]]) -> int:
        """Append columnar data directly (bulk-load path).

        All schema columns must be present and equal length.
        """
        missing = [c.name for c in self.schema if c.name not in columns]
        if missing:
            raise KeyError(f"table {self.name!r}: missing columns {missing}")
        lengths = {name: len(columns[name]) for name in self.schema.names}
        if len(set(lengths.values())) != 1:
            raise ValueError(f"table {self.name!r}: ragged columns {lengths}")
        n = next(iter(lengths.values()))
        if n == 0:
            return 0
        chunk = {}
        for spec in self.schema:
            dtype = COLUMN_TYPES[spec.kind]
            chunk[spec.name] = np.asarray(columns[spec.name], dtype=dtype)
        self._chunks.append(chunk)
        self._consolidated = None
        self._n_rows += n
        return n

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def _data(self) -> dict[str, np.ndarray]:
        if self._consolidated is None:
            if not self._chunks:
                self._consolidated = {
                    spec.name: np.empty(0, dtype=COLUMN_TYPES[spec.kind])
                    for spec in self.schema
                }
            elif len(self._chunks) == 1:
                self._consolidated = self._chunks[0]
            else:
                self._consolidated = {
                    name: np.concatenate([c[name] for c in self._chunks])
                    for name in self.schema.names
                }
                self._chunks = [self._consolidated]
        return self._consolidated

    def column(self, name: str) -> np.ndarray:
        """Full column as a numpy array (a view of internal storage —
        callers must not mutate it)."""
        self.schema.column(name)
        return self._data()[name]

    def row(self, position: int) -> dict[str, object]:
        """One row as a plain dict of Python scalars."""
        if not 0 <= position < self._n_rows:
            raise IndexError(f"row {position} out of range 0..{self._n_rows - 1}")
        data = self._data()
        out: dict[str, object] = {}
        for spec in self.schema:
            value = data[spec.name][position]
            out[spec.name] = value.item() if hasattr(value, "item") else value
        return out

    def take(self, positions: np.ndarray) -> dict[str, np.ndarray]:
        """Select rows by position, all columns."""
        data = self._data()
        return {name: data[name][positions] for name in self.schema.names}
