"""A small SQL SELECT dialect over the embedded table engine.

The paper's tool sits on PostgreSQL; the operational queries its REST
layer issues are plain ``SELECT``s with filters and aggregates.  This
module implements that surface as a classic three-stage pipeline —
tokenizer → recursive-descent parser → compiler to the
:mod:`repro.db.query` algebra — so ad-hoc exploration works without
writing Python:

    SELECT zone, count(*) AS n, avg(lat) AS mid
    FROM customers
    WHERE archetype IN ('bimodal', 'early_bird') AND lon > 12.5
    GROUP BY zone
    ORDER BY n DESC
    LIMIT 3

Supported grammar (case-insensitive keywords)::

    select    := SELECT items FROM name [WHERE expr] [GROUP BY name]
                 [ORDER BY name [ASC|DESC]] [LIMIT int]
    items     := '*' | item (',' item)*
    item      := name | func '(' (name | '*') ')' [AS name]
    expr      := term (OR term)*
    term      := factor (AND factor)*
    factor    := NOT factor | '(' expr ')' | predicate
    predicate := name op literal | name IN '(' literal, ... ')'
                 | name BETWEEN literal AND literal
    op        := = | != | <> | < | <= | > | >=

Aggregates: ``count``, ``sum``, ``avg``, ``min``, ``max``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.db.query import Between, Compare, IsIn, Not, Predicate, Query
from repro.db.table import Table


class SqlError(ValueError):
    """Raised for any lexical, syntactic or semantic SQL problem."""


# ---------------------------------------------------------------------------
# tokenizer
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>-?\d+\.\d*|-?\.\d+|-?\d+)
  | (?P<string>'(?:[^']|'')*')
  | (?P<op><=|>=|<>|!=|=|<|>|\(|\)|,|\*)
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
    """,
    re.VERBOSE,
)

KEYWORDS = frozenset(
    "select from where group by order limit and or not in between as asc desc".split()
)

AGG_NAMES = {"count": "count", "sum": "sum", "avg": "mean", "min": "min", "max": "max"}


@dataclass(frozen=True, slots=True)
class Token:
    kind: str  # keyword | name | number | string | op
    value: object
    position: int


def tokenize(sql: str) -> list[Token]:
    """Lex SQL text into tokens.

    Raises
    ------
    SqlError
        On any character that no token rule accepts.
    """
    tokens: list[Token] = []
    position = 0
    while position < len(sql):
        match = _TOKEN_RE.match(sql, position)
        if match is None:
            raise SqlError(f"unexpected character {sql[position]!r} at {position}")
        position = match.end()
        if match.lastgroup == "ws":
            continue
        text = match.group()
        if match.lastgroup == "number":
            value = float(text) if ("." in text) else int(text)
            tokens.append(Token("number", value, match.start()))
        elif match.lastgroup == "string":
            tokens.append(
                Token("string", text[1:-1].replace("''", "'"), match.start())
            )
        elif match.lastgroup == "op":
            tokens.append(Token("op", text, match.start()))
        else:
            lowered = text.lower()
            kind = "keyword" if lowered in KEYWORDS else "name"
            tokens.append(
                Token(kind, lowered if kind == "keyword" else text, match.start())
            )
    return tokens


# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class SelectItem:
    """One output column: plain column or aggregate call."""

    column: str  # '*' allowed only inside count(*)
    func: str | None  # internal aggregate name, None for plain columns
    alias: str


@dataclass(frozen=True, slots=True)
class SelectStatement:
    items: list[SelectItem] | None  # None means SELECT *
    table: str
    where: Predicate | None
    group_by: str | None
    order_by: str | None
    descending: bool
    limit: int | None


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.index = 0

    # -- primitives ------------------------------------------------------
    def _peek(self) -> Token | None:
        return self.tokens[self.index] if self.index < len(self.tokens) else None

    def _next(self) -> Token:
        token = self._peek()
        if token is None:
            raise SqlError("unexpected end of statement")
        self.index += 1
        return token

    def _expect_keyword(self, word: str) -> None:
        token = self._next()
        if token.kind != "keyword" or token.value != word:
            raise SqlError(f"expected {word.upper()!r} at {token.position}")

    def _expect_op(self, op: str) -> None:
        token = self._next()
        if token.kind != "op" or token.value != op:
            raise SqlError(f"expected {op!r} at {token.position}")

    def _accept_keyword(self, word: str) -> bool:
        token = self._peek()
        if token and token.kind == "keyword" and token.value == word:
            self.index += 1
            return True
        return False

    def _name(self) -> str:
        token = self._next()
        if token.kind != "name":
            raise SqlError(f"expected identifier at {token.position}")
        return str(token.value)

    def _literal(self) -> object:
        token = self._next()
        if token.kind not in ("number", "string"):
            raise SqlError(f"expected literal at {token.position}")
        return token.value

    # -- grammar ----------------------------------------------------------
    def parse(self) -> SelectStatement:
        self._expect_keyword("select")
        items = self._select_items()
        self._expect_keyword("from")
        table = self._name()
        where = None
        if self._accept_keyword("where"):
            where = self._expr()
        group_by = None
        order_by = None
        descending = False
        limit = None
        if self._accept_keyword("group"):
            self._expect_keyword("by")
            group_by = self._name()
        if self._accept_keyword("order"):
            self._expect_keyword("by")
            order_by = self._name()
            if self._accept_keyword("desc"):
                descending = True
            else:
                self._accept_keyword("asc")
        if self._accept_keyword("limit"):
            token = self._next()
            if token.kind != "number" or not isinstance(token.value, int):
                raise SqlError(f"LIMIT expects an integer at {token.position}")
            if token.value < 0:
                raise SqlError("LIMIT must be non-negative")
            limit = token.value
        trailing = self._peek()
        if trailing is not None:
            raise SqlError(f"unexpected input at {trailing.position}")
        return SelectStatement(
            items=items,
            table=table,
            where=where,
            group_by=group_by,
            order_by=order_by,
            descending=descending,
            limit=limit,
        )

    def _select_items(self) -> list[SelectItem] | None:
        token = self._peek()
        if token and token.kind == "op" and token.value == "*":
            self.index += 1
            return None
        items = [self._select_item()]
        while True:
            token = self._peek()
            if token and token.kind == "op" and token.value == ",":
                self.index += 1
                items.append(self._select_item())
            else:
                return items

    def _select_item(self) -> SelectItem:
        name = self._name()
        func = None
        column = name
        token = self._peek()
        if token and token.kind == "op" and token.value == "(":
            lowered = name.lower()
            if lowered not in AGG_NAMES:
                raise SqlError(f"unknown aggregate {name!r}")
            func = AGG_NAMES[lowered]
            self.index += 1
            inner = self._next()
            if inner.kind == "op" and inner.value == "*":
                if lowered != "count":
                    raise SqlError(f"{name}(*) is only valid for count")
                column = "*"
            elif inner.kind == "name":
                column = str(inner.value)
            else:
                raise SqlError(f"expected column name at {inner.position}")
            self._expect_op(")")
        alias = column if func is None else f"{name.lower()}_{column}".replace(
            "*", "all"
        )
        if self._accept_keyword("as"):
            alias = self._name()
        return SelectItem(column=column, func=func, alias=alias)

    def _expr(self) -> Predicate:
        left = self._term()
        while self._accept_keyword("or"):
            left = left | self._term()
        return left

    def _term(self) -> Predicate:
        left = self._factor()
        while self._accept_keyword("and"):
            left = left & self._factor()
        return left

    def _factor(self) -> Predicate:
        if self._accept_keyword("not"):
            return Not(self._factor())
        token = self._peek()
        if token and token.kind == "op" and token.value == "(":
            self.index += 1
            inner = self._expr()
            self._expect_op(")")
            return inner
        return self._predicate()

    def _predicate(self) -> Predicate:
        column = self._name()
        token = self._next()
        if token.kind == "keyword" and token.value == "in":
            self._expect_op("(")
            values = [self._literal()]
            while True:
                nxt = self._next()
                if nxt.kind == "op" and nxt.value == ",":
                    values.append(self._literal())
                elif nxt.kind == "op" and nxt.value == ")":
                    break
                else:
                    raise SqlError(f"expected ',' or ')' at {nxt.position}")
            return IsIn(column, values)
        if token.kind == "keyword" and token.value == "between":
            low = self._literal()
            self._expect_keyword("and")
            high = self._literal()
            return Between(column, low, high)
        if token.kind == "op" and token.value in ("=", "!=", "<>", "<", "<=", ">", ">="):
            op = {"=": "==", "<>": "!="}.get(str(token.value), str(token.value))
            return Compare(column, op, self._literal())
        raise SqlError(f"expected comparison operator at {token.position}")


def parse_select(sql: str) -> SelectStatement:
    """Parse one SELECT statement into an AST.

    Raises
    ------
    SqlError
        On any lexical or syntactic problem.
    """
    return _Parser(tokenize(sql)).parse()


# ---------------------------------------------------------------------------
# execution
# ---------------------------------------------------------------------------


def execute_sql(tables: dict[str, Table], sql: str) -> list[dict[str, object]]:
    """Run a SELECT against named tables; rows come back as plain dicts.

    Raises
    ------
    SqlError
        On parse errors, unknown tables/columns or invalid aggregate use.
    """
    statement = parse_select(sql)
    if statement.table not in tables:
        raise SqlError(
            f"unknown table {statement.table!r}; known: {sorted(tables)}"
        )
    table = tables[statement.table]
    query = Query(table)
    if statement.where is not None:
        query.where(statement.where)
    try:
        if statement.group_by is not None:
            return _execute_grouped(table, query, statement)
        return _execute_plain(table, query, statement)
    except KeyError as exc:
        raise SqlError(str(exc)) from exc


def _execute_plain(
    table: Table, query: Query, statement: SelectStatement
) -> list[dict[str, object]]:
    items = statement.items
    has_aggregate = items is not None and any(i.func for i in items)
    if has_aggregate:
        # Aggregates without GROUP BY collapse to a single row.
        if any(i.func is None for i in items):
            raise SqlError(
                "mixing aggregates with plain columns requires GROUP BY"
            )
        positions = query.positions()
        row: dict[str, object] = {}
        for item in items:
            row[item.alias] = _aggregate(table, positions, item)
        return [row]
    if statement.order_by is not None:
        query.order_by(statement.order_by, descending=statement.descending)
    if statement.limit is not None:
        query.limit(statement.limit)
    if items is not None:
        query.select(*[i.column for i in items])
    rows = query.rows()
    if items is not None:
        rows = [
            {item.alias: row[item.column] for item in items} for row in rows
        ]
    return rows


def _execute_grouped(
    table: Table, query: Query, statement: SelectStatement
) -> list[dict[str, object]]:
    items = statement.items
    if items is None:
        raise SqlError("SELECT * cannot be combined with GROUP BY")
    key = statement.group_by
    assert key is not None
    aggregates: dict[str, tuple[str, str]] = {}
    for item in items:
        if item.func is None:
            if item.column != key:
                raise SqlError(
                    f"non-aggregated column {item.column!r} must be the "
                    f"GROUP BY key {key!r}"
                )
            continue
        column = key if item.column == "*" else item.column
        aggregates[item.alias] = (column, item.func)
    rows = query.group_by(key, aggregates)
    # Rename the key to its alias if one was requested.
    key_alias = next(
        (i.alias for i in items if i.func is None and i.column == key), key
    )
    out = []
    for row in rows:
        renamed = {key_alias if k == key else k: v for k, v in row.items()}
        out.append(renamed)
    if statement.order_by is not None:
        order_key = statement.order_by
        if out and order_key not in out[0]:
            raise SqlError(
                f"ORDER BY column {order_key!r} is not in the output"
            )
        out.sort(key=lambda r: r[order_key], reverse=statement.descending)  # type: ignore[arg-type]
    if statement.limit is not None:
        out = out[: statement.limit]
    return out


def _aggregate(table: Table, positions, item: SelectItem) -> object:
    import numpy as np

    if item.func == "count":
        return int(positions.size)
    data = table.column(item.column)[positions]
    if data.size == 0:
        return float("nan")
    if item.func == "sum":
        return float(data.sum())
    if item.func == "mean":
        return float(data.mean())
    if item.func == "min":
        return data.min().item()
    if item.func == "max":
        return data.max().item()
    raise SqlError(f"unknown aggregate {item.func!r}")  # pragma: no cover
