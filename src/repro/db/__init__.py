"""Embedded spatio-temporal store — the PostgreSQL/PostGIS stand-in.

The paper's data layer is PostgreSQL with PostGIS for spatial processing.
This package reproduces the pieces VAP actually exercises, pure-Python:

- geometry types and predicates (:mod:`repro.db.spatial`),
- geodesy (haversine, Web-Mercator; :mod:`repro.db.geo`),
- spatial indexes (uniform grid, quadtree, STR R-tree;
  :mod:`repro.db.index`),
- a typed column-table engine with a small query API
  (:mod:`repro.db.table`, :mod:`repro.db.query`),
- an :class:`~repro.db.engine.EnergyDatabase` facade that stores customers
  + readings and answers the spatial/temporal queries the logic layer and
  the REST API issue,
- a hash-partitioned variant of that facade with parallel scatter-gather
  queries (:mod:`repro.db.sharding`).
"""

from __future__ import annotations

import os
from typing import Sequence

from repro.data.meter import Customer
from repro.data.timeseries import SeriesSet
from repro.db.engine import EnergyDatabase
from repro.db.sharding import ShardedEnergyDatabase, shard_of
from repro.db.spatial import BBox, Circle, Point, Polygon

__all__ = [
    "BBox",
    "Circle",
    "EnergyDatabase",
    "Point",
    "Polygon",
    "ShardedEnergyDatabase",
    "build_database",
    "shard_of",
    "shards_from_env",
]


def shards_from_env(default: int = 1) -> int:
    """Shard count from ``REPRO_SHARDS`` (unset/empty → ``default``).

    CI runs the whole tier-1 suite with ``REPRO_SHARDS=4`` so every
    session-level test also exercises the sharded data plane.
    """
    raw = os.environ.get("REPRO_SHARDS", "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_SHARDS must be an integer, got {raw!r}"
        ) from None
    if value < 1:
        raise ValueError(f"REPRO_SHARDS must be >= 1, got {value}")
    return value


def build_database(
    customers: Sequence[Customer],
    readings: SeriesSet,
    shards: int | None = None,
    **kwargs: object,
) -> EnergyDatabase | ShardedEnergyDatabase:
    """Build the configured data plane: single-shard or scatter-gather.

    ``shards=None`` consults :func:`shards_from_env`; ``shards <= 1``
    yields the plain single-lock :class:`EnergyDatabase`.  Remaining
    kwargs pass through to the chosen constructor.
    """
    if shards is None:
        shards = shards_from_env()
    if shards <= 1:
        return EnergyDatabase(customers, readings, **kwargs)
    return ShardedEnergyDatabase(customers, readings, n_shards=shards, **kwargs)
