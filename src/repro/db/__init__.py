"""Embedded spatio-temporal store — the PostgreSQL/PostGIS stand-in.

The paper's data layer is PostgreSQL with PostGIS for spatial processing.
This package reproduces the pieces VAP actually exercises, pure-Python:

- geometry types and predicates (:mod:`repro.db.spatial`),
- geodesy (haversine, Web-Mercator; :mod:`repro.db.geo`),
- spatial indexes (uniform grid, quadtree, STR R-tree;
  :mod:`repro.db.index`),
- a typed column-table engine with a small query API
  (:mod:`repro.db.table`, :mod:`repro.db.query`),
- an :class:`~repro.db.engine.EnergyDatabase` facade that stores customers
  + readings and answers the spatial/temporal queries the logic layer and
  the REST API issue.
"""

from repro.db.engine import EnergyDatabase
from repro.db.spatial import BBox, Circle, Point, Polygon

__all__ = ["BBox", "Circle", "EnergyDatabase", "Point", "Polygon"]
