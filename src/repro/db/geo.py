"""Geodesy helpers: great-circle distance and Web-Mercator projection.

PostGIS gives the paper geography-aware distance and the Leaflet basemap is
Web Mercator; both are a handful of formulas reproduced here.  All functions
accept scalars or numpy arrays and broadcast.
"""

from __future__ import annotations

import numpy as np

#: Mean Earth radius in metres (IUGG).
EARTH_RADIUS_M = 6_371_008.8

#: Web-Mercator latitude clamp (the projection diverges at the poles).
MAX_MERCATOR_LAT = 85.05112878


def haversine_m(
    lon1: np.ndarray | float,
    lat1: np.ndarray | float,
    lon2: np.ndarray | float,
    lat2: np.ndarray | float,
) -> np.ndarray | float:
    """Great-circle distance in metres between WGS-84 points.

    Broadcasts like numpy arithmetic; scalars in, scalar out.
    """
    lon1r, lat1r, lon2r, lat2r = map(np.radians, (lon1, lat1, lon2, lat2))
    dlon = lon2r - lon1r
    dlat = lat2r - lat1r
    a = np.sin(dlat / 2.0) ** 2 + np.cos(lat1r) * np.cos(lat2r) * np.sin(dlon / 2.0) ** 2
    out = 2.0 * EARTH_RADIUS_M * np.arcsin(np.sqrt(np.clip(a, 0.0, 1.0)))
    if np.isscalar(lon1) and np.isscalar(lat1) and np.isscalar(lon2) and np.isscalar(lat2):
        return float(out)
    return out


def mercator_xy(
    lon: np.ndarray | float, lat: np.ndarray | float
) -> tuple[np.ndarray | float, np.ndarray | float]:
    """Project WGS-84 degrees to Web-Mercator metres (EPSG:3857).

    Latitudes beyond the Mercator clamp are clipped rather than rejected —
    matching what web map libraries do.
    """
    lat_clamped = np.clip(lat, -MAX_MERCATOR_LAT, MAX_MERCATOR_LAT)
    x = EARTH_RADIUS_M * np.radians(lon)
    y = EARTH_RADIUS_M * np.log(np.tan(np.pi / 4.0 + np.radians(lat_clamped) / 2.0))
    if np.isscalar(lon) and np.isscalar(lat):
        return float(x), float(y)
    return x, y


def inverse_mercator(
    x: np.ndarray | float, y: np.ndarray | float
) -> tuple[np.ndarray | float, np.ndarray | float]:
    """Inverse of :func:`mercator_xy`: metres back to degrees."""
    lon = np.degrees(np.asarray(x) / EARTH_RADIUS_M)
    lat = np.degrees(2.0 * np.arctan(np.exp(np.asarray(y) / EARTH_RADIUS_M)) - np.pi / 2.0)
    if np.isscalar(x) and np.isscalar(y):
        return float(lon), float(lat)
    return lon, lat


def meters_per_degree(lat: float) -> tuple[float, float]:
    """Local metres-per-degree of (longitude, latitude) at a latitude.

    Useful for converting KDE bandwidths between metres and degrees on
    city-scale extents where a local equirectangular approximation holds.
    """
    lat_m = EARTH_RADIUS_M * np.pi / 180.0
    lon_m = lat_m * float(np.cos(np.radians(lat)))
    return lon_m, float(lat_m)
