"""Shared-memory ``multiprocessing`` pool for blockwise kernels.

One entry point, :func:`map_blocks`, runs a picklable block function over
a list of items.  Large read-only arrays are passed via ``arrays=`` and
reach every worker through :class:`multiprocessing.shared_memory` —
created once in the parent, attached (inherited through ``fork``) by each
worker — so the per-task pickle payload is just the block descriptor.

Execution mode:

- ``workers <= 1`` (the default, or ``REPRO_WORKERS=1``) — a plain
  in-process loop, zero pool machinery;
- ``workers > 1`` with the ``fork`` start method available — a
  ``fork``-context process pool;
- ``workers > 1`` without ``fork`` (or from inside a pool worker) —
  graceful fallback to the serial loop, counted in
  ``parallel_fallback_total``.

Results come back in item order in every mode, and each item is computed
by exactly the same code on the same inputs, so kernels built on
:func:`map_blocks` are bit-identical across worker counts — the property
``tests/parallel`` pins.

Observability: the parent wraps each call in a ``parallel.map`` span and
grafts one ``parallel.task`` child span per block (serial blocks nest
naturally; forked blocks report their measured wall time back and the
parent re-emits them), plus ``parallel_*`` counters for runs, tasks and
fallbacks.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from multiprocessing import shared_memory
from typing import Callable, Mapping, Sequence

import numpy as np

from repro import obs
from repro.core.deadline import current_deadline
from repro.obs.spans import SpanRecord, new_span_id

# Default row granularity for blockwise kernels: small enough that 4
# workers see useful scheduling slack at a few thousand rows, large
# enough that per-block overhead (one pickle + one span) stays noise.
DEFAULT_BLOCK_ROWS = 2048

# Scatter threads (sharded data plane) default when REPRO_WORKERS is
# unset — the pre-existing thread-pool width.
_DEFAULT_SCATTER_WORKERS = 16


def _env_workers() -> int | None:
    """``REPRO_WORKERS`` as a positive int, or None when unset/invalid."""
    raw = os.environ.get("REPRO_WORKERS", "").strip()
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        return None
    return max(1, value)


def pool_budget(default: int = 1) -> int:
    """The process-wide parallelism budget: ``REPRO_WORKERS`` or a default.

    Kernels default to 1 (serial — correctness first, opt into cores);
    the sharded scatter pool passes its own historical default.
    """
    env = _env_workers()
    return env if env is not None else max(1, default)


def resolve_workers(workers: int | None) -> int:
    """Effective worker count for one kernel call.

    An explicit ``workers=`` wins; otherwise the ``REPRO_WORKERS``
    budget; otherwise serial.
    """
    if workers is not None:
        return max(1, int(workers))
    return pool_budget(default=1)


def scatter_budget() -> int:
    """Thread budget for the sharded data plane's scatter pool.

    Same ``REPRO_WORKERS`` knob as the kernel pool — one budget for the
    whole process — defaulting to the scatter pool's historical width
    when unset.
    """
    return pool_budget(default=_DEFAULT_SCATTER_WORKERS)


def row_blocks(
    n_rows: int, block_rows: int = DEFAULT_BLOCK_ROWS
) -> list[tuple[int, int]]:
    """Deterministic ``[start, stop)`` row ranges covering ``n_rows``.

    Boundaries depend only on ``(n_rows, block_rows)`` — never on the
    worker count — which is half of the determinism contract (the other
    half is in-order assembly, which :func:`map_blocks` guarantees).
    """
    if n_rows < 0:
        raise ValueError(f"n_rows must be >= 0, got {n_rows}")
    if block_rows < 1:
        raise ValueError(f"block_rows must be >= 1, got {block_rows}")
    return [
        (start, min(start + block_rows, n_rows))
        for start in range(0, n_rows, block_rows)
    ]


class _SharedArray:
    """One read-only ndarray in shared memory, inherited across ``fork``.

    The parent copies the source array in once; workers read a zero-copy
    view.  The parent owns the segment: :meth:`release` closes and
    unlinks it after the pool is done (workers never unlink — under
    ``fork`` they inherit the already-open mapping and simply exit).
    """

    __slots__ = ("shm", "shape", "dtype")

    def __init__(self, array: np.ndarray) -> None:
        array = np.ascontiguousarray(array)
        self.shape = array.shape
        self.dtype = array.dtype
        self.shm = shared_memory.SharedMemory(
            create=True, size=max(array.nbytes, 1)
        )
        if array.nbytes:
            view = np.ndarray(self.shape, dtype=self.dtype, buffer=self.shm.buf)
            view[...] = array

    @property
    def array(self) -> np.ndarray:
        view = np.ndarray(self.shape, dtype=self.dtype, buffer=self.shm.buf)
        view.flags.writeable = False
        return view

    def release(self) -> None:
        self.shm.close()
        try:
            self.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already reclaimed
            pass


# Worker-process state, installed by the pool initializer.  Also the
# re-entrancy latch: map_blocks called *inside* a worker (a kernel that
# itself fans out) must not fork grandchildren.
_WORKER_ARRAYS: dict[str, np.ndarray] | None = None


def _init_worker(shared: dict[str, _SharedArray]) -> None:
    global _WORKER_ARRAYS
    _WORKER_ARRAYS = {name: handle.array for name, handle in shared.items()}


def _run_task(payload: tuple) -> tuple[int, object, float]:
    fn, index, item, kwargs = payload
    assert _WORKER_ARRAYS is not None
    start = time.perf_counter()
    result = fn(item, _WORKER_ARRAYS, **kwargs)
    return index, result, time.perf_counter() - start


def _graft_task_spans(
    parent: SpanRecord | None, durations: list[tuple[int, float]]
) -> None:
    """Re-emit forked blocks as children of the parent ``parallel.map``
    span — worker processes have their own tracer, so their timings come
    back as plain floats and are stitched into the caller's tree here."""
    if parent is None:
        return
    for index, seconds in durations:
        child = SpanRecord(
            name="parallel.task",
            tags={"index": index},
            start=parent.start,
            duration=seconds,
        )
        if parent.span_id is not None:
            child.trace_id = parent.trace_id
            child.parent_id = parent.span_id
            child.span_id = new_span_id()
        parent.children.append(child)


def map_blocks(
    fn: Callable,
    items: Sequence,
    *,
    arrays: Mapping[str, np.ndarray] | None = None,
    workers: int | None = None,
    kwargs: Mapping[str, object] | None = None,
    name: str = "kernel",
) -> list:
    """Run ``fn(item, arrays, **kwargs)`` for every item, in item order.

    ``fn`` must be a module-level (picklable) function; ``arrays`` maps
    names to read-only ndarrays shared with every worker.  Returns the
    per-item results as a list.

    ``workers=None`` reads ``REPRO_WORKERS`` (default serial).  Worker
    count never changes results — only which process computes which
    block.
    """
    items = list(items)
    arrays = dict(arrays or {})
    kwargs = dict(kwargs or {})
    n_workers = resolve_workers(workers)
    registry = obs.get_registry()

    mode = "fork"
    if n_workers <= 1:
        mode = "serial"
    elif len(items) <= 1:
        mode = "serial"
        registry.counter("parallel_fallback_total", reason="single_task").inc()
    elif _WORKER_ARRAYS is not None:
        # Already inside a pool worker: never fork grandchildren.
        mode = "serial"
        registry.counter("parallel_fallback_total", reason="nested").inc()
    elif "fork" not in mp.get_all_start_methods():
        mode = "serial"
        registry.counter("parallel_fallback_total", reason="no_fork").inc()

    registry.counter("parallel_pool_runs_total", pool=name, mode=mode).inc()
    registry.counter(
        "parallel_tasks_total", pool=name, mode=mode
    ).inc(len(items))
    registry.gauge("parallel_workers", pool=name).set(
        1 if mode == "serial" else n_workers
    )

    with obs.span(
        "parallel.map", pool=name, mode=mode,
        workers=1 if mode == "serial" else n_workers, tasks=len(items),
    ) as rec:
        deadline = current_deadline()
        if mode == "serial":
            results = []
            for index, item in enumerate(items):
                if deadline is not None:
                    deadline.check(f"parallel.map[{name}] block {index}")
                with obs.span("parallel.task", index=index):
                    results.append(fn(item, arrays, **kwargs))
            return results

        shared = {key: _SharedArray(value) for key, value in arrays.items()}
        try:
            ctx = mp.get_context("fork")
            payloads = [
                (fn, index, item, kwargs) for index, item in enumerate(items)
            ]
            with ctx.Pool(
                processes=min(n_workers, len(items)),
                initializer=_init_worker,
                initargs=(shared,),
            ) as pool:
                # imap preserves submission order and yields results as
                # they complete, giving a block-boundary deadline check;
                # raising out of the ``with`` terminates the workers.
                raw = []
                for entry in pool.imap(_run_task, payloads, chunksize=1):
                    raw.append(entry)
                    if deadline is not None:
                        deadline.check(
                            f"parallel.map[{name}] block {entry[0]}"
                        )
        finally:
            for handle in shared.values():
                handle.release()
        # imap already preserves submission order; the index ride-along
        # makes the in-order assembly explicit (and asserts it).
        raw.sort(key=lambda entry: entry[0])
        _graft_task_spans(rec, [(i, dt) for i, _, dt in raw])
        return [result for _, result, _ in raw]
