"""Multi-core kernel execution: a shared-memory worker pool.

The hot kernels (pairwise distances, perplexity search, out-of-sample
placement) decompose into independent row blocks.  This package runs
those blocks across real processes — stdlib ``multiprocessing`` only —
with the input arrays handed to workers through POSIX shared memory so
the fork fan-out never pickles a 50k-row matrix.

Determinism contract (see DESIGN.md §14): block boundaries are a pure
function of the problem size, every block is computed by the same code
path regardless of where it runs, and results are assembled in block
order.  Worker count therefore only changes *scheduling*, never values:
``REPRO_WORKERS=1``, ``2`` and ``4`` produce bit-identical kernels.

``REPRO_WORKERS`` is the one budget shared by every consumer — the
process pool here and the sharded data plane's scatter threads — so an
operator sizes parallelism once.
"""

from repro.parallel.pool import (
    DEFAULT_BLOCK_ROWS,
    map_blocks,
    pool_budget,
    resolve_workers,
    row_blocks,
    scatter_budget,
)

__all__ = [
    "DEFAULT_BLOCK_ROWS",
    "map_blocks",
    "pool_budget",
    "resolve_workers",
    "row_blocks",
    "scatter_budget",
]
