"""Job handlers: the heavy operations the async service runs.

Each handler is a plain function ``(job, session, ctx) -> (bytes,
content_type)`` executing one job kind against the owning tenant's
session.  Handlers report progress and honour cancellation exclusively
through the :class:`JobContext` the worker hands them; the embedding
handler additionally checkpoints the t-SNE descent so a crashed worker
resumes bit-identically (see :mod:`repro.jobs.checkpoint`).

The registered kinds are the three operations the paper's interactive
loop cannot afford synchronously at production scale:

- ``embed`` — t-SNE / landmark t-SNE / MDS over the tenant's features,
  stored as a deterministic npz (coords + objective + trace);
- ``render`` — a dashboard page (``format=html``) or the view-A map SVG
  (``format=svg``);
- ``export`` — the tenant's hourly readings as bulk CSV, streamed block
  by block with a cancellation point between blocks.
"""

from __future__ import annotations

import hashlib
import io
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

import numpy as np

from repro.core.pipeline import MAX_DTW_ROWS_CEILING, EMBED_METHODS, VapSession
from repro.core.reduction.tsne import tsne
from repro.data.generator.city import CityLayout
from repro.data.timeseries import HourWindow
from repro.resilience.faults import fault_point

from repro.jobs.artifacts import deterministic_npz
from repro.jobs.checkpoint import load_checkpoint, save_checkpoint
from repro.jobs.model import CancelToken, Job

#: Descent iterations between checkpoints (a multiple of the Barnes–Hut
#: ``_REPLAN_EVERY`` cadence, which bit-identical resume requires).
DEFAULT_CHECKPOINT_EVERY = 100

NPZ_CONTENT_TYPE = "application/vnd.numpy.npz"

_EXPORT_BLOCK_ROWS = 256


@dataclass(slots=True)
class JobContext:
    """What a handler may touch while running one job.

    ``report(progress, message)`` is the only progress channel (the
    service clamps it monotonic); ``token`` is the job's cancellation
    deadline (already bound on the worker thread — explicit checks are
    only needed in handler-level loops); ``checkpoint_path`` is the
    job's durable checkpoint file.
    """

    token: CancelToken
    report: Callable[[float, str], None]
    checkpoint_path: Path
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY
    layout: CityLayout | None = None
    on_checkpoint: Callable[[int], None] | None = None


def _embed_fingerprint(params: dict, feats: np.ndarray) -> str:
    """Stable identity of an embedding computation: its parameters plus
    a digest of the exact feature matrix — a checkpoint from different
    data or settings must never be resumed."""
    feat_digest = hashlib.sha256(
        np.ascontiguousarray(feats).tobytes()
    ).hexdigest()
    return json.dumps(
        {"params": params, "features_sha256": feat_digest, "shape": list(feats.shape)},
        sort_keys=True,
    )


def run_embed(job: Job, session: VapSession, ctx: JobContext) -> tuple[bytes, str]:
    """Compute an embedding asynchronously, checkpointing the descent.

    Accepts the same parameters as ``GET /api/embedding`` and produces
    coordinates bit-identical to the synchronous
    :meth:`~repro.core.pipeline.VapSession.embed` for the same
    parameters and seed.  Checkpoints fire every
    ``checkpoint_every`` iterations (t-SNE engines only); on restart the
    handler resumes from the last fingerprint-matching checkpoint.
    """
    params = dict(job.params)
    method = str(params.get("method", "tsne"))
    if method not in EMBED_METHODS:
        raise ValueError(
            f"unknown method {method!r}; pick one of {EMBED_METHODS}"
        )
    dtw_max_rows = params.get("dtw_max_rows")
    if dtw_max_rows is not None and not (
        1 <= int(dtw_max_rows) <= MAX_DTW_ROWS_CEILING
    ):
        raise ValueError(
            f"dtw_max_rows must be in [1, {MAX_DTW_ROWS_CEILING}], "
            f"got {dtw_max_rows}"
        )
    ctx.report(0.02, "extracting features")
    feats = session.features()
    metric = str(params.get("metric", "pearson"))
    seed = int(params.get("seed", 0))
    n_iter = int(params.get("n_iter", 500))

    if method == "tsne":
        fingerprint = _embed_fingerprint(params, feats)
        resume = load_checkpoint(ctx.checkpoint_path, fingerprint)
        if resume is not None:
            ctx.report(
                max(0.05, 0.05 + 0.9 * resume.iteration / n_iter),
                f"resuming from checkpoint at iteration {resume.iteration}",
            )
            if ctx.on_checkpoint is not None:
                ctx.on_checkpoint(resume.iteration)

        def checkpoint_fn(cp) -> None:
            ctx.token.check("t-SNE checkpoint")
            save_checkpoint(ctx.checkpoint_path, cp, fingerprint)
            if ctx.on_checkpoint is not None:
                ctx.on_checkpoint(cp.iteration)
            # Chaos site: armed plans kill the worker *after* the
            # checkpoint is durable, so the resumed run must replay the
            # remaining iterations bit-identically.
            fault_point("jobs.worker.crash")
            ctx.report(
                0.05 + 0.9 * cp.iteration / n_iter,
                f"iteration {cp.iteration}/{n_iter}",
            )

        result = tsne(
            feats,
            metric=metric,
            perplexity=float(params.get("perplexity", 30.0)),
            n_iter=n_iter,
            seed=seed,
            method=str(params.get("tsne_method", "auto")),
            theta=float(params.get("theta", 0.5)),
            workers=params.get("workers"),
            n_landmarks=params.get("n_landmarks"),
            dtw_max_rows=None if dtw_max_rows is None else int(dtw_max_rows),
            checkpoint_every=ctx.checkpoint_every,
            checkpoint_fn=checkpoint_fn,
            resume_from=resume,
        )
        coords = result.embedding
        objective = result.kl_divergence
        trace = result.kl_trace
    else:
        # MDS runs have no iterative checkpoint; compute through the
        # session (single-flight cached) like the synchronous endpoint.
        info = session.embed(
            method=method,
            metric=metric,
            seed=seed,
            workers=params.get("workers"),
            dtw_max_rows=None if dtw_max_rows is None else int(dtw_max_rows),
        )
        coords = info.coords
        objective = info.objective
        trace = []
    ctx.report(0.97, "serializing artifact")
    data = deterministic_npz(
        {
            "coords": np.asarray(coords, dtype=np.float64),
            "objective": np.float64(objective),
            "kl_trace": np.asarray(trace, dtype=np.float64),
            "customer_ids": np.asarray(
                session.series.customer_ids, dtype=np.int64
            ),
        }
    )
    return data, NPZ_CONTENT_TYPE


def _window_param(
    params: dict, prefix: str, default: HourWindow
) -> HourWindow:
    start = params.get(f"{prefix}_start")
    end = params.get(f"{prefix}_end")
    if start is None and end is None:
        return default
    if start is None or end is None:
        raise ValueError(
            f"give both {prefix}_start and {prefix}_end, or neither"
        )
    start, end = int(start), int(end)
    if end < start:
        raise ValueError(f"{prefix}_end must not precede {prefix}_start")
    return HourWindow(start, end)


def run_render(job: Job, session: VapSession, ctx: JobContext) -> tuple[bytes, str]:
    """Render the dashboard page (``format=html``, default) or the
    view-A map SVG (``format=svg``) for two shift windows."""
    from repro.viz.dashboard import render_dashboard, render_map_view

    params = dict(job.params)
    fmt = str(params.get("format", "html"))
    if fmt not in ("html", "svg"):
        raise ValueError(f"unknown render format {fmt!r}; use html or svg")
    span = session.db.time_span
    week = 7 * 24
    t1 = _window_param(
        params, "t1",
        HourWindow(span.start_hour, min(span.start_hour + week, span.end_hour)),
    )
    t2 = _window_param(
        params, "t2",
        HourWindow(max(span.end_hour - week, span.start_hour), span.end_hour),
    )
    ctx.report(0.1, f"rendering {fmt} for windows {t1} vs {t2}")
    if fmt == "svg":
        doc = render_map_view(session, t1, t2, layout=ctx.layout)
        return doc.render_document().encode("utf-8"), "image/svg+xml"
    page = render_dashboard(
        session, t1, t2, layout=ctx.layout,
        title=str(params.get("title", "VAP dashboard")),
    )
    return page.encode("utf-8"), "text/html; charset=utf-8"


def run_export(job: Job, session: VapSession, ctx: JobContext) -> tuple[bytes, str]:
    """Bulk CSV export of the tenant's hourly readings (wide format: one
    row per customer), with a cancellation point between row blocks."""
    params = dict(job.params)
    series = session.series
    span = session.db.time_span
    start = int(params.get("start", span.start_hour))
    end = int(params.get("end", span.end_hour))
    if end < start:
        raise ValueError("end must not precede start")
    sliced = series.slice_hours(start, end)
    matrix = np.asarray(sliced.matrix)
    n = matrix.shape[0]
    out = io.StringIO()
    out.write(
        "customer_id," + ",".join(f"h{h}" for h in sliced.hours) + "\r\n"
    )
    for block_start in range(0, n, _EXPORT_BLOCK_ROWS):
        ctx.token.check(f"export block at row {block_start}")
        block_end = min(block_start + _EXPORT_BLOCK_ROWS, n)
        for i in range(block_start, block_end):
            row = matrix[i]
            out.write(str(int(sliced.customer_ids[i])))
            out.write(",")
            out.write(",".join("" if np.isnan(v) else repr(float(v)) for v in row))
            out.write("\r\n")
        ctx.report(
            0.05 + 0.9 * block_end / max(n, 1),
            f"exported {block_end}/{n} customers",
        )
    return out.getvalue().encode("utf-8"), "text/csv; charset=utf-8"


HANDLERS: dict[str, Callable[[Job, VapSession, JobContext], tuple[bytes, str]]] = {
    "embed": run_embed,
    "render": run_render,
    "export": run_export,
}

JOB_KINDS = tuple(sorted(HANDLERS))
