"""Content-addressable artifact store for job results.

Artifacts live under each tenant's storage namespace
(``<root>/<tenant>/artifacts/<aa>/<digest>``, the first two hex digits
fanning the directory out), addressed by the SHA-256 of their bytes, so

- identical results deduplicate to one file (resubmitting an embedding
  job with the same parameters and seed stores nothing new — the job
  payloads are serialized deterministically, see
  :func:`deterministic_npz`);
- a digest can be verified end-to-end: :meth:`ArtifactStore.get` hashes
  what it read and refuses to serve torn bytes.

Writes follow the same crash-safety discipline as
:func:`repro.db.storage.save_database` — stage into a hidden temp
sibling, fsync-free atomic ``os.replace`` — wrapped in the resilience
retry policy with ``jobs.artifact.*`` fault-injection sites, so a chaos
plan can tear writes and watch the retry layer heal them.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import zipfile
from pathlib import Path

import numpy as np

from repro.db.storage import tenant_directory
from repro.resilience.faults import fault_bytes, fault_point
from repro.resilience.retry import DEFAULT_POLICY, RetryPolicy

from repro.jobs.model import ArtifactRef

_ARTIFACTS_DIR = "artifacts"


class ArtifactError(ValueError):
    """A stored artifact is missing or does not match its digest."""


def deterministic_npz(arrays: dict[str, np.ndarray]) -> bytes:
    """Serialize named arrays as npz bytes that are a pure function of
    their content.

    ``np.savez_compressed`` stamps zip entries with the current time, so
    two runs producing identical arrays yield different bytes — which
    would defeat content addressing.  This writer pins every entry's
    timestamp to the zip epoch and sorts names, so identical arrays ⇒
    identical bytes ⇒ identical digest.  The output is a regular npz:
    ``np.load`` reads it back unchanged.
    """
    buf = io.BytesIO()
    with zipfile.ZipFile(buf, "w", zipfile.ZIP_DEFLATED) as archive:
        for name in sorted(arrays):
            payload = io.BytesIO()
            np.lib.format.write_array(
                payload, np.asarray(arrays[name]), allow_pickle=False
            )
            info = zipfile.ZipInfo(f"{name}.npy", date_time=(1980, 1, 1, 0, 0, 0))
            info.compress_type = zipfile.ZIP_DEFLATED
            archive.writestr(info, payload.getvalue())
    return buf.getvalue()


def load_npz(data: bytes) -> dict[str, np.ndarray]:
    """Decode npz bytes (from :func:`deterministic_npz` or numpy) to a
    name → array dict."""
    with np.load(io.BytesIO(data)) as payload:
        return {name: payload[name] for name in payload.files}


class ArtifactStore:
    """SHA-256-addressed blob store under per-tenant namespaces.

    Parameters
    ----------
    root:
        Storage root; each tenant's artifacts live under
        ``root/<tenant>/artifacts/`` (tenant ids are validated before
        becoming path components).
    retry:
        Policy wrapped around every write (pass ``None`` to fail fast).
    """

    def __init__(
        self,
        root: str | Path,
        retry: RetryPolicy | None = DEFAULT_POLICY,
    ) -> None:
        self.root = Path(root)
        self.retry = retry

    def path_of(self, tenant: str, digest: str) -> Path:
        """Where the artifact's bytes live (whether or not they exist)."""
        if not digest or any(c not in "0123456789abcdef" for c in digest):
            raise ArtifactError(f"malformed artifact digest {digest!r}")
        return (
            tenant_directory(self.root, tenant)
            / _ARTIFACTS_DIR
            / digest[:2]
            / digest
        )

    def put(self, tenant: str, data: bytes, content_type: str) -> ArtifactRef:
        """Store ``data`` under its content digest; returns the ref.

        Idempotent: bytes already present are not rewritten.  The write
        is staged + atomically renamed, verified by re-hashing what
        landed on disk, and retried under the store's policy — so an
        injected truncation (``jobs.artifact.bytes``) is detected and
        healed rather than served later.
        """
        digest = hashlib.sha256(data).hexdigest()
        path = self.path_of(tenant, digest)
        ref = ArtifactRef(
            digest=digest, size=len(data), content_type=content_type
        )

        def write_once() -> None:
            fault_point("jobs.artifact.write")
            if path.exists():
                return
            path.parent.mkdir(parents=True, exist_ok=True)
            staging = path.parent / f".{path.name}.staging"
            payload = fault_bytes("jobs.artifact.bytes", data)
            staging.write_bytes(payload)
            if hashlib.sha256(staging.read_bytes()).hexdigest() != digest:
                staging.unlink(missing_ok=True)
                raise OSError(
                    f"artifact {digest} was torn while being written"
                )
            os.replace(staging, path)
            # Sidecar with the content type, so the store can serve an
            # artifact after a restart without the in-memory job table.
            meta = path.parent / f"{path.name}.meta.json"
            meta.write_text(
                json.dumps({"content_type": content_type, "size": len(data)})
            )

        if self.retry is None:
            write_once()
        else:
            self.retry.call(write_once, site="jobs.artifact")
        return ref

    def get(self, tenant: str, digest: str) -> bytes:
        """The artifact's bytes, digest-verified.

        Raises
        ------
        ArtifactError
            When missing, or when the stored bytes do not hash to the
            requested digest (torn file).
        """
        path = self.path_of(tenant, digest)
        fault_point("jobs.artifact.read")
        if not path.exists():
            raise ArtifactError(
                f"no artifact {digest} for tenant {tenant!r}"
            )
        data = path.read_bytes()
        if hashlib.sha256(data).hexdigest() != digest:
            raise ArtifactError(
                f"artifact {digest} is corrupt on disk (digest mismatch)"
            )
        return data

    def exists(self, tenant: str, digest: str) -> bool:
        return self.path_of(tenant, digest).exists()
