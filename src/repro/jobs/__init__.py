"""Async job service: submit → poll → artifact for heavy work.

The interactive API keeps its strict deadlines; anything that cannot fit
inside one — full t-SNE descents, dashboard renders, bulk CSV exports —
is submitted here instead, executed on a worker pool against the owning
tenant's session, and retrieved as a content-addressable artifact.
Embedding jobs checkpoint their descent so a crashed worker resumes
bit-identically.  See DESIGN.md §15.
"""

from repro.jobs.artifacts import (
    ArtifactError,
    ArtifactStore,
    deterministic_npz,
    load_npz,
)
from repro.jobs.checkpoint import (
    CHECKPOINT_VERSION,
    load_checkpoint,
    save_checkpoint,
)
from repro.jobs.handlers import (
    DEFAULT_CHECKPOINT_EVERY,
    HANDLERS,
    JOB_KINDS,
    JobContext,
)
from repro.jobs.model import (
    ACTIVE_STATES,
    CANCELLED,
    FAILED,
    JOB_STATES,
    QUEUED,
    RUNNING,
    SUCCEEDED,
    TERMINAL_STATES,
    ArtifactRef,
    CancelToken,
    Job,
    JobCancelled,
    JobQueueFull,
    JobQuotaExceeded,
)
from repro.jobs.service import (
    DEFAULT_MAX_QUEUE,
    DEFAULT_WORKERS,
    JobService,
)

__all__ = [
    "ACTIVE_STATES",
    "CANCELLED",
    "CHECKPOINT_VERSION",
    "DEFAULT_CHECKPOINT_EVERY",
    "DEFAULT_MAX_QUEUE",
    "DEFAULT_WORKERS",
    "FAILED",
    "HANDLERS",
    "JOB_KINDS",
    "JOB_STATES",
    "QUEUED",
    "RUNNING",
    "SUCCEEDED",
    "TERMINAL_STATES",
    "ArtifactError",
    "ArtifactRef",
    "ArtifactStore",
    "CancelToken",
    "Job",
    "JobCancelled",
    "JobContext",
    "JobQueueFull",
    "JobQuotaExceeded",
    "JobService",
    "deterministic_npz",
    "load_checkpoint",
    "load_npz",
    "save_checkpoint",
]
