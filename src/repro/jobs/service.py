"""The in-process job service: bounded priority queue + worker pool.

Heavy operations are *submitted* (returning immediately with a job id),
executed by daemon worker threads against the owning tenant's isolated
session, and their results stored as content-addressable artifacts —
the submit → poll → artifact shape of every production export API.

Integration with the existing rails, rather than new machinery:

- **Tracing** — the submitting request's :class:`TraceContext` is
  captured at submit time and re-bound on the worker, so one stitched
  trace covers submit + execution (the worker's ``jobs.run`` span
  parents under the submitting request's span).
- **Cancellation** — a :class:`~repro.jobs.model.CancelToken` (a
  :class:`~repro.core.deadline.Deadline` tied to the job's cancel
  event) is bound as the worker's deadline, so every deadline
  checkpoint in the kernels (``map_blocks`` block boundaries,
  single-flight waits, checkpoint callbacks) doubles as a cancellation
  point.
- **Quotas** — per-tenant active-job ceilings via
  :class:`~repro.tenancy.TenantQuota.max_active_jobs` (429 past them).
- **Backpressure** — the queue is bounded; a full queue sheds with
  :class:`~repro.jobs.model.JobQueueFull` (503 + Retry-After) and feeds
  the ``jobs_rejected_total`` counters.
- **Resilience** — artifact writes retry under the storage policy, and
  a failed job resumes from its last t-SNE checkpoint via
  :meth:`JobService.resume`, bit-identically.
"""

from __future__ import annotations

import contextlib
import heapq
import threading
import time
import uuid
from dataclasses import replace
from pathlib import Path
from typing import Callable

from repro import obs
from repro.db.storage import tenant_directory
from repro.tenancy import TenantRegistry

from repro.jobs.artifacts import ArtifactStore
from repro.jobs.handlers import (
    DEFAULT_CHECKPOINT_EVERY,
    HANDLERS,
    JOB_KINDS,
    JobContext,
)
from repro.jobs.model import (
    ACTIVE_STATES,
    CANCELLED,
    FAILED,
    QUEUED,
    RUNNING,
    SUCCEEDED,
    TERMINAL_STATES,
    CancelToken,
    Job,
    JobCancelled,
    JobQueueFull,
    JobQuotaExceeded,
)

DEFAULT_WORKERS = 2
DEFAULT_MAX_QUEUE = 64

_CHECKPOINTS_DIR = "checkpoints"


class JobService:
    """Priority job queue + worker pool over a tenant registry.

    Parameters
    ----------
    tenants:
        The registry whose sessions jobs run against (and whose quotas
        gate submission).
    artifacts:
        Content-addressable result store (also hosts per-job checkpoint
        files under each tenant's namespace).
    workers:
        Worker thread count; threads start lazily on first submit and
        are daemons (they never block interpreter exit).
    max_queue:
        Ceiling on queued-or-running jobs across all tenants; past it,
        submission sheds with :class:`JobQueueFull`.
    checkpoint_every:
        Default t-SNE checkpoint cadence for embedding jobs.
    """

    def __init__(
        self,
        tenants: TenantRegistry,
        artifacts: ArtifactStore,
        workers: int = DEFAULT_WORKERS,
        max_queue: int = DEFAULT_MAX_QUEUE,
        checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
        metrics: obs.MetricsRegistry | None = None,
        clock: Callable[[], float] = time.monotonic,
        id_factory: Callable[[], str] | None = None,
        layout=None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self.tenants = tenants
        self.artifacts = artifacts
        self.n_workers = workers
        self.max_queue = max_queue
        self.checkpoint_every = checkpoint_every
        self.clock = clock
        self.layout = layout
        self._metrics = metrics
        self._id_factory = id_factory or (lambda: uuid.uuid4().hex[:12])
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._jobs: dict[str, Job] = {}
        # Live trace contexts keyed by job id (kept out of the Job
        # dataclass so Job stays a plain serializable record).
        self._trace_contexts: dict[str, obs.TraceContext] = {}
        # Min-heap of (-priority, sequence, job_id): highest priority
        # first, FIFO within a priority level.
        self._queue: list[tuple[int, int, str]] = []
        self._seq = 0
        self._threads: list[threading.Thread] = []
        self._shutdown = False

    @property
    def metrics(self) -> obs.MetricsRegistry:
        return self._metrics if self._metrics is not None else obs.get_registry()

    # ------------------------------------------------------------------
    # submission / lifecycle
    # ------------------------------------------------------------------
    def submit(
        self,
        tenant: str,
        kind: str,
        params: dict | None = None,
        priority: int = 0,
    ) -> Job:
        """Queue a job; returns it immediately (state ``queued``).

        Raises
        ------
        KeyError
            Unknown tenant.
        ValueError
            Unknown job kind.
        JobQuotaExceeded
            The tenant is at its ``max_active_jobs`` ceiling (429).
        JobQueueFull
            The global queue bound is hit (503 + Retry-After).
        """
        if kind not in HANDLERS:
            raise ValueError(
                f"unknown job kind {kind!r}; pick one of {JOB_KINDS}"
            )
        self.tenants.session(tenant)  # KeyError for unknown tenants
        quota = self.tenants.quota(tenant)
        job = Job(
            job_id=self._id_factory(),
            tenant=tenant,
            kind=kind,
            params=dict(params or {}),
            priority=int(priority),
            created_at=self.clock(),
            trace=obs.TraceContext.capture().to_record(),
        )
        # The full context object (with the live span linkage) rides
        # outside the JSON-ready record.
        job_ctx = obs.TraceContext.capture()
        with self._lock:
            active = sum(
                1
                for j in self._jobs.values()
                if j.tenant == tenant and j.state in ACTIVE_STATES
            )
            limit = quota.max_active_jobs
            if limit is not None and active >= limit:
                self.metrics.counter(
                    "jobs_rejected_total", reason="quota"
                ).inc()
                raise JobQuotaExceeded(tenant, limit)
            depth = sum(
                1 for j in self._jobs.values() if j.state in ACTIVE_STATES
            )
            if depth >= self.max_queue:
                self.metrics.counter(
                    "jobs_rejected_total", reason="queue_full"
                ).inc()
                raise JobQueueFull(depth, self.max_queue)
            self._jobs[job.job_id] = job
            self._trace_contexts[job.job_id] = job_ctx
            self._push_locked(job)
            self._ensure_workers_locked()
            self._wake.notify()
        self.metrics.counter(
            "jobs_submitted_total", kind=kind, tenant=tenant
        ).inc()
        self._export_depth()
        obs.log_event(
            "jobs.submitted",
            job_id=job.job_id,
            kind=kind,
            tenant=tenant,
            priority=job.priority,
        )
        return job

    def _push_locked(self, job: Job) -> None:
        self._seq += 1
        heapq.heappush(self._queue, (-job.priority, self._seq, job.job_id))

    def _ensure_workers_locked(self) -> None:
        if self._shutdown:
            raise RuntimeError("job service is shut down")
        while len(self._threads) < self.n_workers:
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"repro-jobs-{len(self._threads)}",
                daemon=True,
            )
            self._threads.append(thread)
            thread.start()

    def get(self, tenant: str, job_id: str) -> Job:
        """The tenant's job by id.

        Visibility is tenant-scoped: another tenant's job id raises the
        same ``KeyError`` as a nonexistent one (no existence oracle).
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.tenant != tenant:
                raise KeyError(f"unknown job {job_id!r}")
            return job

    def list_jobs(self, tenant: str) -> list[Job]:
        """The tenant's jobs, newest first."""
        with self._lock:
            jobs = [j for j in self._jobs.values() if j.tenant == tenant]
        return sorted(jobs, key=lambda j: j.created_at, reverse=True)

    def cancel(self, tenant: str, job_id: str) -> Job:
        """Cancel a queued or running job.

        A queued job is finalised immediately; a running one has its
        cancel event set and stops at its next cancellation point (a
        block boundary, wait, or checkpoint).  Cancelling a finished job
        is a no-op returning its final state.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.tenant != tenant:
                raise KeyError(f"unknown job {job_id!r}")
            job.cancel_event.set()
            if job.state == QUEUED:
                self._finish_locked(job, CANCELLED, message="cancelled while queued")
        self._export_depth()
        obs.log_event("jobs.cancelled", job_id=job_id, tenant=tenant)
        return job

    def resume(self, tenant: str, job_id: str) -> Job:
        """Re-queue a failed job; it restarts from its last checkpoint.

        Only ``failed`` jobs are resumable (succeeded/cancelled are
        final; queued/running are already in flight).
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.tenant != tenant:
                raise KeyError(f"unknown job {job_id!r}")
            if job.state != FAILED:
                raise ValueError(
                    f"job {job_id} is {job.state}; only failed jobs resume"
                )
            job.state = QUEUED
            job.error = None
            job.finished_at = None
            job.cancel_event = threading.Event()
            self._push_locked(job)
            self._ensure_workers_locked()
            self._wake.notify()
        self.metrics.counter("jobs_resumed_total", kind=job.kind).inc()
        self._export_depth()
        obs.log_event("jobs.resumed", job_id=job_id, tenant=tenant)
        return job

    def wait(
        self, tenant: str, job_id: str, timeout: float | None = None
    ) -> Job:
        """Block until the job reaches a terminal state (or timeout)."""
        deadline = None if timeout is None else self.clock() + timeout
        with self._lock:
            while True:
                job = self._jobs.get(job_id)
                if job is None or job.tenant != tenant:
                    raise KeyError(f"unknown job {job_id!r}")
                if job.state in TERMINAL_STATES:
                    return job
                remaining = (
                    None if deadline is None else deadline - self.clock()
                )
                if remaining is not None and remaining <= 0:
                    return job
                self._wake.wait(
                    0.05 if remaining is None else min(0.05, remaining)
                )

    def shutdown(self) -> None:
        """Stop accepting work and wake the workers to exit.

        Running jobs get their cancel events set; workers drain and
        exit.  Meant for tests and orderly process teardown — the
        threads are daemons either way.
        """
        with self._lock:
            self._shutdown = True
            for job in self._jobs.values():
                if job.state in ACTIVE_STATES:
                    job.cancel_event.set()
            self._wake.notify_all()
        for thread in self._threads:
            thread.join(timeout=5.0)

    # ------------------------------------------------------------------
    # progress / bookkeeping
    # ------------------------------------------------------------------
    def _report(self, job: Job, progress: float, message: str) -> None:
        """Record handler progress, clamped into [0, 1] and monotonic —
        polling clients must never see progress move backwards."""
        with self._lock:
            job.progress = min(1.0, max(job.progress, float(progress)))
            job.message = message
            self._wake.notify_all()

    def _set_checkpoint(self, job: Job, iteration: int) -> None:
        with self._lock:
            job.checkpoint_iteration = iteration
        self.metrics.counter("jobs_checkpoints_total", kind=job.kind).inc()

    def _finish_locked(
        self, job: Job, state: str, message: str = "", error: str | None = None
    ) -> None:
        job.state = state
        job.finished_at = self.clock()
        if message:
            job.message = message
        job.error = error
        if state == SUCCEEDED:
            job.progress = 1.0
        self._wake.notify_all()

    def _export_depth(self) -> None:
        with self._lock:
            depth = sum(
                1 for j in self._jobs.values() if j.state == QUEUED
            )
            running = sum(
                1 for j in self._jobs.values() if j.state == RUNNING
            )
        self.metrics.gauge("jobs_queue_depth").set(depth)
        self.metrics.gauge("jobs_running").set(running)

    def checkpoint_path(self, job: Job) -> Path:
        """The job's durable checkpoint file under its tenant's
        storage namespace."""
        return (
            tenant_directory(self.artifacts.root, job.tenant)
            / _CHECKPOINTS_DIR
            / f"{job.job_id}.npz"
        )

    # ------------------------------------------------------------------
    # worker loop
    # ------------------------------------------------------------------
    def _next_job(self) -> Job | None:
        """Block until a runnable job or shutdown; claims the job."""
        with self._lock:
            while True:
                while self._queue:
                    _, _, job_id = heapq.heappop(self._queue)
                    job = self._jobs.get(job_id)
                    if job is None or job.state != QUEUED:
                        continue  # cancelled or resumed-stale entry
                    job.state = RUNNING
                    job.started_at = self.clock()
                    job.attempts += 1
                    return job
                if self._shutdown:
                    return None
                self._wake.wait(0.1)

    def _worker_loop(self) -> None:
        while True:
            job = self._next_job()
            if job is None:
                return
            self._export_depth()
            self._run_one(job)
            self._export_depth()

    def _run_one(self, job: Job) -> None:
        token = CancelToken(job.cancel_event)
        ctx = JobContext(
            token=token,
            report=lambda p, m: self._report(job, p, m),
            checkpoint_path=self.checkpoint_path(job),
            checkpoint_every=self.checkpoint_every,
            layout=self.layout,
            on_checkpoint=lambda i: self._set_checkpoint(job, i),
        )
        trace_ctx = self._trace_contexts.get(job.job_id, obs.TraceContext())
        # Re-bind the submitting request's trace/tenant/request-id on
        # this worker, with the cancel token as the ambient deadline so
        # every kernel deadline checkpoint is a cancellation point.
        bound = replace(trace_ctx, deadline=token)
        started = self.clock()
        try:
            with bound.bind(), obs.span(
                "jobs.run",
                kind=job.kind,
                job_id=job.job_id,
                tenant=job.tenant,
                attempt=job.attempts,
            ):
                token.check("job start")
                session = self.tenants.session(job.tenant)
                handler = HANDLERS[job.kind]
                data, content_type = handler(job, session, ctx)
                token.check("artifact write")
                ref = self.artifacts.put(job.tenant, data, content_type)
        except JobCancelled as exc:
            with self._lock:
                self._finish_locked(job, CANCELLED, message=str(exc))
            self.metrics.counter(
                "jobs_completed_total", kind=job.kind, result="cancelled"
            ).inc()
            obs.log_event(
                "jobs.finished", level="warning", job_id=job.job_id,
                state=CANCELLED, reason=str(exc),
            )
        except BaseException as exc:  # noqa: BLE001 - a job must never kill its worker
            with self._lock:
                self._finish_locked(
                    job, FAILED,
                    message=f"failed after {job.attempts} attempt(s)",
                    error=f"{type(exc).__name__}: {exc}",
                )
            self.metrics.counter(
                "jobs_completed_total", kind=job.kind, result="failed"
            ).inc()
            obs.log_event(
                "jobs.finished", level="error", job_id=job.job_id,
                state=FAILED, error=str(exc),
            )
        else:
            # The descent finished: its checkpoint has served its
            # purpose and must not linger on disk.
            with contextlib.suppress(OSError):
                ctx.checkpoint_path.unlink(missing_ok=True)
            with self._lock:
                job.artifact = ref
                self._finish_locked(job, SUCCEEDED, message="done")
            self.metrics.counter(
                "jobs_completed_total", kind=job.kind, result="succeeded"
            ).inc()
            self.metrics.histogram(
                "jobs_runtime_seconds", kind=job.kind
            ).observe(self.clock() - started)
            obs.log_event(
                "jobs.finished", job_id=job.job_id, state=SUCCEEDED,
                digest=ref.digest, size=ref.size,
            )

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def to_record(self) -> dict:
        """The ``jobs`` block of ``/api/telemetry`` (stable shape)."""
        with self._lock:
            jobs = list(self._jobs.values())
            queued = sum(1 for j in jobs if j.state == QUEUED)
            running = sum(1 for j in jobs if j.state == RUNNING)
        states = {state: 0 for state in (SUCCEEDED, FAILED, CANCELLED)}
        by_kind: dict[str, int] = {kind: 0 for kind in JOB_KINDS}
        for job in jobs:
            if job.state in states:
                states[job.state] += 1
            by_kind[job.kind] = by_kind.get(job.kind, 0) + 1
        return {
            "workers": self.n_workers,
            "queue_depth": queued,
            "running": running,
            "max_queue": self.max_queue,
            "checkpoint_every": self.checkpoint_every,
            "total_jobs": len(jobs),
            "succeeded": states[SUCCEEDED],
            "failed": states[FAILED],
            "cancelled": states[CANCELLED],
            "by_kind": by_kind,
        }
