"""Job model: states, cancellation token, quota/queue errors.

A :class:`Job` is one unit of heavy asynchronous work — an embedding, a
dashboard render, a bulk export — owned by exactly one tenant.  Its
lifecycle is::

    queued ──> running ──> succeeded
       │          │    └──> failed  ──(resume)──> queued
       └──────────┴──────> cancelled

Cancellation rides the deadline rails: a :class:`CancelToken` is a
:class:`~repro.core.deadline.Deadline` whose budget "expires" the moment
the job's cancel event is set, so every existing deadline checkpoint —
``map_blocks`` block boundaries, single-flight waits, t-SNE checkpoint
callbacks — doubles as a cancellation point with no new plumbing.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.core.deadline import Deadline, DeadlineExceeded
from repro.tenancy import QuotaExceeded

# Lifecycle states.
QUEUED = "queued"
RUNNING = "running"
SUCCEEDED = "succeeded"
FAILED = "failed"
CANCELLED = "cancelled"

JOB_STATES = (QUEUED, RUNNING, SUCCEEDED, FAILED, CANCELLED)

#: States a job can still leave.
ACTIVE_STATES = (QUEUED, RUNNING)

#: States a job never leaves (except ``failed``, which ``resume`` may
#: re-queue from its last checkpoint).
TERMINAL_STATES = (SUCCEEDED, FAILED, CANCELLED)


class JobCancelled(DeadlineExceeded):
    """The job's cancel event fired at a cancellation point.

    Subclasses :class:`~repro.core.deadline.DeadlineExceeded` so the
    kernel layers' deadline checkpoints propagate it without knowing
    about jobs.
    """


class JobQueueFull(Exception):
    """The bounded job queue refused a submission (API layer: 503)."""

    def __init__(self, depth: int, limit: int) -> None:
        super().__init__(
            f"job queue is full ({depth}/{limit} jobs queued or running)"
        )
        self.depth = depth
        self.limit = limit


class JobQuotaExceeded(QuotaExceeded):
    """A tenant crossed its active-job quota (API layer: 429)."""

    def __init__(self, tenant: str, limit: int) -> None:
        # Bypass QuotaExceeded.__init__ to carry a job-specific message
        # while staying catchable as the generic quota error.
        Exception.__init__(
            self,
            f"tenant {tenant!r} already has {limit} active job(s), "
            f"its active-job quota",
        )
        self.tenant = tenant
        self.limit = limit


class CancelToken(Deadline):
    """A deadline that expires when (and only when) a job is cancelled.

    ``remaining()`` is ``+inf`` while the job is live — single-flight
    waits keep their own timeouts — and goes negative the instant the
    cancel event is set, so the next deadline checkpoint anywhere under
    the job raises :class:`JobCancelled`.
    """

    __slots__ = ("event",)

    def __init__(
        self,
        event: threading.Event,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.event = event
        self.clock = clock
        self.expires_at = math.inf

    def remaining(self) -> float:
        return -1.0 if self.event.is_set() else math.inf

    @property
    def expired(self) -> bool:
        return self.event.is_set()

    def check(self, what: str = "operation") -> None:
        if self.event.is_set():
            raise JobCancelled(f"job cancelled before {what}")


@dataclass(slots=True)
class ArtifactRef:
    """Pointer to a stored job result: content digest + type + size."""

    digest: str
    size: int
    content_type: str

    def to_record(self) -> dict:
        return {
            "digest": self.digest,
            "size": self.size,
            "content_type": self.content_type,
        }


@dataclass(slots=True)
class Job:
    """One asynchronous unit of work and its observable state.

    Mutable fields are guarded by the owning
    :class:`~repro.jobs.service.JobService`'s lock; handlers report
    progress only through the service so monotonicity is enforced in one
    place.
    """

    job_id: str
    tenant: str
    kind: str
    params: dict
    priority: int = 0
    state: str = QUEUED
    progress: float = 0.0
    message: str = ""
    error: str | None = None
    created_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    attempts: int = 0
    checkpoint_iteration: int | None = None
    artifact: ArtifactRef | None = None
    trace: dict = field(default_factory=dict)
    cancel_event: threading.Event = field(default_factory=threading.Event)

    def eta_seconds(self, now: float) -> float | None:
        """Remaining-time estimate from progress so far (None when the
        job is not running or has made no measurable progress)."""
        if self.state != RUNNING or self.started_at is None:
            return None
        if not 0.0 < self.progress < 1.0:
            return None
        elapsed = max(now - self.started_at, 0.0)
        if elapsed <= 0.0:
            return None
        return elapsed * (1.0 - self.progress) / self.progress

    def to_record(self, now: float) -> dict:
        """JSON-ready status document (the ``GET /api/jobs/<id>`` body)."""
        eta = self.eta_seconds(now)
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "kind": self.kind,
            "params": self.params,
            "priority": self.priority,
            "state": self.state,
            "progress": round(self.progress, 6),
            "message": self.message,
            "error": self.error,
            "eta_seconds": None if eta is None else round(eta, 3),
            "attempts": self.attempts,
            "checkpoint_iteration": self.checkpoint_iteration,
            "artifact": None if self.artifact is None else self.artifact.to_record(),
            "trace": self.trace,
        }
