"""Durable t-SNE descent checkpoints for crash-resumable embedding jobs.

A checkpoint is one compressed npz holding a
:class:`~repro.core.reduction.tsne.DescentCheckpoint` (iteration, the
carried ``y``/``velocity``/``gains`` arrays, the KL trace so far) plus a
*fingerprint* of the job parameters that produced it.  The fingerprint
gates resumption: a checkpoint written under different parameters (or a
different code's idea of them) is ignored rather than silently resumed
into a wrong embedding.

Saves are staged + atomically renamed (one file, so a plain
``os.replace`` suffices) with a ``jobs.checkpoint.save`` fault site —
the chaos suite tears checkpoint writes and asserts a resumed job still
reproduces the uninterrupted result bit-for-bit from the last complete
checkpoint.
"""

from __future__ import annotations

import io
import os
from pathlib import Path
from zipfile import BadZipFile

import numpy as np

from repro.core.reduction.tsne import DescentCheckpoint
from repro.resilience.faults import fault_point

CHECKPOINT_VERSION = 1


def save_checkpoint(
    path: str | Path, checkpoint: DescentCheckpoint, fingerprint: str
) -> Path:
    """Atomically persist a descent checkpoint; returns its path."""
    path = Path(path)
    fault_point("jobs.checkpoint.save")
    path.parent.mkdir(parents=True, exist_ok=True)
    buf = io.BytesIO()
    np.savez_compressed(
        buf,
        version=np.int64(CHECKPOINT_VERSION),
        iteration=np.int64(checkpoint.iteration),
        y=checkpoint.y,
        velocity=checkpoint.velocity,
        gains=checkpoint.gains,
        kl_trace=np.asarray(checkpoint.kl_trace, dtype=np.float64),
        fingerprint=np.str_(fingerprint),
    )
    staging = path.parent / f".{path.name}.staging"
    staging.write_bytes(buf.getvalue())
    os.replace(staging, path)
    return path


def load_checkpoint(
    path: str | Path, fingerprint: str
) -> DescentCheckpoint | None:
    """Load a checkpoint if one exists *and* matches the fingerprint.

    Returns ``None`` (start from iteration 0) when the file is absent,
    unreadable, from another format version, or written under different
    parameters — a stale or torn checkpoint must never poison a resume.
    """
    path = Path(path)
    fault_point("jobs.checkpoint.load")
    if not path.exists():
        return None
    try:
        with np.load(path) as payload:
            if int(payload["version"]) != CHECKPOINT_VERSION:
                return None
            if str(payload["fingerprint"]) != fingerprint:
                return None
            return DescentCheckpoint(
                iteration=int(payload["iteration"]),
                y=np.array(payload["y"], dtype=np.float64),
                velocity=np.array(payload["velocity"], dtype=np.float64),
                gains=np.array(payload["gains"], dtype=np.float64),
                kl_trace=[float(v) for v in payload["kl_trace"]],
            )
    except (OSError, KeyError, ValueError, BadZipFile):
        return None
