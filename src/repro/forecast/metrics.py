"""Forecast error metrics.

The standard suite: MAE, RMSE, MAPE, sMAPE and MASE (scaled against the
in-sample seasonal-naive error, the scale-free metric of the M-series
competitions — the right default for loads whose magnitude spans two
orders across archetypes).
"""

from __future__ import annotations

import numpy as np


def _pair(actual: np.ndarray, predicted: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    actual = np.asarray(actual, dtype=np.float64)
    predicted = np.asarray(predicted, dtype=np.float64)
    if actual.shape != predicted.shape or actual.ndim != 1:
        raise ValueError(
            f"actual {actual.shape} and predicted {predicted.shape} must be "
            f"equal-length 1-D arrays"
        )
    if actual.size == 0:
        raise ValueError("cannot score an empty forecast")
    if not (np.isfinite(actual).all() and np.isfinite(predicted).all()):
        raise ValueError("inputs contain NaN/inf")
    return actual, predicted


def mae(actual: np.ndarray, predicted: np.ndarray) -> float:
    """Mean absolute error."""
    actual, predicted = _pair(actual, predicted)
    return float(np.abs(actual - predicted).mean())


def rmse(actual: np.ndarray, predicted: np.ndarray) -> float:
    """Root mean squared error."""
    actual, predicted = _pair(actual, predicted)
    return float(np.sqrt(((actual - predicted) ** 2).mean()))


def mape(actual: np.ndarray, predicted: np.ndarray, epsilon: float = 1e-9) -> float:
    """Mean absolute percentage error (hours with ~zero actuals skipped).

    Raises
    ------
    ValueError
        If every actual is (near) zero — MAPE is undefined there.
    """
    actual, predicted = _pair(actual, predicted)
    mask = np.abs(actual) > epsilon
    if not mask.any():
        raise ValueError("MAPE undefined: all actual values are ~zero")
    return float(
        (np.abs(actual[mask] - predicted[mask]) / np.abs(actual[mask])).mean()
    )


def smape(actual: np.ndarray, predicted: np.ndarray) -> float:
    """Symmetric MAPE in [0, 2]; hours where both sides are zero score 0."""
    actual, predicted = _pair(actual, predicted)
    denom = (np.abs(actual) + np.abs(predicted)) / 2.0
    out = np.zeros(actual.shape)
    mask = denom > 0
    out[mask] = np.abs(actual[mask] - predicted[mask]) / denom[mask]
    return float(out.mean())


def mase(
    actual: np.ndarray,
    predicted: np.ndarray,
    history: np.ndarray,
    season: int = 168,
) -> float:
    """Mean absolute scaled error vs the in-sample seasonal naive.

    Values below 1 beat "repeat last week".

    Raises
    ------
    ValueError
        If the history is shorter than one season or has zero seasonal
        naive error (constant series).
    """
    actual, predicted = _pair(actual, predicted)
    history = np.asarray(history, dtype=np.float64)
    if history.ndim != 1 or history.shape[0] <= season:
        raise ValueError(
            f"history must exceed one season ({season} h), got "
            f"{history.shape[0]}"
        )
    scale = float(np.abs(history[season:] - history[:-season]).mean())
    if scale == 0:
        raise ValueError("MASE undefined: constant in-sample seasonal error")
    return mae(actual, predicted) / scale
