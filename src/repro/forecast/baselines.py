"""Classic forecasting baselines.

All forecasters share one contract: ``fit(history)`` learns from a 1-D
array of past hourly readings (NaN-free — run preprocessing first), and
``predict(horizon)`` returns the next ``horizon`` hourly values.  The
contract is deliberately minimal so the backtest harness can sweep any
mixture of models.
"""

from __future__ import annotations

import numpy as np

from repro.data.timeseries import HOURS_PER_DAY

HOURS_PER_WEEK = HOURS_PER_DAY * 7


def _validated_history(history: np.ndarray, min_length: int) -> np.ndarray:
    history = np.asarray(history, dtype=np.float64)
    if history.ndim != 1:
        raise ValueError(f"history must be 1-D, got shape {history.shape}")
    if history.shape[0] < min_length:
        raise ValueError(
            f"history needs at least {min_length} readings, got "
            f"{history.shape[0]}"
        )
    if not np.isfinite(history).all():
        raise ValueError("history contains NaN/inf; impute first")
    return history


class NaiveForecaster:
    """Every future hour equals the last observed reading."""

    def __init__(self) -> None:
        self._last: float | None = None

    def fit(self, history: np.ndarray) -> "NaiveForecaster":
        history = _validated_history(history, min_length=1)
        self._last = float(history[-1])
        return self

    def predict(self, horizon: int) -> np.ndarray:
        if self._last is None:
            raise RuntimeError("fit() must be called before predict()")
        if horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {horizon}")
        return np.full(horizon, self._last)


class SeasonalNaive:
    """Each future hour equals the reading one season earlier.

    The default season is a week (168 h), the strongest cycle in
    residential load; pass 24 for a pure diurnal model.
    """

    def __init__(self, season: int = HOURS_PER_WEEK) -> None:
        if season < 1:
            raise ValueError(f"season must be >= 1, got {season}")
        self.season = season
        self._tail: np.ndarray | None = None

    def fit(self, history: np.ndarray) -> "SeasonalNaive":
        history = _validated_history(history, min_length=self.season)
        self._tail = history[-self.season :].copy()
        return self

    def predict(self, horizon: int) -> np.ndarray:
        if self._tail is None:
            raise RuntimeError("fit() must be called before predict()")
        if horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {horizon}")
        reps = int(np.ceil(horizon / self.season))
        return np.tile(self._tail, reps)[:horizon]


class DriftForecaster:
    """Linear extrapolation of the first→last trend (clipped at zero).

    The standard "drift" method; consumption cannot be negative, so the
    extrapolated line is floored at 0.
    """

    def __init__(self) -> None:
        self._last: float | None = None
        self._slope: float = 0.0

    def fit(self, history: np.ndarray) -> "DriftForecaster":
        history = _validated_history(history, min_length=2)
        self._last = float(history[-1])
        self._slope = float(history[-1] - history[0]) / (history.shape[0] - 1)
        return self

    def predict(self, horizon: int) -> np.ndarray:
        if self._last is None:
            raise RuntimeError("fit() must be called before predict()")
        if horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {horizon}")
        steps = np.arange(1, horizon + 1, dtype=np.float64)
        return np.clip(self._last + self._slope * steps, 0.0, None)
