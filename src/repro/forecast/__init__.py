"""Load forecasting on top of the discovered patterns.

The paper motivates typical-pattern discovery with downstream uses:
"the identified patterns ... can be used to develop targeting
demand-response programs, **forecast energy consumption**, and provide
personalized services".  This package implements that claim end to end:

- classic baselines (:mod:`repro.forecast.baselines`): naive, seasonal
  naive, drift;
- Holt-Winters triple exponential smoothing from scratch
  (:mod:`repro.forecast.holtwinters`);
- a *pattern-based* forecaster (:mod:`repro.forecast.profile`) that
  predicts from the customer's weekly shape scaled to the recent level —
  the method the discovered typical patterns enable;
- error metrics and a rolling-origin backtest harness
  (:mod:`repro.forecast.metrics`, :mod:`repro.forecast.backtest`).

The FORECAST ablation bench shows the pattern-based method beating the
naive family on archetype-structured demand.
"""

from repro.forecast.backtest import BacktestResult, backtest
from repro.forecast.baselines import DriftForecaster, NaiveForecaster, SeasonalNaive
from repro.forecast.holtwinters import HoltWinters
from repro.forecast.metrics import mae, mape, mase, rmse, smape
from repro.forecast.profile import ProfileForecaster

__all__ = [
    "BacktestResult",
    "DriftForecaster",
    "HoltWinters",
    "NaiveForecaster",
    "ProfileForecaster",
    "SeasonalNaive",
    "backtest",
    "mae",
    "mape",
    "mase",
    "rmse",
    "smape",
]
