"""Pattern-based forecasting — the paper's downstream-use claim.

The method the discovered typical patterns enable: a customer's future
load is their *typical weekly shape* (phase-aligned hour-of-week profile
learned from history) scaled to their *recent level* (ratio of the last
days' consumption to the profile over the same hours).  Level changes are
tracked quickly while the shape — the stable behavioural signature the
embedding groups customers by — does the heavy lifting.

``ProfileForecaster`` can also borrow a *segment profile*: given the mean
shape of the customer's pattern group (e.g. a view-C selection), new or
data-poor customers are forecast from the group's shape scaled to their
own level — exactly the personalisation story of the paper's intro.
"""

from __future__ import annotations

import numpy as np

from repro.data.timeseries import HOURS_PER_DAY
from repro.forecast.baselines import _validated_history

HOURS_PER_WEEK = HOURS_PER_DAY * 7


class ProfileForecaster:
    """Forecast = phase-aligned weekly profile x recent-level scale.

    Parameters
    ----------
    season:
        Profile period in hours (168 = weekly, 24 = diurnal).
    level_window:
        Trailing hours used to estimate the customer's current level.
    group_profile:
        Optional externally supplied shape of length ``season`` (e.g. the
        mean profile of the customer's pattern group).  When given, the
        customer's own history only sets the level, which needs far less
        data.
    """

    def __init__(
        self,
        season: int = HOURS_PER_WEEK,
        level_window: int = 3 * HOURS_PER_DAY,
        group_profile: np.ndarray | None = None,
    ) -> None:
        if season < 2:
            raise ValueError(f"season must be >= 2, got {season}")
        if level_window < 1:
            raise ValueError(f"level_window must be >= 1, got {level_window}")
        self.season = season
        self.level_window = level_window
        if group_profile is not None:
            group_profile = np.asarray(group_profile, dtype=np.float64)
            if group_profile.shape != (season,):
                raise ValueError(
                    f"group_profile must have length {season}, got "
                    f"{group_profile.shape}"
                )
            if not np.isfinite(group_profile).all():
                raise ValueError("group_profile contains NaN/inf")
        self.group_profile = group_profile
        self._profile: np.ndarray | None = None
        self._scale: float = 1.0
        self._next_phase: int = 0

    def fit(self, history: np.ndarray, start_phase: int = 0) -> "ProfileForecaster":
        """Learn the profile (or just the level when a group profile is set).

        Parameters
        ----------
        history:
            Past hourly readings, NaN-free.
        start_phase:
            Hour-of-season of ``history[0]`` (0 when the history starts at
            the epoch or any whole number of seasons after it).

        Raises
        ------
        ValueError
            If the history is too short: one full season without a group
            profile, ``level_window`` hours with one.
        """
        min_length = self.level_window if self.group_profile is not None else self.season
        history = _validated_history(history, min_length=min_length)
        n = history.shape[0]
        phases = (start_phase + np.arange(n)) % self.season
        if self.group_profile is not None:
            profile = self.group_profile
        else:
            sums = np.zeros(self.season)
            counts = np.zeros(self.season)
            np.add.at(sums, phases, history)
            np.add.at(counts, phases, 1.0)
            overall = float(history.mean())
            with np.errstate(invalid="ignore", divide="ignore"):
                profile = np.where(counts > 0, sums / counts, overall)
        # Recent level: actual vs profile over the trailing window.
        window = min(self.level_window, n)
        recent = history[-window:]
        expected = profile[phases[-window:]]
        expected_mean = float(expected.mean())
        if expected_mean > 0:
            self._scale = float(recent.mean()) / expected_mean
        else:
            self._scale = 1.0
        self._profile = profile
        self._next_phase = int((start_phase + n) % self.season)
        return self

    def predict(self, horizon: int) -> np.ndarray:
        """Forecast the next ``horizon`` hours (floored at zero)."""
        if self._profile is None:
            raise RuntimeError("fit() must be called before predict()")
        if horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {horizon}")
        phases = (self._next_phase + np.arange(horizon)) % self.season
        return np.clip(self._profile[phases] * self._scale, 0.0, None)
