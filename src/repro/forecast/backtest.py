"""Rolling-origin backtesting over a customer fleet.

For each customer and each fold, a forecaster factory is fit on the
history up to the fold's origin and scored on the following ``horizon``
hours.  Folds advance by ``step`` hours, giving every model the same train
/ test splits — the controlled comparison the FORECAST bench tabulates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.data.timeseries import SeriesSet
from repro.forecast.metrics import mae, mase, smape

#: A factory returning a fresh, unfitted forecaster.
ForecasterFactory = Callable[[], object]


@dataclass(slots=True)
class BacktestResult:
    """Aggregate scores of one model over all customers and folds."""

    model: str
    n_customers: int
    n_folds: int
    mae: float
    smape: float
    mase: float

    def row(self) -> str:
        """One formatted table row for reports."""
        return (
            f"{self.model:<22}{self.mae:>9.4f}{self.smape:>9.3f}"
            f"{self.mase:>9.3f}"
        )


def backtest(
    series_set: SeriesSet,
    factories: dict[str, ForecasterFactory],
    horizon: int = 24,
    n_folds: int = 3,
    step: int = 24,
    min_history: int = 14 * 24,
    season: int = 168,
) -> list[BacktestResult]:
    """Rolling-origin evaluation of several models on one fleet.

    Parameters
    ----------
    series_set:
        NaN-free hourly readings (run preprocessing first).
    factories:
        ``{model name: factory}``; each factory builds an object with the
        ``fit(history)`` / ``predict(horizon)`` contract.  Factories whose
        ``fit`` needs a ``start_phase`` (profile forecasters) receive it
        automatically when the attribute exists.
    horizon, n_folds, step:
        Forecast length, number of rolling folds, fold spacing (hours).
    min_history:
        History available to the *first* fold.
    season:
        Season used by the MASE scale.

    Raises
    ------
    ValueError
        If the series are too short for the requested folds.
    """
    if horizon < 1 or n_folds < 1 or step < 1:
        raise ValueError("horizon, n_folds and step must all be >= 1")
    needed = min_history + (n_folds - 1) * step + horizon
    if series_set.n_steps < needed:
        raise ValueError(
            f"series of {series_set.n_steps} hours cannot support "
            f"{n_folds} folds of horizon {horizon} after {min_history} "
            f"hours of history (needs {needed})"
        )
    if np.isnan(series_set.matrix).any():
        raise ValueError("series contain NaN; impute first")

    results: list[BacktestResult] = []
    origins = [min_history + f * step for f in range(n_folds)]
    for name, factory in factories.items():
        maes: list[float] = []
        smapes: list[float] = []
        mases: list[float] = []
        for row in range(series_set.n_customers):
            series = series_set.matrix[row]
            for origin in origins:
                history = series[:origin]
                actual = series[origin : origin + horizon]
                model = factory()
                fit = model.fit
                # Profile forecasters need the seasonal phase of history[0].
                if "start_phase" in fit.__code__.co_varnames:
                    fit(history, start_phase=series_set.start_hour % model.season)
                else:
                    fit(history)
                predicted = model.predict(horizon)
                maes.append(mae(actual, predicted))
                smapes.append(smape(actual, predicted))
                try:
                    mases.append(mase(actual, predicted, history, season=season))
                except ValueError:
                    pass  # constant history; skip the scaled score
        results.append(
            BacktestResult(
                model=name,
                n_customers=series_set.n_customers,
                n_folds=n_folds,
                mae=float(np.mean(maes)),
                smape=float(np.mean(smapes)),
                mase=float(np.mean(mases)) if mases else float("nan"),
            )
        )
    return results
