"""Holt-Winters triple exponential smoothing (additive), from scratch.

Level + trend + additive seasonal components with smoothing parameters
``alpha`` (level), ``beta`` (trend) and ``gamma`` (seasonality).  A small
grid search over the parameters (minimising in-sample one-step SSE) is
provided because hand-picking smoothing constants per customer is not
practical at fleet scale.
"""

from __future__ import annotations

from itertools import product

import numpy as np

from repro.data.timeseries import HOURS_PER_DAY
from repro.forecast.baselines import _validated_history

_DEFAULT_GRID = (0.1, 0.3, 0.6)


class HoltWinters:
    """Additive Holt-Winters forecaster.

    Parameters
    ----------
    season:
        Seasonal period in hours (24 = diurnal, 168 = weekly).
    alpha, beta, gamma:
        Smoothing constants in (0, 1); any left as ``None`` is chosen by
        grid search during :meth:`fit`.
    """

    def __init__(
        self,
        season: int = HOURS_PER_DAY,
        alpha: float | None = None,
        beta: float | None = None,
        gamma: float | None = None,
    ) -> None:
        if season < 2:
            raise ValueError(f"season must be >= 2, got {season}")
        for name, value in (("alpha", alpha), ("beta", beta), ("gamma", gamma)):
            if value is not None and not 0.0 < value < 1.0:
                raise ValueError(f"{name} must be in (0, 1), got {value}")
        self.season = season
        self.alpha = alpha
        self.beta = beta
        self.gamma = gamma
        self._level: float | None = None
        self._trend: float = 0.0
        self._seasonal: np.ndarray | None = None
        self._next_phase: int = 0

    # ------------------------------------------------------------------
    # fitting
    # ------------------------------------------------------------------
    def _run(
        self, history: np.ndarray, alpha: float, beta: float, gamma: float
    ) -> tuple[float, float, np.ndarray, float]:
        """One smoothing pass; returns (level, trend, seasonal, sse)."""
        m = self.season
        # Initialise from the first two seasons.
        first = history[:m]
        second = history[m : 2 * m]
        level = float(first.mean())
        trend = float((second.mean() - first.mean()) / m)
        seasonal = (first - level).astype(np.float64)
        sse = 0.0
        for t in range(history.shape[0]):
            s_idx = t % m
            forecast = level + trend + seasonal[s_idx]
            error = history[t] - forecast
            sse += error * error
            new_level = alpha * (history[t] - seasonal[s_idx]) + (1 - alpha) * (
                level + trend
            )
            trend = beta * (new_level - level) + (1 - beta) * trend
            seasonal[s_idx] = gamma * (history[t] - new_level) + (1 - gamma) * seasonal[
                s_idx
            ]
            level = new_level
        return level, trend, seasonal, sse

    def fit(self, history: np.ndarray) -> "HoltWinters":
        """Fit on at least two full seasons of readings.

        Raises
        ------
        ValueError
            If the history is too short or non-finite.
        """
        history = _validated_history(history, min_length=2 * self.season)
        alphas = (self.alpha,) if self.alpha is not None else _DEFAULT_GRID
        betas = (self.beta,) if self.beta is not None else _DEFAULT_GRID
        gammas = (self.gamma,) if self.gamma is not None else _DEFAULT_GRID
        best: tuple[float, tuple] | None = None
        for a, b, g in product(alphas, betas, gammas):
            level, trend, seasonal, sse = self._run(history, a, b, g)
            if best is None or sse < best[0]:
                best = (sse, (a, b, g, level, trend, seasonal))
        assert best is not None
        a, b, g, level, trend, seasonal = best[1]
        self.alpha, self.beta, self.gamma = a, b, g
        self._level = level
        self._trend = trend
        self._seasonal = seasonal
        self._next_phase = history.shape[0] % self.season
        return self

    def predict(self, horizon: int) -> np.ndarray:
        """Forecast the next ``horizon`` hours (floored at zero)."""
        if self._level is None or self._seasonal is None:
            raise RuntimeError("fit() must be called before predict()")
        if horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {horizon}")
        steps = np.arange(1, horizon + 1, dtype=np.float64)
        phases = (self._next_phase + np.arange(horizon)) % self.season
        seasonal = self._seasonal[phases]
        return np.clip(self._level + self._trend * steps + seasonal, 0.0, None)
