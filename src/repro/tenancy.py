"""Tenant namespaces over the sharded data plane.

A :class:`TenantRegistry` maps tenant ids to fully isolated
:class:`~repro.core.pipeline.VapSession` instances — separate databases
(sharded or not), separate single-flight caches, separate circuit
breakers — plus per-tenant request accounting and optional quotas.  The
server resolves the tenant per request (``X-Tenant`` header or
``tenant=`` query parameter) and routes to that tenant's session, so two
tenants with identical query parameters can never collide on a cache key:
the caches themselves are per-tenant objects, not a shared cache with a
tenant-prefixed key.

Quotas are deliberately simple: a monotonically increasing served-request
counter checked against an optional ceiling.  Crossing the ceiling raises
:class:`QuotaExceeded`, which the API layer maps to ``429``; operators
reset counters out of band (:meth:`TenantRegistry.reset_usage`).
Observability endpoints are not charged — a tenant over quota can still
be diagnosed.
"""

from __future__ import annotations

import re
import threading
from dataclasses import dataclass

from repro import obs
from repro.core.pipeline import VapSession

#: Tenant ids travel in headers, query strings and directory names, so
#: the alphabet is restricted to something safe in all three.
TENANT_ID_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$")

DEFAULT_TENANT = "default"


class QuotaExceeded(Exception):
    """A tenant crossed its request quota (API layer answers 429)."""

    def __init__(self, tenant: str, limit: int) -> None:
        super().__init__(
            f"tenant {tenant!r} exceeded its request quota of {limit}"
        )
        self.tenant = tenant
        self.limit = limit


@dataclass(frozen=True, slots=True)
class TenantQuota:
    """Resource ceilings for one tenant; ``None`` means unlimited.

    ``max_requests`` caps served synchronous requests;
    ``max_active_jobs`` caps how many queued-or-running async jobs the
    tenant may hold at once (the job service answers 429 past it).
    """

    max_requests: int | None = None
    max_active_jobs: int | None = None

    def __post_init__(self) -> None:
        if self.max_requests is not None and self.max_requests < 0:
            raise ValueError(
                f"max_requests must be >= 0, got {self.max_requests}"
            )
        if self.max_active_jobs is not None and self.max_active_jobs < 0:
            raise ValueError(
                f"max_active_jobs must be >= 0, got {self.max_active_jobs}"
            )


def validate_tenant_id(tenant_id: str) -> str:
    """Check a tenant id against :data:`TENANT_ID_PATTERN`.

    Raises ``ValueError`` for anything unsafe to embed in a header,
    query string or directory name.
    """
    if not isinstance(tenant_id, str) or not TENANT_ID_PATTERN.match(tenant_id):
        raise ValueError(
            f"invalid tenant id {tenant_id!r}: must match "
            f"{TENANT_ID_PATTERN.pattern}"
        )
    return tenant_id


class _Tenant:
    __slots__ = ("name", "session", "quota", "requests")

    def __init__(self, name: str, session: VapSession, quota: TenantQuota):
        self.name = name
        self.session = session
        self.quota = quota
        self.requests = 0


class TenantRegistry:
    """Thread-safe mapping of tenant id → isolated session + quota state.

    Parameters
    ----------
    default_tenant:
        The tenant served when a request names none.
    metrics:
        Registry receiving ``tenant_requests_total{tenant=...}`` counters;
        the process default when omitted.
    """

    def __init__(
        self,
        default_tenant: str = DEFAULT_TENANT,
        metrics: obs.MetricsRegistry | None = None,
    ) -> None:
        self.default_tenant = validate_tenant_id(default_tenant)
        self._metrics = metrics
        self._lock = threading.Lock()
        self._tenants: dict[str, _Tenant] = {}

    @property
    def metrics(self) -> obs.MetricsRegistry:
        return self._metrics if self._metrics is not None else obs.get_registry()

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def add(
        self,
        tenant_id: str,
        session: VapSession,
        quota: TenantQuota | None = None,
    ) -> None:
        """Register a tenant; raises ``ValueError`` on duplicates or bad ids."""
        validate_tenant_id(tenant_id)
        with self._lock:
            if tenant_id in self._tenants:
                raise ValueError(f"tenant {tenant_id!r} already registered")
            self._tenants[tenant_id] = _Tenant(
                tenant_id, session, quota or TenantQuota()
            )

    def create_from_city(
        self,
        tenant_id: str,
        dataset,
        shards: int | None = None,
        quota: TenantQuota | None = None,
        **session_kwargs,
    ) -> VapSession:
        """Build an isolated session for a city and register it."""
        session = VapSession.from_city(dataset, shards=shards, **session_kwargs)
        self.add(tenant_id, session, quota=quota)
        return session

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._tenants)

    def __contains__(self, tenant_id: str) -> bool:
        with self._lock:
            return tenant_id in self._tenants

    def __len__(self) -> int:
        with self._lock:
            return len(self._tenants)

    def session(self, tenant_id: str) -> VapSession:
        """The tenant's session; raises ``KeyError`` for unknown tenants."""
        with self._lock:
            if tenant_id not in self._tenants:
                raise KeyError(f"unknown tenant {tenant_id!r}")
            return self._tenants[tenant_id].session

    def quota(self, tenant_id: str) -> TenantQuota:
        """The tenant's quota; raises ``KeyError`` for unknown tenants."""
        with self._lock:
            if tenant_id not in self._tenants:
                raise KeyError(f"unknown tenant {tenant_id!r}")
            return self._tenants[tenant_id].quota

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def charge(self, tenant_id: str) -> int:
        """Count one served request against the tenant.

        Returns the tenant's new request total.

        Raises
        ------
        KeyError
            For an unknown tenant.
        QuotaExceeded
            When the request would cross ``quota.max_requests``.
        """
        with self._lock:
            if tenant_id not in self._tenants:
                raise KeyError(f"unknown tenant {tenant_id!r}")
            tenant = self._tenants[tenant_id]
            limit = tenant.quota.max_requests
            if limit is not None and tenant.requests >= limit:
                raise QuotaExceeded(tenant_id, limit)
            tenant.requests += 1
            total = tenant.requests
        self.metrics.counter("tenant_requests_total", tenant=tenant_id).inc()
        return total

    def usage(self, tenant_id: str) -> dict[str, object]:
        """Request total and quota for one tenant."""
        with self._lock:
            if tenant_id not in self._tenants:
                raise KeyError(f"unknown tenant {tenant_id!r}")
            tenant = self._tenants[tenant_id]
            return {
                "requests": tenant.requests,
                "max_requests": tenant.quota.max_requests,
            }

    def reset_usage(self, tenant_id: str) -> None:
        """Zero a tenant's request counter (operator action)."""
        with self._lock:
            if tenant_id not in self._tenants:
                raise KeyError(f"unknown tenant {tenant_id!r}")
            self._tenants[tenant_id].requests = 0

    def to_record(self) -> dict[str, dict[str, object]]:
        """Telemetry view: per-tenant size, shape and usage."""
        with self._lock:
            tenants = list(self._tenants.values())
        out: dict[str, dict[str, object]] = {}
        for tenant in tenants:
            db = tenant.session.db
            out[tenant.name] = {
                "n_customers": len(db),
                "n_shards": getattr(db, "n_shards", 1),
                "requests": tenant.requests,
                "max_requests": tenant.quota.max_requests,
            }
        return out
