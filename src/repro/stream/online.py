"""Incremental shift-pattern monitoring over a replay feed.

:class:`OnlineShiftMonitor` keeps two rolling demand windows of ``W`` hours
each — the trailing window is the shift model's ``t1``, the leading window
``t2`` — updated in O(n_customers) per fed hour via a ring buffer.  After
each tick an up-to-date Eq. 4 field is available, which is how the demo
shows "the changes of patterns in near real time".

The per-tick field itself is maintained *incrementally*: because the Eq. 3
density of a window mean factors as ``S / (total * 2pi h^2)`` with ``S``
and ``total`` additive over hours (see :mod:`repro.rollup.kde`), the
monitor keeps one kernel-sum grid per ring hour plus running window
accumulators, and each fed hour updates them with two grid adds and two
subtracts — the hour entering ``t2``, the hour crossing from ``t2`` to
``t1``, and the hour falling out of the window.  Emitting a field is then
O(cells) instead of two full ``O(n * cells)`` KDE passes per tick.  The
running sums are refolded from the stored per-hour grids every
``refold_every`` ticks to bound float drift, and the exact two-pass
computation stays available as :meth:`~OnlineShiftMonitor
.current_field_exact` — the replay-equivalence oracle.  Windows containing
negative readings fall back to the exact path for that emission (the batch
path clips negatives before normalising, which breaks additivity).

The KDE bandwidth is resolved **once at construction** — explicitly, or by
Silverman's rule over the fixed customer positions.  Recomputing Silverman
per emission (the old behaviour) burned an O(n) pass per tick to derive a
value that cannot change while positions are fixed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.core.shift.flow import FlowArrow, ShiftField, major_flows
from repro.core.shift.grids import GridSpec
from repro.core.shift.kde import kde_density
from repro.resilience.faults import fault_point
from repro.resilience.retry import RetryPolicy
from repro.rollup.kde import KdeAccumulator
from repro.stream.clock import SimulatedClock
from repro.stream.feed import Batch, ReplayFeed

#: Refold the running window accumulators from the stored per-hour grids
#: after this many incremental updates (bounds float drift).
DEFAULT_REFOLD_EVERY = 64


@dataclass(slots=True)
class ShiftUpdate:
    """The monitor's per-tick output."""

    tick: int
    clock_seconds: float
    hours_seen: int
    energy: float
    n_flows: int
    main_flow: FlowArrow | None


class OnlineShiftMonitor:
    """Rolling two-window shift estimator.

    Parameters
    ----------
    positions:
        ``(n, 2)`` customer (lon, lat), fixed for the stream's lifetime.
    spec:
        Evaluation grid shared by every emitted field.
    window_hours:
        Width ``W`` of each of the two rolling windows.
    bandwidth_m:
        KDE bandwidth; Silverman's rule over ``positions`` when omitted.
        Either way the value is pinned at construction —
        ``self.bandwidth_m`` is always a concrete float afterwards.
    incremental:
        Maintain per-hour kernel grids and answer :meth:`current_field`
        from running window accumulators (O(cells) per emission).  When
        off, every emission recomputes both KDEs from scratch.
    refold_every:
        Incremental updates between exact refolds of the running
        accumulators (drift bound).
    """

    def __init__(
        self,
        positions: np.ndarray,
        spec: GridSpec,
        window_hours: int = 4,
        bandwidth_m: float | None = None,
        incremental: bool = True,
        refold_every: int = DEFAULT_REFOLD_EVERY,
    ) -> None:
        positions = np.asarray(positions, dtype=np.float64)
        if positions.ndim != 2 or positions.shape[1] != 2:
            raise ValueError(f"positions must be (n, 2), got {positions.shape}")
        if window_hours < 1:
            raise ValueError(f"window_hours must be >= 1, got {window_hours}")
        if refold_every < 1:
            raise ValueError(f"refold_every must be >= 1, got {refold_every}")
        self.positions = positions
        self.spec = spec
        self.window_hours = window_hours
        # Pin the bandwidth once; Silverman depends only on positions, so
        # resolving it here is identical to recomputing it per emission —
        # minus the per-tick O(n) recompute.
        self._acc = KdeAccumulator(positions, spec, bandwidth_m=bandwidth_m)
        self.bandwidth_m: float = self._acc.bandwidth_m
        self.incremental = incremental
        self.refold_every = refold_every
        n = positions.shape[0]
        # Ring buffer of the last 2W hourly columns (NaN → 0 contribution).
        self._ring = np.zeros((2 * window_hours, n))
        self._filled = 0
        self._cursor = 0
        self.hours_seen = 0
        if incremental:
            ny, nx = spec.ny, spec.nx
            # One kernel-sum grid + weight total per ring hour, and the
            # running sums over the t1/t2 window slots.
            self._hour_grids = np.zeros((2 * window_hours, ny, nx))
            self._hour_totals = np.zeros(2 * window_hours)
            # A ring hour is "clean" when it holds no negative readings;
            # negatives break the additive normalisation (the exact path
            # clips them), so any unclean window hour forces the exact
            # fallback for that emission.
            self._hour_clean = np.ones(2 * window_hours, dtype=bool)
            self._g1 = np.zeros((ny, nx))
            self._g2 = np.zeros((ny, nx))
            self._t1 = 0.0
            self._t2 = 0.0
            self._acc_valid = False
            self._since_refold = 0

    def feed_hour(self, values: np.ndarray) -> None:
        """Push one hourly column of readings.

        Non-finite readings contribute zero demand; how many were dropped
        is visible as the ``stream_nonfinite_dropped_total`` counter
        rather than being swallowed silently.

        Raises
        ------
        ValueError
            If the column length disagrees with the position count.
        """
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (self.positions.shape[0],):
            raise ValueError(
                f"expected {self.positions.shape[0]} readings, got {values.shape}"
            )
        finite = np.isfinite(values)
        dropped = int(values.shape[0] - int(finite.sum()))
        if dropped:
            obs.get_registry().counter(
                "stream_nonfinite_dropped_total"
            ).inc(dropped)
        filled = np.where(finite, values, 0.0)
        c = self._cursor
        if self.incremental:
            self._fold_hour(filled, c)
        self._ring[c] = filled
        self._cursor = (c + 1) % self._ring.shape[0]
        self._filled = min(self._filled + 1, self._ring.shape[0])
        self.hours_seen += 1
        if self.incremental and self.ready:
            if not self._acc_valid or self._since_refold >= self.refold_every:
                self._refold()

    def _fold_hour(self, filled: np.ndarray, c: int) -> None:
        """Incremental accumulator maintenance for one fed hour.

        Must run *before* the ring slot ``c`` is overwritten: the slot
        still holds the hour falling out of the t1 window, whose grid is
        subtracted, while the slot ``W`` ahead holds the hour crossing
        from t2 into t1.
        """
        w = self.window_hours
        g_new = self._acc.grid(filled)
        t_new = float(filled.sum())
        if self._acc_valid:
            mid = (c + w) % (2 * w)
            # Hour leaving t1 entirely (the one being overwritten) and
            # hour crossing the t2 → t1 boundary.
            self._g1 += self._hour_grids[mid] - self._hour_grids[c]
            self._t1 += self._hour_totals[mid] - self._hour_totals[c]
            self._g2 += g_new - self._hour_grids[mid]
            self._t2 += t_new - self._hour_totals[mid]
            self._since_refold += 1
        self._hour_grids[c] = g_new
        self._hour_totals[c] = t_new
        self._hour_clean[c] = not bool((filled < 0.0).any())

    def _refold(self) -> None:
        """Recompute the running window sums exactly from the stored
        per-hour grids, zeroing accumulated float drift."""
        w = self.window_hours
        order = [(self._cursor + k) % (2 * w) for k in range(2 * w)]
        older, newer = order[:w], order[w:]
        self._g1 = self._hour_grids[older].sum(axis=0)
        self._t1 = float(self._hour_totals[older].sum())
        self._g2 = self._hour_grids[newer].sum(axis=0)
        self._t2 = float(self._hour_totals[newer].sum())
        self._acc_valid = True
        self._since_refold = 0
        obs.get_registry().counter("stream_field_refolds_total").inc()

    def feed_batch(self, batch: Batch) -> None:
        """Push every hourly column of a feed batch, oldest first."""
        for col in range(batch.values.shape[1]):
            self.feed_hour(batch.values[:, col])

    @property
    def ready(self) -> bool:
        """Whether both windows are fully populated."""
        return self._filled >= 2 * self.window_hours

    def _window_means(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-customer mean demand of (t1, t2) = (older, newer) windows."""
        w = self.window_hours
        # Reconstruct chronological order from the ring.
        if self._filled < self._ring.shape[0]:
            chronological = self._ring[: self._filled]
        else:
            chronological = np.vstack(
                [self._ring[self._cursor :], self._ring[: self._cursor]]
            )
        older = chronological[-2 * w : -w]
        newer = chronological[-w:]
        return older.mean(axis=0), newer.mean(axis=0)

    def _check_ready(self) -> None:
        if not self.ready:
            raise RuntimeError(
                f"monitor needs {2 * self.window_hours} hours before the "
                f"first field; has {self._filled}"
            )

    def current_field_exact(self) -> ShiftField:
        """The Eq. 4 field via two full KDE passes over the ring — the
        oracle the incremental path is equivalence-tested against.

        Raises
        ------
        RuntimeError
            If called before both windows are populated (check ``ready``).
        """
        self._check_ready()
        demand_t1, demand_t2 = self._window_means()
        before = kde_density(
            self.positions, demand_t1, self.spec, bandwidth_m=self.bandwidth_m
        )
        after = kde_density(
            self.positions, demand_t2, self.spec, bandwidth_m=self.bandwidth_m
        )
        return ShiftField.between(before, after)

    def current_field(self) -> ShiftField:
        """The Eq. 4 field between the two rolling windows.

        Answered from the running window accumulators in O(cells) when the
        incremental state is valid and every window hour is clean
        (non-negative); otherwise falls back to the exact two-pass
        computation.  Either way the ``kernel.kde`` fault site fires once,
        so chaos plans exercise this path too.

        Raises
        ------
        RuntimeError
            If called before both windows are populated (check ``ready``).
        """
        self._check_ready()
        if not (
            self.incremental and self._acc_valid and self._hour_clean.all()
        ):
            obs.get_registry().counter(
                "stream_field_total", mode="exact"
            ).inc()
            return self.current_field_exact()
        fault_point("kernel.kde")
        w = float(self.window_hours)
        before = self._acc.field(self._g1 / w, self._t1 / w)
        after = self._acc.field(self._g2 / w, self._t2 / w)
        obs.get_registry().counter(
            "stream_field_total", mode="incremental"
        ).inc()
        return ShiftField.between(before, after)


def run_replay(
    feed: ReplayFeed,
    positions: np.ndarray,
    spec: GridSpec,
    window_hours: int = 4,
    clock: SimulatedClock | None = None,
    max_ticks: int | None = None,
    bandwidth_m: float | None = None,
    retry: RetryPolicy | None = None,
    incremental: bool = True,
    refold_every: int = DEFAULT_REFOLD_EVERY,
) -> list[ShiftUpdate]:
    """Run a replay end to end; one :class:`ShiftUpdate` per ready tick.

    ``max_ticks`` caps the replay for benchmarking; the simulated clock
    advances one tick per batch, so ``clock_seconds`` reports the wall time
    the paper's 10-second feed would have taken.

    ``retry`` additionally guards the per-tick KDE field computation
    (the ``kernel.kde`` fault site) so a chaos run completes end to end;
    the feed's own tick production retries under the feed's policy.
    """
    clock = clock or SimulatedClock()
    monitor = OnlineShiftMonitor(
        positions,
        spec,
        window_hours=window_hours,
        bandwidth_m=bandwidth_m,
        incremental=incremental,
        refold_every=refold_every,
    )
    updates: list[ShiftUpdate] = []
    for batch in feed:
        if max_ticks is not None and batch.tick >= max_ticks:
            break
        monitor.feed_batch(batch)
        clock.tick()
        if not monitor.ready:
            continue
        if retry is None:
            field = monitor.current_field()
        else:
            field = retry.call(monitor.current_field, site="stream.field")
        flows = major_flows(field)
        updates.append(
            ShiftUpdate(
                tick=batch.tick,
                clock_seconds=clock.now,
                hours_seen=monitor.hours_seen,
                energy=field.energy(),
                n_flows=len(flows),
                main_flow=flows[0] if flows else None,
            )
        )
    return updates
