"""Incremental shift-pattern monitoring over a replay feed.

:class:`OnlineShiftMonitor` keeps two rolling demand windows of ``W`` hours
each — the trailing window is the shift model's ``t1``, the leading window
``t2`` — updated in O(n_customers) per fed hour via a ring buffer.  After
each tick an up-to-date Eq. 4 field is available, which is how the demo
shows "the changes of patterns in near real time".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.shift.flow import FlowArrow, ShiftField, major_flows
from repro.core.shift.grids import GridSpec
from repro.core.shift.kde import kde_density
from repro.resilience.retry import RetryPolicy
from repro.stream.clock import SimulatedClock
from repro.stream.feed import Batch, ReplayFeed


@dataclass(slots=True)
class ShiftUpdate:
    """The monitor's per-tick output."""

    tick: int
    clock_seconds: float
    hours_seen: int
    energy: float
    n_flows: int
    main_flow: FlowArrow | None


class OnlineShiftMonitor:
    """Rolling two-window shift estimator.

    Parameters
    ----------
    positions:
        ``(n, 2)`` customer (lon, lat), fixed for the stream's lifetime.
    spec:
        Evaluation grid shared by every emitted field.
    window_hours:
        Width ``W`` of each of the two rolling windows.
    bandwidth_m:
        KDE bandwidth; Silverman's rule per emission when omitted.
    """

    def __init__(
        self,
        positions: np.ndarray,
        spec: GridSpec,
        window_hours: int = 4,
        bandwidth_m: float | None = None,
    ) -> None:
        positions = np.asarray(positions, dtype=np.float64)
        if positions.ndim != 2 or positions.shape[1] != 2:
            raise ValueError(f"positions must be (n, 2), got {positions.shape}")
        if window_hours < 1:
            raise ValueError(f"window_hours must be >= 1, got {window_hours}")
        self.positions = positions
        self.spec = spec
        self.window_hours = window_hours
        self.bandwidth_m = bandwidth_m
        n = positions.shape[0]
        # Ring buffer of the last 2W hourly columns (NaN → 0 contribution).
        self._ring = np.zeros((2 * window_hours, n))
        self._filled = 0
        self._cursor = 0
        self.hours_seen = 0

    def feed_hour(self, values: np.ndarray) -> None:
        """Push one hourly column of readings.

        Raises
        ------
        ValueError
            If the column length disagrees with the position count.
        """
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (self.positions.shape[0],):
            raise ValueError(
                f"expected {self.positions.shape[0]} readings, got {values.shape}"
            )
        self._ring[self._cursor] = np.where(np.isfinite(values), values, 0.0)
        self._cursor = (self._cursor + 1) % self._ring.shape[0]
        self._filled = min(self._filled + 1, self._ring.shape[0])
        self.hours_seen += 1

    def feed_batch(self, batch: Batch) -> None:
        """Push every hourly column of a feed batch, oldest first."""
        for col in range(batch.values.shape[1]):
            self.feed_hour(batch.values[:, col])

    @property
    def ready(self) -> bool:
        """Whether both windows are fully populated."""
        return self._filled >= 2 * self.window_hours

    def _window_means(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-customer mean demand of (t1, t2) = (older, newer) windows."""
        w = self.window_hours
        # Reconstruct chronological order from the ring.
        if self._filled < self._ring.shape[0]:
            chronological = self._ring[: self._filled]
        else:
            chronological = np.vstack(
                [self._ring[self._cursor :], self._ring[: self._cursor]]
            )
        older = chronological[-2 * w : -w]
        newer = chronological[-w:]
        return older.mean(axis=0), newer.mean(axis=0)

    def current_field(self) -> ShiftField:
        """The Eq. 4 field between the two rolling windows.

        Raises
        ------
        RuntimeError
            If called before both windows are populated (check ``ready``).
        """
        if not self.ready:
            raise RuntimeError(
                f"monitor needs {2 * self.window_hours} hours before the "
                f"first field; has {self._filled}"
            )
        demand_t1, demand_t2 = self._window_means()
        before = kde_density(
            self.positions, demand_t1, self.spec, bandwidth_m=self.bandwidth_m
        )
        after = kde_density(
            self.positions, demand_t2, self.spec, bandwidth_m=self.bandwidth_m
        )
        return ShiftField.between(before, after)


def run_replay(
    feed: ReplayFeed,
    positions: np.ndarray,
    spec: GridSpec,
    window_hours: int = 4,
    clock: SimulatedClock | None = None,
    max_ticks: int | None = None,
    bandwidth_m: float | None = None,
    retry: RetryPolicy | None = None,
) -> list[ShiftUpdate]:
    """Run a replay end to end; one :class:`ShiftUpdate` per ready tick.

    ``max_ticks`` caps the replay for benchmarking; the simulated clock
    advances one tick per batch, so ``clock_seconds`` reports the wall time
    the paper's 10-second feed would have taken.

    ``retry`` additionally guards the per-tick KDE field computation
    (the ``kernel.kde`` fault site) so a chaos run completes end to end;
    the feed's own tick production retries under the feed's policy.
    """
    clock = clock or SimulatedClock()
    monitor = OnlineShiftMonitor(
        positions, spec, window_hours=window_hours, bandwidth_m=bandwidth_m
    )
    updates: list[ShiftUpdate] = []
    for batch in feed:
        if max_ticks is not None and batch.tick >= max_ticks:
            break
        monitor.feed_batch(batch)
        clock.tick()
        if not monitor.ready:
            continue
        if retry is None:
            field = monitor.current_field()
        else:
            field = retry.call(monitor.current_field, site="stream.field")
        flows = major_flows(field)
        updates.append(
            ShiftUpdate(
                tick=batch.tick,
                clock_seconds=clock.now,
                hours_seen=monitor.hours_seen,
                energy=field.energy(),
                n_flows=len(flows),
                main_flow=flows[0] if flows else None,
            )
        )
    return updates
