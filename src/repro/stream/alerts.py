"""Alerting on unusual demand shifts during the live replay.

The operational payoff of near-real-time monitoring: notify the planner
when the current shift field is abnormally energetic — a mass-mobility
event, a district outage, a heat wave hitting cooling load.  The detector
keeps a running mean/variance of per-tick shift energy (Welford's
algorithm, O(1) memory) and raises an alert when a tick exceeds
``mean + threshold_sigma * std`` after a warm-up period.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.stream.online import ShiftUpdate


@dataclass(frozen=True, slots=True)
class Alert:
    """One raised alert."""

    tick: int
    energy: float
    zscore: float
    message: str


class ShiftAlertMonitor:
    """Streaming anomaly detector over shift-field energy.

    Parameters
    ----------
    threshold_sigma:
        How many running standard deviations above the mean a tick must be
        to alert.
    warmup_ticks:
        Observations consumed before alerts may fire (the baseline must be
        established first).
    """

    def __init__(self, threshold_sigma: float = 3.0, warmup_ticks: int = 12) -> None:
        if threshold_sigma <= 0:
            raise ValueError(
                f"threshold_sigma must be positive, got {threshold_sigma}"
            )
        if warmup_ticks < 2:
            raise ValueError(f"warmup_ticks must be >= 2, got {warmup_ticks}")
        self.threshold_sigma = threshold_sigma
        self.warmup_ticks = warmup_ticks
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.alerts: list[Alert] = []

    @property
    def count(self) -> int:
        """Ticks observed so far."""
        return self._count

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def std(self) -> float:
        if self._count < 2:
            return 0.0
        return float(np.sqrt(self._m2 / (self._count - 1)))

    def observe(self, update: ShiftUpdate) -> Alert | None:
        """Feed one replay update; returns an alert if it fired.

        The anomalous observation is *not* absorbed into the baseline, so a
        sustained event keeps alerting instead of normalising itself.
        """
        energy = float(update.energy)
        if not np.isfinite(energy):
            raise ValueError(f"update energy must be finite, got {energy}")
        std = self.std
        if self._count >= self.warmup_ticks and std > 0:
            zscore = (energy - self._mean) / std
            if zscore > self.threshold_sigma:
                alert = Alert(
                    tick=update.tick,
                    energy=energy,
                    zscore=float(zscore),
                    message=(
                        f"shift energy {energy:.3e} is {zscore:.1f} sigma "
                        f"above the baseline {self._mean:.3e}"
                    ),
                )
                self.alerts.append(alert)
                obs.log_event(
                    "stream.alert",
                    level="warning",
                    tick=alert.tick,
                    energy=alert.energy,
                    zscore=round(alert.zscore, 3),
                    message=alert.message,
                )
                return alert
        # Welford update (only for non-alerting observations).
        self._count += 1
        delta = energy - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (energy - self._mean)
        return None

    def observe_all(self, updates: list[ShiftUpdate]) -> list[Alert]:
        """Feed a whole replay; returns the alerts raised."""
        fired = []
        for update in updates:
            alert = self.observe(update)
            if alert is not None:
                fired.append(alert)
        return fired
