"""Alerting: shift-anomaly detection and durable alert delivery.

Two halves:

- :class:`ShiftAlertMonitor` — the detector.  The operational payoff of
  near-real-time monitoring: notify the planner when the current shift
  field is abnormally energetic — a mass-mobility event, a district
  outage, a heat wave hitting cooling load.  It keeps a running
  mean/variance of per-tick shift energy (Welford's algorithm, O(1)
  memory) and raises an alert when a tick exceeds
  ``mean + threshold_sigma * std`` after a warm-up period.
- Alert *sinks* and the :class:`AlertDispatcher` — the delivery.  Any
  producer of alert dicts (the shift monitor, the SLO burn-rate engine
  in :mod:`repro.obs.slo`) hands them to a dispatcher, which fans out to
  every configured sink with :mod:`repro.resilience` retry per sink.  A
  sink that stays down after the retries exhausts lands the alert in the
  dead-letter list instead of being silently lost.
"""

from __future__ import annotations

import json
import threading
import urllib.request
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.resilience.retry import RetryExhausted, RetryPolicy
from repro.stream.online import ShiftUpdate


@dataclass(frozen=True, slots=True)
class Alert:
    """One raised alert."""

    tick: int
    energy: float
    zscore: float
    message: str


class ShiftAlertMonitor:
    """Streaming anomaly detector over shift-field energy.

    Parameters
    ----------
    threshold_sigma:
        How many running standard deviations above the mean a tick must be
        to alert.
    warmup_ticks:
        Observations consumed before alerts may fire (the baseline must be
        established first).
    """

    def __init__(self, threshold_sigma: float = 3.0, warmup_ticks: int = 12) -> None:
        if threshold_sigma <= 0:
            raise ValueError(
                f"threshold_sigma must be positive, got {threshold_sigma}"
            )
        if warmup_ticks < 2:
            raise ValueError(f"warmup_ticks must be >= 2, got {warmup_ticks}")
        self.threshold_sigma = threshold_sigma
        self.warmup_ticks = warmup_ticks
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.alerts: list[Alert] = []

    @property
    def count(self) -> int:
        """Ticks observed so far."""
        return self._count

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def std(self) -> float:
        if self._count < 2:
            return 0.0
        return float(np.sqrt(self._m2 / (self._count - 1)))

    def observe(self, update: ShiftUpdate) -> Alert | None:
        """Feed one replay update; returns an alert if it fired.

        The anomalous observation is *not* absorbed into the baseline, so a
        sustained event keeps alerting instead of normalising itself.
        """
        energy = float(update.energy)
        if not np.isfinite(energy):
            raise ValueError(f"update energy must be finite, got {energy}")
        std = self.std
        if self._count >= self.warmup_ticks and std > 0:
            zscore = (energy - self._mean) / std
            if zscore > self.threshold_sigma:
                alert = Alert(
                    tick=update.tick,
                    energy=energy,
                    zscore=float(zscore),
                    message=(
                        f"shift energy {energy:.3e} is {zscore:.1f} sigma "
                        f"above the baseline {self._mean:.3e}"
                    ),
                )
                self.alerts.append(alert)
                obs.log_event(
                    "stream.alert",
                    level="warning",
                    tick=alert.tick,
                    energy=alert.energy,
                    zscore=round(alert.zscore, 3),
                    message=alert.message,
                )
                return alert
        # Welford update (only for non-alerting observations).
        self._count += 1
        delta = energy - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (energy - self._mean)
        return None

    def observe_all(self, updates: list[ShiftUpdate]) -> list[Alert]:
        """Feed a whole replay; returns the alerts raised."""
        fired = []
        for update in updates:
            alert = self.observe(update)
            if alert is not None:
                fired.append(alert)
        return fired


# ----------------------------------------------------------------------
# delivery: sinks + dispatcher
# ----------------------------------------------------------------------
class LogSink:
    """Delivers alerts as structured warning log records."""

    name = "log"

    def deliver(self, alert: dict) -> None:
        obs.log_event("alert.delivered", level="warning", **alert)


class MemorySink:
    """Retains delivered alerts in memory (tests, the telemetry API)."""

    name = "memory"

    def __init__(self, capacity: int = 128) -> None:
        self.capacity = capacity
        self._lock = threading.Lock()
        self._alerts: list[dict] = []

    def deliver(self, alert: dict) -> None:
        with self._lock:
            self._alerts.append(dict(alert))
            if len(self._alerts) > self.capacity:
                del self._alerts[: -self.capacity]

    def alerts(self) -> list[dict]:
        with self._lock:
            return [dict(a) for a in self._alerts]

    def __len__(self) -> int:
        with self._lock:
            return len(self._alerts)


class WebhookSink:
    """POSTs each alert as JSON to an HTTP endpoint.

    Failures surface as :class:`OSError` (urllib's network errors are
    OSError subclasses), which the dispatcher's retry policy treats as
    transient.
    """

    name = "webhook"

    def __init__(self, url: str, timeout: float = 5.0) -> None:
        self.url = url
        self.timeout = timeout

    def deliver(self, alert: dict) -> None:
        body = json.dumps(alert).encode("utf-8")
        request = urllib.request.Request(
            self.url,
            data=body,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=self.timeout):
            pass


class AlertDispatcher:
    """Fans alert dicts out to sinks with per-sink retry.

    Each sink gets its own retry loop (default: the stock
    :class:`~repro.resilience.retry.RetryPolicy` — 4 attempts, full
    jitter), so one flapping webhook neither blocks nor fails delivery
    to the others.  Alerts whose retries exhaust land in
    :attr:`dead_letters` and increment
    ``alerts_dead_lettered_total{sink=...}``; successes increment
    ``alerts_delivered_total{sink=...}``.
    """

    def __init__(
        self,
        sinks: list[object] | None = None,
        retry: RetryPolicy | None = None,
        metrics: obs.MetricsRegistry | None = None,
        max_dead_letters: int = 128,
    ) -> None:
        self.sinks = list(sinks) if sinks is not None else [LogSink()]
        self.retry = retry if retry is not None else RetryPolicy()
        self._metrics = metrics
        self.max_dead_letters = max_dead_letters
        self._lock = threading.Lock()
        self.dead_letters: list[dict] = []

    def _registry(self) -> obs.MetricsRegistry:
        return self._metrics if self._metrics is not None else obs.get_registry()

    def dispatch(self, alert: dict) -> int:
        """Deliver one alert to every sink; returns sinks reached.

        Never raises: delivery failure is an operational event (logged,
        counted, dead-lettered), not an error for the code path that
        detected the condition being alerted on.
        """
        delivered = 0
        for sink in self.sinks:
            sink_name = getattr(sink, "name", type(sink).__name__)
            try:
                self.retry.call(
                    lambda s=sink: s.deliver(alert),
                    site=f"alert.{sink_name}",
                )
            except RetryExhausted as exc:
                self._registry().counter(
                    "alerts_dead_lettered_total", sink=sink_name
                ).inc()
                obs.log_event(
                    "alert.dead_letter",
                    level="error",
                    sink=sink_name,
                    attempts=exc.attempts,
                    alert_type=alert.get("type"),
                )
                with self._lock:
                    self.dead_letters.append(
                        {"sink": sink_name, "alert": dict(alert)}
                    )
                    if len(self.dead_letters) > self.max_dead_letters:
                        del self.dead_letters[: -self.max_dead_letters]
            except Exception:
                # Non-retryable sink bug: count it, keep going.
                self._registry().counter(
                    "alerts_dead_lettered_total", sink=sink_name
                ).inc()
                obs.log_event(
                    "alert.sink_error",
                    level="error",
                    sink=sink_name,
                    alert_type=alert.get("type"),
                )
            else:
                delivered += 1
                self._registry().counter(
                    "alerts_delivered_total", sink=sink_name
                ).inc()
        return delivered
