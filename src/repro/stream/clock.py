"""Simulated wall clock for the replay.

Real sleeping would make the demo scenario untestable; the clock instead
records logical time that advances only when told to, while still keeping
the 10-second-tick vocabulary of the paper's narration.

The clock also reports its progress to the observability layer — a
``stream_ticks_total`` counter, a ``stream_clock_seconds`` gauge and a
``stream_tick`` rolling-window series — so a dashboard (``GET
/api/metrics`` or ``GET /api/telemetry``) can show how far a replay has
run.
"""

from __future__ import annotations

from repro import obs


class SimulatedClock:
    """Logical seconds-since-start clock.

    Parameters
    ----------
    tick_seconds:
        How much wall time one replay tick represents (the paper's example
        is 10 seconds).
    metrics:
        Registry receiving tick metrics; the process-wide default
        registry when omitted.
    """

    def __init__(
        self,
        tick_seconds: float = 10.0,
        metrics: obs.MetricsRegistry | None = None,
    ) -> None:
        if tick_seconds <= 0:
            raise ValueError(f"tick_seconds must be positive, got {tick_seconds}")
        self.tick_seconds = tick_seconds
        self._metrics = metrics
        self._now = 0.0
        self._ticks = 0

    @property
    def metrics(self) -> obs.MetricsRegistry:
        """This clock's registry (the process default unless injected)."""
        return self._metrics if self._metrics is not None else obs.get_registry()

    @property
    def now(self) -> float:
        """Seconds since the replay started."""
        return self._now

    @property
    def ticks(self) -> int:
        """Number of completed ticks."""
        return self._ticks

    def tick(self) -> float:
        """Advance by one tick; returns the new time."""
        self._ticks += 1
        self._now += self.tick_seconds
        registry = self.metrics
        registry.counter("stream_ticks_total").inc()
        registry.gauge("stream_clock_seconds").set(self._now)
        # Ticks also land in the rolling window store so /api/telemetry
        # can show replay progress alongside request traffic.
        obs.get_window_store().record("stream_tick")
        return self._now

    def advance(self, seconds: float) -> float:
        """Advance by an arbitrary non-negative amount (partial ticks).

        Raises
        ------
        ValueError
            For negative amounts (the clock never rewinds).
        """
        if seconds < 0:
            raise ValueError(f"cannot rewind the clock by {seconds}")
        self._now += seconds
        self.metrics.gauge("stream_clock_seconds").set(self._now)
        return self._now
