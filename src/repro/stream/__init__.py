"""Near-real-time replay (demo S2, step 3).

"If the data are fed to the system in a short time interval, e.g. every 10
seconds, we can observe the changes of patterns in near real time."  The
replay is simulated: a :class:`~repro.stream.clock.SimulatedClock` advances
by configured ticks (no real sleeping, so tests are instant), a
:class:`~repro.stream.feed.ReplayFeed` delivers each tick's batch of hourly
readings, and an :class:`~repro.stream.online.OnlineShiftMonitor` maintains
rolling demand windows and emits an updated shift field per tick.
"""

from repro.stream.alerts import Alert, ShiftAlertMonitor
from repro.stream.clock import SimulatedClock
from repro.stream.feed import Batch, ReplayFeed
from repro.stream.online import OnlineShiftMonitor, ShiftUpdate, run_replay
from repro.stream.routing import ShardRouter, shard_feed

__all__ = [
    "Alert",
    "Batch",
    "ShardRouter",
    "ShiftAlertMonitor",
    "OnlineShiftMonitor",
    "ReplayFeed",
    "ShiftUpdate",
    "SimulatedClock",
    "run_replay",
    "shard_feed",
]
