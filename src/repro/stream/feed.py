"""Replay feed: historical readings delivered tick by tick.

Each tick carries ``hours_per_tick`` consecutive hourly columns of the
source :class:`~repro.data.timeseries.SeriesSet` — the simulated equivalent
of meters reporting in near real time.

Resilience: batch values are **read-only views** of the source matrix
(a consumer writing through a batch would otherwise silently corrupt
the database it replays from), each tick declares the ``stream.tick``
fault-injection site, and tick production retries transient faults
under a :class:`~repro.resilience.retry.RetryPolicy` — so a replay run
survives an imperfect feed instead of dying mid-stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.data.timeseries import SeriesSet
from repro.resilience.faults import fault_point
from repro.resilience.retry import DEFAULT_POLICY, RetryPolicy


@dataclass(slots=True)
class Batch:
    """One tick's worth of readings.

    Attributes
    ----------
    tick:
        0-based tick index.
    start_hour:
        First hour offset covered by this batch.
    values:
        ``(n_customers, hours_in_batch)`` readings (NaN = missing),
        read-only.
    """

    tick: int
    start_hour: int
    values: np.ndarray

    @property
    def n_hours(self) -> int:
        return int(self.values.shape[1])

    @property
    def end_hour(self) -> int:
        return self.start_hour + self.n_hours

    @property
    def n_nonfinite(self) -> int:
        """Readings in this batch that are NaN/inf.  Streaming consumers
        coerce these to zero demand; the count lets them account for the
        coercion (``stream_nonfinite_dropped_total``) instead of
        swallowing it silently."""
        return int((~np.isfinite(self.values)).sum())


class ReplayFeed:
    """Iterator over the batches of a historical data set.

    Parameters
    ----------
    series_set:
        Source readings; customers stay fixed, time advances.
    hours_per_tick:
        How many hourly columns each tick delivers.
    retry:
        Policy absorbing transient per-tick faults (the ``stream.tick``
        injection site); pass ``None`` to propagate the first fault.
    """

    def __init__(
        self,
        series_set: SeriesSet,
        hours_per_tick: int = 1,
        retry: RetryPolicy | None = DEFAULT_POLICY,
    ) -> None:
        if hours_per_tick < 1:
            raise ValueError(
                f"hours_per_tick must be >= 1, got {hours_per_tick}"
            )
        self.series_set = series_set
        self.hours_per_tick = hours_per_tick
        self.retry = retry

    @property
    def n_ticks(self) -> int:
        """Total batches the feed will deliver."""
        steps = self.series_set.n_steps
        return (steps + self.hours_per_tick - 1) // self.hours_per_tick

    def batch(self, tick: int) -> Batch:
        """Produce one tick's batch (fault-injectable, no retry).

        Raises
        ------
        IndexError
            For a tick outside ``[0, n_ticks)``.
        """
        if not 0 <= tick < self.n_ticks:
            raise IndexError(f"tick must be in [0, {self.n_ticks}), got {tick}")
        fault_point("stream.tick")
        a = tick * self.hours_per_tick
        b = min(a + self.hours_per_tick, self.series_set.n_steps)
        # A fresh view per batch: consumers get zero-copy access but
        # cannot write through it into the source matrix.
        values = self.series_set.matrix[:, a:b].view()
        values.flags.writeable = False
        return Batch(
            tick=tick,
            start_hour=self.series_set.start_hour + a,
            values=values,
        )

    def __iter__(self) -> Iterator[Batch]:
        for tick in range(self.n_ticks):
            if self.retry is None:
                yield self.batch(tick)
            else:
                yield self.retry.call(
                    lambda t=tick: self.batch(t), site="stream.tick"
                )
