"""Replay feed: historical readings delivered tick by tick.

Each tick carries ``hours_per_tick`` consecutive hourly columns of the
source :class:`~repro.data.timeseries.SeriesSet` — the simulated equivalent
of meters reporting in near real time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.data.timeseries import SeriesSet


@dataclass(slots=True)
class Batch:
    """One tick's worth of readings.

    Attributes
    ----------
    tick:
        0-based tick index.
    start_hour:
        First hour offset covered by this batch.
    values:
        ``(n_customers, hours_in_batch)`` readings (NaN = missing).
    """

    tick: int
    start_hour: int
    values: np.ndarray

    @property
    def n_hours(self) -> int:
        return int(self.values.shape[1])

    @property
    def end_hour(self) -> int:
        return self.start_hour + self.n_hours


class ReplayFeed:
    """Iterator over the batches of a historical data set.

    Parameters
    ----------
    series_set:
        Source readings; customers stay fixed, time advances.
    hours_per_tick:
        How many hourly columns each tick delivers.
    """

    def __init__(self, series_set: SeriesSet, hours_per_tick: int = 1) -> None:
        if hours_per_tick < 1:
            raise ValueError(
                f"hours_per_tick must be >= 1, got {hours_per_tick}"
            )
        self.series_set = series_set
        self.hours_per_tick = hours_per_tick

    @property
    def n_ticks(self) -> int:
        """Total batches the feed will deliver."""
        steps = self.series_set.n_steps
        return (steps + self.hours_per_tick - 1) // self.hours_per_tick

    def __iter__(self) -> Iterator[Batch]:
        matrix = self.series_set.matrix
        start = self.series_set.start_hour
        for tick in range(self.n_ticks):
            a = tick * self.hours_per_tick
            b = min(a + self.hours_per_tick, self.series_set.n_steps)
            yield Batch(
                tick=tick,
                start_hour=start + a,
                values=matrix[:, a:b],
            )
