"""Shard-aware routing of replay batches into the data plane.

A :class:`~repro.stream.feed.ReplayFeed` delivers batches whose rows are
aligned to the feed's customer order; this module turns those batches
into database writes.  Against a
:class:`~repro.db.sharding.ShardedEnergyDatabase` each batch is split by
:func:`~repro.db.sharding.shard_of` and appended under the owning shards'
locks — so two feeds covering disjoint shard sets write fully in
parallel, which is exactly what the concurrency stress test measures.

:func:`shard_feed` carves a per-shard sub-feed out of a source series so
independent writer threads can each replay one shard's customers.

A router can also carry a :class:`~repro.rollup.store.RollupStore`: every
applied batch is then folded into the materialized rollups in the same
call, so the derived tables never trail the database by more than the
in-flight tick — the "maintained incrementally by stream ticks" half of
the rollup layer.
Per-shard routers sharing one store work too: the store's per-customer
watermarks let disjoint row subsets advance independently.
"""

from __future__ import annotations

from typing import Sequence

from repro import obs
from repro.data.timeseries import SeriesSet
from repro.db.engine import EnergyDatabase
from repro.db.sharding import ShardedEnergyDatabase, shard_of
from repro.rollup.store import RollupStore
from repro.stream.feed import Batch, ReplayFeed


class ShardRouter:
    """Applies replay batches to a database, sharded or not.

    Parameters
    ----------
    db:
        Target database.  A sharded one splits each batch by owning
        shard; a single-shard engine takes the batch whole.
    customer_ids:
        The batch row order (usually ``feed.series_set.customer_ids``).
    rollups:
        Optional rollup store maintained alongside the database: each
        applied batch updates the derived demand tables (and any warm
        kernel grids) incrementally, for this router's customer subset.
    """

    def __init__(
        self,
        db: EnergyDatabase | ShardedEnergyDatabase,
        customer_ids: Sequence[int],
        rollups: RollupStore | None = None,
    ) -> None:
        self.db = db
        self.customer_ids = [int(cid) for cid in customer_ids]
        self.rollups = rollups

    def apply(self, batch: Batch) -> int:
        """Ingest one batch; returns the database's new end hour."""
        with obs.span(
            "stream.tick",
            start_hour=batch.start_hour,
            rows=len(self.customer_ids),
        ):
            if isinstance(self.db, ShardedEnergyDatabase):
                end = self.db.ingest_tick(
                    self.customer_ids, batch.values, batch.start_hour
                )
            else:
                end = self.db.ingest_hours(
                    batch.values,
                    batch.start_hour,
                    customer_ids=self.customer_ids,
                )
            if self.rollups is not None:
                self.rollups.apply_batch(
                    batch, customer_ids=self.customer_ids
                )
            return end

    def replay(self, feed: ReplayFeed, max_ticks: int | None = None) -> int:
        """Apply consecutive batches from a feed; returns ticks applied."""
        applied = 0
        for batch in feed:
            if max_ticks is not None and applied >= max_ticks:
                break
            self.apply(batch)
            applied += 1
        return applied


def shard_feed(
    series: SeriesSet,
    shard_id: int,
    n_shards: int,
    hours_per_tick: int = 1,
) -> ReplayFeed | None:
    """A replay feed covering only one shard's customers.

    Returns ``None`` when the shard owns no customers of this series
    (hash gaps happen at small populations).  Each writer thread in a
    sharded deployment replays its own shard feed, so ingestion
    parallelises across shard locks.
    """
    members = [
        int(cid)
        for cid in series.customer_ids
        if shard_of(int(cid), n_shards) == shard_id
    ]
    if not members:
        return None
    return ReplayFeed(
        series.select_customers(members), hours_per_tick=hours_per_tick
    )
