"""Materialized rollup layer: derived demand tables + additive KDE grids.

The derived-table layer ROADMAP item 2 calls for.  A
:class:`~repro.rollup.store.RollupStore` holds, per S2 granularity, the
per-customer demand partials (NaN-aware sums and observed-hour counts per
epoch-aligned bucket) and lazily materialized *kernel-sum grids* — the
unnormalised additive part of the paper's Eq. 3 KDE.  Stream ticks
maintain both incrementally (each fed hour adds its kernel contributions;
periodic refolds from the demand partials bound float drift), so any
granularity/quantile sweep is answered from the rollups in O(cells),
independent of how many raw readings exist.
"""

from repro.rollup.kde import KdeAccumulator
from repro.rollup.store import BucketRollup, RollupMiss, RollupStore

__all__ = [
    "BucketRollup",
    "KdeAccumulator",
    "RollupMiss",
    "RollupStore",
]
