"""Additive KDE evaluation for the rollup layer.

The paper's Eq. 3 density is a *sum of per-point kernels*:

    f(x) = (1/n) * sum_i c_i * K_h(x - x_i)
         = S(x) / (total * 2 * pi * h^2)

where ``S(x) = sum_i v_i * exp(-|x - x_i|^2 / 2h^2)`` is the raw
(unnormalised) kernel sum and ``total = sum_i v_i`` — because the
:func:`~repro.core.shift.kde.normalize_weights` rescale ``c_i = v_i * n /
total`` cancels ``n`` against the ``1/n`` prefactor.  ``S`` and ``total``
are **additive over points and over hours**: a stream tick can add one
hour's kernel contributions to an accumulated grid instead of recomputing
the whole KDE, and per-shard partial grids merge by addition.

:class:`KdeAccumulator` pins positions, grid and bandwidth once and
precomputes the separable Gaussian factor matrices (the same ``fx``/``fy``
factorisation as :func:`~repro.core.shift.kde._exact_values`), so

- one hour's kernel-sum grid costs a single ``(ny, n) @ (n, nx)`` matmul,
- normalising an accumulated grid into a density costs O(cells),
- and :meth:`field_from_weights` reproduces
  :func:`~repro.core.shift.kde.kde_density`'s exact engine operation for
  operation — the oracle the replay-equivalence suite pins against.
"""

from __future__ import annotations

import numpy as np

from repro.core.shift.grids import DensityGrid, GridSpec
from repro.core.shift.kde import (
    bandwidth_silverman,
    normalize_weights,
    planar_frame,
)

__all__ = ["KdeAccumulator"]


class KdeAccumulator:
    """Pinned-kernel evaluator over a fixed point set and grid.

    Parameters
    ----------
    positions:
        ``(n, 2)`` customer (lon, lat), fixed for the accumulator's
        lifetime.
    spec:
        Evaluation grid shared by every produced field.
    bandwidth_m:
        Gaussian bandwidth in metres; Silverman's rule over the *full*
        point set when omitted — resolved once here, never per call
        (Silverman depends only on positions, so pinning it is exact for
        a fixed point set).
    """

    def __init__(
        self,
        positions: np.ndarray,
        spec: GridSpec,
        bandwidth_m: float | None = None,
    ) -> None:
        positions = np.asarray(positions, dtype=np.float64)
        if positions.ndim != 2 or positions.shape[1] != 2:
            raise ValueError(f"positions must be (n, 2), got {positions.shape}")
        n = positions.shape[0]
        if n == 0:
            raise ValueError("cannot build a KDE accumulator over zero points")
        self.spec = spec
        self.n = n
        self._px, self._py, self._gx, self._gy = planar_frame(positions, spec)
        if bandwidth_m is None:
            bandwidth_m = bandwidth_silverman(
                np.column_stack([self._px, self._py])
            )
        else:
            bandwidth_m = float(bandwidth_m)
        if not np.isfinite(bandwidth_m) or bandwidth_m <= 0:
            raise ValueError(
                f"bandwidth_m must be a positive finite number, got {bandwidth_m}"
            )
        self.bandwidth_m = bandwidth_m
        inv = 1.0 / (2.0 * bandwidth_m**2)
        self._fx = np.exp(-inv * (self._gx[:, None] - self._px[None, :]) ** 2)
        self._fy = np.exp(-inv * (self._gy[:, None] - self._py[None, :]) ** 2)
        # The uniform-weights fallback surface: sum_i K_i, unnormalised.
        self._unit_grid = self._fy @ self._fx.T

    # ------------------------------------------------------------------
    # additive pieces
    # ------------------------------------------------------------------
    def grid(self, values: np.ndarray) -> np.ndarray:
        """Raw kernel sum ``S = sum_i values_i * K_i`` as a ``(ny, nx)``
        array.

        Additive: ``grid(a) + grid(b)`` equals ``grid(a + b)`` up to float
        rounding — the invariant incremental maintenance and shard-partial
        merges rely on.
        """
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (self.n,):
            raise ValueError(
                f"expected {self.n} values, got shape {values.shape}"
            )
        return (self._fy * values[None, :]) @ self._fx.T

    def field(self, grid: np.ndarray, total: float) -> DensityGrid:
        """Normalise an accumulated kernel sum into an Eq. 3 density.

        ``total`` must be the sum of the (non-negative) weights folded into
        ``grid``.  A non-positive or non-finite total falls back to the
        uniform-weights surface, mirroring
        :func:`~repro.core.shift.kde.normalize_weights`.
        """
        total = float(total)
        h2 = self.bandwidth_m**2
        if np.isfinite(total) and total > 0.0:
            with np.errstate(over="ignore", divide="ignore", invalid="ignore"):
                values = grid / (total * 2.0 * np.pi * h2)
            if np.isfinite(values).all():
                return DensityGrid(spec=self.spec, values=values)
        values = self._unit_grid * (1.0 / (self.n * 2.0 * np.pi * h2))
        return DensityGrid(spec=self.spec, values=values)

    # ------------------------------------------------------------------
    # exact per-weight evaluation (the batch oracle, cached factors)
    # ------------------------------------------------------------------
    def field_from_weights(
        self,
        weights: np.ndarray,
        rows: np.ndarray | None = None,
        bandwidth_m: float | None = None,
    ) -> DensityGrid:
        """Eq. 3 for explicit per-customer weights, optionally a subset.

        Replicates :func:`~repro.core.shift.kde.kde_density`'s exact
        engine step by step (normalisation, factor matrices, matmul,
        prefactor) so the result matches the batch path to float
        reassociation error.  ``rows`` restricts the evaluation to a
        customer subset (quantile sweeps); ``bandwidth_m=None`` applies
        Silverman's rule *over that subset*, exactly as the batch sweep
        would.

        Raises
        ------
        ValueError
            For NaN/inf weights (mirroring ``kde_density``), a weight
            count mismatching the subset, or a subset of fewer than one
            point.
        """
        if rows is None:
            px, py = self._px, self._py
        else:
            rows = np.asarray(rows, dtype=np.int64)
            px, py = self._px[rows], self._py[rows]
        m = px.shape[0]
        if m == 0:
            raise ValueError("cannot estimate a density from zero points")
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (m,):
            raise ValueError(
                f"weights shape {weights.shape} does not match {m} positions"
            )
        if not np.isfinite(weights).all():
            raise ValueError("weights contain NaN/inf")
        c = normalize_weights(weights)
        if bandwidth_m is None:
            bandwidth_m = bandwidth_silverman(np.column_stack([px, py]))
        else:
            bandwidth_m = float(bandwidth_m)
        if not np.isfinite(bandwidth_m) or bandwidth_m <= 0:
            raise ValueError(
                f"bandwidth_m must be a positive finite number, got {bandwidth_m}"
            )
        if bandwidth_m == self.bandwidth_m:
            fx = self._fx if rows is None else np.ascontiguousarray(
                self._fx[:, rows]
            )
            fy = self._fy if rows is None else np.ascontiguousarray(
                self._fy[:, rows]
            )
        else:
            inv = 1.0 / (2.0 * bandwidth_m**2)
            fx = np.exp(-inv * (self._gx[:, None] - px[None, :]) ** 2)
            fy = np.exp(-inv * (self._gy[:, None] - py[None, :]) ** 2)
        norm = 1.0 / (m * 2.0 * np.pi * bandwidth_m**2)
        values = norm * (fy * c[None, :]) @ fx.T
        return DensityGrid(spec=self.spec, values=values)
