"""The materialized rollup store: demand tables + incremental KDE grids.

One :class:`RollupStore` covers one fixed customer population on one
evaluation grid.  Per tracked S2 resolution it keeps a *derived table* of
:class:`BucketRollup` rows, each holding

- the **demand rollup**: per-customer NaN-aware sums and observed-hour
  counts over the bucket (additive, exact integers of hours), and
- a lazily materialized **kernel-sum grid**: the additive, unnormalised
  part of the Eq. 3 KDE over the bucket's demand (see
  :mod:`repro.rollup.kde`).

Maintenance is incremental: :meth:`RollupStore.apply_hours` folds each fed
hour into every resolution's open bucket — sums/counts always, and for
buckets whose grid is already materialized, one shared hour-grid matmul
added in place ("each fed hour adds its kernel contributions").  Because
float addition drifts, every ``refold_every`` folded hours a bucket's grid
is **refolded** — recomputed exactly from its demand rollup — which bounds
the drift the replay-equivalence suite pins.

Queries never touch raw readings: a warm granularity/quantile sweep is
answered in O(cells) per field, independent of ``n_readings``.  Cold
buckets materialize their grid from the demand rollup in O(n·cells) once.

Exactness fallback: the O(cells) fast path requires the bucket's
per-customer observation counts to be uniform (then the count cancels out
of the normalised density) and its demand non-negative (then the batch
path's clipping is a no-op).  Buckets with missing readings or negative
demand fall back to :meth:`~repro.rollup.kde.KdeAccumulator
.field_from_weights` — still O(n·cells), still independent of
``n_readings``, and matching the batch path to float tolerance.

Shard routing: per-customer ``applied_through`` watermarks let per-shard
sub-feeds apply the same hour range for disjoint customer subsets without
double counting; staleness is the lag between the slowest watermark and
the source database's end hour.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.core.shift.grids import DensityGrid, GridSpec
from repro.data.timeseries import (
    ALL_RESOLUTIONS,
    HourWindow,
    Resolution,
    SeriesSet,
)
from repro.preprocess.resample import BucketPartials, bucket_partials
from repro.rollup.kde import KdeAccumulator

__all__ = ["BucketRollup", "RollupMiss", "RollupStore"]

#: Refold a bucket's kernel grid after this many incremental hour adds.
DEFAULT_REFOLD_EVERY = 168


class RollupMiss(LookupError):
    """A query needs data the rollup store does not (yet) materialize."""


@dataclass(slots=True)
class BucketRollup:
    """One derived-table row: a bucket's demand rollup + kernel grid.

    ``sums``/``counts`` are the always-maintained demand rollup;
    ``kernel_grid`` is the lazily built, incrementally maintained raw
    kernel sum ``sum_i sums_i * K_i`` (``None`` until first queried).
    """

    bucket: int
    start_hour: int
    end_hour: int
    sums: np.ndarray
    counts: np.ndarray
    has_negative: bool = False
    kernel_grid: np.ndarray | None = None
    hours_since_refold: int = 0

    @property
    def uniform_counts(self) -> bool:
        """Whether every customer has the same observation count — the
        condition under which counts cancel out of the normalised KDE."""
        return float(self.counts.min()) == float(self.counts.max())


class RollupStore:
    """Per-granularity demand rollups + additive KDE grid accumulators.

    Parameters
    ----------
    positions:
        ``(n, 2)`` customer (lon, lat) in *readings row order* — the order
        ``db.demand(window, None)`` returns values in.
    customer_ids:
        Row labels matching ``positions``.
    spec:
        Evaluation grid shared by every produced field.
    resolutions:
        Which S2 granularities to materialize (all seven by default).
    bandwidth_m:
        Pinned KDE bandwidth; Silverman's rule over the full population
        when omitted (matching what a batch sweep with no explicit
        bandwidth uses).
    refold_every:
        Incremental hour-adds a bucket's kernel grid tolerates before it
        is refolded exactly from the demand rollup (drift bound).
    metrics:
        Registry receiving rollup counters; the process default when
        omitted.
    """

    def __init__(
        self,
        positions: np.ndarray,
        customer_ids,
        spec: GridSpec,
        resolutions: tuple[Resolution, ...] = ALL_RESOLUTIONS,
        bandwidth_m: float | None = None,
        refold_every: int = DEFAULT_REFOLD_EVERY,
        metrics: obs.MetricsRegistry | None = None,
    ) -> None:
        if refold_every < 1:
            raise ValueError(f"refold_every must be >= 1, got {refold_every}")
        resolutions = tuple(resolutions)
        if not resolutions:
            raise ValueError("a rollup store needs at least one resolution")
        self.acc = KdeAccumulator(positions, spec, bandwidth_m=bandwidth_m)
        self.spec = spec
        self.customer_ids = [int(cid) for cid in customer_ids]
        if len(self.customer_ids) != self.acc.n:
            raise ValueError(
                f"{len(self.customer_ids)} customer ids for "
                f"{self.acc.n} positions"
            )
        self._row_of = {cid: i for i, cid in enumerate(self.customer_ids)}
        if len(self._row_of) != len(self.customer_ids):
            raise ValueError("customer ids contain duplicates")
        self.resolutions = resolutions
        self.refold_every = refold_every
        self._metrics = metrics
        self._lock = threading.RLock()
        self._tables: dict[Resolution, dict[int, BucketRollup]] = {
            r: {} for r in resolutions
        }
        self.first_hour: int | None = None
        # Per-customer ingestion watermark (end-hour exclusive): shard
        # sub-feeds advance disjoint row sets independently.
        self._applied_through: np.ndarray | None = None
        self.rebuilds_total = 0
        self.hours_applied_total = 0
        self.grid_builds_total = 0
        self.grid_adds_total = 0
        self.grid_refolds_total = 0

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def metrics(self) -> obs.MetricsRegistry:
        return self._metrics if self._metrics is not None else obs.get_registry()

    @property
    def n_customers(self) -> int:
        return self.acc.n

    @property
    def bandwidth_m(self) -> float:
        """The pinned kernel bandwidth every rollup grid was built with."""
        return self.acc.bandwidth_m

    @property
    def last_applied_hour(self) -> int | None:
        """The end hour (exclusive) every customer is rolled up through —
        the slowest per-customer watermark when shard feeds are uneven."""
        if self._applied_through is None:
            return None
        return int(self._applied_through.min())

    def buckets(self, resolution: Resolution) -> list[int]:
        """Materialized bucket ordinals for a resolution, ascending."""
        table = self._tables.get(resolution)
        if table is None:
            raise RollupMiss(f"resolution {resolution} is not tracked")
        with self._lock:
            return sorted(table)

    def bucket(self, resolution: Resolution, bucket: int) -> BucketRollup:
        """One derived-table row; :class:`RollupMiss` if absent."""
        table = self._tables.get(resolution)
        if table is None:
            raise RollupMiss(f"resolution {resolution} is not tracked")
        with self._lock:
            row = table.get(int(bucket))
        if row is None:
            raise RollupMiss(
                f"bucket {bucket} of {resolution} is not materialized"
            )
        return row

    def status(self, source_end_hour: int | None = None) -> dict[str, object]:
        """Staleness + maintenance counters (the telemetry block's source).

        ``source_end_hour`` is the authoritative database's current end
        hour; when given, ``lag_hours`` reports how far the rollups trail
        it (0 = fresh).
        """
        with self._lock:
            last = self.last_applied_hour
            lag = None
            if source_end_hour is not None and last is not None:
                lag = max(0, int(source_end_hour) - last)
            tables = [
                {
                    "resolution": str(res),
                    "n_buckets": len(table),
                    "grids_cached": sum(
                        1 for row in table.values()
                        if row.kernel_grid is not None
                    ),
                }
                for res, table in self._tables.items()
            ]
            return {
                "n_customers": self.n_customers,
                "bandwidth_m": self.bandwidth_m,
                "first_hour": self.first_hour,
                "last_applied_hour": last,
                "source_end_hour": (
                    None if source_end_hour is None else int(source_end_hour)
                ),
                "lag_hours": lag,
                "rebuilds_total": self.rebuilds_total,
                "hours_applied_total": self.hours_applied_total,
                "grid_builds_total": self.grid_builds_total,
                "grid_adds_total": self.grid_adds_total,
                "grid_refolds_total": self.grid_refolds_total,
                "refold_every": self.refold_every,
                "tables": tables,
            }

    # ------------------------------------------------------------------
    # (re)build from batch data
    # ------------------------------------------------------------------
    def rebuild(self, readings: SeriesSet) -> None:
        """Rebuild every demand rollup from a full readings snapshot.

        Kernel grids are dropped (they re-materialize lazily, exactly,
        from the fresh demand rollups).  The readings must cover exactly
        this store's customers; rows may be in any order.
        """
        ids = [int(cid) for cid in readings.customer_ids]
        if set(ids) != set(self.customer_ids):
            raise ValueError("readings cover different customers than the store")
        if ids != self.customer_ids:
            readings = readings.select_customers(self.customer_ids)
        partials = {
            res: bucket_partials(readings, res) for res in self.resolutions
        }
        self._load_partials(
            partials, readings.start_hour, readings.end_hour
        )

    def rebuild_from(self, db) -> None:
        """Rebuild from a database — scattering per shard when the data
        plane supports :meth:`rollup_partials`, gathering otherwise."""
        partials_fn = getattr(db, "rollup_partials", None)
        if partials_fn is not None:
            span = db.time_span
            partials = partials_fn(self.resolutions)
            partials = {
                res: self._reorder_partials(p)
                for res, p in partials.items()
            }
            self._load_partials(partials, span.start_hour, span.end_hour)
        else:
            self.rebuild(db.readings)

    def _reorder_partials(self, partials: BucketPartials) -> BucketPartials:
        """No-op placeholder for pre-ordered partials (the database merge
        already assembles rows in canonical reading order)."""
        if partials.sums.shape[0] != self.n_customers:
            raise ValueError(
                f"partials cover {partials.sums.shape[0]} customers, "
                f"store has {self.n_customers}"
            )
        return partials

    def _load_partials(
        self,
        partials: dict[Resolution, BucketPartials],
        start_hour: int,
        end_hour: int,
    ) -> None:
        with self._lock:
            for res in self.resolutions:
                p = partials[res]
                table: dict[int, BucketRollup] = {}
                for i, b in enumerate(p.buckets):
                    sums = np.ascontiguousarray(p.sums[:, i])
                    counts = np.ascontiguousarray(p.counts[:, i])
                    table[int(b)] = BucketRollup(
                        bucket=int(b),
                        start_hour=int(p.edges[i]),
                        end_hour=int(p.edges[i + 1]),
                        sums=sums,
                        counts=counts,
                        has_negative=bool((sums < 0).any()),
                    )
                self._tables[res] = table
            self.first_hour = int(start_hour)
            self._applied_through = np.full(
                self.n_customers, int(end_hour), dtype=np.int64
            )
            self.rebuilds_total += 1
            self.metrics.counter("rollup_rebuilds_total").inc()
        obs.log_event(
            "rollup.rebuild",
            start_hour=int(start_hour),
            end_hour=int(end_hour),
            resolutions=len(self.resolutions),
        )

    # ------------------------------------------------------------------
    # incremental maintenance (the stream tick path)
    # ------------------------------------------------------------------
    def apply_hours(
        self,
        values: np.ndarray,
        start_hour: int,
        customer_ids=None,
    ) -> int:
        """Fold hourly columns into every resolution's rollups.

        ``values`` is ``(m, n_hours)`` with rows ordered by
        ``customer_ids`` (all customers, in store order, when omitted).
        Columns must extend each covered customer's watermark exactly —
        gaps or overlaps would corrupt the additive tables, so they
        raise.  Shard sub-feeds therefore apply the same hour range for
        disjoint row subsets without double counting.

        For each fed hour, buckets with a materialized kernel grid get
        the hour's kernel contributions added in place (one shared
        matmul per hour across all resolutions); every
        :data:`refold_every` adds a grid is refolded exactly from its
        demand rollup to bound float drift.

        Returns the store's new :attr:`last_applied_hour`.
        """
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 2:
            raise ValueError(f"values must be 2-D, got shape {values.shape}")
        n = self.n_customers
        if customer_ids is None:
            rows = None
            if values.shape[0] != n:
                raise ValueError(
                    f"expected {n} rows, got {values.shape[0]}"
                )
        else:
            ids = [int(cid) for cid in customer_ids]
            if len(ids) != values.shape[0]:
                raise ValueError(
                    f"got {len(ids)} customer ids for {values.shape[0]} rows"
                )
            try:
                idx = np.array([self._row_of[cid] for cid in ids], dtype=np.int64)
            except KeyError as exc:
                raise KeyError(f"unknown customer_id {exc.args[0]}") from None
            rows = None if len(ids) == n and set(ids) == set(
                self.customer_ids
            ) and ids == self.customer_ids else idx
            if rows is None and ids != self.customer_ids:
                rows = idx
        start_hour = int(start_hour)
        n_hours = values.shape[1]
        with self._lock:
            if self._applied_through is None:
                self.first_hour = start_hour
                self._applied_through = np.full(n, start_hour, dtype=np.int64)
            marks = (
                self._applied_through
                if rows is None
                else self._applied_through[rows]
            )
            if not (marks == start_hour).all():
                raise ValueError(
                    f"rollup apply must be contiguous: batch starts at hour "
                    f"{start_hour} but covered customers are applied through "
                    f"{int(marks.min())}..{int(marks.max())}"
                )
            for j in range(n_hours):
                self._fold_hour(values[:, j], start_hour + j, rows)
            if rows is None:
                self._applied_through[:] = start_hour + n_hours
            else:
                self._applied_through[rows] = start_hour + n_hours
            self.hours_applied_total += n_hours
            self.metrics.counter("rollup_hours_applied_total").inc(n_hours)
            return self.last_applied_hour

    def apply_batch(self, batch, customer_ids=None) -> int:
        """Fold one stream :class:`~repro.stream.feed.Batch` in."""
        return self.apply_hours(
            np.asarray(batch.values, dtype=np.float64),
            batch.start_hour,
            customer_ids=customer_ids,
        )

    def _fold_hour(
        self, col: np.ndarray, hour: int, rows: np.ndarray | None
    ) -> None:
        """Add one hourly column (rows subset or full) at ``hour``."""
        observed = ~np.isnan(col)
        filled = np.where(observed, col, 0.0)
        negative = bool((filled < 0).any())
        # One full-length column (zeros outside the subset) shared by
        # every resolution's kernel-grid add this hour.
        if rows is None:
            full = filled
            full_observed = observed
        else:
            full = np.zeros(self.acc.n)
            full[rows] = filled
            full_observed = np.zeros(self.acc.n, dtype=bool)
            full_observed[rows] = observed
        hour_grid: np.ndarray | None = None
        for res in self.resolutions:
            b = res.bucket_of(hour)
            table = self._tables[res]
            row = table.get(b)
            if row is None:
                row = BucketRollup(
                    bucket=b,
                    start_hour=hour,
                    end_hour=hour + 1,
                    sums=np.zeros(self.acc.n),
                    counts=np.zeros(self.acc.n),
                )
                table[b] = row
            row.sums += full
            row.counts += full_observed.astype(np.float64)
            row.start_hour = min(row.start_hour, hour)
            row.end_hour = max(row.end_hour, hour + 1)
            row.has_negative = row.has_negative or negative
            if row.kernel_grid is not None:
                if hour_grid is None:
                    hour_grid = self.acc.grid(full)
                row.kernel_grid += hour_grid
                row.hours_since_refold += 1
                self.grid_adds_total += 1
                self.metrics.counter("rollup_grid_adds_total").inc()
                if row.hours_since_refold >= self.refold_every:
                    self._refold(row)

    def _refold(self, row: BucketRollup) -> None:
        """Recompute a bucket's kernel grid exactly from its demand
        rollup, zeroing accumulated float drift."""
        row.kernel_grid = self.acc.grid(row.sums)
        row.hours_since_refold = 0
        self.grid_refolds_total += 1
        self.metrics.counter("rollup_grid_refolds_total").inc()

    def refold_all(self) -> int:
        """Refold every materialized kernel grid; returns how many."""
        with self._lock:
            refolded = 0
            for table in self._tables.values():
                for row in table.values():
                    if row.kernel_grid is not None:
                        self._refold(row)
                        refolded += 1
            return refolded

    # ------------------------------------------------------------------
    # queries (never touch raw readings)
    # ------------------------------------------------------------------
    def bucket_weights(self, resolution: Resolution, bucket: int) -> np.ndarray:
        """Per-customer mean demand of a bucket — exactly what
        ``db.demand(bucket_window, statistic="mean")`` returns, from the
        rollup instead of the raw matrix."""
        row = self.bucket(resolution, bucket)
        with self._lock:
            with np.errstate(invalid="ignore", divide="ignore"):
                return np.where(row.counts > 0, row.sums / row.counts, 0.0)

    def bucket_field(
        self,
        resolution: Resolution,
        bucket: int,
        bandwidth_m: float | None = None,
    ) -> DensityGrid:
        """The bucket's Eq. 3 density from the rollup tables.

        O(cells) when the kernel grid is warm and the bucket is *clean*
        (uniform observation counts, non-negative demand, queried at the
        store's pinned bandwidth); the first query on a cold bucket
        materializes the grid from the demand rollup in O(n·cells).
        Unclean buckets evaluate through the exact per-weight path —
        still independent of ``n_readings``.
        """
        row = self.bucket(resolution, bucket)
        want_bw = self.bandwidth_m if bandwidth_m is None else float(bandwidth_m)
        with self._lock:
            fast = (
                want_bw == self.bandwidth_m
                and not row.has_negative
                and row.uniform_counts
            )
            if fast:
                total = float(row.sums.sum())
                if np.isfinite(total):
                    if row.kernel_grid is None:
                        self._refold(row)
                        self.grid_builds_total += 1
                        self.metrics.counter("rollup_grid_builds_total").inc()
                    return self.acc.field(row.kernel_grid, total)
            weights = np.where(
                row.counts > 0,
                np.divide(
                    row.sums,
                    row.counts,
                    out=np.zeros_like(row.sums),
                    where=row.counts > 0,
                ),
                0.0,
            )
        return self.acc.field_from_weights(weights, bandwidth_m=want_bw)

    def window_demand(
        self, window: HourWindow, statistic: str = "mean"
    ) -> np.ndarray:
        """Per-customer demand over an arbitrary hour window, assembled
        from the hourly rollup — mirrors ``db.demand`` semantics
        (NaN-aware; customers with no observed hours get 0).

        Raises
        ------
        RollupMiss
            If the hourly resolution is not tracked or the window is not
            fully inside the rolled-up span.
        ValueError
            For an unknown statistic.
        """
        if statistic not in ("mean", "sum"):
            raise ValueError(
                f"unknown statistic {statistic!r}; pick 'mean' or 'sum'"
            )
        if Resolution.HOURLY not in self._tables:
            raise RollupMiss("window_demand needs the hourly resolution")
        with self._lock:
            last = self.last_applied_hour
            if (
                self.first_hour is None
                or last is None
                or window.start_hour < self.first_hour
                or window.end_hour > last
            ):
                raise RollupMiss(
                    f"window [{window.start_hour}, {window.end_hour}) is "
                    f"outside the rolled-up span "
                    f"[{self.first_hour}, {last})"
                )
            table = self._tables[Resolution.HOURLY]
            sums = np.zeros(self.acc.n)
            counts = np.zeros(self.acc.n)
            for hour in range(window.start_hour, window.end_hour):
                row = table.get(hour)
                if row is None:
                    raise RollupMiss(f"hour {hour} is not materialized")
                sums += row.sums
                counts += row.counts
        if statistic == "sum":
            return np.where(counts > 0, sums, 0.0)
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(counts > 0, sums / counts, 0.0)

    def window_field(
        self,
        window: HourWindow,
        rows: np.ndarray | None = None,
        bandwidth_m: float | None = None,
    ) -> DensityGrid:
        """Eq. 3 over an arbitrary window (optionally a customer subset),
        weighted by rollup-derived mean demand — the quantile sweep's
        field primitive."""
        weights = self.window_demand(window, statistic="mean")
        if rows is not None:
            rows = np.asarray(rows, dtype=np.int64)
            weights = weights[rows]
        return self.acc.field_from_weights(
            weights, rows=rows, bandwidth_m=bandwidth_m
        )
