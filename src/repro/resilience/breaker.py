"""Circuit breaking: stop hammering a failing dependency, probe, recover.

A :class:`CircuitBreaker` watches the success/failure stream of one
guarded operation through a rolling
:class:`~repro.obs.timewindow.TimeWindowStore` window and moves through
the classic three states:

- **closed** — calls flow; when the windowed failure *rate* crosses the
  threshold (with at least ``min_calls`` observations, so one early
  failure cannot trip an idle breaker), the breaker opens;
- **open** — calls are refused instantly with :class:`BreakerOpen`
  (callers degrade or shed instead of queueing on a known-bad path)
  until ``open_seconds`` of cooldown elapse;
- **half-open** — a bounded number of trial calls probe the dependency;
  one success closes the breaker and clears the window, one failure
  re-opens it for another cooldown.

State is exported as the ``breaker_state{breaker}`` gauge (0 closed,
1 half-open, 2 open) plus a ``breaker_transitions_total`` counter, so
``/api/telemetry`` can show which kernels are degraded right now.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, TypeVar

from repro import obs
from repro.obs.timewindow import TimeWindowStore

T = TypeVar("T")

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

# Gauge encoding of the state, ordered by severity.
STATE_VALUES = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}

# Failure classes that count against the breaker.  Input errors
# (ValueError and friends) are excluded: a client sending bad parameters
# must not open the circuit for everyone else.
DEFAULT_FAILURE_TYPES: tuple[type[BaseException], ...] = (
    OSError,
    TimeoutError,
    MemoryError,
    FloatingPointError,
    RuntimeError,
)


class BreakerOpen(Exception):
    """The circuit is open; the guarded operation was not attempted.

    ``retry_after`` is the breaker's remaining open window in seconds
    when known (None for breakers that cannot say), so the serving layer
    can derive an honest ``Retry-After`` instead of a constant.
    """

    def __init__(self, name: str, retry_after: float | None = None) -> None:
        super().__init__(f"circuit breaker {name!r} is open")
        self.name = name
        self.retry_after = retry_after


class CircuitBreaker:
    """Failure-rate circuit breaker over a rolling time window.

    Parameters
    ----------
    name:
        Label for metrics and error messages.
    failure_threshold:
        Windowed failure rate in ``(0, 1]`` that opens the circuit.
    min_calls:
        Minimum windowed observations before the rate is trusted.
    open_seconds:
        Cooldown before an open breaker lets trial calls through.
    half_open_max_calls:
        Concurrent trial calls admitted while half-open.
    window_seconds / n_windows:
        Shape of the rolling window the rate is computed over.
    failure_types:
        Exception classes :meth:`call` counts as failures; others pass
        through without touching the breaker.
    clock:
        Injectable monotonic-seconds callable (drives both the cooldown
        and the rolling window).
    metrics:
        Registry for the state gauge; the process default when omitted.
    """

    def __init__(
        self,
        name: str = "default",
        failure_threshold: float = 0.5,
        min_calls: int = 5,
        open_seconds: float = 30.0,
        half_open_max_calls: int = 1,
        window_seconds: float = 10.0,
        n_windows: int = 3,
        failure_types: tuple[type[BaseException], ...] = DEFAULT_FAILURE_TYPES,
        clock: Callable[[], float] = time.monotonic,
        metrics: obs.MetricsRegistry | None = None,
    ) -> None:
        if not 0.0 < failure_threshold <= 1.0:
            raise ValueError(
                f"failure_threshold must be in (0, 1], got {failure_threshold}"
            )
        if min_calls < 1:
            raise ValueError(f"min_calls must be >= 1, got {min_calls}")
        if open_seconds <= 0:
            raise ValueError(f"open_seconds must be positive, got {open_seconds}")
        if half_open_max_calls < 1:
            raise ValueError(
                f"half_open_max_calls must be >= 1, got {half_open_max_calls}"
            )
        self.name = name
        self.failure_threshold = failure_threshold
        self.min_calls = min_calls
        self.open_seconds = open_seconds
        self.half_open_max_calls = half_open_max_calls
        self.failure_types = failure_types
        self.clock = clock
        self._metrics = metrics
        self._window = TimeWindowStore(
            width_seconds=window_seconds, n_windows=n_windows, clock=clock
        )
        self._lock = threading.RLock()
        self._state = CLOSED
        self._opened_at = 0.0
        self._half_open_inflight = 0
        self._export_state()

    @property
    def metrics(self) -> obs.MetricsRegistry:
        return self._metrics if self._metrics is not None else obs.get_registry()

    def _export_state(self) -> None:
        self.metrics.gauge("breaker_state", breaker=self.name).set(
            STATE_VALUES[self._state]
        )

    def _transition(self, state: str) -> None:
        if state == self._state:
            return
        previous, self._state = self._state, state
        self.metrics.counter(
            "breaker_transitions_total",
            breaker=self.name,
            to=state,
        ).inc()
        self._export_state()
        obs.log_event(
            "breaker.transition",
            level="warning" if state != CLOSED else "info",
            breaker=self.name,
            from_state=previous,
            to_state=state,
        )

    def _windowed_counts(self) -> tuple[int, int]:
        """(failures, total) observed in the live window."""
        failures = sum(
            w["count"] for w in self._window.series("call", result="failure")["windows"]
        )
        successes = sum(
            w["count"] for w in self._window.series("call", result="success")["windows"]
        )
        return failures, failures + successes

    @property
    def state(self) -> str:
        """Current state, applying the open → half-open cooldown lazily."""
        with self._lock:
            if (
                self._state == OPEN
                and self.clock() - self._opened_at >= self.open_seconds
            ):
                self._half_open_inflight = 0
                self._transition(HALF_OPEN)
            return self._state

    def remaining_open_seconds(self) -> float:
        """Seconds until an open breaker starts admitting probes.

        0.0 when the breaker is not open (closed, or already half-open —
        a probe could be admitted immediately).
        """
        with self._lock:
            if self.state != OPEN:
                return 0.0
            return max(
                0.0, self.open_seconds - (self.clock() - self._opened_at)
            )

    @property
    def failure_rate(self) -> float:
        """Windowed failure rate (0.0 when the window is empty)."""
        with self._lock:
            failures, total = self._windowed_counts()
            return failures / total if total else 0.0

    def allow(self) -> bool:
        """Whether a call may proceed right now.

        Half-open admission counts against the trial budget, so callers
        that get ``True`` must report the outcome via
        :meth:`record_success` / :meth:`record_failure` (or use
        :meth:`call`, which does all three).
        """
        with self._lock:
            state = self.state
            if state == CLOSED:
                return True
            if state == HALF_OPEN:
                if self._half_open_inflight < self.half_open_max_calls:
                    self._half_open_inflight += 1
                    return True
                return False
            return False

    def record_success(self) -> None:
        with self._lock:
            self._window.record("call", result="success")
            if self._state == HALF_OPEN:
                # The probe came back healthy: close and forget history.
                self._window.reset()
                self._half_open_inflight = 0
                self._transition(CLOSED)

    def record_failure(self) -> None:
        with self._lock:
            self._window.record("call", result="failure")
            if self._state == HALF_OPEN:
                self._opened_at = self.clock()
                self._half_open_inflight = 0
                self._transition(OPEN)
                return
            if self._state == CLOSED:
                failures, total = self._windowed_counts()
                if (
                    total >= self.min_calls
                    and failures / total >= self.failure_threshold
                ):
                    self._opened_at = self.clock()
                    self._transition(OPEN)

    def call(self, fn: Callable[[], T]) -> T:
        """Run ``fn`` under the breaker.

        Raises
        ------
        BreakerOpen
            When the circuit refuses the call.
        BaseException
            Whatever ``fn`` raised (recorded as a failure when its type
            is in ``failure_types``).
        """
        if not self.allow():
            raise BreakerOpen(self.name, retry_after=self.remaining_open_seconds())
        try:
            value = fn()
        except BaseException as exc:
            if isinstance(exc, self.failure_types):
                self.record_failure()
            elif self._state == HALF_OPEN:
                # A non-counted error still ends the trial admission.
                with self._lock:
                    self._half_open_inflight = max(
                        0, self._half_open_inflight - 1
                    )
            raise
        self.record_success()
        return value

    def to_record(self) -> dict:
        """JSON-ready snapshot for telemetry."""
        with self._lock:
            failures, total = self._windowed_counts()
            return {
                "name": self.name,
                "state": self.state,
                "failure_rate": failures / total if total else 0.0,
                "windowed_calls": total,
                "failure_threshold": self.failure_threshold,
                "open_seconds": self.open_seconds,
            }
