"""Resilience: retries, circuit breaking, deterministic fault injection.

The production posture of the VAP reproduction (heavy traffic, near-real-
time replay) requires the storage → stream → serving stack to *survive*
transient faults rather than crash or serve torn state.  Three parts:

- :class:`~repro.resilience.retry.RetryPolicy` — exponential backoff
  with full jitter, seeded for replayable chaos runs, deadline-aware via
  :mod:`repro.core.deadline`, retrying only transient exception classes;
- :class:`~repro.resilience.breaker.CircuitBreaker` — closed/open/half-
  open over a rolling failure-rate window; open circuits fail fast with
  :class:`~repro.resilience.breaker.BreakerOpen` so the serving layer
  degrades to cached results instead of stacking doomed kernel calls;
- :mod:`~repro.resilience.faults` — seeded :class:`FaultPlan`s injecting
  ``OSError``s, latency and torn bytes at named sites in ``db.storage``,
  ``stream.feed`` and the kernel entry points, so every retry/breaker
  behaviour is testable deterministically (``repro serve --fault-plan``
  runs the same chaos against a live server).

Counters and gauges (``retry_attempts_total``, ``breaker_state``,
``faults_injected_total``) flow through the standard metrics registry
and surface in ``/api/metrics`` and ``/api/telemetry``.
"""

from __future__ import annotations

from repro.resilience.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerOpen,
    CircuitBreaker,
)
from repro.resilience.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    active_injector,
    disarmed,
    fault_bytes,
    fault_point,
    injected,
    install,
)
from repro.resilience.retry import (
    DEFAULT_POLICY,
    DEFAULT_RETRYABLE,
    RetryExhausted,
    RetryPolicy,
)

__all__ = [
    "CLOSED",
    "DEFAULT_POLICY",
    "DEFAULT_RETRYABLE",
    "HALF_OPEN",
    "OPEN",
    "BreakerOpen",
    "CircuitBreaker",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "RetryExhausted",
    "RetryPolicy",
    "active_injector",
    "disarmed",
    "fault_bytes",
    "fault_point",
    "injected",
    "install",
]
